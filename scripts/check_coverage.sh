#!/bin/sh
# Coverage floor for the semantically certified packages (ISSUE 9): new
# code in a package whose behaviour the oracle layer vouches for must not
# land untested. Floors are set a few points below the measured coverage at
# the time of recording — they are a ratchet against silent decay, not a
# target. Raise a floor when coverage rises; lowering one requires saying
# why in the commit.
#
# Usage: scripts/check_coverage.sh
set -eu

check() {
    pkg=$1
    floor=$2
    out=$(go test -cover "./internal/$pkg/" 2>&1) || {
        echo "$out"
        echo "coverage-floor: tests failed for $pkg" >&2
        exit 1
    }
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage-floor: no coverage figure for $pkg in: $out" >&2
        exit 1
    fi
    # Integer compare on tenths of a percent (dash has no float arithmetic).
    pct10=$(echo "$pct" | awk '{printf "%d", $1 * 10}')
    floor10=$(echo "$floor" | awk '{printf "%d", $1 * 10}')
    if [ "$pct10" -lt "$floor10" ]; then
        echo "coverage-floor FAIL: $pkg at ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "coverage-floor: $pkg ${pct}% >= ${floor}%"
}

check interp 95
check ise 93
check multidom 92
check exprc 89
