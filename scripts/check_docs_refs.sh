#!/bin/sh
# check_docs_refs.sh DOC.md [...]: the docs-drift gate behind `make
# docs-check`. Every backticked reference in the given markdown files is
# checked against the tree so a paper-to-code map cannot silently rot when
# code moves:
#
#   - tokens containing a '/' are treated as repo paths and must exist
#     (file or directory);
#   - tokens shaped like Go identifiers or dotted selectors (Enumerate,
#     dfg.Traverser.GrowCut, Options.MaxInputs) must appear as a word in
#     some .go file — the *last* dotted component is what is grepped, so
#     renaming a method breaks the gate even if its receiver type stays.
#
# Multi-word spans (command lines, prose) and tokens with operators or
# other non-identifier characters (complexity formulas) are deliberately
# ignored, as whole spans. Exits non-zero listing every stale reference.
set -eu

cd "$(dirname "$0")/.."

# checkdoc prints one line per stale reference in $1.
checkdoc() {
    doc=$1
    # Pull every `...` span onto its own line. Spans are single-line by
    # convention in our docs; multi-line code fences are not references.
    # Read line-wise so spans keep their spaces and multi-word spans are
    # skipped as a unit.
    grep -o '`[^`]*`' "$doc" | sed 's/^`//; s/`$//' | sort -u |
        while IFS= read -r tok; do
            case "$tok" in
            '' | *' '*) continue ;; # multi-word span: command line or prose
            esac
            if printf '%s' "$tok" | grep -q '/'; then
                # Path-shaped: must exist in the tree.
                case "$tok" in
                *[!A-Za-z0-9_./-]*) continue ;; # flags, globs, URLs: skip
                esac
                [ -e "$tok" ] || echo "$doc: stale path reference \`$tok\`"
                continue
            fi
            # Identifier-shaped (possibly dotted, possibly trailing "()")?
            ident=$(printf '%s' "$tok" | sed 's/()$//')
            case "$ident" in
            '' | [0-9]* | *[!A-Za-z0-9_.]*) continue ;; # formulas etc.: skip
            esac
            leaf=${ident##*.}
            case "$leaf" in
            '' | [0-9]*) continue ;;
            esac
            grep -rqw --include='*.go' "$leaf" . ||
                echo "$doc: stale identifier reference \`$tok\` (no \`$leaf\` in any .go file)"
        done
}

fail=0
for doc in "$@"; do
    if [ ! -f "$doc" ]; then
        echo "docs-check: $doc: no such file" >&2
        fail=1
        continue
    fi
    stale=$(checkdoc "$doc")
    if [ -n "$stale" ]; then
        printf '%s\n' "$stale" | sed 's/^/docs-check: /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "docs-check: failed — update the doc or restore the identifier" >&2
fi
exit "$fail"
