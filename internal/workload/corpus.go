package workload

import (
	"fmt"
	"math/rand"
)

import "polyise/internal/dfg"

// Block is one corpus entry: a named basic-block DFG with its size cluster.
type Block struct {
	Name    string
	Cluster string // "10-79", "80-799", "800-1196", or "tree"
	G       *dfg.Graph
}

// Cluster names used by the figure 5 reproduction, matching the paper's
// three size groups plus the synthetic trees.
const (
	ClusterSmall  = "10-79"
	ClusterMedium = "80-799"
	ClusterLarge  = "800-1196"
	ClusterTree   = "tree"
)

// CorpusSpec controls corpus generation. Counts follow a realistic
// basic-block size distribution: most blocks are small, a few are very
// large, totalling 250 like the paper's MiBench extraction.
type CorpusSpec struct {
	Small, Medium, Large int
	TreeDepths           []int
	Profile              Profile
	// LargeProfile applies to the 800-1196 cluster. Basic blocks that big
	// come from aggressively unrolled loops and are dominated by memory
	// traffic (§5.3: "large basic blocks usually include many memory loads
	// and/or stores"), which is also what keeps them tractable: forbidden
	// memory nodes partition the search space.
	LargeProfile Profile
}

// DefaultCorpusSpec reproduces the paper's setup: 250 synthetic MiBench-like
// blocks across the three size clusters plus four trees of depths 4–7.
func DefaultCorpusSpec() CorpusSpec {
	large := DefaultProfile()
	large.MemFrac = 0.35
	return CorpusSpec{
		Small:        150,
		Medium:       80,
		Large:        20,
		TreeDepths:   []int{4, 5, 6, 7},
		Profile:      DefaultProfile(),
		LargeProfile: large,
	}
}

// Corpus generates the deterministic benchmark corpus for the given seed.
func Corpus(seed int64, spec CorpusSpec) []Block {
	r := rand.New(rand.NewSource(seed))
	var out []Block
	add := func(cluster string, n int, p Profile) {
		g := MiBenchLike(r, n, p)
		out = append(out, Block{
			Name:    fmt.Sprintf("bb-%s-%04d", cluster, len(out)),
			Cluster: cluster,
			G:       g,
		})
	}
	largeProfile := spec.LargeProfile
	if largeProfile == (Profile{}) {
		largeProfile = spec.Profile
	}
	for i := 0; i < spec.Small; i++ {
		add(ClusterSmall, 10+r.Intn(70), spec.Profile)
	}
	for i := 0; i < spec.Medium; i++ {
		add(ClusterMedium, 80+r.Intn(720), spec.Profile)
	}
	for i := 0; i < spec.Large; i++ {
		add(ClusterLarge, 800+r.Intn(397), largeProfile)
	}
	for _, d := range spec.TreeDepths {
		out = append(out, Block{
			Name:    fmt.Sprintf("tree-depth%d", d),
			Cluster: ClusterTree,
			G:       Tree(d, 2),
		})
	}
	return out
}
