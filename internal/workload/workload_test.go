package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/dfg"
)

func TestMiBenchLikeBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 50, 200, 1000} {
		g := MiBenchLike(r, n, DefaultProfile())
		if g.N() != n {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		if !g.Frozen() {
			t.Fatal("graph not frozen")
		}
		if len(g.Roots()) == 0 {
			t.Fatal("no roots")
		}
		mem := 0
		for v := 0; v < g.N(); v++ {
			if g.Op(v).IsMemory() {
				mem++
				if !g.IsUserForbidden(v) {
					t.Fatalf("memory node %d not forbidden", v)
				}
			}
		}
		if n >= 200 && (mem < n/10 || mem > n/3) {
			t.Errorf("n=%d: memory fraction %d/%d outside plausible range", n, mem, n)
		}
	}
}

func TestMiBenchLikeDeterministic(t *testing.T) {
	g1 := MiBenchLike(rand.New(rand.NewSource(7)), 100, DefaultProfile())
	g2 := MiBenchLike(rand.New(rand.NewSource(7)), 100, DefaultProfile())
	if g1.N() != g2.N() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < g1.N(); v++ {
		if g1.Op(v) != g2.Op(v) {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestTreeShape(t *testing.T) {
	for depth := 1; depth <= 7; depth++ {
		g := Tree(depth, 2)
		want := 1<<(uint(depth)+1) - 1
		if g.N() != want {
			t.Fatalf("depth %d: n = %d, want %d", depth, g.N(), want)
		}
		if len(g.Roots()) != 1<<uint(depth) {
			t.Fatalf("depth %d: %d leaves, want %d", depth, len(g.Roots()), 1<<uint(depth))
		}
		if len(g.Oext()) != 1 {
			t.Fatalf("depth %d: %d sinks, want 1", depth, len(g.Oext()))
		}
		// Every interior node has exactly two preds and at most one succ.
		for v := 0; v < g.N(); v++ {
			if g.IsRoot(v) {
				continue
			}
			if len(g.Preds(v)) != 2 {
				t.Fatalf("node %d has %d preds", v, len(g.Preds(v)))
			}
			if len(g.Succs(v)) > 1 {
				t.Fatalf("node %d has %d succs", v, len(g.Succs(v)))
			}
		}
	}
}

func TestTreeArity3(t *testing.T) {
	g := Tree(2, 3)
	if g.N() != 9+3+1 {
		t.Fatalf("arity-3 depth-2 tree has %d nodes, want 13", g.N())
	}
}

func TestChain(t *testing.T) {
	g := Chain(10)
	if g.N() != 10 || len(g.Roots()) != 1 || len(g.Oext()) != 1 {
		t.Fatalf("chain malformed: n=%d", g.N())
	}
	if g.Depth(9) != 9 {
		t.Fatalf("chain depth = %d, want 9", g.Depth(9))
	}
}

func TestButterfly(t *testing.T) {
	g := Butterfly(3)
	if len(g.Roots()) != 8 {
		t.Fatalf("lanes = %d, want 8", len(g.Roots()))
	}
	if len(g.Oext()) != 8 {
		t.Fatalf("outputs = %d, want 8", len(g.Oext()))
	}
	if g.N() != 8+3*8 {
		t.Fatalf("n = %d, want 32", g.N())
	}
}

func TestCorpus(t *testing.T) {
	spec := CorpusSpec{Small: 5, Medium: 3, Large: 1, TreeDepths: []int{4}, Profile: DefaultProfile()}
	blocks := Corpus(42, spec)
	if len(blocks) != 10 {
		t.Fatalf("corpus size = %d, want 10", len(blocks))
	}
	counts := map[string]int{}
	for _, b := range blocks {
		counts[b.Cluster]++
		n := b.G.N()
		switch b.Cluster {
		case ClusterSmall:
			if n < 10 || n > 79 {
				t.Errorf("%s: size %d outside cluster", b.Name, n)
			}
		case ClusterMedium:
			if n < 80 || n > 799 {
				t.Errorf("%s: size %d outside cluster", b.Name, n)
			}
		case ClusterLarge:
			if n < 800 || n > 1196 {
				t.Errorf("%s: size %d outside cluster", b.Name, n)
			}
		}
	}
	if counts[ClusterSmall] != 5 || counts[ClusterMedium] != 3 || counts[ClusterLarge] != 1 || counts[ClusterTree] != 1 {
		t.Fatalf("cluster counts wrong: %v", counts)
	}
	// Determinism.
	again := Corpus(42, spec)
	for i := range blocks {
		if blocks[i].G.N() != again[i].G.N() {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestQuickGeneratedGraphsAreValidDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(300)
		g := MiBenchLike(r, n, DefaultProfile())
		// Frozen implies acyclic; spot-check topo invariants and that
		// every non-root has preds.
		for v := 0; v < g.N(); v++ {
			if !g.IsRoot(v) && len(g.Preds(v)) == 0 {
				return false
			}
			for _, p := range g.Preds(v) {
				if g.TopoPos(p) >= g.TopoPos(v) {
					return false
				}
			}
			if g.Op(v) == dfg.OpVar && !g.IsRoot(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
