// Package workload generates the data-flow graphs of the paper's evaluation
// (§6): synthetic MiBench-like basic blocks and the tree-shaped worst-case
// graphs of figure 4.
//
// The original experiments used 250 basic blocks extracted from MiBench
// with sizes between 10 and 1196 nodes. Those DFGs are not distributed with
// the paper, so Corpus produces a synthetic stand-in: layered random DAGs
// with an embedded-benchmark operation mix (arithmetic and logic dominant,
// a realistic share of forbidden memory operations), bounded fan-in, and
// operand locality. Enumeration cost depends only on topology, |F| and the
// I/O constraint, all of which the generator reproduces, so run-time
// comparisons keep their shape even though the instances differ.
package workload

import (
	"fmt"
	"math/rand"

	"polyise/internal/dfg"
)

// Profile parameterizes the MiBench-like generator.
type Profile struct {
	// RootFrac is the fraction of nodes that are external inputs (live-in
	// variables). Typical embedded blocks sit around 0.1–0.2.
	RootFrac float64
	// MemFrac is the fraction of operation nodes that are memory accesses,
	// which are marked forbidden. Large MiBench blocks are load/store heavy
	// (§5.3 notes "large basic blocks usually include many memory loads
	// and/or stores").
	MemFrac float64
	// LiveOutFrac is the fraction of interior nodes additionally marked
	// live-out (values observed by later blocks).
	LiveOutFrac float64
	// Window bounds operand locality: predecessors are drawn from the most
	// recent Window nodes, which controls graph depth. Zero means no bound.
	Window int
}

// DefaultProfile matches the mix used throughout the benchmark harness.
func DefaultProfile() Profile {
	return Profile{RootFrac: 0.15, MemFrac: 0.18, LiveOutFrac: 0.05, Window: 48}
}

// arithmetic operation mix for non-memory nodes, roughly matching an
// embedded integer benchmark (adds and logic dominate, multiplies are
// common, divisions rare).
var opMix = []struct {
	op     dfg.Op
	weight int
}{
	{dfg.OpAdd, 24},
	{dfg.OpSub, 12},
	{dfg.OpAnd, 8},
	{dfg.OpOr, 6},
	{dfg.OpXor, 6},
	{dfg.OpShl, 6},
	{dfg.OpShr, 6},
	{dfg.OpMul, 8},
	{dfg.OpCmpLT, 4},
	{dfg.OpCmpEQ, 3},
	{dfg.OpSelect, 4},
	{dfg.OpNot, 3},
	{dfg.OpNeg, 2},
	{dfg.OpAbs, 1},
	{dfg.OpMin, 2},
	{dfg.OpMax, 2},
	{dfg.OpDiv, 1},
}

var opMixTotal = func() int {
	t := 0
	for _, m := range opMix {
		t += m.weight
	}
	return t
}()

func pickOp(r *rand.Rand) dfg.Op {
	k := r.Intn(opMixTotal)
	for _, m := range opMix {
		k -= m.weight
		if k < 0 {
			return m.op
		}
	}
	return dfg.OpAdd
}

// MiBenchLike generates a frozen basic-block DFG with n nodes.
func MiBenchLike(r *rand.Rand, n int, p Profile) *dfg.Graph {
	if n < 2 {
		n = 2
	}
	g := dfg.New()
	roots := int(float64(n)*p.RootFrac + 0.5)
	if roots < 1 {
		roots = 1
	}
	pickPred := func(i int) int {
		lo := 0
		if p.Window > 0 && i > p.Window {
			lo = i - p.Window
		}
		return lo + r.Intn(i-lo)
	}
	// Memory operations carry explicit dependence edges, as a compiler's DFG
	// would: each store depends on the previous store and on every load
	// issued since it, and each load depends on the previous store. This
	// totally orders the stores and orders every load against the stores on
	// both sides of it, so the block's memory behaviour is determined by the
	// graph alone — any topological execution order, including the ones
	// graph rewrites like CollapseCut produce, observes the same loads and
	// leaves the same memory. (Load–load order stays free; loads have no
	// side effects.) The extra operands are ignored by the interpreter and,
	// being edges between forbidden nodes, only constrain enumeration the
	// way real memory dependences would.
	lastStore := -1
	var loadsSinceStore []int
	for i := 0; i < n; i++ {
		// Interleave roots through the early part of the block so operand
		// windows always contain some.
		if i < roots || (i < 2*roots && r.Intn(3) == 0) {
			g.MustAddNode(dfg.OpVar, fmt.Sprintf("v%d", i))
			continue
		}
		if r.Float64() < p.MemFrac {
			if r.Intn(3) == 0 {
				// Store: consumes an address and a value, no consumers.
				preds := []int{pickPred(i), pickPred(i)}
				if lastStore >= 0 {
					preds = append(preds, lastStore)
				}
				preds = append(preds, loadsSinceStore...)
				id := g.MustAddNode(dfg.OpStore, "", preds...)
				mustMark(g.MarkForbidden(id))
				lastStore = id
				loadsSinceStore = loadsSinceStore[:0]
			} else {
				preds := []int{pickPred(i)}
				if lastStore >= 0 {
					preds = append(preds, lastStore)
				}
				id := g.MustAddNode(dfg.OpLoad, "", preds...)
				mustMark(g.MarkForbidden(id))
				loadsSinceStore = append(loadsSinceStore, id)
			}
			continue
		}
		op := pickOp(r)
		arity := op.Arity()
		preds := make([]int, arity)
		for j := range preds {
			preds[j] = pickPred(i)
		}
		id := g.MustAddNode(op, "", preds...)
		if r.Float64() < p.LiveOutFrac {
			mustMark(g.MarkLiveOut(id))
		}
	}
	g.MustFreeze()
	return g
}

func mustMark(err error) {
	if err != nil {
		panic(err)
	}
}

// Tree builds the tree-shaped worst case of figure 4: a complete tree of
// the given arity whose leaves are external inputs and whose single sink is
// the block output, all edges pointing toward the sink. depth counts edge
// levels, so a binary tree of depth d has 2^(d+1)−1 nodes. The paper uses
// depths 4–7 and proves algorithms like [4] take O(1.6^n) on this family.
func Tree(depth, arity int) *dfg.Graph {
	if depth < 1 {
		depth = 1
	}
	if arity < 2 {
		arity = 2
	}
	g := dfg.New()
	// Build level by level from the leaves (roots of the DFG) down.
	leaves := 1
	for i := 0; i < depth; i++ {
		leaves *= arity
	}
	level := make([]int, leaves)
	for i := range level {
		level[i] = g.MustAddNode(dfg.OpVar, fmt.Sprintf("leaf%d", i))
	}
	ops := []dfg.Op{dfg.OpAdd, dfg.OpXor, dfg.OpSub, dfg.OpOr}
	d := 0
	for len(level) > 1 {
		next := make([]int, 0, len(level)/arity)
		for i := 0; i < len(level); i += arity {
			preds := level[i : i+arity]
			id := g.MustAddNode(ops[d%len(ops)], "", preds...)
			next = append(next, id)
		}
		level = next
		d++
	}
	g.MustFreeze()
	return g
}

// Chain builds a linear chain of n unary operations rooted at one input —
// the easiest possible instance, useful as a benchmark floor.
func Chain(n int) *dfg.Graph {
	g := dfg.New()
	prev := g.MustAddNode(dfg.OpVar, "x")
	ops := []dfg.Op{dfg.OpNot, dfg.OpNeg, dfg.OpAbs}
	for i := 1; i < n; i++ {
		prev = g.MustAddNode(ops[i%len(ops)], "", prev)
	}
	g.MustFreeze()
	return g
}

// Butterfly builds an FFT-like butterfly network with 2^stages lanes; every
// stage combines pairs at a stride, producing a dense multi-output block —
// a stress case for multi-output enumeration.
func Butterfly(stages int) *dfg.Graph {
	if stages < 1 {
		stages = 1
	}
	lanes := 1 << uint(stages)
	g := dfg.New()
	cur := make([]int, lanes)
	for i := range cur {
		cur[i] = g.MustAddNode(dfg.OpVar, fmt.Sprintf("in%d", i))
	}
	for s := 0; s < stages; s++ {
		stride := 1 << uint(s)
		next := make([]int, lanes)
		for i := 0; i < lanes; i++ {
			j := i ^ stride
			op := dfg.OpAdd
			if i > j {
				op = dfg.OpSub
			}
			next[i] = g.MustAddNode(op, "", cur[i], cur[j])
		}
		cur = next
	}
	g.MustFreeze()
	return g
}
