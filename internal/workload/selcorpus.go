package workload

import (
	"math/rand"

	"polyise/internal/dfg"
	"polyise/internal/exprc"
)

// This file pins the selection corpus: the instances on which the
// selection oracle (internal/semoracle) cross-checks ise.Select against an
// exhaustive reference and on which selection outcomes + cost-model
// accounting are golden-pinned. Unlike the enumeration-oriented gap
// corpus, these instances are chosen for the *selection* problem: realistic
// hand-written kernels whose candidate instruction sets are rich enough to
// make greedy-vs-optimal diverge plausible, plus generated blocks small
// enough (n ≤ 16) for the exhaustive reference.

// SelBlock is one selection-corpus instance.
type SelBlock struct {
	Name string
	G    *dfg.Graph
	// Small marks instances with at most 16 vertices, where the
	// acceptance bar requires ise.Select to match the exhaustive
	// selection reference.
	Small bool
	// HasMemory marks instances containing load/store nodes with
	// memory-dependence ordering, the PR 1 edge class the cut-semantics
	// oracle must cover.
	HasMemory bool
}

// FIR4Source is a 4-tap FIR filter inner step: multiply-accumulate chains,
// the canonical ISE candidate shape (the paper's §7 speedup examples are
// of this kind).
const FIR4Source = `in x0, x1, x2, x3, c0, c1, c2, c3
acc = x0*c0 + x1*c1 + x2*c2 + x3*c3
out acc`

// HashRoundSource is one round of a Jenkins-style integer mix: xor/shift/
// add lattices with no memory traffic and wide instruction-level
// parallelism.
const HashRoundSource = `in a, b, c
a1 = (a - b - c) ^ (c >> 13)
b1 = (b - c - a1) ^ (a1 << 8)
c1 = (c - a1 - b1) ^ (b1 >> 13)
out a1, b1, c1`

// SatAddSource is a saturating add — compare/select clamping around an
// adder, a classic single-output custom instruction.
const SatAddSource = `in a, b, lo, hi
s = a + b
clamped = min(max(s, lo), hi)
out clamped`

// MemKernelSource is a read-modify-write kernel: loads and stores with
// address arithmetic. The memory operations are forbidden nodes, so cuts
// wrap around them and collapsing must preserve the load/store ordering.
const MemKernelSource = `in p, q, k
a = load(p)
b = load(p + 4)
s = (a + b) * k
m = max(a, b) - min(a, b)
store(q, s)
store(q + 4, s ^ m)
out m`

// SelectionCorpus returns the pinned selection corpus. Generation is
// deterministic, so outcomes pinned against these instances are stable
// across machines and revisions as long as the generators are unchanged
// (workload tests pin the generators).
func SelectionCorpus() []SelBlock {
	return []SelBlock{
		{Name: "fir4", G: exprc.MustCompile(FIR4Source)},
		{Name: "hash-round", G: exprc.MustCompile(HashRoundSource)},
		{Name: "sat-add", G: exprc.MustCompile(SatAddSource), Small: true},
		{Name: "mem-kernel", G: exprc.MustCompile(MemKernelSource), HasMemory: true},
		{Name: "mibench-n14-seed3", G: smallMiBench(14, 3), Small: true},
		{Name: "mibench-n16-seed11", G: smallMiBench(16, 11), Small: true},
		{Name: "mibench-n40-seed7", G: smallMiBench(40, 7), HasMemory: true},
	}
}

func smallMiBench(n int, seed int64) *dfg.Graph {
	return MiBenchLike(rand.New(rand.NewSource(seed)), n, DefaultProfile())
}

// WithForbiddenOps rebuilds a frozen graph with every node of the given
// operations added to the user forbidden set F — the "restricted ISA"
// scenario axis: e.g. forbidding multipliers or shifters models a custom
// functional unit without those blocks. Node ids, names, constants,
// live-outs and the original forbidden set are preserved, so cuts of the
// variant graph name the same vertices as cuts of the original.
func WithForbiddenOps(g *dfg.Graph, ops ...dfg.Op) *dfg.Graph {
	banned := make(map[dfg.Op]bool, len(ops))
	for _, op := range ops {
		banned[op] = true
	}
	out := dfg.New()
	for v := 0; v < g.N(); v++ { // ids ≡ topological order
		id := out.MustAddNode(g.Op(v), g.Name(v), g.Preds(v)...)
		switch g.Op(v) {
		case dfg.OpConst, dfg.OpCustom, dfg.OpExtract:
			if err := out.SetConst(id, g.ConstValue(v)); err != nil {
				panic(err)
			}
		}
		forbid := banned[g.Op(v)] || g.IsUserForbidden(v)
		// Call/Custom/Extract are implicitly forbidden at Freeze; marking
		// them explicitly is redundant but harmless only for MarkForbidden-
		// compatible ops, so skip them.
		if forbid && g.Op(v) != dfg.OpCall && g.Op(v) != dfg.OpCustom && g.Op(v) != dfg.OpExtract {
			if err := out.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
		if g.IsLiveOut(v) && len(g.Succs(v)) > 0 {
			if err := out.MarkLiveOut(id); err != nil {
				panic(err)
			}
		}
	}
	return out.MustFreeze()
}
