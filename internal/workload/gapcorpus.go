package workload

import (
	"fmt"
	"math/rand"

	"polyise/internal/dfg"
)

// GapInstance pins one MiBench-like block on which the enumeration once
// missed cuts, together with the exact number of valid cuts under the
// standard Nin=4/Nout=2 constraint (DefaultOptions), as established by the
// pruned-exhaustive oracle and, since the digest fix, by the polynomial
// enumeration itself. The regression tests and the mid-size differential
// oracle both anchor on these instances so the former gap can never
// silently reopen.
type GapInstance struct {
	Name string
	N    int   // vertex count passed to MiBenchLike
	Seed int64 // rand seed passed to MiBenchLike
	// WantCuts is the exact valid-cut count under DefaultOptions
	// (Nin=4, Nout=2), verified against the pruned-exhaustive oracle.
	WantCuts int
}

// Graph regenerates the pinned block. Generation is deterministic in
// (N, Seed), so the instance is stable across machines and revisions as
// long as the generator itself is unchanged (workload tests pin that).
func (gi GapInstance) Graph() *dfg.Graph {
	return MiBenchLike(rand.New(rand.NewSource(gi.Seed)), gi.N, DefaultProfile())
}

// GapRegressionInstances returns the blocks on which the pre-PR 4 dedup
// digest (word-FNV Hash128) collided and dropped valid cuts: before the
// fix the enumeration reported 4 468 and 7 669 cuts on these (the latter
// engine-revision dependent — PR 2 measured 7 668, because the collision
// victim is whichever cut of a colliding pair is visited second), versus
// the oracle's 4 565 and 7 891.
// Any graph of ≥ 128 vertices was exposed; these two are the measured
// repro cases from EXPERIMENTS.md.
func GapRegressionInstances() []GapInstance {
	return []GapInstance{
		{Name: "mibench-n140-seed5", N: 140, Seed: 5, WantCuts: 4565},
		{Name: "mibench-n220-seed17", N: 220, Seed: 17, WantCuts: 7891},
	}
}

// FreshOracleInstance names a generated mid-size block for the fresh
// random sweep of the differential oracle (sizes chosen to straddle the
// bitset word boundaries at 128 and 192 vertices, up to the n ≈ 240
// oracle coverage bound).
func FreshOracleInstance(n int, seed int64) (string, *dfg.Graph) {
	return fmt.Sprintf("mibench-n%d-seed%d", n, seed),
		MiBenchLike(rand.New(rand.NewSource(seed)), n, DefaultProfile())
}
