package faultinject

import (
	"testing"
	"time"
)

func TestSiteStrings(t *testing.T) {
	want := map[Site]string{
		SitePickInputs:      "pickInputs",
		SiteCheckCut:        "checkCut",
		SiteStealPublish:    "stealPublish",
		SiteStealClaim:      "stealClaim",
		SiteMergeSplice:     "mergeSplice",
		SiteDedupInsert:     "dedupInsert",
		SiteCheckpointWrite: "checkpointWrite",
		SiteCacheInsert:     "cacheInsert",
		SiteCacheEvict:      "cacheEvict",
		SiteAdmission:       "admission",
		SiteResponseWrite:   "responseWrite",
	}
	if len(want) != int(NumSites) {
		t.Fatalf("test covers %d sites, package declares %d", len(want), NumSites)
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Site(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if NumSites.String() == "" {
		t.Error("out-of-range Site produced an empty String")
	}
	if ActPanic.String() != "panic" || ActDelay.String() != "delay" {
		t.Errorf("Action strings: %q, %q", ActPanic, ActDelay)
	}
}

func TestInstallUninstall(t *testing.T) {
	p := Install()
	defer Uninstall()
	for s := Site(0); s < NumSites; s++ {
		if p.Fired(s) != 0 {
			t.Fatalf("fresh plan reports %d hits at %v", p.Fired(s), s)
		}
	}
	// Counting hooks are wired for every site even with no injections.
	hooks := []func(){OnPickInputs, OnCheckCut, OnStealPublish, OnStealClaim, OnMergeSplice, OnDedupInsert, OnCheckpointWrite,
		OnCacheInsert, OnCacheEvict, OnAdmission, OnResponseWrite}
	if len(hooks) != int(NumSites) {
		t.Fatalf("test drives %d hooks, package declares %d sites", len(hooks), NumSites)
	}
	for i, h := range hooks {
		if h == nil {
			t.Fatalf("hook %v nil after Install", Site(i))
		}
		h()
		h()
		if got := p.Fired(Site(i)); got != 2 {
			t.Fatalf("site %v fired %d times, want 2", Site(i), got)
		}
	}
	Uninstall()
	if OnPickInputs != nil || OnCheckCut != nil || OnStealPublish != nil ||
		OnStealClaim != nil || OnMergeSplice != nil || OnDedupInsert != nil ||
		OnCheckpointWrite != nil || OnCacheInsert != nil || OnCacheEvict != nil ||
		OnAdmission != nil || OnResponseWrite != nil || ForceFallback != nil {
		t.Fatal("Uninstall left a hook installed")
	}
	if ForcedFallback() {
		t.Fatal("ForcedFallback true with no hook installed")
	}
}

func TestInjectionPanicsOnExactHit(t *testing.T) {
	Install(Injection{Site: SiteCheckCut, Hit: 3, Action: ActPanic})
	defer Uninstall()
	OnCheckCut()
	OnCheckCut()
	func() {
		defer func() {
			v := recover()
			ip, ok := v.(InjectedPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want InjectedPanic", v, v)
			}
			if ip.Site != SiteCheckCut || ip.Hit != 3 {
				t.Fatalf("InjectedPanic = %+v, want site checkCut hit 3", ip)
			}
			if ip.String() == "" {
				t.Fatal("empty InjectedPanic string")
			}
		}()
		OnCheckCut()
		t.Fatal("third traversal did not panic")
	}()
}

func TestInjectionDelayEveryHit(t *testing.T) {
	p := Install(Injection{Site: SiteStealPublish, Hit: 0, Action: ActDelay, Delay: time.Millisecond})
	defer Uninstall()
	start := time.Now()
	OnStealPublish()
	OnStealPublish()
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("two every-hit delays of 1ms took only %v", d)
	}
	if p.Fired(SiteStealPublish) != 2 {
		t.Fatalf("fired %d, want 2", p.Fired(SiteStealPublish))
	}
}

func TestHitFromSeedDeterministicAndInRange(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for s := Site(0); s < NumSites; s++ {
			for _, mod := range []uint64{1, 7, 1000} {
				h := HitFromSeed(seed, s, mod)
				if h != HitFromSeed(seed, s, mod) {
					t.Fatalf("HitFromSeed(%d, %v, %d) not deterministic", seed, s, mod)
				}
				if h < 1 || h > mod {
					t.Fatalf("HitFromSeed(%d, %v, %d) = %d out of [1, %d]", seed, s, mod, h, mod)
				}
			}
		}
	}
	if HitFromSeed(1, SiteCheckCut, 0) != 1 {
		t.Fatal("mod=0 must degrade to hit 1")
	}
	// Different seeds must actually address different hits somewhere.
	varied := false
	for seed := int64(0); seed < 16 && !varied; seed++ {
		varied = HitFromSeed(seed, SiteCheckCut, 1000) != HitFromSeed(seed+1, SiteCheckCut, 1000)
	}
	if !varied {
		t.Fatal("HitFromSeed constant across seeds")
	}
}
