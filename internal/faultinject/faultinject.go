// Package faultinject provides deterministic, seed-addressable fault
// injection for the enumeration engine's concurrency protocol. The chaos
// suite (internal/enum's Chaos tests, `make chaos`) uses it to prove the
// fail-safe contract: under a panic, delay or forced degradation at any
// protocol site, the enumeration either completes bit-identical to the
// serial run or returns a clean error — never a hang, never a leaked merge
// segment or liveness token.
//
// # Hook discipline
//
// Each injection site is a package-level function variable that is nil in
// production, so the cost at a hot call site is one global load and a nil
// check — no atomics, no locks, no allocation. Hooks are installed before
// an enumeration starts and uninstalled after it returns; the run
// start/finish edges provide the happens-before ordering, so installing is
// race-free even under -race. The hook functions themselves may be called
// concurrently from every enumeration worker and must be internally
// synchronized (Plan's counters are atomic).
//
// Sites follow the enumeration's protocol boundaries:
//
//   - PickInputs / CheckCut: the two hot admission entries of the
//     incremental search — a panic here dies inside arbitrary search state.
//   - StealPublish: a donor about to split a range for a hungry peer — a
//     fault here lands in the middle of the handoff protocol.
//   - StealClaim: a thief that just accepted a stolen range, before it
//     reconstructs the donor's state — a panic here strands the stolen
//     segment unless containment releases it.
//   - MergeSplice: parallel.SplitOrdered.Split, before the segment list is
//     modified — a panic here must leave the merge list intact.
//   - DedupInsert: a digest-set insert on the candidate admission path.
//   - CheckpointWrite: a durable snapshot about to be persisted
//     (enum.Options.CheckpointPath) — a panic here kills the run in the
//     middle of its checkpoint cadence, which is exactly the window the
//     atomic temp+rename write protocol must make survivable: the
//     crash-resume suite proves the previous snapshot still resumes.
//
// The session layer (internal/session, the polyised server) adds four
// service-boundary sites:
//
//   - CacheInsert: a frozen graph about to be published into the
//     content-addressed cache — a panic here must not corrupt the cache
//     map or strand the budget reservation.
//   - CacheEvict: an LRU victim about to be dropped under budget
//     pressure — a fault here lands while the cache lock is held.
//   - Admission: a request that just won an execution slot, before any
//     work starts — the window where shedding and shutdown race.
//   - ResponseWrite: a result row about to be streamed to the client —
//     a delay here models the slow-client backpressure path.
//
// ForceFallback is separate: when it returns true, the delta kernels
// (dfg.Traverser's GrowCut/ShrinkCut/ShrinkReachInto clip thresholds and
// the DeltaValidator mirror resync) take their from-scratch fallback paths
// unconditionally, so the chaos suite can pin delta-vs-fallback identity
// under concurrency without reaching into unexported tuning knobs.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Hook variables, nil when no injection is active (the production state).
// Call sites guard with `if h := faultinject.OnX; h != nil { h() }`.
var (
	OnPickInputs      func()
	OnCheckCut        func()
	OnStealPublish    func()
	OnStealClaim      func()
	OnMergeSplice     func()
	OnDedupInsert     func()
	OnCheckpointWrite func()
	OnCacheInsert     func()
	OnCacheEvict      func()
	OnAdmission       func()
	OnResponseWrite   func()

	// ForceFallback, when non-nil and returning true, forces every delta
	// kernel to its from-scratch fallback path.
	ForceFallback func() bool
)

// ForcedFallback is the call-site helper for ForceFallback: false when no
// hook is installed.
func ForcedFallback() bool {
	h := ForceFallback
	return h != nil && h()
}

// Site identifies one injection point.
type Site uint8

const (
	SitePickInputs Site = iota
	SiteCheckCut
	SiteStealPublish
	SiteStealClaim
	SiteMergeSplice
	SiteDedupInsert
	SiteCheckpointWrite
	SiteCacheInsert
	SiteCacheEvict
	SiteAdmission
	SiteResponseWrite
	NumSites
)

func (s Site) String() string {
	switch s {
	case SitePickInputs:
		return "pickInputs"
	case SiteCheckCut:
		return "checkCut"
	case SiteStealPublish:
		return "stealPublish"
	case SiteStealClaim:
		return "stealClaim"
	case SiteMergeSplice:
		return "mergeSplice"
	case SiteDedupInsert:
		return "dedupInsert"
	case SiteCheckpointWrite:
		return "checkpointWrite"
	case SiteCacheInsert:
		return "cacheInsert"
	case SiteCacheEvict:
		return "cacheEvict"
	case SiteAdmission:
		return "admission"
	case SiteResponseWrite:
		return "responseWrite"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Action is what an Injection does when its site fires.
type Action uint8

const (
	// ActPanic panics with an InjectedPanic value, which the containment
	// layer converts to a *enum.PanicError the tests can recognize.
	ActPanic Action = iota
	// ActDelay sleeps for Injection.Delay, perturbing worker schedules
	// (e.g. holding a donor mid-handoff, or starving workers into steals).
	ActDelay
)

func (a Action) String() string {
	switch a {
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// InjectedPanic is the value ActPanic panics with, so recovery layers and
// assertions can distinguish injected faults from genuine bugs.
type InjectedPanic struct {
	Site Site
	Hit  uint64 // which traversal of the site fired (1-based)
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %v (hit %d)", p.Site, p.Hit)
}

// Injection is one planned fault: on the Hit-th traversal of Site, perform
// Action. Hit is 1-based; Hit == 0 fires on every traversal (useful for
// delays). Which traversal is "the Hit-th" is deterministic given a
// deterministic schedule — in serial runs it addresses one exact search
// node; in parallel runs it is schedule-dependent, which is precisely the
// point of the chaos sweep.
type Injection struct {
	Site   Site
	Hit    uint64
	Action Action
	Delay  time.Duration
}

// Plan is an installed set of injections with per-site traversal counters.
type Plan struct {
	counters [NumSites]atomic.Uint64
	bySite   [NumSites][]Injection
}

// Install wires the given injections into the hook variables and returns
// the Plan. The caller must Uninstall after the run under test returns and
// must not run two plans concurrently. Sites without injections keep a
// counting hook so Fired reports coverage.
func Install(injs ...Injection) *Plan {
	p := &Plan{}
	for _, inj := range injs {
		if inj.Site >= NumSites {
			panic(fmt.Sprintf("faultinject: unknown site %d", inj.Site))
		}
		p.bySite[inj.Site] = append(p.bySite[inj.Site], inj)
	}
	OnPickInputs = func() { p.fire(SitePickInputs) }
	OnCheckCut = func() { p.fire(SiteCheckCut) }
	OnStealPublish = func() { p.fire(SiteStealPublish) }
	OnStealClaim = func() { p.fire(SiteStealClaim) }
	OnMergeSplice = func() { p.fire(SiteMergeSplice) }
	OnDedupInsert = func() { p.fire(SiteDedupInsert) }
	OnCheckpointWrite = func() { p.fire(SiteCheckpointWrite) }
	OnCacheInsert = func() { p.fire(SiteCacheInsert) }
	OnCacheEvict = func() { p.fire(SiteCacheEvict) }
	OnAdmission = func() { p.fire(SiteAdmission) }
	OnResponseWrite = func() { p.fire(SiteResponseWrite) }
	return p
}

// Uninstall clears every hook variable, returning the package to the
// production (nil, zero-cost) state.
func Uninstall() {
	OnPickInputs = nil
	OnCheckCut = nil
	OnStealPublish = nil
	OnStealClaim = nil
	OnMergeSplice = nil
	OnDedupInsert = nil
	OnCheckpointWrite = nil
	OnCacheInsert = nil
	OnCacheEvict = nil
	OnAdmission = nil
	OnResponseWrite = nil
	ForceFallback = nil
}

// fire advances the site's traversal counter and executes any injection
// scheduled for this hit.
func (p *Plan) fire(site Site) {
	hit := p.counters[site].Add(1)
	for _, inj := range p.bySite[site] {
		if inj.Hit != 0 && inj.Hit != hit {
			continue
		}
		switch inj.Action {
		case ActPanic:
			panic(InjectedPanic{Site: site, Hit: hit})
		case ActDelay:
			time.Sleep(inj.Delay)
		}
	}
}

// Fired reports how many times the site was traversed under this plan.
func (p *Plan) Fired(site Site) uint64 { return p.counters[site].Load() }

// HitFromSeed derives a deterministic 1-based hit index in [1, mod] for the
// given (seed, site) pair, so a chaos sweep can address different search
// nodes per seed without any global randomness. The mix is splitmix64.
func HitFromSeed(seed int64, site Site, mod uint64) uint64 {
	if mod == 0 {
		return 1
	}
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(site) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + x%mod
}
