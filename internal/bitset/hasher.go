package bitset

import "math/bits"

// Hasher128 is the streaming form of Hash128: a two-lane accumulator that
// consumes an arbitrary word sequence instead of one set's backing array.
// The checkpoint subsystem uses it to fingerprint whole graphs (vertex
// count, opcode list, adjacency rows, role sets) so a snapshot can refuse
// to resume against different input. It uses the same per-word avalanche
// (hashmix) and independently keyed lanes as Hash128 — see that method's
// comment for why folding raw words is not an option — so the digest
// quality is identical; the two differ only in how the words arrive.
//
// The zero Hasher128 is not ready for use; call NewHasher128. Word order
// matters: the digest identifies the sequence, not the multiset. Callers
// hashing variable-length sections should write a length word first so
// section boundaries cannot alias.
type Hasher128 struct {
	h1, h2 uint64
}

// NewHasher128 returns a hasher in its initial lane state.
func NewHasher128() Hasher128 {
	return Hasher128{h1: 0xcbf29ce484222325, h2: 0x6c62272e07bb0142}
}

// Word folds one 64-bit word into both lanes.
func (h *Hasher128) Word(w uint64) {
	const (
		prime1 = 0x100000001b3
		prime2 = 0x3f4e5a7b9d1c8e63
	)
	m := hashmix(w)
	h.h1 = (h.h1 ^ m) * prime1
	h.h2 = (h.h2 ^ bits.RotateLeft64(m, 27)) * prime2
}

// Int folds an int as one word.
func (h *Hasher128) Int(v int) { h.Word(uint64(int64(v))) }

// Words folds a word slice, length first.
func (h *Hasher128) Words(ws []uint64) {
	h.Int(len(ws))
	for _, w := range ws {
		h.Word(w)
	}
}

// Set folds a bit set's backing words, length first.
func (h *Hasher128) Set(s *Set) { h.Words(s.Words()) }

// Sum finalizes both lanes. The hasher may keep absorbing words after Sum;
// the finalization does not disturb the lane state.
func (h *Hasher128) Sum() [2]uint64 {
	return [2]uint64{hashmix(h.h1), hashmix(h.h2)}
}
