package bitset

// Tests for the fused word-level operations backing the word-parallel
// traversal engine.

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestFusedOpsMatchComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := randSet(r, n), randSet(r, n)
		got, want := New(n), New(n)

		got.CopyIntersect(a, b)
		want.Copy(a)
		want.Intersect(b)
		if !got.Equal(want) {
			return false
		}

		got.CopyAndNot(a, b)
		want.Copy(a)
		want.Subtract(b)
		if !got.Equal(want) {
			return false
		}

		got.ComplementOf(a)
		for v := 0; v < n; v++ {
			if got.Has(v) == a.Has(v) {
				return false
			}
		}
		if got.Count()+a.Count() != n {
			return false // no stray bits beyond capacity
		}

		s := randSet(r, n)
		wantAny := false
		for v := 0; v < n; v++ {
			if s.Has(v) && a.Has(v) && !b.Has(v) {
				wantAny = true
			}
		}
		if s.AndNotAny(a, b) != wantAny {
			return false
		}

		got.Clear()
		got.UnionWords(a.Words())
		if !got.Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendMembersReuse(t *testing.T) {
	s := FromMembers(130, 0, 63, 64, 127, 129)
	buf := make([]int, 0, 8)
	got := s.AppendMembers(buf[:0])
	if want := []int{0, 63, 64, 127, 129}; len(got) != len(want) {
		t.Fatalf("AppendMembers = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AppendMembers = %v, want %v", got, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		buf = s.AppendMembers(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendMembers allocated %.1f times with warm buffer", allocs)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n = 150
	sets := make([]*Set, 40)
	for i := range sets {
		sets[i] = randSet(r, n)
	}
	// Antisymmetry + consistency with Equal.
	for _, a := range sets {
		for _, b := range sets {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Fatalf("Compare not antisymmetric: %d vs %d", ab, ba)
			}
			if (ab == 0) != a.Equal(b) {
				t.Fatalf("Compare == 0 disagrees with Equal")
			}
		}
	}
	// Sorting by Compare must agree with sorting by Signature-equality
	// classes: equal sets stay adjacent, distinct sets get a fixed order.
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) < 0 })
	for i := 1; i < len(sets); i++ {
		if sets[i-1].Compare(sets[i]) > 0 {
			t.Fatal("sort by Compare not in order")
		}
	}
}
