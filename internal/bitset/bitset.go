// Package bitset provides dense fixed-capacity bit sets used throughout
// polyise for vertex sets, reachability matrix rows and cut membership.
//
// The representation is a plain []uint64 slice. All operations that combine
// two sets require them to have been created with the same capacity; this is
// not checked at runtime beyond slice bounds, mirroring the paper's use of
// flat adjacency/reachability matrices (§5.4).
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, capacity).
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity the set was created with.
func (s *Set) Cap() int { return s.n }

// Words exposes the underlying word storage. Callers own the set or treat
// the slice as read-only; the word-parallel traversal kernels use it to
// advance whole 64-bit frontiers at a time instead of individual bits.
func (s *Set) Words() []uint64 { return s.words }

// Add inserts i into the set.
func (s *Set) Add(i int) { s.words[i/wordBits] |= 1 << uint(i%wordBits) }

// Remove deletes i from the set.
func (s *Set) Remove(i int) { s.words[i/wordBits] &^= 1 << uint(i%wordBits) }

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool { return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0 }

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Copy overwrites s with the contents of t.
func (s *Set) Copy(t *Set) {
	copy(s.words, t.words)
}

// Union sets s = s ∪ t.
func (s *Set) Union(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// UnionWords sets s = s ∪ row, where row is a raw word slice of the same
// stride (an adjacency-matrix row).
func (s *Set) UnionWords(row []uint64) {
	for i, w := range row {
		s.words[i] |= w
	}
}

// CopyIntersect sets s = a ∩ b in one fused pass.
func (s *Set) CopyIntersect(a, b *Set) {
	bw := b.words
	for i, w := range a.words {
		s.words[i] = w & bw[i]
	}
}

// CopyAndNot sets s = a \ b in one fused pass.
func (s *Set) CopyAndNot(a, b *Set) {
	bw := b.words
	for i, w := range a.words {
		s.words[i] = w &^ bw[i]
	}
}

// ComplementOf sets s = U \ t, where U is the full capacity universe.
func (s *Set) ComplementOf(t *Set) {
	for i, w := range t.words {
		s.words[i] = ^w
	}
	if rem := uint(s.n % wordBits); rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// AndNotAny reports whether s ∩ t \ not is non-empty, without
// materializing the intermediate set.
func (s *Set) AndNotAny(t, not *Set) bool {
	nw := not.words
	for i, w := range t.words {
		if s.words[i]&w&^nw[i] != 0 {
			return true
		}
	}
	return false
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s \ t.
func (s *Set) Subtract(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without materializing the intersection.
func (s *Set) IntersectionCount(t *Set) int {
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// SubsetOf reports whether every element of s is also in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every element in ascending order. If f returns false,
// iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the elements in ascending order.
func (s *Set) Members() []int {
	return s.AppendMembers(make([]int, 0, s.Count()))
}

// AppendMembers appends the elements in ascending order to dst and returns
// the extended slice; with a reused dst it is allocation-free once the
// capacity has grown to fit.
func (s *Set) AppendMembers(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Compare orders sets by their word representation, lexicographically from
// word 0 upward (shorter sets first). It is an arbitrary but deterministic
// total order over equal-capacity sets, cheaper than comparing Signature
// strings.
func (s *Set) Compare(t *Set) int {
	if len(s.words) != len(t.words) {
		if len(s.words) < len(t.words) {
			return -1
		}
		return 1
	}
	for i, w := range s.words {
		if w != t.words[i] {
			if w < t.words[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Next returns the smallest element ≥ i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// hashmix is the 64-bit finalizer of MurmurHash3 (fmix64): a full-avalanche
// bijection, so every input bit affects every output bit.
func hashmix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hash128 returns a 128-bit digest of the set contents, used as a cheap
// deduplication key where allocating Signature strings would dominate.
// Each word is avalanched (hashmix) before being folded into two
// independently keyed accumulator lanes, with the second lane consuming a
// rotation of the mix so a cancellation in one lane cannot carry to the
// other.
//
// The avalanche step is load-bearing, not an optimization: folding raw
// words FNV-style — h = (h ^ w) * prime — has a structural collision class
// that silently dropped ~1–3% of valid cuts from the enumeration on graphs
// of 128+ vertices. An XOR difference confined to bit 63 of a word passes
// through multiplication by any odd constant as exactly a bit-63 flip
// ((x ± 2^63)·p ≡ x·p ± 2^63 mod 2^64), so toggling the top bit of two
// different words — e.g. exchanging vertex 63 for vertex 127 — cancels in
// both lanes regardless of the primes, giving distinct sets identical
// digests. TestHash128TopBitPairs pins the fix; EXPERIMENTS.md "Resolved:
// the n ≥ 140 completeness gap" tells the full story. With per-word
// avalanche no low-entropy difference survives to fold time, and residual
// collision probability is the generic ~2^-128.
func (s *Set) Hash128() [2]uint64 {
	const (
		offset1 = 0xcbf29ce484222325
		prime1  = 0x100000001b3
		offset2 = 0x6c62272e07bb0142
		prime2  = 0x3f4e5a7b9d1c8e63
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for _, w := range s.words {
		m := hashmix(w)
		h1 = (h1 ^ m) * prime1
		h2 = (h2 ^ bits.RotateLeft64(m, 27)) * prime2
	}
	return [2]uint64{hashmix(h1), hashmix(h2)}
}

// Signature returns a deterministic string key identifying the set contents.
// It is used to deduplicate cuts by their vertex set.
func (s *Set) Signature() string {
	var b strings.Builder
	b.Grow(len(s.words) * 17)
	for _, w := range s.words {
		b.WriteString(strconv.FormatUint(w, 16))
		b.WriteByte(',')
	}
	return b.String()
}

// String renders the set like "{1 4 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// UnionOf returns a new set that is the union of the given sets; all must
// share the capacity n.
func UnionOf(n int, sets ...*Set) *Set {
	out := New(n)
	for _, t := range sets {
		out.Union(t)
	}
	return out
}

// FromMembers builds a set of capacity n from the given members.
func FromMembers(n int, members ...int) *Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}
