package bitset

// DigestSet is an open-addressing hash set over the [2]uint64 digests that
// Hash128 produces. It replaces map[[2]uint64]bool (and the older
// string-keyed variants) on dedup hot paths: no per-insert hashing of the
// key beyond one multiply (the digest already is the hash material), no
// bucket indirection, and Reset reuses the backing array so the steady
// state allocates nothing. The zero digest is representable via a sentinel
// flag, so no key is excluded.
//
// The slot index mixes the digest with a Fibonacci multiplier and takes
// the TOP bits of the product. The finisher earned its keep when Hash128
// was a raw word-FNV fold whose weakly mixed low bits clustered
// linear probes into microsecond-long chains on enumeration-sized tables;
// since the PR 4 digest fix Hash128 is fully avalanched (fmix64 per word
// and per lane) and any bit range would index well — the finisher is kept
// because it is one multiply, costs nothing, and keeps this table correct
// even for callers feeding it digests that are not avalanche-quality.
type DigestSet struct {
	slots   [][2]uint64
	shift   uint
	mask    uint64
	n       int
	hasZero bool
}

const digestSetMinCap = 64 // power of two

// NewDigestSet returns an empty set with a small pre-grown table.
func NewDigestSet() *DigestSet {
	s := &DigestSet{}
	s.grow(digestSetMinCap)
	return s
}

// fib64 is 2^64 / φ, the usual Fibonacci-hashing multiplier.
const fib64 = 0x9e3779b97f4a7c15

func (s *DigestSet) slot(k [2]uint64) uint64 {
	return ((k[0] ^ k[1]) * fib64) >> s.shift
}

func (s *DigestSet) grow(capacity int) {
	old := s.slots
	s.slots = make([][2]uint64, capacity)
	s.mask = uint64(capacity - 1)
	s.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		s.shift--
	}
	s.n = 0
	for _, k := range old {
		if k[0]|k[1] != 0 {
			s.insertNoCheck(k)
		}
	}
}

func (s *DigestSet) insertNoCheck(k [2]uint64) {
	i := s.slot(k)
	for s.slots[i][0]|s.slots[i][1] != 0 {
		i = (i + 1) & s.mask
	}
	s.slots[i] = k
	s.n++
}

// Insert adds k and reports whether it was absent.
func (s *DigestSet) Insert(k [2]uint64) bool {
	if k[0]|k[1] == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	i := s.slot(k)
	for {
		sl := s.slots[i]
		if sl[0]|sl[1] == 0 {
			break
		}
		if sl == k {
			return false
		}
		i = (i + 1) & s.mask
	}
	s.slots[i] = k
	s.n++
	if 4*s.n >= 3*len(s.slots) {
		s.grow(2 * len(s.slots))
	}
	return true
}

// Bytes reports the memory footprint of the backing table: 16 bytes per
// slot. It is the quantity Options.MaxDedupBytes budgets.
func (s *DigestSet) Bytes() int { return len(s.slots) * 16 }

// WouldGrowPast reports whether inserting one more absent key would double
// the backing table beyond maxBytes. Callers enforcing a memory budget test
// this BEFORE Insert: when it reports true the table is at its last
// affordable size and the run must degrade instead of growing.
func (s *DigestSet) WouldGrowPast(maxBytes int) bool {
	return 4*(s.n+1) >= 3*len(s.slots) && 2*len(s.slots)*16 > maxBytes
}

// Len returns the number of distinct keys inserted.
func (s *DigestSet) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

// AppendDigests appends every key in the set to dst and returns the
// extended slice: the zero digest first when present, then the non-zero
// keys in backing-table order. Table order is deterministic for a given
// insertion history but is NOT insertion order; callers needing a canonical
// listing must sort. The checkpoint subsystem uses this to serialize a
// dedup table so a resumed run can suppress exactly the cuts the
// interrupted run already delivered.
func (s *DigestSet) AppendDigests(dst [][2]uint64) [][2]uint64 {
	if s.hasZero {
		dst = append(dst, [2]uint64{})
	}
	for _, k := range s.slots {
		if k[0]|k[1] != 0 {
			dst = append(dst, k)
		}
	}
	return dst
}

// Reset empties the set, keeping the backing array.
func (s *DigestSet) Reset() {
	for i := range s.slots {
		s.slots[i] = [2]uint64{}
	}
	s.n = 0
	s.hasZero = false
}
