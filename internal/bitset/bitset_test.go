package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("new set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) did not remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after remove = %d, want 7", got)
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(99)
	if s.Empty() {
		t.Fatal("set with element reported empty")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear did not empty set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(200, 1, 5, 64, 150)
	b := FromMembers(200, 5, 64, 199)

	u := a.Clone()
	u.Union(b)
	if want := []int{1, 5, 64, 150, 199}; !reflect.DeepEqual(u.Members(), want) {
		t.Fatalf("union = %v, want %v", u.Members(), want)
	}

	i := a.Clone()
	i.Intersect(b)
	if want := []int{5, 64}; !reflect.DeepEqual(i.Members(), want) {
		t.Fatalf("intersect = %v, want %v", i.Members(), want)
	}

	d := a.Clone()
	d.Subtract(b)
	if want := []int{1, 150}; !reflect.DeepEqual(d.Members(), want) {
		t.Fatalf("subtract = %v, want %v", d.Members(), want)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects(a,b) = false, want true")
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if a.SubsetOf(u) != true || u.SubsetOf(a) != false {
		t.Fatal("SubsetOf wrong")
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := FromMembers(66, 0, 65)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(3)
	if a.Equal(b) {
		t.Fatal("modified clone still equal")
	}
	if a.Has(3) {
		t.Fatal("clone aliases original")
	}
	c := New(10)
	if a.Equal(c) {
		t.Fatal("different capacities equal")
	}
}

func TestCopy(t *testing.T) {
	a := FromMembers(70, 2, 69)
	b := New(70)
	b.Add(5)
	b.Copy(a)
	if !b.Equal(a) {
		t.Fatalf("Copy: got %v want %v", b, a)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromMembers(100, 3, 10, 50)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if want := []int{3, 10}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("early stop saw %v, want %v", seen, want)
	}
}

func TestNext(t *testing.T) {
	s := FromMembers(200, 3, 64, 130)
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, -1}, {500, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestSignatureDistinguishes(t *testing.T) {
	a := FromMembers(128, 1, 2)
	b := FromMembers(128, 1, 3)
	c := FromMembers(128, 1, 2)
	if a.Signature() == b.Signature() {
		t.Fatal("different sets share signature")
	}
	if a.Signature() != c.Signature() {
		t.Fatal("equal sets have different signatures")
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(10, 1, 4, 7).String(); got != "{1 4 7}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestUnionOf(t *testing.T) {
	u := UnionOf(64, FromMembers(64, 1), FromMembers(64, 2), FromMembers(64, 63))
	if want := []int{1, 2, 63}; !reflect.DeepEqual(u.Members(), want) {
		t.Fatalf("UnionOf = %v, want %v", u.Members(), want)
	}
}

// randomSet builds a set plus its mirror map representation.
func randomSet(r *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	m := map[int]bool{}
	for i := 0; i < n/3; i++ {
		v := r.Intn(n)
		s.Add(v)
		m[v] = true
	}
	return s, m
}

func TestQuickAgainstMap(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s, m := randomSet(r, n)
		if s.Count() != len(m) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != m[i] {
				return false
			}
		}
		mem := s.Members()
		if len(mem) != len(m) {
			return false
		}
		for i := 1; i < len(mem); i++ {
			if mem[i-1] >= mem[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b| over random sets.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		u := a.Clone()
		u.Union(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractUnionIdentity(t *testing.T) {
	// (a \ b) ∪ (a ∩ b) == a
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		diff := a.Clone()
		diff.Subtract(b)
		inter := a.Clone()
		inter.Intersect(b)
		diff.Union(inter)
		return diff.Equal(a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion1024(b *testing.B) {
	x := New(1024)
	y := New(1024)
	for i := 0; i < 1024; i += 3 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Union(y)
	}
}

func BenchmarkForEach1024(b *testing.B) {
	x := New(1024)
	for i := 0; i < 1024; i += 5 {
		x.Add(i)
	}
	sink := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ForEach(func(j int) bool { sink += j; return true })
	}
	_ = sink
}
