package bitset

import (
	"math/rand"
	"testing"
)

// The digest is the enumeration's only duplicate detector: a collision
// between two distinct valid cuts silently drops whichever is enumerated
// second. These tests pin the collision classes that actually bit (see the
// Hash128 doc comment and EXPERIMENTS.md "Resolved: the n ≥ 140
// completeness gap") and a randomized birthday-style sanity sweep.

// TestHash128TopBitPairs pins the structural collision class of the
// pre-fix word-FNV digest: any two sets that differ only by toggling bit
// 63 of two different words (e.g. {63} vs {127}) hashed identically,
// because a top-bit XOR difference commutes with multiplication by an odd
// constant and the second toggle cancels the first in both lanes. Every
// top-bit pair within an 8-word universe must now produce distinct digests.
func TestHash128TopBitPairs(t *testing.T) {
	const n = 8 * 64
	for wa := 0; wa < 8; wa++ {
		for wb := wa + 1; wb < 8; wb++ {
			a := New(n)
			b := New(n)
			a.Add(wa*64 + 63)
			b.Add(wb*64 + 63)
			if a.Hash128() == b.Hash128() {
				t.Errorf("top-bit pair collision: {%d} vs {%d}", wa*64+63, wb*64+63)
			}
			// The original failure shape: the pair embedded in a shared
			// larger set (a cut differing only in that one vertex swap).
			for _, extra := range []int{5, 99, 130, 201} {
				a.Add(extra)
				b.Add(extra)
			}
			if a.Hash128() == b.Hash128() {
				t.Errorf("embedded top-bit pair collision: words %d/%d", wa, wb)
			}
		}
	}
}

// TestHash128GapInstanceShape reproduces the exact first victim measured on
// the n=140/seed=5 MiBench-like block: cut {127} colliding with cut {63}.
func TestHash128GapInstanceShape(t *testing.T) {
	a := New(140)
	b := New(140)
	a.Add(63)
	b.Add(127)
	if a.Hash128() == b.Hash128() {
		t.Fatal("{63} and {127} still collide — the n ≥ 140 completeness gap is back")
	}
}

// TestHash128SingleBitDistinct checks all single-vertex sets in a 4-word
// universe are pairwise distinct, and distinct from the empty set.
func TestHash128SingleBitDistinct(t *testing.T) {
	const n = 256
	seen := map[[2]uint64]int{}
	empty := New(n)
	seen[empty.Hash128()] = -1
	for v := 0; v < n; v++ {
		s := New(n)
		s.Add(v)
		h := s.Hash128()
		if prev, dup := seen[h]; dup {
			t.Fatalf("digest collision between {%d} and {%d}", v, prev)
		}
		seen[h] = v
	}
}

// TestHash128TwoBitDistinct sweeps every two-vertex set of a 3-word
// universe (the smallest shape that exposed the original bug) and requires
// all digests pairwise distinct — ~16k sets, exhaustive at this size.
func TestHash128TwoBitDistinct(t *testing.T) {
	const n = 192
	seen := map[[2]uint64][2]int{}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s := New(n)
			s.Add(a)
			s.Add(b)
			h := s.Hash128()
			if prev, dup := seen[h]; dup {
				t.Fatalf("digest collision between {%d,%d} and {%d,%d}", a, b, prev[0], prev[1])
			}
			seen[h] = [2]int{a, b}
		}
	}
}

// TestHash128RandomSets is the birthday-style sanity sweep: 200k random
// sets over a 220-vertex universe (the largest pinned oracle instance)
// with distinct membership must produce distinct digests.
func TestHash128RandomSets(t *testing.T) {
	const n = 220
	r := rand.New(rand.NewSource(1))
	seen := map[[2]uint64]string{}
	for i := 0; i < 200_000; i++ {
		s := New(n)
		for k := 1 + r.Intn(12); k > 0; k-- {
			s.Add(r.Intn(n))
		}
		sig := s.Signature()
		h := s.Hash128()
		if prev, dup := seen[h]; dup && prev != sig {
			t.Fatalf("digest collision between %s and %s", prev, sig)
		}
		seen[h] = sig
	}
}
