package enum

import (
	"fmt"
	"sort"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Cut is a convex cut reported by the enumeration: the vertex set S together
// with its derived inputs I(S) and outputs O(S).
type Cut struct {
	Nodes   *bitset.Set
	Inputs  []int
	Outputs []int
}

// String renders the cut compactly for logs and tests.
func (c Cut) String() string {
	return fmt.Sprintf("cut%v in=%v out=%v", c.Nodes.Members(), c.Inputs, c.Outputs)
}

// Clone returns an independent copy of the cut.
func (c Cut) Clone() Cut {
	in := make([]int, len(c.Inputs))
	copy(in, c.Inputs)
	out := make([]int, len(c.Outputs))
	copy(out, c.Outputs)
	return Cut{Nodes: c.Nodes.Clone(), Inputs: in, Outputs: out}
}

// Validator checks candidate vertex sets against the §3 problem statement,
// deriving everything from S alone in O(|S|) adjacency-row sweeps. It owns
// scratch storage (including a word-parallel dfg.Traverser), so it is
// cheap — and in steady state allocation-free — to call repeatedly, but
// not safe for concurrent use.
//
// Since the incremental validation engine landed (deltaval.go), Validator
// is the property-tested reference semantics rather than the incremental
// enumeration's hot path — the same demotion rebuildS underwent in PR 3.
// EnumerateBasic and the baseline searches still use it directly (their
// candidates are not maintained incrementally), DeltaValidator is pinned
// to it on randomized push/undo sequences, and the scalar implementations
// on dfg.Graph (IsConvex, TechnicalConditionHolds, IsConnectedCut) remain
// the reference below it in turn.
type Validator struct {
	g   *dfg.Graph
	opt Options
	tr  *dfg.Traverser

	ins, outs *bitset.Set
	down, up  *bitset.Set // ∪ReachFrom(S), ∪ReachTo(S) for the convexity gap
	rootReach *bitset.Set // reachable from the virtual source avoiding I(S)
	rootValid bool        // rootReach is current for this Validate call
	reach     *bitset.Set // per-input forward closure (connectedness)

	insBuf, outsBuf []int
	inputsTo        []uint64
	depthBuf        []int32
}

// NewValidator creates a Validator for g under the given options.
func NewValidator(g *dfg.Graph, opt Options) *Validator {
	n := g.N()
	return &Validator{
		g:         g,
		opt:       opt,
		tr:        g.NewTraverser(),
		ins:       bitset.New(n),
		outs:      bitset.New(n),
		down:      bitset.New(n),
		up:        bitset.New(n),
		rootReach: bitset.New(n),
		reach:     bitset.New(n),
		depthBuf:  make([]int32, n),
	}
}

// Validate reports whether S is a valid cut: non-empty, disjoint from F,
// convex, within the input/output budgets, and satisfying the technical
// condition, connectedness and depth limits the options request. On success
// it fills cut with S's derived inputs and outputs; the slices share the
// validator's scratch storage unless Options.KeepCuts is set, in which case
// they are freshly allocated copies safe to retain.
func (v *Validator) Validate(S *bitset.Set, cut *Cut) bool {
	g := v.g
	if S.Empty() {
		return false
	}
	if S.Intersects(g.ForbiddenSet()) || S.Intersects(g.RootSet()) {
		return false
	}
	v.tr.InputsInto(v.ins, S)
	v.insBuf = v.ins.AppendMembers(v.insBuf[:0])
	v.rootValid = false
	if len(v.insBuf) > v.opt.MaxInputs {
		return false
	}
	v.tr.OutputsInto(v.outs, S)
	v.outsBuf = v.outs.AppendMembers(v.outsBuf[:0])
	if len(v.outsBuf) > v.opt.MaxOutputs {
		return false
	}
	if !v.isConvex(S) {
		return false
	}
	if !v.technicalConditionHolds() {
		return false
	}
	if v.opt.ConnectedOnly && !v.isConnectedCut() {
		return false
	}
	if v.opt.MaxDepth > 0 && v.internalDepth(S) > v.opt.MaxDepth {
		return false
	}
	if cut != nil {
		cut.Nodes = S
		if v.opt.KeepCuts {
			cut.Inputs = append([]int(nil), v.insBuf...)
			cut.Outputs = append([]int(nil), v.outsBuf...)
		} else {
			cut.Inputs = v.insBuf
			cut.Outputs = v.outsBuf
		}
	}
	return true
}

// isConvex is the word-parallel form of definition 2. S is convex exactly
// when the gap region ReachFrom(S) ∩ ReachTo(S) \ S is empty: a vertex
// there lies outside S on a path between two members. Restricting the test
// to the gap region costs |S| row unions instead of a scan over all N
// vertices.
func (v *Validator) isConvex(S *bitset.Set) bool {
	g := v.g
	v.down.Clear()
	v.up.Clear()
	S.ForEach(func(u int) bool {
		v.down.Union(g.ReachFrom(u))
		v.up.Union(g.ReachTo(u))
		return true
	})
	return !v.down.AndNotAny(v.up, S)
}

// technicalConditionHolds implements the §3 condition on the inputs
// computed by the enclosing Validate call (v.ins / v.insBuf): every input w
// needs a root path that reaches w while avoiding the other inputs.
//
// Two observations collapse the paper's per-input traversal pair into one
// shared traversal plus a row test per input. First, the second half of the
// condition — from w, reach a vertex of S avoiding the other inputs — holds
// for every input by construction: w ∈ I(S) has a direct successor inside
// S, and members of S are never inputs. Second, a root path to w avoiding
// the *other* inputs cannot revisit w (the graph is acyclic), so its prefix
// avoids every input; therefore it exists exactly when w itself is a
// virtual-source entry or some predecessor of w is reachable from the
// source avoiding all of I(S) — one forward closure shared by all inputs.
func (v *Validator) technicalConditionHolds() bool {
	if len(v.insBuf) <= 1 {
		return true
	}
	g := v.g
	v.ensureRootReach()
	for _, w := range v.insBuf {
		if g.IsRoot(w) || g.IsUserForbidden(w) {
			continue
		}
		if !g.PredsIntersect(w, v.rootReach) {
			return false
		}
	}
	return true
}

// ensureRootReach computes the forward closure from the virtual source
// avoiding I(S) once per Validate call; the technical-condition and
// connectedness checks share it.
func (v *Validator) ensureRootReach() {
	if !v.rootValid {
		v.tr.ReachForwardAvoiding(v.rootReach, v.g.Entries(), v.ins, nil)
		v.rootValid = true
	}
}

// isConnectedCut implements definition 4 on the word-parallel engine (the
// generalized-dominator sense of "input to a vertex" established by theorem
// 1; see Graph.IsConnectedCut for the scalar reference). Per input the
// scalar version runs a traversal pair per output; here one shared
// root-reachability closure settles the root→input half for every input,
// and one forward closure per feeding input covers all outputs at once.
func (v *Validator) isConnectedCut() bool {
	if len(v.outsBuf) <= 1 {
		return true
	}
	if len(v.insBuf) > 64 {
		return false // cannot happen under any sane port constraint
	}
	g := v.g
	v.inputsTo = v.inputsTo[:0]
	for range v.outsBuf {
		v.inputsTo = append(v.inputsTo, 0)
	}
	v.ensureRootReach()
	for bi, i := range v.insBuf {
		rootFeeds := g.IsRoot(i) || g.IsUserForbidden(i) || g.PredsIntersect(i, v.rootReach)
		if !rootFeeds {
			continue
		}
		v.tr.ReachForwardAvoiding(v.reach, g.Succs(i), v.ins, nil)
		for k, o := range v.outsBuf {
			if v.reach.Has(o) {
				v.inputsTo[k] |= 1 << uint(bi)
			}
		}
	}
	for a := 0; a < len(v.outsBuf); a++ {
		for b := a + 1; b < len(v.outsBuf); b++ {
			if v.inputsTo[a]&v.inputsTo[b] == 0 {
				return false
			}
		}
	}
	return true
}

// internalDepth returns the number of edges on the longest path that stays
// inside S — the latency proxy used by the MaxDepth restriction. The
// per-vertex depths live in a reusable scratch array; no clearing is needed
// because every member's entry is written before any in-S successor reads
// it (topological order).
func (v *Validator) internalDepth(S *bitset.Set) int {
	g := v.g
	max := int32(0)
	for _, u := range g.Topo() {
		if !S.Has(u) {
			continue
		}
		d := int32(0)
		for _, p := range g.Preds(u) {
			if S.Has(p) {
				if dp := v.depthBuf[p] + 1; dp > d {
					d = dp
				}
			}
		}
		v.depthBuf[u] = d
		if d > max {
			max = d
		}
	}
	return int(max)
}

// Collect runs an enumeration function and gathers all cuts into a slice
// sorted by their vertex set, convenient for tests and tools. The
// comparator orders bitset words lexicographically — a deterministic total
// order computed without materializing per-cut signature strings.
func Collect(run func(visit func(Cut) bool) Stats) ([]Cut, Stats) {
	var cuts []Cut
	stats := run(func(c Cut) bool {
		cuts = append(cuts, c)
		return true
	})
	sort.Slice(cuts, func(i, j int) bool {
		return cuts[i].Nodes.Compare(cuts[j].Nodes) < 0
	})
	return cuts, stats
}
