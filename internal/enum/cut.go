package enum

import (
	"fmt"
	"sort"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Cut is a convex cut reported by the enumeration: the vertex set S together
// with its derived inputs I(S) and outputs O(S).
type Cut struct {
	Nodes   *bitset.Set
	Inputs  []int
	Outputs []int
}

// String renders the cut compactly for logs and tests.
func (c Cut) String() string {
	return fmt.Sprintf("cut%v in=%v out=%v", c.Nodes.Members(), c.Inputs, c.Outputs)
}

// Clone returns an independent copy of the cut.
func (c Cut) Clone() Cut {
	in := make([]int, len(c.Inputs))
	copy(in, c.Inputs)
	out := make([]int, len(c.Outputs))
	copy(out, c.Outputs)
	return Cut{Nodes: c.Nodes.Clone(), Inputs: in, Outputs: out}
}

// Validator checks candidate vertex sets against the §3 problem statement.
// It owns scratch storage, so it is cheap to call repeatedly but not safe
// for concurrent use.
type Validator struct {
	g       *dfg.Graph
	opt     Options
	ins     *bitset.Set
	outs    *bitset.Set
	scratch *bitset.Set
}

// NewValidator creates a Validator for g under the given options.
func NewValidator(g *dfg.Graph, opt Options) *Validator {
	n := g.N()
	return &Validator{
		g:       g,
		opt:     opt,
		ins:     bitset.New(n),
		outs:    bitset.New(n),
		scratch: bitset.New(n),
	}
}

// Validate reports whether S is a valid cut: non-empty, disjoint from F,
// convex, within the input/output budgets, and satisfying the technical
// condition, connectedness and depth limits the options request. On success
// it fills cut with S's derived inputs and outputs (sharing the validator's
// scratch sets unless the caller clones).
func (v *Validator) Validate(S *bitset.Set, cut *Cut) bool {
	g := v.g
	if S.Empty() {
		return false
	}
	if S.Intersects(g.ForbiddenSet()) || S.Intersects(g.RootSet()) {
		return false
	}
	g.InputsInto(v.ins, S)
	if v.ins.Count() > v.opt.MaxInputs {
		return false
	}
	g.OutputsInto(v.outs, S)
	if v.outs.Count() > v.opt.MaxOutputs {
		return false
	}
	if !g.IsConvex(S) {
		return false
	}
	if !g.TechnicalConditionHolds(S) {
		return false
	}
	if v.opt.ConnectedOnly && !g.IsConnectedCut(S) {
		return false
	}
	if v.opt.MaxDepth > 0 && internalDepth(g, S) > v.opt.MaxDepth {
		return false
	}
	if cut != nil {
		cut.Nodes = S
		cut.Inputs = v.ins.Members()
		cut.Outputs = v.outs.Members()
	}
	return true
}

// internalDepth returns the number of edges on the longest path that stays
// inside S — the latency proxy used by the MaxDepth restriction.
func internalDepth(g *dfg.Graph, S *bitset.Set) int {
	depth := make(map[int]int, S.Count())
	max := 0
	for _, v := range g.Topo() {
		if !S.Has(v) {
			continue
		}
		d := 0
		for _, p := range g.Preds(v) {
			if S.Has(p) {
				if dp := depth[p] + 1; dp > d {
					d = dp
				}
			}
		}
		depth[v] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Collect runs an enumeration function and gathers all cuts into a slice
// sorted by their vertex-set signature, convenient for tests and tools.
func Collect(run func(visit func(Cut) bool) Stats) ([]Cut, Stats) {
	var cuts []Cut
	stats := run(func(c Cut) bool {
		cuts = append(cuts, c)
		return true
	})
	sort.Slice(cuts, func(i, j int) bool {
		return cuts[i].Nodes.Signature() < cuts[j].Nodes.Signature()
	})
	return cuts, stats
}
