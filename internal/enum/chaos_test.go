package enum_test

// The chaos suite: a deterministic fault-injection sweep over every
// protocol site of the enumeration at several worker counts. Each run
// must land in one of exactly two outcomes within the liveness bound:
//
//   - the injection never fired (the addressed traversal does not exist on
//     this schedule) and the result is bit-identical to the serial run, or
//   - the injection fired and the run terminated with a clean
//     *PanicError carrying the injected value, StopReason = StopError,
//     and a visited sequence that is an exact prefix of the serial order.
//
// Never a hang, never a deadlocked merge, never an out-of-order cut.
// Delay injections and forced delta-kernel fallbacks must not change the
// result at all. `make chaos` runs every TestChaos* under -race with a
// hard go-test timeout, and `make ci` includes it.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/workload"
)

// chaosRun executes one injected enumeration and checks the dichotomy
// against the serial reference. Returns whether the injection fired.
func chaosRun(t *testing.T, g *dfg.Graph, serial []string, workers int, inj faultinject.Injection) bool {
	t.Helper()
	plan := faultinject.Install(inj)
	defer faultinject.Uninstall()
	opt := enum.DefaultOptions()
	opt.Parallelism = workers
	opt.KeepCuts = true
	var got []string
	stats := runBounded(t, "chaos run", func() enum.Stats {
		return enum.Enumerate(g, opt, func(c enum.Cut) bool {
			got = append(got, c.String())
			return true
		})
	})
	fired := plan.Fired(inj.Site) >= inj.Hit && inj.Hit != 0

	label := func() string {
		return inj.Site.String() + "/" + inj.Action.String()
	}
	if stats.Err == nil {
		// Clean completion is legitimate only if no panic was injected on
		// this schedule (delays never produce errors).
		if inj.Action == faultinject.ActPanic && fired {
			t.Fatalf("%s workers=%d hit=%d: injection fired but no error surfaced", label(), workers, inj.Hit)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("%s workers=%d hit=%d: clean run diverges from serial (%d vs %d cuts)",
				label(), workers, inj.Hit, len(got), len(serial))
		}
		if stats.StopReason != enum.StopNone {
			t.Fatalf("%s workers=%d hit=%d: clean run reports StopReason %v", label(), workers, inj.Hit, stats.StopReason)
		}
		return fired
	}
	var pe *enum.PanicError
	if !errors.As(stats.Err, &pe) {
		t.Fatalf("%s workers=%d hit=%d: Stats.Err = %v, want *PanicError", label(), workers, inj.Hit, stats.Err)
	}
	ip, ok := pe.Value.(faultinject.InjectedPanic)
	if !ok || ip.Site != inj.Site {
		t.Fatalf("%s workers=%d hit=%d: contained %v, want the injected panic", label(), workers, inj.Hit, pe.Value)
	}
	if stats.StopReason != enum.StopError {
		t.Fatalf("%s workers=%d hit=%d: StopReason = %v, want %v", label(), workers, inj.Hit, stats.StopReason, enum.StopError)
	}
	if !isPrefix(got, serial) {
		t.Fatalf("%s workers=%d hit=%d: %d visited cuts are not a serial-order prefix", label(), workers, inj.Hit, len(got))
	}
	return fired
}

// TestChaosPanicMatrix sweeps an injected panic over every site × worker
// count × seed-addressed hit. Hits are derived from the seed with
// HitFromSeed, so different seeds kill different traversals of the same
// site without any global randomness.
func TestChaosPanicMatrix(t *testing.T) {
	type instance struct {
		g      *dfg.Graph
		serial []string
	}
	var instances []instance
	for _, seed := range []int64{2, 3} {
		g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), 60, workload.DefaultProfile())
		sopt := enum.DefaultOptions()
		sopt.Parallelism = 1
		instances = append(instances, instance{g, visitSequence(g, sopt)})
	}

	firedTotal := 0
	for site := faultinject.Site(0); site < faultinject.NumSites; site++ {
		for _, workers := range []int{1, 4, 60} {
			for seed := int64(1); seed <= 3; seed++ {
				inst := instances[int(seed)%len(instances)]
				inj := faultinject.Injection{
					Site:   site,
					Hit:    faultinject.HitFromSeed(seed, site, 200),
					Action: faultinject.ActPanic,
				}
				if chaosRun(t, inst.g, inst.serial, workers, inj) {
					firedTotal++
				}
			}
		}
	}
	// The sweep is only meaningful if a healthy share of injections landed;
	// the steal sites are schedule-dependent, but the admission sites fire
	// thousands of times per run, so the sweep can never go all-vacuous.
	if firedTotal < int(faultinject.NumSites) {
		t.Fatalf("only %d of %d chaos injections fired — the sweep is near-vacuous",
			firedTotal, int(faultinject.NumSites)*3*3)
	}
}

// TestChaosFirstHitEverySite kills the very first traversal of each site
// at every worker count — the earliest, most protocol-fragile moment (a
// first steal handoff, the first merge splice, the first admission).
func TestChaosFirstHitEverySite(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(2)), 70, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	for site := faultinject.Site(0); site < faultinject.NumSites; site++ {
		for _, workers := range []int{1, 4, 70} {
			chaosRun(t, g, serial, workers, faultinject.Injection{
				Site: site, Hit: 1, Action: faultinject.ActPanic,
			})
		}
	}
}

// TestChaosDelayPerturbation injects scheduling delays — every steal
// publish held, every merge splice held — and requires bit-identical
// results: delays reshape the steal schedule, which the determinism
// contract says must be invisible.
func TestChaosDelayPerturbation(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 60, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	for _, site := range []faultinject.Site{faultinject.SiteStealPublish, faultinject.SiteMergeSplice, faultinject.SiteStealClaim} {
		for _, workers := range []int{4, 60} {
			chaosRun(t, g, serial, workers, faultinject.Injection{
				Site: site, Hit: 0, Action: faultinject.ActDelay, Delay: 50 * time.Microsecond,
			})
		}
	}
}

// TestChaosForcedFallback forces every delta kernel (cut growth/shrink,
// validator mirror resync) onto its from-scratch fallback path and
// requires bit-identical results at every worker count: the fallbacks are
// the semantic ground truth the delta paths must match, and under
// concurrency this pins delta-vs-fallback identity end to end.
func TestChaosForcedFallback(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(4)), 60, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)

	faultinject.ForceFallback = func() bool { return true }
	defer faultinject.Uninstall()
	for _, workers := range []int{1, 4, 60} {
		opt := enum.DefaultOptions()
		opt.Parallelism = workers
		got := visitSequence(g, opt)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: forced-fallback run diverges (%d vs %d cuts)", workers, len(got), len(serial))
		}
	}
}
