package enum

// Budget-feasibility pruning (PruneInfeasibleBudget). After choosing a set
// of seeds for the current output o, any dominator completion adds one
// input per surviving vertex-disjoint source→o path (Menger's theorem: a
// separator is at least as large as the maximum set of vertex-disjoint
// paths). Moreover, a completion that produces a *new* cut may not place an
// input on any vertex that lies on every path from an existing seed to o:
// blocking such a mandatory vertex leaves the seed without a private path,
// making it redundant — the identical cut is generated on the branch that
// never chose the seed. Mandatory vertices therefore get infinite capacity.
//
// If the resulting max-flow exceeds the remaining input budget, the entire
// seed-extension subtree is fruitless and is cut. This is the piece that
// keeps the figure 4 tree family tractable for the exact enumeration: a
// seed deep inside a subtree pins its whole root-ward spine as mandatory,
// and covering the remaining branches around that spine overflows any small
// Nin.

import (
	"math/bits"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// flowScratch holds the reusable state of the unit-vertex-capacity max-flow
// over the split graph (vertex v becomes v_in=2v, v_out=2v+1; the virtual
// source is node 2n, o_in is the sink).
type flowScratch struct {
	uncut   *bitset.Set // vertices with infinite capacity
	mandBuf *bitset.Set // scratch for mandatory-vertex sweeps
	fwd     *bitset.Set // scratch: reachable-from-seed region
	// Edmonds–Karp state over split nodes.
	adjHead []int32 // per split node, first edge index, -1 none
	adjNext []int32 // per edge, next edge index
	adjTo   []int32 // per edge, target split node
	adjCap  []int32 // per edge, residual capacity
	queue   []int32
	parent  []int32 // BFS tree: incoming edge index per split node
}

func (e *incEnum) flow() *flowScratch {
	if e.fs == nil {
		n := e.g.N()
		e.fs = &flowScratch{
			uncut:   bitset.New(n),
			mandBuf: bitset.New(n),
			fwd:     bitset.New(n),
			adjHead: make([]int32, 2*n+1),
			parent:  make([]int32, 2*n+1),
			queue:   make([]int32, 0, 2*n+1),
		}
	}
	return e.fs
}

const infCap = int32(1 << 30)

// mandatoryInto computes into dst the vertices (excluding v and o) lying on
// every v→o path that avoids the other chosen inputs, using the same
// running-max dominator sweep as analyzePaths but rooted at v. If no such
// path survives, dst is left empty (the caller's dead-seed check handles
// that).
func (e *incEnum) mandatoryInto(dst *bitset.Set, v, o int, back *bitset.Set) {
	dst.Clear()
	g := e.g
	fs := e.flow()
	// Region: reachable from v avoiding I, intersected with back (reaches o
	// avoiding I). back already excludes every chosen input, so it is the
	// closure's allowed set as-is; v seeds the closure unconditionally.
	fwd := fs.fwd
	fwd.Clear()
	fwd.Add(v)
	e.tr.ForwardClosure(fwd, back)
	if !fwd.Has(o) {
		return
	}
	// Running-max sweep with v as the only source: x lies on every v→o
	// region path iff no region vertex before it has a region successor
	// past it. Identity topological order (id ≡ position) makes the walk
	// one ascending pass over the region words, with each vertex's highest
	// region successor a highest-set-bit scan of its masked row; v is the
	// region's minimum and o its maximum, so they bracket the walk.
	fw := fwd.Words()
	runMax := -1
	for wi, w := range fw {
		for w != 0 {
			x := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if x == o {
				return
			}
			if x != v && runMax <= x {
				dst.Add(x)
			}
			if g.MaxSucc(x) > runMax {
				if p := dfg.HighestMaskedBit(g.SuccRow(x), fw); p > runMax {
					runMax = p
				}
			}
		}
	}
}

// flowBoundCanExceed reports whether completionFlowBound could possibly
// exceed flowCap, using two structural caps on the max-flow that cost one
// word-parallel pass each instead of building the residual graph. Every
// unit of flow passes the unit-capacity split edge of a distinct on-path
// entry (all augmenting paths start source→entry) and of a distinct
// on-path predecessor of o (they end pred→o), so the flow is bounded by
// either population count — unless a counted vertex is mandatory
// (infinite capacity), which voids that cap. When a valid cap already
// fits flowCap the expensive bound cannot fire and the caller skips it;
// the outcome, and therefore the search and its statistics, are identical
// either way.
func (e *incEnum) flowBoundCanExceed(o int, onPath *bitset.Set, flowCap int) bool {
	g := e.g
	fs := e.flow()
	ow := onPath.Words()
	uw := fs.uncut.Words()

	cnt, capped := 0, true
	for i, r := range g.PredRow(o) {
		m := r & ow[i]
		if m&uw[i] != 0 {
			capped = false
			break
		}
		cnt += bits.OnesCount64(m)
	}
	if capped && cnt <= flowCap {
		return false
	}
	cnt, capped = 0, true
	for i, r := range g.EntrySet().Words() {
		m := r & ow[i]
		if m&uw[i] != 0 {
			capped = false
			break
		}
		cnt += bits.OnesCount64(m)
	}
	return !capped || cnt > flowCap
}

// completionFlowBound returns the minimum number of additional inputs any
// dominator completion of o needs, given the current inputs and the
// surviving-path region onPath: the max-flow from the virtual source to o
// with unit capacity on ordinary vertices and infinite capacity on the
// accumulated mandatory vertices (e.fs.uncut). flowCap bounds the search —
// the returned value saturates at flowCap+1.
func (e *incEnum) completionFlowBound(o int, onPath *bitset.Set, flowCap int) int {
	g := e.g
	fs := e.flow()
	n := g.N()
	src := int32(2 * n)
	sink := int32(2*o) + 0 // o_in: paths must *reach* o; o itself is not cut

	// Build the residual graph over the on-path region.
	for i := range fs.adjHead {
		fs.adjHead[i] = -1
	}
	fs.adjNext = fs.adjNext[:0]
	fs.adjTo = fs.adjTo[:0]
	fs.adjCap = fs.adjCap[:0]
	addEdge := func(a, b, cap int32) {
		fs.adjTo = append(fs.adjTo, b)
		fs.adjCap = append(fs.adjCap, cap)
		fs.adjNext = append(fs.adjNext, fs.adjHead[a])
		fs.adjHead[a] = int32(len(fs.adjTo) - 1)
		// reverse edge
		fs.adjTo = append(fs.adjTo, a)
		fs.adjCap = append(fs.adjCap, 0)
		fs.adjNext = append(fs.adjNext, fs.adjHead[b])
		fs.adjHead[b] = int32(len(fs.adjTo) - 1)
	}
	ow := onPath.Words()
	ew := g.EntrySet().Words()
	onPath.ForEach(func(v int) bool {
		vin, vout := int32(2*v), int32(2*v+1)
		cap := int32(1)
		if fs.uncut.Has(v) {
			cap = infCap
		}
		if v != o {
			addEdge(vin, vout, cap)
			// On-path successors via one masked pass over v's adjacency
			// row instead of a membership test per successor edge.
			for wi, r := range g.SuccRow(v) {
				m := r & ow[wi]
				for m != 0 {
					s := wi<<6 + bits.TrailingZeros64(m)
					m &= m - 1
					addEdge(vout, int32(2*s), infCap)
				}
			}
		}
		if ew[v>>6]&(1<<uint(v&63)) != 0 { // root or user-forbidden: source-fed
			addEdge(src, vin, infCap)
		}
		return true
	})

	// Edmonds–Karp, stopping once the flow exceeds flowCap.
	flow := 0
	for flow <= flowCap {
		// BFS for an augmenting path.
		for i := range fs.parent {
			fs.parent[i] = -1
		}
		fs.queue = fs.queue[:0]
		fs.queue = append(fs.queue, src)
		fs.parent[src] = -2
		found := false
		for qi := 0; qi < len(fs.queue) && !found; qi++ {
			x := fs.queue[qi]
			for ei := fs.adjHead[x]; ei >= 0; ei = fs.adjNext[ei] {
				if fs.adjCap[ei] <= 0 {
					continue
				}
				y := fs.adjTo[ei]
				if fs.parent[y] != -1 {
					continue
				}
				fs.parent[y] = ei
				if y == sink {
					found = true
					break
				}
				fs.queue = append(fs.queue, y)
			}
		}
		if !found {
			break
		}
		// Augment by 1 (all paths carry unit flow through some unit vertex;
		// pure-infinite paths mean the bound is unbounded — treat as 1 and
		// keep going until the cap saturates).
		for y := sink; fs.parent[y] != -2; {
			ei := fs.parent[y]
			fs.adjCap[ei]--
			fs.adjCap[ei^1]++
			y = fs.adjTo[int32(ei)^1]
		}
		flow++
	}
	return flow
}
