package enum

import (
	"slices"
	"sync/atomic"
	"time"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
	"polyise/internal/parallel"
)

// Enumerate is POLY-ENUM-INCR of figure 3: it chooses outputs and inputs
// recursively, maintaining the cut S = (O ∪ ⋃_j B(I, o_j)) \ I of theorem 3
// incrementally, and prunes the search with the techniques of §5.3. Input
// selection follows Dubrova et al.: the chosen inputs act as the seed set,
// and one Lengauer–Tarjan run on the graph minus the seeds yields every
// vertex that completes a multiple-vertex dominator of the current output.
//
// One deliberate deviation from the paper: choosing a new input w may
// *remove* vertices from S (w itself, and vertices that only lay on paths
// through w), because theorem 3 subtracts the final input set. The paper
// claims S only ever grows, but that discipline loses cuts whose inputs lie
// inside an earlier B(I, o) — see the {d,g} example in the tests — so S is
// rebuilt exactly after every input push and snapshotted per recursion
// level.
//
// Every candidate S with at most Nout outputs (internal outputs included,
// per the output–output pruning) is validated against the full §3 problem
// statement and deduplicated, so the visitor sees each valid cut exactly
// once. The visitor may return false to stop early.
//
// Options.Parallelism selects between the serial algorithm (1, the paper's
// configuration) and the sharded parallel one (0 = one shard worker per
// GOMAXPROCS, n = n workers). Both visit the same cuts in the same order;
// the package comment of parallel.go states the guarantees and the small
// differences in the returned Stats.
func Enumerate(g *dfg.Graph, opt Options, visit func(Cut) bool) Stats {
	if w := parallel.Workers(opt.Parallelism); w > 1 && g.N() > 1 {
		return enumerateParallel(g, opt, visit, w)
	}
	sh := newEnumShared(g, opt)
	e := sh.newWorker(visit, nil)
	for pos := range g.Topo() {
		if e.stopped {
			break
		}
		e.topLevel(pos)
	}
	return e.stats
}

// enumShared is the per-graph setup every shard of one enumeration shares.
// Everything in it is immutable after newEnumShared returns, so shards can
// read it concurrently without synchronization.
type enumShared struct {
	g       *dfg.Graph
	opt     Options
	pdt     *domtree.Tree
	entries []int // roots ∪ user-forbidden: virtual-source successors
	byDepth []int // vertices in reverse topological order
}

func newEnumShared(g *dfg.Graph, opt Options) *enumShared {
	sh := &enumShared{g: g, opt: opt}
	pds := domtree.ReverseSolver(g)
	pds.Run(nil)
	sh.pdt = pds.BuildTree()

	// Entry points of the augmented graph: the virtual source precedes
	// every root and every forbidden vertex (§3).
	for v := 0; v < g.N(); v++ {
		if g.IsRoot(v) || g.IsUserForbidden(v) {
			sh.entries = append(sh.entries, v)
		}
	}

	// Seed candidates are iterated deepest-first (reverse topological
	// order), matching the paper's intent that the most immediate dominator
	// seeds are met before their ancestors.
	sh.byDepth = make([]int, g.N())
	copy(sh.byDepth, g.Topo())
	for i, j := 0, len(sh.byDepth)-1; i < j; i, j = i+1, j-1 {
		sh.byDepth[i], sh.byDepth[j] = sh.byDepth[j], sh.byDepth[i]
	}
	return sh
}

// newWorker allocates one enumeration worker with private mutable state (the
// clone-per-shard ownership the parallel enumeration relies on): validator,
// dedup map, every bitset scratch buffer and the flow solver are owned
// exclusively by the returned worker. ext, when non-nil, is an external stop
// flag polled during the search (used to cancel sibling shards after an
// early visitor stop).
func (sh *enumShared) newWorker(visit func(Cut) bool, ext *atomic.Bool) *incEnum {
	n := sh.g.N()
	return &incEnum{
		g:       sh.g,
		opt:     sh.opt,
		visit:   visit,
		pdt:     sh.pdt,
		entries: sh.entries,
		byDepth: sh.byDepth,
		ext:     ext,
		val:     NewValidator(sh.g, sh.opt),
		seen:    make(map[[2]uint64]bool),
		S:       bitset.New(n),
		Iuser:   bitset.New(n),
		outSet:  bitset.New(n),
		scratch: bitset.New(n),
		outTest: bitset.New(n),
		front:   bitset.New(n),
		diff:    make([]int32, n+1),
	}
}

type incEnum struct {
	g     *dfg.Graph
	opt   Options
	visit func(Cut) bool
	pdt   *domtree.Tree
	val   *Validator
	stats Stats
	seen  map[[2]uint64]bool
	ext   *atomic.Bool // external stop flag; nil in serial runs

	S      *bitset.Set // current cut (user capacity)
	Iuser  *bitset.Set // chosen inputs
	Ilist  []int
	outs   []int
	outSet *bitset.Set

	byDepth   []int               // vertices in reverse topological order
	entries   []int               // roots ∪ user-forbidden: virtual-source successors
	badInputs map[int]*bitset.Set // per-output forbidden-ancestor exclusions

	snaps        []*bitset.Set // per-depth S snapshots
	paths        []*bitset.Set // per-depth on-path sets
	backs        []*bitset.Set // per-depth reaches-o sets
	scratch      *bitset.Set
	outTest      *bitset.Set
	front        *bitset.Set // scratch: reachable from source avoiding I
	diff         []int32     // scratch: crossing-count difference array
	touched      []int32     // positions of diff to clear
	bfsStack     []int
	fs           *flowScratch
	stopped      bool
	deadlineTick uint32
}

// snap returns the snapshot buffer for recursion depth d.
func (e *incEnum) snap(d int) *bitset.Set {
	for len(e.snaps) <= d {
		e.snaps = append(e.snaps, bitset.New(e.g.N()))
	}
	return e.snaps[d]
}

// pathBuf returns the on-path buffer for recursion depth d.
func (e *incEnum) pathBuf(d int) *bitset.Set {
	for len(e.paths) <= d {
		e.paths = append(e.paths, bitset.New(e.g.N()))
	}
	return e.paths[d]
}

// backBuf returns the reaches-o buffer for recursion depth d.
func (e *incEnum) backBuf(d int) *bitset.Set {
	for len(e.backs) <= d {
		e.backs = append(e.backs, bitset.New(e.g.N()))
	}
	return e.backs[d]
}

// analyzePaths analyses the reduced graph (the augmented graph minus the
// chosen inputs) with respect to output o. It computes into back the set of
// vertices that reach o avoiding the inputs, into onPath the set of
// vertices lying on some source→o path avoiding the inputs, appends to
// chain every vertex that dominates o in the reduced graph, and reports
// whether o is reachable at all.
//
// pBack and pOnPath are the corresponding sets of the parent recursion
// level (nil at the top): blocking one more input only ever shrinks them,
// and every surviving source→o path lies inside the parent's onPath, so
// both traversals can be confined to the parent sets. This makes deep seed
// exploration cost proportional to the surviving path region rather than to
// the whole ancestor cone.
//
// Dominators are found without running Lengauer–Tarjan: restricted to the
// vertices on surviving paths, a vertex dominates o exactly when no
// surviving edge "jumps over" its topological position, which one
// difference-array sweep detects (every path must cross every topological
// rank between source and o, and can do so silently only through an edge).
func (e *incEnum) analyzePaths(o int, back, onPath, pBack, pOnPath *bitset.Set, chain []int) (bool, []int) {
	g := e.g
	cone := g.ReachTo(o)

	// Backward reachability from o, avoiding I. Computed first because the
	// caller's dead-seed test needs it even when o turns out separated.
	back.Clear()
	back.Add(o)
	stack := append(e.bfsStack[:0], o)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds(v) {
			if back.Has(p) || e.Iuser.Has(p) || (pBack != nil && !pBack.Has(p)) {
				continue
			}
			back.Add(p)
			stack = append(stack, p)
		}
	}

	// Forward reachability from the virtual source, avoiding I, restricted
	// to o's ancestor cone (or the parent's surviving-path set, which every
	// source→o path stays inside).
	inScope := func(v int) bool {
		if pOnPath != nil {
			return v == o || pOnPath.Has(v)
		}
		return v == o || cone.Has(v)
	}
	front := e.front
	front.Clear()
	stack = stack[:0]
	for _, r := range e.entries {
		if inScope(r) && !e.Iuser.Has(r) {
			front.Add(r)
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(v) {
			if front.Has(s) || e.Iuser.Has(s) || !inScope(s) {
				continue
			}
			front.Add(s)
			stack = append(stack, s)
		}
	}
	e.bfsStack = stack
	if !front.Has(o) {
		return false, chain
	}

	onPath.Copy(front)
	onPath.Intersect(back)

	// Crossing-count sweep: every edge (a, b) between on-path vertices
	// contributes +1 on positions strictly between its endpoints; virtual
	// source edges to on-path entries contribute from position 0. A vertex
	// on a surviving path dominates o iff its crossing count is zero. The
	// sweep visits only positions where the count changes or an on-path
	// vertex sits, so its cost follows the surviving-path region, not the
	// whole topological span.
	e.touched = e.touched[:0]
	oPos := int32(g.TopoPos(o))
	mark := func(p, d int32) {
		if e.diff[p] == 0 {
			e.touched = append(e.touched, p)
		}
		e.diff[p] += d
	}
	onPath.ForEach(func(v int) bool {
		pv := int32(g.TopoPos(v))
		if v != o {
			e.touched = append(e.touched, pv) // candidate position
		}
		if g.IsRoot(v) || g.IsUserForbidden(v) {
			mark(0, 1)
			mark(pv, -1)
		}
		for _, s := range g.Succs(v) {
			if onPath.Has(s) {
				mark(pv+1, 1)
				mark(int32(g.TopoPos(s)), -1)
			}
		}
		return true
	})
	slices.Sort(e.touched)
	sum := int32(0)
	topo := g.Topo()
	prev := int32(-1)
	for _, p := range e.touched {
		if p >= oPos {
			break
		}
		if p != prev {
			sum += e.diff[p]
			prev = p
			v := topo[p]
			if sum == 0 && onPath.Has(v) {
				chain = append(chain, v)
			}
		}
	}
	for _, p := range e.touched {
		e.diff[p] = 0
	}
	return true, chain
}

// rebuildS recomputes the exact cut identified by the chosen outputs and
// inputs: every vertex that reaches a chosen output along a path avoiding
// the chosen inputs (theorems 2 and 3).
func (e *incEnum) rebuildS() {
	e.g.CutNodesInto(e.S, e.outs, e.Iuser)
}

// viable applies the §5.3 "pruning while building S" test, adapted to the
// exact (non-monotone) maintenance of S: vertices leave S only when a new
// input joins I, either because the vertex itself becomes the input or
// because the input severs its last avoiding path. So with no input budget
// left, a forbidden vertex (or implicitly forbidden root) inside S, or more
// permanent outputs than Nout, is fatal; with budget remaining it merely
// obligates at least one more input. (Stronger counting — one forced input
// per offending vertex — would be unsound: a single well-placed input can
// evict several vertices from S at once.)
func (e *incEnum) viable(ninLeft int) bool {
	if !e.opt.PruneWhileBuildingS {
		return true
	}
	offending := e.S.Intersects(e.g.ForbiddenSet()) || e.S.Intersects(e.g.RootSet())
	if !offending {
		perm := 0
		e.S.ForEach(func(v int) bool {
			if e.permanentOutput(v) {
				perm++
				if perm > e.opt.MaxOutputs {
					offending = true
					return false
				}
			}
			return true
		})
	}
	return !offending || ninLeft > 0
}

// permanentOutput reports whether v can never stop being an output once in
// S: members of Oext always feed the virtual sink, and successors that are
// forbidden can never join the cut.
func (e *incEnum) permanentOutput(v int) bool {
	if e.g.IsLiveOut(v) {
		return true
	}
	for _, s := range e.g.Succs(v) {
		if e.g.IsForbidden(s) {
			return true
		}
	}
	return false
}

// topLevel explores the complete search subtree rooted at the depth-0
// output candidate sitting at topological position pos, leaving the worker
// state as it found it (empty). The serial algorithm calls it for every
// position in order; the sharded parallel one hands positions to workers,
// because distinct first-output subtrees never share search state — only
// the cut deduplication couples them, and that moves into the merge stage.
func (e *incEnum) topLevel(pos int) {
	if e.stopped || e.opt.MaxOutputs <= 0 {
		return
	}
	o := e.g.Topo()[pos]
	if !e.admissibleOutput(o) {
		return
	}
	e.stats.OutputsTried++
	e.outs = append(e.outs, o)
	e.outSet.Add(o)
	e.rebuildS()
	if e.viable(e.opt.MaxInputs) {
		e.pickInputs(1, pos, o, e.opt.MaxInputs, e.opt.MaxOutputs-1, 0, len(e.Ilist), nil, nil)
	}
	e.outSet.Remove(o)
	e.outs = e.outs[:len(e.outs)-1]
	e.S.Clear()
}

// pickOutput implements PICK-OUTPUT: choose the next output o, grow S by
// {o} ∪ B(I, o), then hand over to input selection (which also covers the
// "I already dominates o" branch of figure 3).
//
// lastTopo carries the topological position of the previously chosen output
// when the output–output pruning is on: an ancestor has a smaller position,
// so requiring strictly increasing positions makes the "skip ancestors of
// selected outputs" rule free and canonicalizes the choice order.
func (e *incEnum) pickOutput(depth, lastTopo, ninLeft, noutLeft int) {
	if e.stopped || noutLeft <= 0 {
		return
	}
	topo := e.g.Topo()
	start := 0
	if e.opt.PruneOutputOutput {
		start = lastTopo + 1
	}
	saved := e.snap(depth)
	saved.Copy(e.S)
	for pos := start; pos < len(topo); pos++ {
		if e.stopped {
			return
		}
		o := topo[pos]
		if !e.admissibleOutput(o) {
			continue
		}
		// In connected-only mode every output after the first must be
		// reachable from a chosen input (§5.3). The paper's companion rule —
		// when internal outputs exceed Nout, only connected outputs need be
		// tried — relies on S growing monotonically and is unsound under
		// the exact cut maintenance used here (a later input can evict an
		// internal output), so it is deliberately not applied.
		if e.opt.ConnectedOnly && len(e.outs) > 0 && !e.reachableFromInput(o) {
			continue
		}
		e.stats.OutputsTried++
		e.outs = append(e.outs, o)
		e.outSet.Add(o)
		e.rebuildS()
		if e.viable(ninLeft) {
			e.pickInputs(depth+1, pos, o, ninLeft, noutLeft-1, 0, len(e.Ilist), nil, nil)
		}
		e.outSet.Remove(o)
		e.outs = e.outs[:len(e.outs)-1]
		e.S.Copy(saved)
	}
}

// admissibleOutput filters output candidates: not forbidden, not a root,
// not already in the cut or chosen, and not related by ancestry or
// postdominance to a chosen output.
func (e *incEnum) admissibleOutput(o int) bool {
	if e.g.IsForbidden(o) || e.S.Has(o) || e.outSet.Has(o) || e.Iuser.Has(o) {
		return false
	}
	for _, prev := range e.outs {
		// Ancestors of chosen outputs end up inside the cut, so they never
		// need to be chosen (§5.3, output–output pruning). The topological
		// ordering already guarantees this when the pruning is on; check
		// explicitly for the unpruned configuration.
		if e.g.Reaches(o, prev) {
			return false
		}
		if e.pdt.Dominates(prev, o) || e.pdt.Dominates(o, prev) {
			return false
		}
	}
	return true
}

// reachableFromInput reports whether some chosen input reaches o.
func (e *incEnum) reachableFromInput(o int) bool {
	for _, i := range e.Ilist {
		if e.g.Reaches(i, o) {
			return true
		}
	}
	return false
}

// pickInputs implements PICK-INPUTS for output o: one reduced-graph
// analysis either shows the chosen inputs already dominate o (condition 1)
// — then the cut is checked — or yields every vertex w completing a
// multiple-vertex dominator of o. Afterwards, if budget remains, the seed
// set is extended with further ancestors of o.
//
// Seed candidates are restricted to vertices on a surviving source→o path:
// blocking anything else leaves every path (and therefore every reduced
// dominator found below) unchanged, so such seeds can only reproduce cuts
// that the unextended seed set already generates.
//
// It reports whether any dominator completion (or full domination) was
// found in this subtree, which drives the dominator–input pruning.
//
// phaseStart indexes the first entry of Ilist chosen during the current
// output's phase: those seeds justify their membership through o, so each
// must keep a surviving path to o (the paper's "quick dismissal" of seed
// sets violating definition 5's condition 2). A branch whose seed went dead
// reproduces only cuts that the branch without that seed generates.
func (e *incEnum) pickInputs(depth, oTopo, o, ninLeft, noutLeft, seedStart, phaseStart int, pBack, pOnPath *bitset.Set) bool {
	e.checkDeadline()
	if e.stopped {
		return false
	}
	e.stats.LTRuns++
	onPath := e.pathBuf(depth)
	back := e.backBuf(depth)
	reachable, chain := e.analyzePaths(o, back, onPath, pBack, pOnPath, nil)
	for _, v := range e.Ilist[phaseStart:] {
		alive := false
		for _, s := range e.g.Succs(v) {
			if s == o || back.Has(s) {
				alive = true
				break
			}
		}
		if !alive {
			e.stats.SeedsPruned++
			return false
		}
	}
	if !reachable {
		// I dominates o already (the PICK-OUTPUT "if I dominates o" branch;
		// with seed recursion this also catches seed sets that complete the
		// domination by themselves).
		e.checkCut(depth, oTopo, ninLeft, noutLeft)
		return true
	}
	if ninLeft <= 0 {
		return false
	}

	found := false
	saved := e.snap(depth)
	saved.Copy(e.S)

	// Completion step: every reduced-graph dominator of o extends I to a
	// multiple-vertex dominator of o.
	for _, u := range chain {
		if e.stopped {
			return found
		}
		if e.outSet.Has(u) {
			continue // a chosen output cannot double as an input
		}
		if e.pruneInput(u, o) {
			continue
		}
		found = true
		e.pushInput(u)
		e.rebuildS()
		if e.viable(ninLeft - 1) {
			e.checkCut(depth+1, oTopo, ninLeft-1, noutLeft)
		}
		e.popInput(u)
		e.S.Copy(saved)
	}

	// Seed extension step: push another on-path ancestor of o and recurse.
	if ninLeft > 1 {
		// The budget-feasibility bound costs a few traversals, so it only
		// runs where extension is actually expensive: at least one seed
		// already chosen (the explosion lives in deep seed levels) and a
		// surviving-path region big enough that iterating it blindly would
		// cost more than the bound.
		if e.opt.PruneInfeasibleBudget && len(e.Ilist) > phaseStart &&
			onPath.Count() > 64 {
			// Load the mandatory vertices of the current phase's seeds and
			// bound the inputs any completion still needs (see flow.go).
			fs := e.flow()
			fs.uncut.Clear()
			for _, v := range e.Ilist[phaseStart:] {
				e.mandatoryInto(fs.mandBuf, v, o, back)
				fs.uncut.Union(fs.mandBuf)
			}
			if e.completionFlowBound(o, onPath, ninLeft) > ninLeft {
				e.stats.SeedsPruned++
				return found
			}
		}
		lastValid := -1
		for idx := seedStart; idx < len(e.byDepth); idx++ {
			if e.stopped {
				return found
			}
			i := e.byDepth[idx]
			if i == o || !onPath.Has(i) || e.outSet.Has(i) {
				continue
			}
			if e.opt.PruneDominatorInput && lastValid >= 0 {
				if e.g.IsForbidden(lastValid) {
					// A forbidden seed cannot be replaced: stop extending
					// this slot (§5.3, dominator–input pruning).
					break
				}
				if !e.g.Reaches(i, lastValid) {
					e.stats.SeedsPruned++
					continue // replacements come from the seed's ancestors
				}
			}
			if e.pruneSeed(i, o) {
				continue
			}
			e.pushInput(i)
			e.rebuildS()
			sub := false
			if e.viable(ninLeft - 1) {
				sub = e.pickInputs(depth+1, oTopo, o, ninLeft-1, noutLeft, idx+1, phaseStart, back, onPath)
			}
			e.popInput(i)
			e.S.Copy(saved)
			if sub {
				found = true
				lastValid = i
			}
		}
	}
	return found
}

// pruneInput applies the §5.3 output–input prunings to a completion
// candidate u for output o.
func (e *incEnum) pruneInput(u, o int) bool {
	if !e.opt.PruneOutputInput {
		return false
	}
	// An input's private path to the output lies inside the cut after the
	// input, so a forbidden-free u→o path must exist.
	if !e.g.ReachesForbiddenFree(u, o) {
		e.stats.SeedsPruned++
		return true
	}
	if e.forcedInputsWith(u, o) > e.opt.MaxInputs {
		e.stats.SeedsPruned++
		return true
	}
	if e.opt.PruneForbiddenAncestors && e.badInputsFor(o).Has(u) {
		e.stats.SeedsPruned++
		return true
	}
	return false
}

// badInputsFor memoizes, per output, the paper's forbidden-ancestor input
// exclusion (§5.3, approximate): the ancestors of every forbidden ancestor
// of o. Used only when Options.PruneForbiddenAncestors is set.
func (e *incEnum) badInputsFor(o int) *bitset.Set {
	if s, ok := e.badInputs[o]; ok {
		return s
	}
	bad := bitset.New(e.g.N())
	e.g.ReachTo(o).ForEach(func(f int) bool {
		if e.g.IsUserForbidden(f) {
			bad.Union(e.g.ReachTo(f))
		}
		return true
	})
	if e.badInputs == nil {
		e.badInputs = make(map[int]*bitset.Set)
	}
	e.badInputs[o] = bad
	return bad
}

// forcedInputsWith lower-bounds |I(S)| for any cut that has v among its
// inputs and o among its outputs: every forbidden direct predecessor of o
// must be an input (it can neither join the cut nor be severed from o).
func (e *incEnum) forcedInputsWith(v, o int) int {
	fp := e.g.ForbiddenPreds(o)
	n := fp.Count()
	if !fp.Has(v) {
		n++
	}
	return n
}

// pruneSeed applies the §5.3 input–input and output–input prunings to a
// seed candidate i for output o.
func (e *incEnum) pruneSeed(i, o int) bool {
	if e.opt.PruneInputInput {
		// Two inputs related by postdominance can never coexist in a valid
		// cut under the technical condition (§5.3, input–input pruning).
		for _, v := range e.Ilist {
			if e.pdt.Dominates(i, v) || e.pdt.Dominates(v, i) {
				e.stats.SeedsPruned++
				return true
			}
		}
	}
	if e.opt.PruneOutputInput {
		if !e.g.ReachesForbiddenFree(i, o) {
			e.stats.SeedsPruned++
			return true
		}
		if e.forcedInputsWith(i, o) > e.opt.MaxInputs {
			e.stats.SeedsPruned++
			return true
		}
	}
	if e.opt.PruneForbiddenAncestors && e.badInputsFor(o).Has(i) {
		e.stats.SeedsPruned++
		return true
	}
	return false
}

func (e *incEnum) pushInput(w int) {
	e.Iuser.Add(w)
	e.Ilist = append(e.Ilist, w)
}

func (e *incEnum) popInput(w int) {
	e.Iuser.Remove(w)
	e.Ilist = e.Ilist[:len(e.Ilist)-1]
}

// checkDeadline aborts the search when the external stop flag is raised or
// Options.Deadline has passed. The flag is an atomic load, checked on every
// call; the wall clock is sampled only every few thousand checks to keep
// its cost negligible.
func (e *incEnum) checkDeadline() {
	if e.ext != nil && e.ext.Load() {
		e.stopped = true
		return
	}
	if e.opt.Deadline.IsZero() {
		return
	}
	e.deadlineTick++
	if e.deadlineTick&0x0fff != 0 {
		return
	}
	if time.Now().After(e.opt.Deadline) {
		e.stats.TimedOut = true
		e.stopped = true
	}
}

// checkCut implements CHECK-CUT: accept the current S when its real outputs
// (internal ones included, per the output–output pruning) fit the budget,
// then recurse into further output choices.
func (e *incEnum) checkCut(depth, oTopo, ninLeft, noutLeft int) {
	e.checkDeadline()
	if e.stopped {
		return
	}
	e.stats.Candidates++
	e.g.OutputsInto(e.outTest, e.S)
	realOuts := e.outTest.Count()
	if realOuts <= e.opt.MaxOutputs && !e.S.Empty() && !e.S.Intersects(e.g.ForbiddenSet()) {
		sig := e.S.Hash128()
		if e.seen[sig] {
			e.stats.Duplicates++
		} else {
			e.seen[sig] = true
			var cut Cut
			if e.val.Validate(e.S, &cut) {
				e.stats.Valid++
				if e.opt.KeepCuts {
					cut.Nodes = cut.Nodes.Clone()
				}
				if !e.visit(cut) {
					e.stopped = true
					return
				}
			} else {
				e.stats.Invalid++
			}
		}
	}
	if noutLeft > 0 {
		e.pickOutput(depth+1, oTopo, ninLeft, noutLeft)
	}
}

// CollectAll is a convenience wrapper running Enumerate and returning all
// valid cuts sorted deterministically.
func CollectAll(g *dfg.Graph, opt Options) ([]Cut, Stats) {
	opt.KeepCuts = true
	return Collect(func(visit func(Cut) bool) Stats {
		return Enumerate(g, opt, visit)
	})
}

// CollectBasic runs EnumerateBasic and returns all valid cuts sorted
// deterministically.
func CollectBasic(g *dfg.Graph, opt Options) ([]Cut, Stats) {
	opt.KeepCuts = true
	return Collect(func(visit func(Cut) bool) Stats {
		return EnumerateBasic(g, opt, visit)
	})
}
