package enum

import (
	"context"
	"math/bits"
	"runtime/debug"
	"sync/atomic"
	"time"

	"polyise/internal/bitset"
	"polyise/internal/checkpoint"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
	"polyise/internal/faultinject"
	"polyise/internal/parallel"
)

// Enumerate is POLY-ENUM-INCR of figure 3: it chooses outputs and inputs
// recursively, maintaining the cut S = (O ∪ ⋃_j B(I, o_j)) \ I of theorem 3
// incrementally, and prunes the search with the techniques of §5.3. Input
// selection follows Dubrova et al.: the chosen inputs act as the seed set,
// and one Lengauer–Tarjan run on the graph minus the seeds yields every
// vertex that completes a multiple-vertex dominator of the current output.
//
// One deliberate deviation from the paper: choosing a new input w may
// *remove* vertices from S (w itself, and vertices that only lay on paths
// through w), because theorem 3 subtracts the final input set. The paper
// claims S only ever grows, but that discipline loses cuts whose inputs lie
// inside an earlier B(I, o) — see the {d,g} example in the tests — so S is
// maintained exactly across every push. Exact maintenance no longer means
// from-scratch recomputation: each output or input push applies a journaled
// delta to S (dfg.Traverser.GrowCut / ShrinkCut) whose cost follows the
// region the push actually changes, and each pop replays the journal
// backward — see the "incremental search-state engine" note in the package
// comment. rebuildS, the from-scratch recomputation, remains the reference
// the property tests pin the deltas to and the fallback for non-monotone
// input pushes that invalidate most of S.
//
// Every candidate S with at most Nout outputs (internal outputs included,
// per the output–output pruning) is validated against the full §3 problem
// statement and deduplicated, so the visitor sees each valid cut exactly
// once. The visitor may return false to stop early.
//
// Options.Parallelism selects between the serial algorithm (1, the paper's
// configuration) and the sharded parallel one (0 = one shard worker per
// GOMAXPROCS, n = n workers). Both visit the same cuts in the same order;
// the package comment of parallel.go states the guarantees and the small
// differences in the returned Stats.
func Enumerate(g *dfg.Graph, opt Options, visit func(Cut) bool) Stats {
	if w := parallel.Workers(opt.Parallelism); w > 1 && g.N() > 1 {
		return enumerateParallel(g, opt, visit, w, nil)
	}
	return enumerateSerial(g, opt, visit, nil)
}

// enumerateSerial is the serial run loop, shared by Enumerate and
// ResumeEnumerate: rs, when non-nil, seeds the worker from a snapshot and
// restarts the top-level loop at the snapshot's frontier position.
func enumerateSerial(g *dfg.Graph, opt Options, visit func(Cut) bool, rs *resumeState) Stats {
	sh := newEnumShared(g, opt)
	e := sh.newWorker(visit, nil)
	if opt.CheckpointPath != "" {
		e.ck = newCkptWriter(g, opt)
	}
	start := 0
	if rs != nil {
		start = rs.startTop
		e.installResume(rs)
	}
	func() {
		// Failure semantics (serial): a panic anywhere in the search — the
		// visitor included — is contained here, converted to Stats.Err with
		// the captured stack, and reported as StopReason = StopError. The
		// cuts already visited are a coherent prefix of the enumeration
		// order; the worker state is abandoned, so containment needs no
		// repair beyond stopping (and, when checkpointing, writing the
		// final snapshot from the stop-time capture below).
		defer e.recoverPanic()
		for pos := start; pos < g.N(); pos++ {
			if e.stopped {
				break
			}
			e.topLevel(pos)
			// Saved fast-forward frames only address the replayed first
			// subtree; past it the resumed run is in novel territory.
			e.ffwd = nil
		}
	}()
	if e.ck != nil {
		e.writeFinal()
	}
	return e.stats
}

// EnumerateContext runs Enumerate with ctx installed as Options.Context and
// converts the run's stop state into an error: ctx.Err() when the context
// canceled the run, Stats.Err when a contained panic or protocol stall
// failed it, nil otherwise (budget, deadline and visitor stops are normal
// outcomes reported through Stats.StopReason, not errors).
func EnumerateContext(ctx context.Context, g *dfg.Graph, opt Options, visit func(Cut) bool) (Stats, error) {
	opt.Context = ctx
	stats := Enumerate(g, opt, visit)
	switch {
	case stats.Err != nil:
		return stats, stats.Err
	case stats.StopReason == StopCanceled:
		return stats, ctx.Err()
	}
	return stats, nil
}

// enumShared is the per-graph setup every shard of one enumeration shares.
// Everything in it is immutable after newEnumShared returns, so shards can
// read it concurrently without synchronization.
type enumShared struct {
	g       *dfg.Graph
	opt     Options
	pdt     *domtree.Tree
	entries []int         // roots ∪ user-forbidden: virtual-source successors
	permOut *bitset.Set   // vertices that can never stop being outputs once in S
	badIn   []*bitset.Set // per-output forbidden-ancestor exclusions (PruneForbiddenAncestors)
}

func newEnumShared(g *dfg.Graph, opt Options) *enumShared {
	sh := &enumShared{g: g, opt: opt}
	pds := domtree.ReverseSolver(g)
	pds.Run(nil)
	sh.pdt = pds.BuildTree()

	// Entry points of the augmented graph: the virtual source precedes
	// every root and every forbidden vertex (§3). Precomputed by Freeze.
	sh.entries = g.Entries()

	// Permanent outputs: members of Oext always feed the virtual sink, and
	// a vertex with a forbidden successor can never have that successor
	// join the cut. Static per graph, so the viability test reduces to one
	// word-parallel intersection count.
	sh.permOut = bitset.New(g.N())
	for v := 0; v < g.N(); v++ {
		if permanentOutput(g, v) {
			sh.permOut.Add(v)
		}
	}

	// The forbidden-ancestor input exclusion (§5.3, approximate) depends
	// only on the graph, so it is precomputed once here — shared read-only
	// by every shard — instead of being rebuilt in each worker's memo. One
	// pass over the topological order suffices: bad(v) accumulates, for
	// every user-forbidden ancestor f of v, the ancestors of f.
	if opt.PruneForbiddenAncestors {
		sh.badIn = make([]*bitset.Set, g.N())
		for _, v := range g.Topo() {
			b := bitset.New(g.N())
			for _, p := range g.Preds(v) {
				b.Union(sh.badIn[p])
				if g.IsUserForbidden(p) {
					b.Union(g.ReachTo(p))
				}
			}
			sh.badIn[v] = b
		}
	}
	return sh
}

// permanentOutput reports whether v can never stop being an output once in
// S: members of Oext always feed the virtual sink, and successors that are
// forbidden can never join the cut.
func permanentOutput(g *dfg.Graph, v int) bool {
	if g.IsLiveOut(v) {
		return true
	}
	for _, s := range g.Succs(v) {
		if g.IsForbidden(s) {
			return true
		}
	}
	return false
}

// newWorker allocates one enumeration worker with private mutable state (the
// clone-per-shard ownership the parallel enumeration relies on): validator,
// dedup map, every bitset scratch buffer and the flow solver are owned
// exclusively by the returned worker. ext, when non-nil, is an external stop
// flag polled during the search (used to cancel sibling shards after an
// early visitor stop).
func (sh *enumShared) newWorker(visit func(Cut) bool, ext *atomic.Bool) *incEnum {
	n := sh.g.N()
	S := bitset.New(n)
	return &incEnum{
		g:       sh.g,
		opt:     sh.opt,
		visit:   visit,
		pdt:     sh.pdt,
		entries: sh.entries,
		permOut: sh.permOut,
		badIn:   sh.badIn,
		ext:     ext,
		stop:    NewStopper(sh.opt),
		dval:    NewDeltaValidator(sh.g, sh.opt, S),
		tr:      sh.g.NewTraverser(),
		seen:    newSigSet(),
		S:       S,
		Iuser:   bitset.New(n),
		outSet:  bitset.New(n),
	}
}

type incEnum struct {
	g     *dfg.Graph
	opt   Options
	visit func(Cut) bool
	pdt   *domtree.Tree
	dval  *DeltaValidator // incremental validation engine, worker-owned
	tr    *dfg.Traverser  // word-parallel traversal kernels, worker-owned
	stats Stats
	seen  *sigSet
	ext   *atomic.Bool // external stop flag; nil in serial runs

	S      *bitset.Set // current cut (user capacity)
	Iuser  *bitset.Set // chosen inputs
	Ilist  []int
	outs   []int
	outSet *bitset.Set

	entries []int         // roots ∪ user-forbidden: virtual-source successors
	permOut *bitset.Set   // shared: vertices that are outputs forever once in S
	badIn   []*bitset.Set // shared: per-output forbidden-ancestor exclusions

	journal []*bitset.Set // per-depth undo journal: the delta each push applied to S
	paths   []*bitset.Set // per-depth on-path sets
	backs   []*bitset.Set // per-depth reaches-o sets
	uncs    []*bitset.Set // per-depth input-ancestor sets for the quick-offending reject
	chains  [][]int       // per-depth dominator-chain buffers
	seed1   [1]int        // scratch: single-seed kernel calls
	fs      *flowScratch
	stopped bool
	stop    Stopper // shared cancel/deadline poll primitive (stop.go)

	// Work-stealing state, nil/empty in serial runs (see parallel.go for
	// the protocol). curSeg is the merge segment the worker currently emits
	// into; ranges is the stack of live pickOutputRange frames a donor can
	// split; segStack holds the resume segments created by splits, keyed by
	// the range frame whose epilogue must switch to them.
	steal    *stealState
	curSeg   *parallel.Seg[Cut]
	ranges   []posRange
	segStack []segResume

	// stallTimer is the reusable watchdog timer guarding handoff sends
	// (sendTask); allocated on the first donation, reset per send.
	stallTimer *time.Timer

	// Checkpoint state, nil/zero unless Options.CheckpointPath is set on a
	// serial run (the parallel merge owns its own writer): ck writes
	// snapshots, topPos tracks the current top-level position, pendSnap is
	// the state captured at the stop moment for the final snapshot. The
	// ffwd fields carry a resumed snapshot's saved frames and backing
	// choice stacks for fast-forward (ffwdEngage); ffwdOn counts the saved
	// frames currently matched and still on the saved path.
	ck       *ckptWriter
	topPos   int
	pendSnap *checkpoint.Snapshot
	ffwd     []checkpoint.Frame
	ffwdOuts []int
	ffwdIns  []int
	ffwdOn   int
}

// posRange is one live pickOutputRange frame: the topological positions
// [cur+1, end) are this level's untried next-output candidates, and a donor
// may give away the upper half of that interval because the iterations are
// mutually independent — each one restores S, outs and Ilist to the frame's
// entry state, which outsLen/insLen record as prefix lengths so a thief can
// reconstruct it (S is a pure function of the outs/Ilist prefixes;
// rebuildS). cur and end are only ever mutated by the owning worker's own
// goroutine: a split shrinks end and publishes the cut-off tail as a task,
// never touching another worker's state.
//
// Seed-extension intervals (the seedLoop of pickInputs) are deliberately
// NOT stealable: under PruneDominatorInput the loop threads lastValid
// across iterations, so a stolen tail executed concurrently could not
// reproduce the serial pruning decisions. Next-output intervals carry no
// such cross-iteration state (uncAll and quickRej are level-constant).
type posRange struct {
	depth    int // recursion depth of the frame (journal/scratch index)
	cur      int // last claimed topological position; [start, cur] are taken
	end      int // exclusive upper bound; shrunk by splits
	outsLen  int // len(outs) at frame entry — the shared output prefix
	insLen   int // len(Ilist) at frame entry — the shared input prefix
	ninLeft  int
	noutLeft int
}

// segResume records the resume segment a split created: once the range
// frame at rangeIdx finishes, the donor closes its current segment and
// continues emitting into seg, which the merge places right after the
// stolen segment — the exact serial position of the donor's post-range
// output.
type segResume struct {
	rangeIdx int
	seg      *parallel.Seg[Cut]
}

// journalBuf returns the undo-journal buffer for recursion depth d. Each
// active search-tree push owns the buffer of its own depth: it records the
// exact set of vertices the push added to (output push) or removed from
// (input push) the maintained cut S, so the pop is a single word-parallel
// Subtract/Union instead of a snapshot restore or a from-scratch rebuild.
func (e *incEnum) journalBuf(d int) *bitset.Set {
	for len(e.journal) <= d {
		e.journal = append(e.journal, bitset.New(e.g.N()))
	}
	return e.journal[d]
}

// growS pushes the most recently chosen output onto the maintained cut:
// S gains {o} ∪ B(I, o) via the delta kernel, with the added vertices
// journaled at depth d. The incremental validation engine needs no
// notification — it mirrors S lazily at the next admission check (see
// deltaval.go), so pushes on branches that never reach CHECK-CUT cost it
// nothing. Undo with undoGrowS(d).
func (e *incEnum) growS(d int) {
	o := e.outs[len(e.outs)-1]
	e.tr.GrowCut(e.S, e.journalBuf(d), o, e.Iuser)
}

// undoGrowS pops the output push journaled at depth d.
func (e *incEnum) undoGrowS(d int) {
	e.S.Subtract(e.journal[d])
}

// shrinkS pushes input w onto the maintained cut: w and every vertex whose
// last surviving path ran through w leave S via the delta kernel (which
// falls back to the from-scratch rebuild when the affected region is most
// of S), with the removed vertices journaled at depth d. The caller must
// have pushed w into Iuser already. Undo with undoShrinkS(d).
func (e *incEnum) shrinkS(d, w int) {
	e.tr.ShrinkCut(e.S, e.journalBuf(d), w, e.outs, e.outSet, e.Iuser)
}

// undoShrinkS pops the input push journaled at depth d.
func (e *incEnum) undoShrinkS(d int) {
	e.S.Union(e.journal[d])
}

// uncBuf returns the quick-offending scratch buffer for recursion depth d
// (depth-indexed because deeper pickOutput levels run while an outer
// level's loop still needs its own set).
func (e *incEnum) uncBuf(d int) *bitset.Set {
	for len(e.uncs) <= d {
		e.uncs = append(e.uncs, bitset.New(e.g.N()))
	}
	return e.uncs[d]
}

// pathBuf returns the on-path buffer for recursion depth d.
func (e *incEnum) pathBuf(d int) *bitset.Set {
	for len(e.paths) <= d {
		e.paths = append(e.paths, bitset.New(e.g.N()))
	}
	return e.paths[d]
}

// backBuf returns the reaches-o buffer for recursion depth d.
func (e *incEnum) backBuf(d int) *bitset.Set {
	for len(e.backs) <= d {
		e.backs = append(e.backs, bitset.New(e.g.N()))
	}
	return e.backs[d]
}

// chainBuf returns the (emptied) dominator-chain buffer for recursion depth
// d. Depth-indexed because the chain found at depth d is still being
// iterated while deeper recursion levels run their own analyses.
func (e *incEnum) chainBuf(d int) []int {
	for len(e.chains) <= d {
		e.chains = append(e.chains, nil)
	}
	return e.chains[d][:0]
}

// analyzePaths analyses the reduced graph (the augmented graph minus the
// chosen inputs) with respect to output o. It computes into back the set of
// vertices that reach o avoiding the inputs, into onPath the set of
// vertices lying on some source→o path avoiding the inputs, appends to
// chain every vertex that dominates o in the reduced graph, and reports
// whether o is reachable at all.
//
// pBack is the back set of the parent recursion level (nil at the start of
// an output's phase). When present, the only change since the parent's
// analysis is the single seed lastIn joining I, so back is *derived* from
// the parent by the delta kernel (dfg.Traverser.ShrinkReachInto): it
// shrinks by lastIn's severed ancestor region, confined to the region the
// push actually changes, with the full confined traversal as fallback
// past the threshold. At a phase start back is traversed fresh.
//
// onPath, the dominator chain and the reachability verdict all come out of
// ONE ascending pass over back, with no forward closure at all. Three facts
// make the fusion exact. First, ascending id order is ascending topological
// order (Freeze pins the identity permutation), so every predecessor is
// settled before its successors: v lies on a surviving source path exactly
// when it is an entry of back or some predecessor of v is already on-path
// (any prefix of a source→v path inside back stays inside back — each
// prefix vertex reaches v and hence o avoiding I). Second, the entries of
// back are on-path unconditionally (an entry in back is not an input and
// carries a virtual-source edge), so the sweep's starting maximum — the
// highest virtual-source successor — is known before the walk. Third, for
// an on-path vertex every successor inside back is itself on-path (extend
// the source path by the edge), so masking a successor row by back equals
// masking it by the finished onPath, and the running maximum never reads a
// bit the walk has not justified.
//
// Dominators then fall out as in PR 3: restricted to surviving paths, v
// dominates o exactly when no surviving edge "jumps over" its topological
// position, i.e. when the running maximum of highest on-path successors is
// at most v when the walk reaches it. The Freeze-memoized MaxSucc bound
// skips the masked row scan whenever even v's highest successor overall
// cannot beat the running maximum — the common case once it nears o.
//
// When needChain is false (no input budget left) the caller consumes only
// the reachability verdict and back; o is source-reachable avoiding I
// exactly when an entry survives in back, so the sweep — and onPath
// entirely — is skipped for one word-parallel intersection test.
func (e *incEnum) analyzePaths(o int, back, onPath, pBack *bitset.Set, lastIn int, chain []int, needChain bool) (bool, []int) {
	g := e.g

	if pBack != nil {
		// Seed-extension level: derive back from the parent. (lastIn ∈
		// pBack: seeds are chosen on-path, and o ∈ pBack stays — it is
		// never an input, so only its ancestors can be severed.)
		e.tr.ShrinkReachInto(back, pBack, o, lastIn, e.Iuser)
	} else {
		// Phase start: traverse fresh, backward from o avoiding I.
		e.seed1[0] = o
		e.tr.ReachBackwardAvoiding(back, e.seed1[:], e.Iuser, nil)
	}
	if !needChain {
		return back.Intersects(g.EntrySet()), chain
	}

	onPath.CopyIntersect(g.EntrySet(), back)
	bw := back.Words()
	opw := onPath.Words()
	runMax := dfg.HighestMaskedBit(g.EntrySet().Words(), bw)
	for wi, w := range bw {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := wi<<6 + b
			w &= w - 1
			if opw[wi]&(1<<uint(b)) == 0 {
				if !g.PredsIntersect(v, onPath) {
					continue // on no surviving source path
				}
				opw[wi] |= 1 << uint(b)
			}
			if v == o {
				return true, chain
			}
			if runMax <= v {
				chain = append(chain, v)
			}
			if g.MaxSucc(v) > runMax {
				if p := dfg.HighestMaskedBit(g.SuccRow(v), bw); p > runMax {
					runMax = p
				}
			}
		}
	}
	return false, chain // o itself never became on-path: I dominates o
}

// rebuildS recomputes the exact cut identified by the chosen outputs and
// inputs: every vertex that reaches a chosen output along a path avoiding
// the chosen inputs (theorems 2 and 3), as one word-parallel backward
// frontier traversal. The search itself maintains S by journaled deltas
// (growS/shrinkS); rebuildS is the reference semantics those deltas are
// property-tested against, and ShrinkCut falls back to the same
// from-scratch rebuild when an input push invalidates most of S.
func (e *incEnum) rebuildS() {
	e.tr.CutNodesInto(e.S, e.outs, e.Iuser)
}

// viable applies the §5.3 "pruning while building S" test, adapted to the
// exact (non-monotone) maintenance of S: vertices leave S only when a new
// input joins I, either because the vertex itself becomes the input or
// because the input severs its last avoiding path. So with no input budget
// left, a forbidden vertex (or implicitly forbidden root) inside S, or more
// permanent outputs than Nout, is fatal; with budget remaining it merely
// obligates at least one more input. (Stronger counting — one forced input
// per offending vertex — would be unsound: a single well-placed input can
// evict several vertices from S at once.)
func (e *incEnum) viable(ninLeft int) bool {
	if !e.opt.PruneWhileBuildingS {
		return true
	}
	offending := e.S.Intersects(e.g.ForbiddenSet()) || e.S.Intersects(e.g.RootSet()) ||
		e.S.IntersectionCount(e.permOut) > e.opt.MaxOutputs
	return !offending || ninLeft > 0
}

// topLevel explores the complete search subtree rooted at the depth-0
// output candidate sitting at topological position pos, leaving the worker
// state as it found it (empty). The serial algorithm calls it for every
// position in order; the sharded parallel one hands positions to workers,
// because distinct first-output subtrees never share search state — only
// the cut deduplication couples them, and that moves into the merge stage.
func (e *incEnum) topLevel(pos int) {
	if e.stopped || e.opt.MaxOutputs <= 0 {
		return
	}
	e.topPos = pos // the snapshot frontier: positions before this are done
	o := e.g.Topo()[pos]
	if !e.admissibleOutput(o) {
		return
	}
	e.stats.OutputsTried++
	e.outs = append(e.outs, o)
	e.outSet.Add(o)
	e.growS(0)
	if e.viable(e.opt.MaxInputs) {
		e.pickInputs(1, pos, o, e.opt.MaxInputs, e.opt.MaxOutputs-1, 0, len(e.Ilist), nil)
	}
	e.undoGrowS(0)
	e.outSet.Remove(o)
	e.outs = e.outs[:len(e.outs)-1]
}

// pickOutput implements PICK-OUTPUT: choose the next output o, grow S by
// {o} ∪ B(I, o), then hand over to input selection (which also covers the
// "I already dominates o" branch of figure 3).
//
// lastTopo carries the topological position of the previously chosen output
// when the output–output pruning is on: an ancestor has a smaller position,
// so requiring strictly increasing positions makes the "skip ancestors of
// selected outputs" rule free and canonicalizes the choice order.
func (e *incEnum) pickOutput(depth, lastTopo, ninLeft, noutLeft int) {
	if e.stopped || noutLeft <= 0 {
		return
	}
	start := 0
	if e.opt.PruneOutputOutput {
		start = lastTopo + 1
	}
	e.pickOutputRange(depth, start, len(e.g.Topo()), ninLeft, noutLeft)
}

// pickOutputRange runs PICK-OUTPUT's candidate loop over the topological
// positions [start, end). It is the unit of work the donor side of
// work-stealing operates on: the loop claims positions from a posRange
// frame whose end a concurrent-donation poll (maybeSplit, reached from the
// loop body's recursion) may pull in, and whose epilogue switches the
// worker onto any resume segments splits created. A thief enters here
// directly (runTask) with the donor's reconstructed prefix state. Serial
// runs take the same path with an empty steal state; the frame bookkeeping
// is a few appends per level.
func (e *incEnum) pickOutputRange(depth, start, end, ninLeft, noutLeft int) {
	// With the input budget exhausted, a push whose grown cut would contain
	// a root or forbidden vertex is dead on arrival (viable() below), and
	// that fate is often decidable without running the grow kernel: an
	// entry vertex (root or forbidden) in o's cone, outside S, that reaches
	// no chosen input has every path to o input-free and must join B(I, o).
	// uncAll collects the inputs' ancestor cones once per level — inputs
	// included, they can never rejoin — so the test is one fused word scan
	// per candidate output (quickOffending).
	quickRej := e.opt.PruneWhileBuildingS && ninLeft <= 0
	var uncAll *bitset.Set
	if quickRej {
		uncAll = e.uncBuf(depth)
		uncAll.Clear()
		for _, i := range e.Ilist {
			uncAll.UnionWords(e.g.ReachTo(i).Words())
			uncAll.Add(i)
		}
	}
	topo := e.g.Topo()
	ri := len(e.ranges)
	e.ranges = append(e.ranges, posRange{
		depth: depth, cur: start - 1, end: end,
		outsLen: len(e.outs), insLen: len(e.Ilist),
		ninLeft: ninLeft, noutLeft: noutLeft,
	})
	if e.ffwd != nil {
		e.ffwdEngage(ri, depth, start, end, ninLeft, noutLeft)
	}
	// The frame must be addressed as e.ranges[ri] afresh after any
	// recursion: deeper levels append to the slice and may move it.
	for !e.stopped {
		pos := e.ranges[ri].cur + 1
		if pos >= e.ranges[ri].end { // end may have shrunk via a split
			break
		}
		e.ranges[ri].cur = pos
		if e.ffwd != nil && e.ffwdOn > ri && pos != e.ffwd[ri].Cur {
			// A matched level moved past its saved position: the walk left
			// the saved path here, so deeper saved frames no longer apply.
			e.ffwdOn = ri
		}
		o := topo[pos]
		if !e.admissibleOutput(o) {
			continue
		}
		// In connected-only mode every output after the first must be
		// reachable from a chosen input (§5.3). The paper's companion rule —
		// when internal outputs exceed Nout, only connected outputs need be
		// tried — relies on S growing monotonically and is unsound under
		// the exact cut maintenance used here (a later input can evict an
		// internal output), so it is deliberately not applied.
		if e.opt.ConnectedOnly && len(e.outs) > 0 && !e.reachableFromInput(o) {
			continue
		}
		e.stats.OutputsTried++
		if quickRej && e.quickOffending(o, uncAll) {
			continue
		}
		e.outs = append(e.outs, o)
		e.outSet.Add(o)
		e.growS(depth)
		if e.viable(ninLeft) {
			e.pickInputs(depth+1, pos, o, ninLeft, noutLeft-1, 0, len(e.Ilist), nil)
		}
		e.undoGrowS(depth)
		e.outSet.Remove(o)
		e.outs = e.outs[:len(e.outs)-1]
	}
	e.ranges = e.ranges[:ri]
	e.popRangeSegs(ri)
}

// maybeSplit is the donation poll: when another worker is hungry, give away
// the upper half of the shallowest splittable next-output interval on the
// frame stack. Called from the hot admission paths (pickInputs, checkCut);
// the serial fast path is one nil check and the parallel no-donor fast path
// one atomic load.
//
// Splitting the SHALLOWEST splittable frame first does double duty. It
// donates the largest subtree (best granularity), and it is what makes
// splicing at the worker's CURRENT segment correct: a frame's remaining
// interval only ever shrinks, so once a frame is unsplittable it stays so,
// which makes the rangeIdx values on segStack non-decreasing — every
// already-promised stolen range belongs to a frame at least as deep as the
// one being split now, so its output serially precedes the newly stolen
// tail, and the merge-list order (new splices sit closest to the current
// segment) reproduces exactly that.
func (e *incEnum) maybeSplit() {
	st := e.steal
	if st == nil || e.stopped {
		return
	}
	if st.hungry.Load() == 0 {
		return
	}
	if h := faultinject.OnStealPublish; h != nil {
		// Fires before claimHungry, so an injected panic here dies with no
		// hungry slot claimed and no segment spliced — containment needs to
		// repair nothing of the handoff.
		h()
	}
	for ri := range e.ranges {
		remaining := e.ranges[ri].end - (e.ranges[ri].cur + 1)
		if remaining < 2 {
			continue
		}
		if !st.claimHungry() {
			return // the hungry worker was claimed by another donor
		}
		r := &e.ranges[ri] // stable here: no recursion below
		oldEnd := r.end
		mid := r.cur + 1 + (remaining+1)/2
		stolen, resume := st.ord.Split(e.curSeg)
		t := stealTask{
			seg:      stolen,
			depth:    r.depth,
			posStart: mid,
			posEnd:   r.end,
			ninLeft:  r.ninLeft,
			noutLeft: r.noutLeft,
			outs:     append([]int(nil), e.outs[:r.outsLen]...),
			ins:      append([]int(nil), e.Ilist[:r.insLen]...),
		}
		r.end = mid
		e.segStack = append(e.segStack, segResume{rangeIdx: ri, seg: resume})
		e.sendTask(t, ri, oldEnd, resume)
		return
	}
}

// defaultStealStallTimeout bounds how long a donor waits for a claimed
// thief to accept a handoff before declaring the protocol's liveness
// broken. Under the handoff discipline the claimed thief is parked in its
// task select and committed to receive, so on a healthy run the send
// completes in microseconds; the timeout only fires if an invariant is
// broken, and then a diagnosable StallError beats an invisible hang.
// Options.StealStallTimeout overrides it per run (the watchdog's own tests
// and the session layer's per-request tightening both go through that
// field — no global state).
const defaultStealStallTimeout = 10 * time.Second

// stallTimeout resolves the run's effective watchdog bound.
func (e *incEnum) stallTimeout() time.Duration {
	if e.opt.StealStallTimeout > 0 {
		return e.opt.StealStallTimeout
	}
	return defaultStealStallTimeout
}

// sendTask hands t to the claimed hungry worker, guarded by the stall
// watchdog. The claimed thief is committed to receive (see stealState), so
// the send normally completes at once; if it does not within
// stallTimeout(), the donor reabsorbs the donated range instead of
// hanging: the frame's end is restored so the donor runs the positions
// itself, the stolen and resume segments close empty (order-correct — the
// donor's current segment precedes both in the merge list, so its output
// keeps its serial position), the task's freshly minted liveness token is
// released, and the run stops with a StallError.
func (e *incEnum) sendTask(t stealTask, ri, oldEnd int, resume *parallel.Seg[Cut]) {
	st := e.steal
	st.active.Add(1) // the task's liveness token; the receiver inherits it
	timeout := e.stallTimeout()
	if e.stallTimer == nil {
		e.stallTimer = time.NewTimer(timeout)
	} else {
		e.stallTimer.Reset(timeout)
	}
	select {
	case st.tasks <- t:
		e.stallTimer.Stop()
		return
	case <-e.stallTimer.C:
	}
	// Stall: reabsorb. segStack's top is the entry just pushed by
	// maybeSplit — no recursion ran in between.
	e.ranges[ri].end = oldEnd
	e.segStack = e.segStack[:len(e.segStack)-1]
	st.ord.Close(t.seg)
	st.ord.Close(resume)
	// The donor still holds its own token, so this release cannot be the
	// last one; the check mirrors the thief loop for symmetry.
	if st.active.Add(-1) == 0 {
		close(st.done)
	}
	e.fail(&StallError{Timeout: timeout})
}

// popRangeSegs runs at a pickOutputRange frame's epilogue: for every split
// the frame granted (LIFO on segStack), close the segment the worker has
// been emitting into and move onto the split's resume segment, whose merge
// position is right after the corresponding stolen range's output. With
// several splits of one frame the intermediate resume segments close empty
// — the donor reached the final (earliest-created) resume segment only
// after walking through the later ones.
func (e *incEnum) popRangeSegs(ri int) {
	for len(e.segStack) > 0 && e.segStack[len(e.segStack)-1].rangeIdx == ri {
		top := e.segStack[len(e.segStack)-1]
		e.segStack = e.segStack[:len(e.segStack)-1]
		e.steal.ord.Close(e.curSeg)
		e.curSeg = top.seg
	}
}

// quickOffending reports whether growing S for output o is certain to
// produce a cut containing a root or forbidden vertex: an entry vertex of
// o's cone outside S that reaches no chosen input (uncAll: the inputs and
// their ancestor cones) cannot be severed — any path of its to o stays in
// the cone, and an input on it would be one of its descendants, putting it
// in uncAll — so it must join B(I, o). One fused word-parallel scan; when
// it fires, the viable() rejection the grow kernel's work would have fed is
// taken for free. (o itself needs no test: admissibleOutput already
// excluded forbidden and root candidates.)
func (e *incEnum) quickOffending(o int, uncAll *bitset.Set) bool {
	cw := e.g.ReachTo(o).Words()
	ew := e.g.EntrySet().Words()
	sw := e.S.Words()
	uw := uncAll.Words()
	for i, c := range cw {
		if c&ew[i]&^sw[i]&^uw[i] != 0 {
			return true
		}
	}
	return false
}

// admissibleOutput filters output candidates: not forbidden, not a root,
// not already in the cut or chosen, and not related by ancestry or
// postdominance to a chosen output.
func (e *incEnum) admissibleOutput(o int) bool {
	if e.g.IsForbidden(o) || e.S.Has(o) || e.outSet.Has(o) || e.Iuser.Has(o) {
		return false
	}
	for _, prev := range e.outs {
		// Ancestors of chosen outputs end up inside the cut, so they never
		// need to be chosen (§5.3, output–output pruning). The topological
		// ordering already guarantees this when the pruning is on; check
		// explicitly for the unpruned configuration.
		if e.g.Reaches(o, prev) {
			return false
		}
		if e.pdt.Dominates(prev, o) || e.pdt.Dominates(o, prev) {
			return false
		}
	}
	return true
}

// reachableFromInput reports whether some chosen input reaches o.
func (e *incEnum) reachableFromInput(o int) bool {
	for _, i := range e.Ilist {
		if e.g.Reaches(i, o) {
			return true
		}
	}
	return false
}

// pickInputs implements PICK-INPUTS for output o: one reduced-graph
// analysis either shows the chosen inputs already dominate o (condition 1)
// — then the cut is checked — or yields every vertex w completing a
// multiple-vertex dominator of o. Afterwards, if budget remains, the seed
// set is extended with further ancestors of o.
//
// Seed candidates are restricted to vertices on a surviving source→o path:
// blocking anything else leaves every path (and therefore every reduced
// dominator found below) unchanged, so such seeds can only reproduce cuts
// that the unextended seed set already generates.
//
// It reports whether any dominator completion (or full domination) was
// found in this subtree, which drives the dominator–input pruning.
//
// phaseStart indexes the first entry of Ilist chosen during the current
// output's phase: those seeds justify their membership through o, so each
// must keep a surviving path to o (the paper's "quick dismissal" of seed
// sets violating definition 5's condition 2). A branch whose seed went dead
// reproduces only cuts that the branch without that seed generates.
//
// pBack is the parent seed level's reaches-o frontier (nil at a phase
// start); when present the just-pushed seed is Ilist's last entry and
// analyzePaths derives the child frontier from it by delta.
func (e *incEnum) pickInputs(depth, oTopo, o, ninLeft, noutLeft, seedStart, phaseStart int, pBack *bitset.Set) bool {
	if h := faultinject.OnPickInputs; h != nil {
		h()
	}
	e.checkStop()
	if e.stopped {
		return false
	}
	e.maybeSplit()
	e.stats.LTRuns++
	lastIn := -1
	if pBack != nil {
		lastIn = e.Ilist[len(e.Ilist)-1]
	}
	onPath := e.pathBuf(depth)
	back := e.backBuf(depth)
	reachable, chain := e.analyzePaths(o, back, onPath, pBack, lastIn, e.chainBuf(depth), ninLeft > 0)
	e.chains[depth] = chain // keep any capacity growth for reuse
	for _, v := range e.Ilist[phaseStart:] {
		// Alive ⟺ some successor of v still reaches o avoiding I; o itself
		// is a member of back, so one row intersection answers it.
		if !e.g.SuccsIntersect(v, back) {
			e.stats.SeedsPruned++
			return false
		}
	}
	if !reachable {
		// I dominates o already (the PICK-OUTPUT "if I dominates o" branch;
		// with seed recursion this also catches seed sets that complete the
		// domination by themselves).
		e.checkCut(depth, oTopo, ninLeft, noutLeft)
		return true
	}
	if ninLeft <= 0 {
		return false
	}

	found := false

	// Completion step: every reduced-graph dominator of o extends I to a
	// multiple-vertex dominator of o.
	for _, u := range chain {
		if e.stopped {
			return found
		}
		if e.outSet.Has(u) {
			continue // a chosen output cannot double as an input
		}
		if e.pruneInput(u, o) {
			continue
		}
		found = true
		e.pushInput(u)
		e.shrinkS(depth, u)
		if e.viable(ninLeft - 1) {
			e.checkCut(depth+1, oTopo, ninLeft-1, noutLeft)
		}
		e.undoShrinkS(depth)
		e.popInput(u)
	}

	// Seed extension step: push another on-path ancestor of o and recurse.
	if ninLeft > 1 {
		// The budget-feasibility bound costs a few traversals, so it only
		// runs where extension is actually expensive: at least one seed
		// already chosen (the explosion lives in deep seed levels) and a
		// surviving-path region big enough that iterating it blindly would
		// cost more than the bound.
		if e.opt.PruneInfeasibleBudget && len(e.Ilist) > phaseStart &&
			onPath.Count() > 64 {
			// Load the mandatory vertices of the current phase's seeds and
			// bound the inputs any completion still needs (see flow.go).
			// flowBoundCanExceed first checks two O(words) structural caps
			// on the max-flow; when either already fits the budget, the
			// bound cannot prune and the residual graph is never built.
			fs := e.flow()
			fs.uncut.Clear()
			for _, v := range e.Ilist[phaseStart:] {
				e.mandatoryInto(fs.mandBuf, v, o, back)
				fs.uncut.Union(fs.mandBuf)
			}
			if e.flowBoundCanExceed(o, onPath, ninLeft) &&
				e.completionFlowBound(o, onPath, ninLeft) > ninLeft {
				e.stats.SeedsPruned++
				return found
			}
		}
		// Seed candidates walk the surviving-path vertices deepest-first
		// (descending id ≡ reverse topological order, as Freeze pins the
		// identity permutation), starting below the caller's seedStart.
		// Iterating the onPath members directly skips the off-path mass for
		// free; the historical index of seed i in that walk is N-1-i, which
		// is what the recursion's seedStart carries forward.
		lastValid := -1
		maxID := e.g.N() - 1 - seedStart
		ow := onPath.Words()
	seedLoop:
		for wi := maxID >> 6; wi >= 0; wi-- {
			w := ow[wi]
			if wi == maxID>>6 && maxID&63 != 63 {
				w &= 1<<uint((maxID&63)+1) - 1
			}
			for w != 0 {
				b := 63 - bits.LeadingZeros64(w)
				w &^= 1 << uint(b)
				i := wi<<6 + b
				if e.stopped {
					return found
				}
				if i == o || e.outSet.Has(i) {
					continue
				}
				if e.opt.PruneDominatorInput && lastValid >= 0 {
					if e.g.IsForbidden(lastValid) {
						// A forbidden seed cannot be replaced: stop extending
						// this slot (§5.3, dominator–input pruning).
						break seedLoop
					}
					if !e.g.Reaches(i, lastValid) {
						e.stats.SeedsPruned++
						continue // replacements come from the seed's ancestors
					}
				}
				if e.pruneSeed(i, o) {
					continue
				}
				e.pushInput(i)
				e.shrinkS(depth, i)
				sub := false
				if e.viable(ninLeft - 1) {
					sub = e.pickInputs(depth+1, oTopo, o, ninLeft-1, noutLeft, e.g.N()-i, phaseStart, back)
				}
				e.undoShrinkS(depth)
				e.popInput(i)
				if sub {
					found = true
					lastValid = i
				}
			}
		}
	}
	return found
}

// pruneInput applies the §5.3 output–input prunings to a completion
// candidate u for output o.
func (e *incEnum) pruneInput(u, o int) bool {
	if !e.opt.PruneOutputInput {
		return false
	}
	// An input's private path to the output lies inside the cut after the
	// input, so a forbidden-free u→o path must exist.
	if !e.g.ReachesForbiddenFree(u, o) {
		e.stats.SeedsPruned++
		return true
	}
	if e.forcedInputsWith(u, o) > e.opt.MaxInputs {
		e.stats.SeedsPruned++
		return true
	}
	if e.opt.PruneForbiddenAncestors && e.badInputsFor(o).Has(u) {
		e.stats.SeedsPruned++
		return true
	}
	return false
}

// badInputsFor returns, per output, the paper's forbidden-ancestor input
// exclusion (§5.3, approximate): the ancestors of every forbidden ancestor
// of o. Precomputed once per graph in newEnumShared (only when
// Options.PruneForbiddenAncestors is set) and shared read-only across
// shards, which stops parallel workers from rebuilding identical sets.
func (e *incEnum) badInputsFor(o int) *bitset.Set {
	return e.badIn[o]
}

// forcedInputsWith lower-bounds |I(S)| for any cut that has v among its
// inputs and o among its outputs: every forbidden direct predecessor of o
// must be an input (it can neither join the cut nor be severed from o).
func (e *incEnum) forcedInputsWith(v, o int) int {
	fp := e.g.ForbiddenPreds(o)
	n := fp.Count()
	if !fp.Has(v) {
		n++
	}
	return n
}

// pruneSeed applies the §5.3 input–input and output–input prunings to a
// seed candidate i for output o.
func (e *incEnum) pruneSeed(i, o int) bool {
	if e.opt.PruneInputInput {
		// Two inputs related by postdominance can never coexist in a valid
		// cut under the technical condition (§5.3, input–input pruning).
		for _, v := range e.Ilist {
			if e.pdt.Dominates(i, v) || e.pdt.Dominates(v, i) {
				e.stats.SeedsPruned++
				return true
			}
		}
	}
	if e.opt.PruneOutputInput {
		if !e.g.ReachesForbiddenFree(i, o) {
			e.stats.SeedsPruned++
			return true
		}
		if e.forcedInputsWith(i, o) > e.opt.MaxInputs {
			e.stats.SeedsPruned++
			return true
		}
	}
	if e.opt.PruneForbiddenAncestors && e.badInputsFor(o).Has(i) {
		e.stats.SeedsPruned++
		return true
	}
	return false
}

func (e *incEnum) pushInput(w int) {
	e.Iuser.Add(w)
	e.Ilist = append(e.Ilist, w)
}

func (e *incEnum) popInput(w int) {
	e.Iuser.Remove(w)
	e.Ilist = e.Ilist[:len(e.Ilist)-1]
}

// checkStop aborts the search when the external stop flag is raised or a
// stop source of the run — Options.Context, Options.Deadline — fires. The
// flag is an atomic load, checked on every call; the wall clock and the
// context channel are sampled only every few thousand checks (Stopper) to
// keep their cost negligible. It is the single poll point the incremental
// search uses; the baselines and EnumerateBasic share the same Stopper
// primitive so cancellation semantics cannot drift between poly and oracle
// runs.
//
// A stopping worker raises the shared stop flag HERE (stopExternal), before
// its unwinding closes any merge segment. The merge observes a close only
// after draining the segment, and a channel close is an acquire/release
// pair, so once the drain advances past the truncated segment it is
// guaranteed to see the flag and visit nothing further — the visitor
// receives a coherent prefix of the serial order even though segments past
// the truncation point (other workers' subtrees, previously donated ranges)
// still drain. The same argument covers every stop cause: deadline,
// cancellation, budget, contained panic, handoff stall.
func (e *incEnum) checkStop() {
	if e.ext != nil && e.ext.Load() {
		e.stopped = true
		return
	}
	if r := e.stop.Poll(); r != StopNone {
		e.stopExternal(r)
	}
}

// stopExternal records stop reason r and raises every stop flag: the
// worker's own and, in parallel runs, the shared one — strictly before any
// truncated merge segment closes, which is what keeps the drained prefix
// serial-coherent (see checkStop).
func (e *incEnum) stopExternal(r StopReason) {
	e.stats.RecordStop(r)
	e.stopped = true
	if e.ext != nil {
		e.ext.Store(true)
	}
	// Serial checkpointing runs capture the stop-time state here — before
	// the unwinding pops any frame — for the final snapshot (captureSnap is
	// a no-op when no checkpoint path is configured). This covers every
	// serial stop cause, contained panics included: fail() routes here.
	e.captureSnap()
}

// fail records err as the worker's first error and stops the run with
// StopReason = StopError.
func (e *incEnum) fail(err error) {
	if e.stats.Err == nil {
		e.stats.Err = err
	}
	e.stopExternal(StopError)
}

// recoverPanic is the serial containment boundary: deferred around the
// whole search loop, it converts a panic into the run's error. The worker
// state is dead after it fires, which is fine — the serial Enumerate
// returns immediately.
func (e *incEnum) recoverPanic() {
	if v := recover(); v != nil {
		e.fail(&PanicError{Value: v, Stack: debug.Stack()})
	}
}

// containPanic is the parallel containment boundary, deferred around each
// top-level subtree (runTop) and each stolen task body (runTaskBody). It
// converts the panic into the run's first error and repairs the worker's
// merge obligations: the unwinding skipped every pickOutputRange epilogue
// on the stack, so the resume segments those frames' splits promised are
// closed here in LIFO order (replicating popRangeSegs), leaving curSeg on
// the final resume segment for the caller's own Close. Every segment is
// still closed exactly once and the ordered merge drains instead of
// deadlocking. The choice state is reset so the worker can keep claiming
// segments and serving its thief/token duties; the search-state corruption
// left behind (S, journals, validator mirror) is irrelevant because the
// stop flag is already raised — no further search runs on this worker.
func (e *incEnum) containPanic() {
	v := recover()
	if v == nil {
		return
	}
	e.fail(&PanicError{Value: v, Stack: debug.Stack()})
	for len(e.segStack) > 0 {
		top := e.segStack[len(e.segStack)-1]
		e.segStack = e.segStack[:len(e.segStack)-1]
		e.steal.ord.Close(e.curSeg)
		e.curSeg = top.seg
	}
	e.ranges = e.ranges[:0]
	e.resetChoice()
}

// resetChoice clears the output/input choice state (and the cut it
// identifies), returning the worker to the between-subtrees empty state.
func (e *incEnum) resetChoice() {
	e.outs = e.outs[:0]
	e.outSet.Clear()
	e.Ilist = e.Ilist[:0]
	e.Iuser.Clear()
	e.S.Clear()
}

// checkCut implements CHECK-CUT: accept the current S when its real outputs
// (internal ones included, per the output–output pruning) fit the budget,
// then recurse into further output choices. The admission checks run on the
// incremental validation engine: the real-output count is a population
// count on the delta-maintained O(S) (the from-scratch OutputsInto sweep
// this replaced was the single hottest per-candidate cost), and the full
// §3 validation runs staged on the same maintained aggregates.
func (e *incEnum) checkCut(depth, oTopo, ninLeft, noutLeft int) {
	if h := faultinject.OnCheckCut; h != nil {
		h()
	}
	e.checkStop()
	if e.stopped {
		return
	}
	e.maybeSplit()
	e.stats.Candidates++
	realOuts := e.dval.NumOutputs()
	if realOuts <= e.opt.MaxOutputs && !e.S.Empty() && !e.S.Intersects(e.g.ForbiddenSet()) {
		if h := faultinject.OnDedupInsert; h != nil {
			h()
		}
		if e.opt.MaxDedupBytes > 0 && e.ext == nil && e.seen.WouldGrowPast(e.opt.MaxDedupBytes) {
			// Graceful degradation: the dedup table is at its last
			// affordable size, so admitting this candidate could double it
			// past the budget. Stop with exact partial stats instead. Serial
			// only — in parallel runs the budget binds the merge's global
			// table (where insertions happen in serial order, so degradation
			// delivers the longest affordable serial prefix); the per-worker
			// tables here are transient scratch reset at every subtree and
			// stolen range, not the global dedup resource.
			e.stopExternal(StopBudget)
			return
		}
		if !e.seen.Insert(e.S.Hash128()) {
			e.stats.Duplicates++
		} else {
			var cut Cut
			if e.dval.Validate(&cut) {
				e.stats.Valid++
				if e.opt.KeepCuts {
					cut.Nodes = cut.Nodes.Clone()
				}
				if !e.visit(cut) {
					// In parallel runs the emit wrapper returns false only
					// when the global stop is already raised — the real
					// reason (visitor stop, budget, …) is recorded by the
					// merge, not here.
					if e.ext == nil {
						e.stats.RecordStop(StopVisitor)
					}
					e.stopped = true
					e.captureSnap()
					return
				}
				// The serial cuts-retained cap; the parallel one lives in
				// the merge drain, where global visit order is known.
				if e.opt.MaxCuts > 0 && e.ext == nil && e.stats.Valid >= e.opt.MaxCuts {
					e.stopExternal(StopBudget)
					return
				}
				// Serial periodic checkpoint cadence, at the visit point
				// (the parallel one lives in the merge drain): frames are
				// coherent here — every level's earlier positions are fully
				// explored — so the snapshot resumes bit-exactly.
				if e.ck != nil && e.opt.CheckpointEvery > 0 &&
					e.stats.Valid%e.opt.CheckpointEvery == 0 {
					e.writePeriodic()
					if e.stopped {
						return
					}
				}
			} else {
				e.stats.Invalid++
			}
		}
	}
	if noutLeft > 0 {
		e.pickOutput(depth+1, oTopo, ninLeft, noutLeft)
	}
}

// CollectAll is a convenience wrapper running Enumerate and returning all
// valid cuts sorted deterministically.
func CollectAll(g *dfg.Graph, opt Options) ([]Cut, Stats) {
	opt.KeepCuts = true
	return Collect(func(visit func(Cut) bool) Stats {
		return Enumerate(g, opt, visit)
	})
}

// CollectBasic runs EnumerateBasic and returns all valid cuts sorted
// deterministically.
func CollectBasic(g *dfg.Graph, opt Options) ([]Cut, Stats) {
	opt.KeepCuts = true
	return Collect(func(visit func(Cut) bool) Stats {
		return EnumerateBasic(g, opt, visit)
	})
}
