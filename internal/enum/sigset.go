package enum

import "polyise/internal/bitset"

// sigSet is the candidate-dedup digest set of the enumeration hot path.
// The implementation lives in bitset.DigestSet so that every dedup consumer
// (this package's global and per-shard dedup, the parallel merge, package
// multidom's generalized-dominator dedup) shares the same open-addressing
// table tuned for Hash128 digests.
type sigSet = bitset.DigestSet

func newSigSet() *sigSet { return bitset.NewDigestSet() }
