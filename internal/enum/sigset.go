package enum

// sigSet is an open-addressing hash set over the [2]uint64 digests that
// Hash128 produces, replacing the map[[2]uint64]bool dedup on the hot path:
// no per-insert hashing of the key (the digest already is the hash), no
// bucket indirection, and Reset reuses the backing array so the steady
// state allocates nothing. The zero digest is representable via a sentinel
// flag, so no key is excluded.
type sigSet struct {
	slots   [][2]uint64
	mask    uint64
	n       int
	hasZero bool
}

const sigSetMinCap = 64 // power of two

func newSigSet() *sigSet {
	s := &sigSet{}
	s.grow(sigSetMinCap)
	return s
}

func (s *sigSet) grow(capacity int) {
	old := s.slots
	s.slots = make([][2]uint64, capacity)
	s.mask = uint64(capacity - 1)
	s.n = 0
	for _, k := range old {
		if k[0]|k[1] != 0 {
			s.insertNoCheck(k)
		}
	}
}

func (s *sigSet) insertNoCheck(k [2]uint64) {
	i := (k[0] ^ k[1]) & s.mask
	for s.slots[i][0]|s.slots[i][1] != 0 {
		i = (i + 1) & s.mask
	}
	s.slots[i] = k
	s.n++
}

// Insert adds k and reports whether it was absent.
func (s *sigSet) Insert(k [2]uint64) bool {
	if k[0]|k[1] == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	i := (k[0] ^ k[1]) & s.mask
	for {
		sl := s.slots[i]
		if sl[0]|sl[1] == 0 {
			break
		}
		if sl == k {
			return false
		}
		i = (i + 1) & s.mask
	}
	s.slots[i] = k
	s.n++
	if 4*s.n >= 3*len(s.slots) {
		s.grow(2 * len(s.slots))
	}
	return true
}

// Len returns the number of distinct keys inserted.
func (s *sigSet) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

// Reset empties the set, keeping the backing array.
func (s *sigSet) Reset() {
	for i := range s.slots {
		s.slots[i] = [2]uint64{}
	}
	s.n = 0
	s.hasZero = false
}
