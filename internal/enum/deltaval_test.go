package enum

// Property tests for the incremental validation engine: driving a real
// enumeration worker's push/undo methods through randomized sequences must
// keep the DeltaValidator's maintained aggregates bit-identical to a
// from-scratch recomputation, and its Validate verdict (plus the derived
// inputs/outputs) identical to the reference Validator, at every step —
// including with the delta-apply fallback forced both ways. This is the
// validation-layer counterpart of TestEngineDeltaSMatchesRebuildS.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// aggMatchesRebuild checks the three maintained aggregates against a
// from-scratch recomputation over the current S.
func (d *DeltaValidator) aggMatchesRebuild(t *testing.T, tag string) bool {
	d.sync()
	g := d.g
	n := g.N()
	predU, succU, outs := bitset.New(n), bitset.New(n), bitset.New(n)
	d.S.ForEach(func(v int) bool {
		predU.UnionWords(g.PredRow(v))
		succU.UnionWords(g.SuccRow(v))
		return true
	})
	g.OutputsInto(outs, d.S)
	if !d.predU.Equal(predU) {
		t.Logf("%s: predU = %v, want %v (S=%v)", tag, d.predU, predU, d.S)
		return false
	}
	if !d.succU.Equal(succU) {
		t.Logf("%s: succU = %v, want %v (S=%v)", tag, d.succU, succU, d.S)
		return false
	}
	if !d.outs.Equal(outs) {
		t.Logf("%s: outs = %v, want %v (S=%v)", tag, d.outs, outs, d.S)
		return false
	}
	return true
}

func runDeltaValidatorSequence(t *testing.T, seed int64, opt Options) bool {
	r := rand.New(rand.NewSource(seed))
	g := randValGraph(r, 8+r.Intn(100))
	opt.MaxInputs = 1 + r.Intn(5)
	opt.MaxOutputs = 1 + r.Intn(3)
	sh := newEnumShared(g, opt)
	e := sh.newWorker(func(Cut) bool { return true }, nil)
	ref := NewValidator(g, opt)
	var stack []engineOp
	depth := 0

	check := func(step int) bool {
		if !e.dval.aggMatchesRebuild(t, "agg") {
			t.Logf("seed=%d step=%d outs=%v I=%v", seed, step, e.outs, e.Ilist)
			return false
		}
		if e.S.Empty() {
			return true
		}
		var got, want Cut
		gotOK := e.dval.Validate(&got)
		wantOK := ref.Validate(e.S, &want)
		if gotOK != wantOK {
			t.Logf("seed=%d step=%d: Validate %v, reference %v (S=%v outs=%v I=%v)",
				seed, step, gotOK, wantOK, e.S, e.outs, e.Ilist)
			return false
		}
		if gotOK {
			if !reflect.DeepEqual(got.Inputs, want.Inputs) ||
				!reflect.DeepEqual(got.Outputs, want.Outputs) {
				t.Logf("seed=%d step=%d: io mismatch %v vs %v", seed, step, got, want)
				return false
			}
		}
		return true
	}

	for step := 0; step < 50; step++ {
		switch {
		case r.Intn(3) == 0 && len(stack) > 0: // undo the top push
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.isOutput {
				e.undoGrowS(top.depth)
				e.outSet.Remove(top.v)
				e.outs = e.outs[:len(e.outs)-1]
			} else {
				e.undoShrinkS(top.depth)
				e.popInput(top.v)
			}
			depth--
		case r.Intn(2) == 0 || e.S.Empty(): // push an output
			o := r.Intn(g.N())
			if e.S.Has(o) || e.Iuser.Has(o) || e.outSet.Has(o) {
				continue
			}
			e.outs = append(e.outs, o)
			e.outSet.Add(o)
			e.growS(depth)
			stack = append(stack, engineOp{isOutput: true, v: o, depth: depth})
			depth++
		default: // push an input from inside S
			w := -1
			for probe := 0; probe < 8; probe++ {
				c := r.Intn(g.N())
				if e.S.Has(c) && !e.outSet.Has(c) {
					w = c
					break
				}
			}
			if w < 0 {
				continue
			}
			e.pushInput(w)
			e.shrinkS(depth, w)
			stack = append(stack, engineOp{isOutput: false, v: w, depth: depth})
			depth++
		}
		// Only check at random steps: skipping some leaves several pushes
		// pending, exercising the lazy multi-entry apply.
		if r.Intn(2) == 0 && !check(step) {
			return false
		}
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.isOutput {
			e.undoGrowS(top.depth)
			e.outSet.Remove(top.v)
			e.outs = e.outs[:len(e.outs)-1]
		} else {
			e.undoShrinkS(top.depth)
			e.popInput(top.v)
		}
		if !check(-1) {
			return false
		}
	}
	return e.S.Empty() && e.dval.aggMatchesRebuild(t, "final")
}

func TestDeltaValidatorMatchesValidator(t *testing.T) {
	opt := DefaultOptions()
	opt.KeepCuts = false
	f := func(seed int64) bool { return runDeltaValidatorSequence(t, seed, opt) }
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaValidatorMatchesValidatorConnected(t *testing.T) {
	opt := DefaultOptions()
	opt.KeepCuts = false
	opt.ConnectedOnly = true
	opt.MaxDepth = 3
	f := func(seed int64) bool { return runDeltaValidatorSequence(t, seed, opt) }
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaValidatorZeroAlloc pins the allocation contract of the
// incremental admission path: with KeepCuts off, a warmed engine must not
// allocate across push → sync → Validate → pop cycles (the whole-loop
// counterpart is TestEnumerateSteadyStateAllocs).
func TestDeltaValidatorZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	g := randValGraph(r, 120)
	opt := DefaultOptions()
	opt.KeepCuts = false
	opt.ConnectedOnly = true // exercise every predicate
	sh := newEnumShared(g, opt)
	e := sh.newWorker(func(Cut) bool { return true }, nil)
	var cut Cut
	cycle := func() {
		for _, o := range []int{g.N() - 1, g.N() - 2, g.N() - 3} {
			if e.S.Has(o) || e.outSet.Has(o) {
				continue
			}
			e.outs = append(e.outs, o)
			e.outSet.Add(o)
			e.growS(0)
			e.dval.NumOutputs()
			e.dval.Validate(&cut)
			e.undoGrowS(0)
			e.outSet.Remove(o)
			e.outs = e.outs[:len(e.outs)-1]
		}
	}
	cycle() // warm every scratch buffer
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("delta validation path allocated %.1f times per run, want 0", allocs)
	}
}

// TestDeltaValidatorForcedFallback pins both apply paths to each other: the
// sequences must agree with the reference with the delta-apply fallback
// forced always-on (every apply rebuilds from S) and always-off (every
// apply takes the incremental path), mirroring the PR 3 delta-S tests.
func TestDeltaValidatorForcedFallback(t *testing.T) {
	saveNum, saveDen := valFallbackNum, valFallbackDen
	defer func() { valFallbackNum, valFallbackDen = saveNum, saveDen }()
	opt := DefaultOptions()
	opt.KeepCuts = false

	valFallbackNum, valFallbackDen = 0, 1 // every delta oversized: always rebuild
	f := func(seed int64) bool { return runDeltaValidatorSequence(t, seed, opt) }
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal("forced fallback:", err)
	}

	valFallbackNum, valFallbackDen = 1, 0 // never oversized: always incremental
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal("forced incremental:", err)
	}
}
