package enum

// White-box test of the steal-handoff stall watchdog. A genuine stall
// requires a broken liveness invariant — a claimed thief that never
// receives — which the healthy protocol cannot produce, so the watchdog is
// exercised directly on a crafted donor state: a steal setup whose tasks
// channel has no receiver. The donor must reabsorb the donated range,
// close both freshly spliced segments so the merge still drains, release
// the task's liveness token, and fail the run with a StallError instead of
// hanging forever.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"polyise/internal/parallel"
)

func TestChaosStallWatchdogReabsorbs(t *testing.T) {
	ord := parallel.NewSplitOrdered[Cut](1, 4)
	st := &stealState{ord: ord, tasks: make(chan stealTask), done: make(chan struct{})}
	// Donor's own token plus one phantom peer: the stall release must not be
	// the one that closes done (the donor still holds its own token).
	st.active.Store(2)

	var ext atomic.Bool
	// The watchdog bound comes from the Options, not package state, so the
	// shortened test timeout cannot leak into a concurrently running
	// enumeration.
	e := &incEnum{steal: st, ext: &ext, opt: Options{StealStallTimeout: 50 * time.Millisecond}}
	e.curSeg = ord.Top(0)
	stolen, resume := ord.Split(e.curSeg)
	e.ranges = append(e.ranges, posRange{cur: 2, end: 5})
	e.segStack = append(e.segStack, segResume{rangeIdx: 0, seg: resume})

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		e.sendTask(stealTask{seg: stolen}, 0, 9, resume)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("sendTask hung past the stall watchdog")
	}

	var stall *StallError
	if !errors.As(e.stats.Err, &stall) {
		t.Fatalf("Stats.Err = %v, want *StallError", e.stats.Err)
	}
	if e.stats.StopReason != StopError {
		t.Fatalf("StopReason = %v, want %v", e.stats.StopReason, StopError)
	}
	if !e.stopped || !ext.Load() {
		t.Fatal("stall did not raise the worker and shared stop flags")
	}
	if e.ranges[0].end != 9 {
		t.Fatalf("donated range not reabsorbed: end = %d, want the restored 9", e.ranges[0].end)
	}
	if len(e.segStack) != 0 {
		t.Fatalf("segStack still holds %d resume entries", len(e.segStack))
	}
	if got := st.active.Load(); got != 2 {
		t.Fatalf("liveness tokens = %d after reabsorption, want the 2 pre-stall tokens", got)
	}

	// The merge must still drain: the donor's current segment plus the two
	// closed-empty spliced ones are all that exist.
	ord.Close(e.curSeg)
	drained := make(chan struct{})
	go func() {
		ord.Drain(func(Cut) {})
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("merge did not drain after stall reabsorption")
	}
}
