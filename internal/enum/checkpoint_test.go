package enum_test

// Checkpoint/resume identity suite: the durable-snapshot contract says the
// snapshot's delivered prefix concatenated with the resumed run's sequence
// is bit-identical to an uninterrupted serial run — at any Parallelism on
// either side of the seam, resuming from final snapshots (clean stops,
// contained panics) and from mid-run periodic snapshots (the hard-crash
// case), with MaxCuts and the CheckpointEvery cadence counting globally
// across the seam. TestCrashResume* are part of `make crash`.

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polyise/internal/checkpoint"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/workload"
)

// ckptOpt is the standard checkpointing configuration of this suite.
func ckptOpt(path string, workers, every int) enum.Options {
	opt := enum.DefaultOptions()
	opt.KeepCuts = true
	opt.Parallelism = workers
	opt.CheckpointPath = path
	opt.CheckpointEvery = every
	return opt
}

// runCollect executes one enumeration, collecting the visit sequence.
func runCollect(g *dfg.Graph, opt enum.Options) ([]string, enum.Stats) {
	var got []string
	stats := enum.Enumerate(g, opt, func(c enum.Cut) bool {
		got = append(got, c.String())
		return true
	})
	return got, stats
}

// resumeCollect resumes from a decoded snapshot, collecting the sequence.
func resumeCollect(t *testing.T, g *dfg.Graph, opt enum.Options, snap *checkpoint.Snapshot) ([]string, enum.Stats) {
	t.Helper()
	var got []string
	stats, err := enum.ResumeEnumerate(g, opt, snap, func(c enum.Cut) bool {
		got = append(got, c.String())
		return true
	})
	if err != nil {
		t.Fatalf("ResumeEnumerate: %v", err)
	}
	return got, stats
}

func readSnap(t *testing.T, path string) *checkpoint.Snapshot {
	t.Helper()
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return snap
}

// TestResumeAfterBudgetStop drives the seam through budget stops: a run
// capped at k cuts leaves a final snapshot, a resume capped at k+m more
// must deliver exactly serial[k:k+m] — MaxCuts counts the whole logical
// run, not the resumed process — and a chained second resume finishes the
// sequence. Every (interrupt, resume) worker-count pair crosses the seam.
func TestResumeAfterBudgetStop(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(1)), 35, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	if len(serial) < 30 {
		t.Fatalf("test graph yields only %d cuts; too small to cut twice", len(serial))
	}
	k := len(serial) / 3
	m := 7

	for _, wA := range []int{1, 4} {
		for _, wB := range []int{1, 4} {
			dir := t.TempDir()
			p1 := filepath.Join(dir, "a.ckpt")
			opt := ckptOpt(p1, wA, 0)
			opt.MaxCuts = k
			got1, stats1 := runCollect(g, opt)
			if stats1.StopReason != enum.StopBudget {
				t.Fatalf("wA=%d: capped run stopped with %v", wA, stats1.StopReason)
			}
			if !reflect.DeepEqual(got1, serial[:k]) {
				t.Fatalf("wA=%d: capped run delivered %d cuts, not the serial k-prefix", wA, len(got1))
			}
			snap1 := readSnap(t, p1)
			if snap1.Visited != int64(k) || snap1.Done {
				t.Fatalf("wA=%d: snapshot Visited=%d Done=%v, want %d false", wA, snap1.Visited, snap1.Done, k)
			}

			// Resume with a further budget: the cap is global across the seam.
			p2 := filepath.Join(dir, "b.ckpt")
			ropt := ckptOpt(p2, wB, 0)
			ropt.MaxCuts = k + m
			got2, stats2 := resumeCollect(t, g, ropt, snap1)
			if stats2.StopReason != enum.StopBudget || stats2.Valid != k+m {
				t.Fatalf("wA=%d wB=%d: capped resume Valid=%d reason=%v, want %d budget-stop",
					wA, wB, stats2.Valid, stats2.StopReason, k+m)
			}
			if !reflect.DeepEqual(got2, serial[k:k+m]) {
				t.Fatalf("wA=%d wB=%d: capped resume delivered %d cuts, not serial[%d:%d]",
					wA, wB, len(got2), k, k+m)
			}

			// Chain a second resume to completion off the resumed run's own
			// final snapshot.
			snap2 := readSnap(t, p2)
			fopt := ckptOpt(p2, wB, 0)
			got3, stats3 := resumeCollect(t, g, fopt, snap2)
			if stats3.StopReason != enum.StopNone || stats3.Valid != len(serial) {
				t.Fatalf("wA=%d wB=%d: final resume Valid=%d reason=%v, want %d clean",
					wA, wB, stats3.Valid, stats3.StopReason, len(serial))
			}
			whole := append(append(append([]string(nil), got1...), got2...), got3...)
			if !reflect.DeepEqual(whole, serial) {
				t.Fatalf("wA=%d wB=%d: prefix+resume+resume diverges from serial (%d vs %d cuts)",
					wA, wB, len(whole), len(serial))
			}

			// The completed resume wrote a Done snapshot: nothing to resume.
			if _, err := enum.ResumeEnumerate(g, fopt, readSnap(t, p2), nil); !errors.Is(err, enum.ErrCompleted) {
				t.Fatalf("resume of a completed run: err = %v, want ErrCompleted", err)
			}
		}
	}
}

// TestResumeFromMidRunSnapshot is the hard-crash case: a periodic snapshot
// copied away mid-run (as a crashed process would leave it, behind the
// delivered frontier) must resume to exactly the remaining serial suffix.
// The serial × CheckpointEvery=1 case additionally exercises the saved
// fast-forward frames at maximum depth.
func TestResumeFromMidRunSnapshot(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(2)), 35, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	const copyAt = 17
	if len(serial) <= copyAt {
		t.Fatalf("test graph yields only %d cuts", len(serial))
	}

	for _, wA := range []int{1, 4} {
		for _, every := range []int{1, 7} {
			dir := t.TempDir()
			live := filepath.Join(dir, "live.ckpt")
			crash := filepath.Join(dir, "crash.ckpt")
			opt := ckptOpt(live, wA, every)
			opt.KeepCuts = true
			count := 0
			stats := enum.Enumerate(g, opt, func(c enum.Cut) bool {
				count++
				if count == copyAt {
					b, err := os.ReadFile(live)
					if err != nil {
						t.Errorf("wA=%d every=%d: no periodic snapshot by cut %d: %v", wA, every, copyAt, err)
						return false
					}
					if err := os.WriteFile(crash, b, 0o644); err != nil {
						t.Errorf("copy snapshot: %v", err)
						return false
					}
				}
				return true
			})
			if t.Failed() {
				t.FailNow()
			}
			if stats.StopReason != enum.StopNone || count != len(serial) {
				t.Fatalf("wA=%d every=%d: base run delivered %d cuts, reason %v", wA, every, count, stats.StopReason)
			}

			snap := readSnap(t, crash)
			if snap.Visited < 1 || snap.Visited >= int64(copyAt) {
				t.Fatalf("wA=%d every=%d: mid-run snapshot Visited=%d, want in [1,%d)", wA, every, snap.Visited, copyAt)
			}
			for _, wB := range []int{1, 4} {
				ropt := enum.DefaultOptions()
				ropt.KeepCuts = true
				ropt.Parallelism = wB
				got, rstats := resumeCollect(t, g, ropt, snap)
				if !reflect.DeepEqual(got, serial[snap.Visited:]) {
					t.Fatalf("wA=%d every=%d wB=%d: resume from Visited=%d diverges (%d cuts, want %d)",
						wA, every, wB, snap.Visited, len(got), len(serial)-int(snap.Visited))
				}
				if rstats.Valid != len(serial) {
					t.Fatalf("wA=%d every=%d wB=%d: resumed Valid=%d, want global %d",
						wA, every, wB, rstats.Valid, len(serial))
				}
			}
		}
	}
}

// TestCheckpointStopChannel exercises the cooperative preemption hook: a
// closed CheckpointStop channel stops the run with StopCheckpoint, the
// final snapshot resumes to the remaining suffix.
func TestCheckpointStopChannel(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 35, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	if len(serial) < 20 {
		t.Fatalf("test graph yields only %d cuts", len(serial))
	}

	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "stop.ckpt")
		opt := ckptOpt(path, workers, 0)
		ch := make(chan struct{})
		opt.CheckpointStop = ch
		closed := false
		var got1 []string
		stats := enum.Enumerate(g, opt, func(c enum.Cut) bool {
			got1 = append(got1, c.String())
			if !closed && len(got1) == 9 {
				closed = true
				close(ch)
			}
			return true
		})
		if stats.StopReason != enum.StopCheckpoint {
			t.Fatalf("workers=%d: StopReason = %v, want %v", workers, stats.StopReason, enum.StopCheckpoint)
		}
		if len(got1) < 9 || len(got1) >= len(serial) || !isPrefix(got1, serial) {
			t.Fatalf("workers=%d: preempted run delivered %d cuts (of %d), not a proper prefix",
				workers, len(got1), len(serial))
		}
		snap := readSnap(t, path)
		if snap.Visited != int64(len(got1)) {
			t.Fatalf("workers=%d: snapshot Visited=%d, delivered %d", workers, snap.Visited, len(got1))
		}
		ropt := enum.DefaultOptions()
		ropt.KeepCuts = true
		ropt.Parallelism = workers
		got2, rstats := resumeCollect(t, g, ropt, snap)
		if rstats.StopReason != enum.StopNone {
			t.Fatalf("workers=%d: resumed run reason %v", workers, rstats.StopReason)
		}
		if whole := append(append([]string(nil), got1...), got2...); !reflect.DeepEqual(whole, serial) {
			t.Fatalf("workers=%d: prefix+resume diverges from serial (%d vs %d cuts)",
				workers, len(whole), len(serial))
		}
	}
}

// TestResumeValidation pins the refusal paths: wrong graph, wrong semantic
// options, completed snapshot, corrupt frontier — each a typed error, no
// enumeration started.
func TestResumeValidation(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(4)), 30, workload.DefaultProfile())
	path := filepath.Join(t.TempDir(), "v.ckpt")
	opt := ckptOpt(path, 1, 0)
	opt.MaxCuts = 10
	if _, stats := runCollect(g, opt); stats.StopReason != enum.StopBudget {
		t.Fatalf("setup run stopped with %v", stats.StopReason)
	}
	snap := readSnap(t, path)
	noVisit := func(enum.Cut) bool { t.Error("validation failure must not enumerate"); return false }

	g2 := workload.MiBenchLike(rand.New(rand.NewSource(5)), 30, workload.DefaultProfile())
	var mm *checkpoint.MismatchError
	if _, err := enum.ResumeEnumerate(g2, opt, snap, noVisit); !errors.As(err, &mm) || mm.Field != "graph" {
		t.Fatalf("wrong graph: err = %v, want graph MismatchError", err)
	}
	opt2 := opt
	opt2.MaxInputs++
	if _, err := enum.ResumeEnumerate(g, opt2, snap, noVisit); !errors.As(err, &mm) || mm.Field != "options" {
		t.Fatalf("wrong options: err = %v, want options MismatchError", err)
	}
	done := *snap
	done.Done = true
	if _, err := enum.ResumeEnumerate(g, opt, &done, noVisit); !errors.Is(err, enum.ErrCompleted) {
		t.Fatalf("done snapshot: err = %v, want ErrCompleted", err)
	}
	// Identity outranks Done: a completed snapshot for a different graph is
	// a mismatch, not "nothing to resume" for this one.
	if _, err := enum.ResumeEnumerate(g2, opt, &done, noVisit); !errors.As(err, &mm) || mm.Field != "graph" {
		t.Fatalf("done snapshot, wrong graph: err = %v, want graph MismatchError", err)
	}
	bad := *snap
	bad.CurTop = g.N() + 1
	var fe *checkpoint.FormatError
	if _, err := enum.ResumeEnumerate(g, opt, &bad, noVisit); !errors.As(err, &fe) {
		t.Fatalf("corrupt frontier: err = %v, want FormatError", err)
	}
}

// TestCrashResumeEverySite is the crash-resume chaos matrix: an injected
// panic at every protocol site of a checkpointing run, then a resume from
// the snapshot the contained crash left behind — at the OTHER worker count,
// so every crash/resume pair also crosses the serial↔parallel dedup-scope
// seam. The invariant: crashed prefix + resumed suffix ≡ serial, no
// duplicate and no missing cuts. SiteCheckpointWrite crashes inside the
// snapshot writer itself, proving the previous snapshot survives a failed
// atomic write.
func TestCrashResumeEverySite(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(2)), 60, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)

	fired := 0
	for site := faultinject.Site(0); site < faultinject.NumSites; site++ {
		for _, workers := range []int{1, 4} {
			path := filepath.Join(t.TempDir(), "crash.ckpt")
			opt := ckptOpt(path, workers, 5)
			inj := faultinject.Injection{
				Site:   site,
				Hit:    faultinject.HitFromSeed(int64(workers), site, 50),
				Action: faultinject.ActPanic,
			}
			plan := faultinject.Install(inj)
			var got1 []string
			stats := runBounded(t, "crash run", func() enum.Stats {
				return enum.Enumerate(g, opt, func(c enum.Cut) bool {
					got1 = append(got1, c.String())
					return true
				})
			})
			faultinject.Uninstall()

			if stats.Err == nil {
				// The addressed traversal does not exist on this schedule
				// (e.g. steal sites in a serial run): the run must be clean
				// and complete.
				if plan.Fired(site) >= inj.Hit {
					t.Fatalf("%v workers=%d: injection fired but no error surfaced", site, workers)
				}
				if !reflect.DeepEqual(got1, serial) {
					t.Fatalf("%v workers=%d: clean run diverges from serial", site, workers)
				}
				continue
			}
			fired++
			var pe *enum.PanicError
			if !errors.As(stats.Err, &pe) {
				t.Fatalf("%v workers=%d: Stats.Err = %v, want *PanicError", site, workers, stats.Err)
			}
			if !isPrefix(got1, serial) {
				t.Fatalf("%v workers=%d: crashed run's %d cuts are not a serial prefix", site, workers, len(got1))
			}

			// The contained crash still wrote a final snapshot; resume at the
			// other worker count.
			snap := readSnap(t, path)
			if snap.Visited != int64(len(got1)) {
				t.Fatalf("%v workers=%d: snapshot Visited=%d, crashed run delivered %d",
					site, workers, snap.Visited, len(got1))
			}
			ropt := enum.DefaultOptions()
			ropt.KeepCuts = true
			ropt.Parallelism = 5 - workers // 1↔4: always cross the seam
			got2, rstats := resumeCollect(t, g, ropt, snap)
			if rstats.StopReason != enum.StopNone {
				t.Fatalf("%v workers=%d: resumed run stopped with %v", site, workers, rstats.StopReason)
			}
			if whole := append(append([]string(nil), got1...), got2...); !reflect.DeepEqual(whole, serial) {
				t.Fatalf("%v workers=%d: crash prefix (%d) + resume (%d) diverges from serial (%d)",
					site, workers, len(got1), len(got2), len(serial))
			}
		}
	}
	if fired < 4 {
		t.Fatalf("only %d crash injections fired — the matrix is near-vacuous", fired)
	}
}
