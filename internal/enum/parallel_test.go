package enum_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"math/rand"

	"polyise/internal/enum"
	"polyise/internal/workload"
)

// Concurrency behaviour of the sharded enumeration: early stop, stress
// beyond GOMAXPROCS, and deadline handling. All of these run under -race in
// CI (`make test-race`), which is what actually verifies the clone-per-shard
// state ownership — the assertions below only pin the observable semantics.

// TestParallelEarlyStop verifies the early-stop contract: a visitor that
// returns false after k cuts sees exactly the serial enumeration's first k
// cuts, and the enumeration terminates (shards are cancelled, the merge
// drains) rather than hanging.
func TestParallelEarlyStop(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 60, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	if len(serial) < 10 {
		t.Fatalf("reference graph yields only %d cuts; pick a richer seed", len(serial))
	}

	for _, k := range []int{1, 3, len(serial) / 2} {
		popt := enum.DefaultOptions()
		popt.Parallelism = 4
		popt.KeepCuts = true
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			enum.Enumerate(g, popt, func(c enum.Cut) bool {
				got = append(got, c.String())
				return len(got) < k
			})
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("k=%d: early-stopped parallel enumeration did not terminate", k)
		}
		if !reflect.DeepEqual(got, serial[:k]) {
			t.Fatalf("k=%d: stopped prefix diverges from serial\ngot  %v\nwant %v", k, got, serial[:k])
		}
	}
}

// TestParallelOversubscribed stress-tests worker counts far beyond
// GOMAXPROCS: correctness must not depend on shards actually running in
// parallel, only on the merge order.
func TestParallelOversubscribed(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(9)), 80, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)

	workers := 4*runtime.GOMAXPROCS(0) + 3
	popt := enum.DefaultOptions()
	popt.Parallelism = workers
	if got := visitSequence(g, popt); !reflect.DeepEqual(serial, got) {
		t.Fatalf("workers=%d: sequence diverges (%d vs %d cuts)", workers, len(got), len(serial))
	}
}

// TestParallelManyShardsSmallGraph drives the degenerate split where there
// are more workers than top-level positions.
func TestParallelManyShardsSmallGraph(t *testing.T) {
	g := ladder(t)
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	popt := enum.DefaultOptions()
	popt.Parallelism = 32
	if got := visitSequence(g, popt); !reflect.DeepEqual(serial, got) {
		t.Fatalf("32 workers on an 8-node graph diverge: %v vs %v", got, serial)
	}
}

// TestParallelExpiredDeadline checks that a deadline in the past stops all
// shards promptly and is reported, with no hang on the merge.
func TestParallelExpiredDeadline(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(5)), 400, workload.DefaultProfile())
	opt := enum.DefaultOptions()
	opt.Parallelism = 4
	opt.Deadline = time.Now().Add(-time.Second)
	done := make(chan enum.Stats, 1)
	go func() {
		done <- enum.Enumerate(g, opt, func(enum.Cut) bool { return true })
	}()
	select {
	case stats := <-done:
		if stats.StopReason != enum.StopDeadline {
			t.Fatalf("expired deadline not reported: %+v", stats)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("parallel enumeration ignored an expired deadline")
	}
}

// TestParallelVisitorGetsOwnedCuts verifies that parallel enumeration hands
// the visitor cuts whose node sets survive the callback (they crossed a
// goroutine boundary, so they are always clones), even with KeepCuts off.
func TestParallelVisitorGetsOwnedCuts(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 40, workload.DefaultProfile())
	opt := enum.DefaultOptions()
	opt.Parallelism = 3
	opt.KeepCuts = false
	var kept []enum.Cut
	enum.Enumerate(g, opt, func(c enum.Cut) bool {
		kept = append(kept, c)
		return true
	})
	seen := map[string]bool{}
	for _, c := range kept {
		if seen[c.Nodes.Signature()] {
			t.Fatal("a retained cut's node set was overwritten by a later one")
		}
		seen[c.Nodes.Signature()] = true
	}
	if len(kept) == 0 {
		t.Fatal("expected cuts")
	}
}

// TestParallelEarlyStopValidCount is the regression test for the Stats.Valid
// overcount after an early visitor stop: the merge used to keep counting
// distinct cuts drained after the stop, so Valid exceeded the number of cuts
// actually reported. Valid must equal exactly the cuts the visitor received
// — including the one it stopped on — at any worker count, matching the
// serial semantics.
func TestParallelEarlyStopValidCount(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 60, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	total := len(visitSequence(g, sopt))
	if total < 10 {
		t.Fatalf("reference graph yields only %d cuts; pick a richer seed", total)
	}
	for _, workers := range []int{1, 4, g.N()} {
		for _, k := range []int{1, 3, total / 2} {
			opt := enum.DefaultOptions()
			opt.Parallelism = workers
			visited := 0
			stats := enum.Enumerate(g, opt, func(enum.Cut) bool {
				visited++
				return visited < k
			})
			if visited != k {
				t.Fatalf("workers=%d k=%d: visitor ran %d times", workers, k, visited)
			}
			if stats.Valid != k {
				t.Fatalf("workers=%d k=%d: Stats.Valid = %d, want exactly the %d visited cuts",
					workers, k, stats.Valid, k)
			}
		}
	}
}

// TestParallelWorkerClampAllocs pins the worker clamp: asking for far more
// workers than there are first-output positions must not multiply the
// one-time per-worker setup (validator, traverser, scratch buffers), because
// the extra states could never hold distinct top-level work — load imbalance
// is work-stealing's job, not oversharding's.
func TestParallelWorkerClampAllocs(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(7)), 24, workload.DefaultProfile())
	run := func(workers int) float64 {
		opt := enum.DefaultOptions()
		opt.Parallelism = workers
		return testing.AllocsPerRun(5, func() {
			enum.Enumerate(g, opt, func(enum.Cut) bool { return true })
		})
	}
	base := run(g.N())
	over := run(4 * g.N())
	// Identical worker counts after clamping should allocate near-identically;
	// 1.3× absorbs scheduling noise (steal tasks allocate a little).
	if over > 1.3*base {
		t.Fatalf("workers=4n allocates %.0f/op vs %.0f/op at workers=n — clamp to min(workers, n) ineffective",
			over, base)
	}
}

// TestParallelStealForced runs the enumeration in the configuration where
// interior work-stealing is the only load-balancing mechanism left: one
// worker per first-output position, so every worker exhausts the top-level
// claims after a single subtree and all remaining balance comes from stolen
// next-output ranges. The visit sequence must still be bit-for-bit serial,
// and across the corpus at least one steal must actually occur (the
// aggregate assertion keeps the test robust against scheduling luck on any
// single instance).
func TestParallelStealForced(t *testing.T) {
	steals := 0
	for seed := int64(1); seed <= 4; seed++ {
		g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), 70, workload.DefaultProfile())
		sopt := enum.DefaultOptions()
		sopt.Parallelism = 1
		serial := visitSequence(g, sopt)

		popt := enum.DefaultOptions()
		popt.Parallelism = g.N()
		popt.KeepCuts = true
		var par []string
		stats := enum.Enumerate(g, popt, func(c enum.Cut) bool {
			par = append(par, c.String())
			return true
		})
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("seed=%d workers=n: steal-forced sequence diverges (%d vs %d cuts)",
				seed, len(par), len(serial))
		}
		steals += stats.Steals
	}
	if steals == 0 {
		t.Fatal("no steal occurred across the corpus at workers=n — the stealing path is dead")
	}
}

// TestParallelStealEarlyStop combines the two stress axes: a visitor that
// stops mid-stream while stealing is forced. The stopped prefix must be the
// serial prefix exactly, and Valid must count exactly the visited cuts.
func TestParallelStealEarlyStop(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(2)), 70, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	if len(serial) < 8 {
		t.Fatalf("reference graph yields only %d cuts", len(serial))
	}
	for _, k := range []int{2, len(serial) / 2} {
		opt := enum.DefaultOptions()
		opt.Parallelism = g.N()
		opt.KeepCuts = true
		var got []string
		done := make(chan enum.Stats, 1)
		go func() {
			done <- enum.Enumerate(g, opt, func(c enum.Cut) bool {
				got = append(got, c.String())
				return len(got) < k
			})
		}()
		select {
		case stats := <-done:
			if !reflect.DeepEqual(got, serial[:k]) {
				t.Fatalf("k=%d: steal-forced stopped prefix diverges from serial", k)
			}
			if stats.Valid != k {
				t.Fatalf("k=%d: Stats.Valid = %d, want %d", k, stats.Valid, k)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("k=%d: steal-forced early stop did not terminate", k)
		}
	}
}
