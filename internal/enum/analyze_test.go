package enum

// White-box tests for the crossing-count path analysis that replaces
// Lengauer–Tarjan inside PICK-INPUTS: its reduced-graph dominator chains
// must match the real dominator solver on arbitrary graphs and blocked
// sets.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
)

// newAnalyzer builds a minimal incEnum for direct analyzePaths calls.
func newAnalyzer(g *dfg.Graph) *incEnum {
	n := g.N()
	e := &incEnum{
		g:     g,
		tr:    g.NewTraverser(),
		Iuser: bitset.New(n),
	}
	for v := 0; v < n; v++ {
		if g.IsRoot(v) || g.IsUserForbidden(v) {
			e.entries = append(e.entries, v)
		}
	}
	return e
}

// oracle computes the reduced-graph dominators of o with the Lengauer–
// Tarjan solver on the augmented graph.
func oracle(g *dfg.Graph, blocked []int, o int) (reachable bool, doms []int) {
	aug := g.Augmented()
	solver := domtree.ForwardSolver(g)
	b := bitset.New(aug.N)
	for _, v := range blocked {
		b.Add(v)
	}
	solver.Run(b)
	if !solver.Reachable(o) {
		return false, nil
	}
	for u := solver.IDom(o); u >= 0 && u != aug.Source; u = solver.IDom(u) {
		doms = append(doms, u)
	}
	sort.Ints(doms)
	return true, doms
}

func randDFGLocal(r *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(4) == 0 {
			g.MustAddNode(dfg.OpVar, "")
			continue
		}
		k := 1 + r.Intn(2)
		preds := make([]int, 0, k)
		for j := 0; j < k; j++ {
			preds = append(preds, r.Intn(i))
		}
		op := dfg.OpAdd
		if r.Intn(6) == 0 {
			op = dfg.OpLoad
		}
		id := g.MustAddNode(op, "", preds...)
		if op == dfg.OpLoad {
			if err := g.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

func TestAnalyzePathsMatchesSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFGLocal(r, 3+r.Intn(30))
		e := newAnalyzer(g)
		onPath := bitset.New(g.N())
		back := bitset.New(g.N())
		for trial := 0; trial < 12; trial++ {
			o := r.Intn(g.N())
			if g.IsForbidden(o) {
				continue
			}
			// Random blocked set among o's ancestors.
			anc := g.ReachTo(o).Members()
			e.Iuser.Clear()
			var blocked []int
			for _, a := range anc {
				if r.Intn(4) == 0 {
					e.Iuser.Add(a)
					blocked = append(blocked, a)
				}
			}
			gotReach, gotChain := e.analyzePaths(o, back, onPath, nil, -1, nil, true)
			wantReach, wantChain := oracle(g, blocked, o)
			if gotReach != wantReach {
				t.Logf("seed=%d o=%d blocked=%v reach %v want %v", seed, o, blocked, gotReach, wantReach)
				return false
			}
			if !gotReach {
				continue
			}
			sort.Ints(gotChain)
			if !reflect.DeepEqual(gotChain, wantChain) &&
				!(len(gotChain) == 0 && len(wantChain) == 0) {
				t.Logf("seed=%d o=%d blocked=%v chain %v want %v", seed, o, blocked, gotChain, wantChain)
				return false
			}
			// onPath sanity: every chain member lies on a surviving path,
			// and o itself is on-path.
			if !onPath.Has(o) {
				return false
			}
			for _, u := range gotChain {
				if !onPath.Has(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzePathsParentRestriction(t *testing.T) {
	// Computing with parent sets from a previous (smaller) blocked set must
	// give identical results to computing from scratch.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFGLocal(r, 5+r.Intn(25))
		e := newAnalyzer(g)
		o := r.Intn(g.N())
		if g.IsForbidden(o) {
			return true
		}
		anc := g.ReachTo(o).Members()
		if len(anc) < 2 {
			return true
		}
		// Parent level: block one ancestor.
		first := anc[r.Intn(len(anc))]
		e.Iuser.Add(first)
		pBack := bitset.New(g.N())
		pOnPath := bitset.New(g.N())
		pReach, _ := e.analyzePaths(o, pBack, pOnPath, nil, -1, nil, true)
		if !pReach {
			return true
		}
		// Child level: block another.
		second := anc[r.Intn(len(anc))]
		if second == first {
			return true
		}
		e.Iuser.Add(second)

		backScratch := bitset.New(g.N())
		onScratch := bitset.New(g.N())
		reach1, chain1 := e.analyzePaths(o, backScratch, onScratch, nil, -1, nil, true)
		sort.Ints(chain1)
		on1 := onScratch.Clone()

		reach2, chain2 := e.analyzePaths(o, backScratch, onScratch, pBack, second, nil, true)
		sort.Ints(chain2)

		if reach1 != reach2 {
			return false
		}
		if reach1 && !reflect.DeepEqual(chain1, chain2) &&
			!(len(chain1) == 0 && len(chain2) == 0) {
			t.Logf("seed=%d o=%d chains differ: %v vs %v", seed, o, chain1, chain2)
			return false
		}
		if reach1 && !on1.Equal(onScratch) {
			t.Logf("seed=%d o=%d onPath differs", seed, o)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzePathsChainOnKnownGraph(t *testing.T) {
	// a → b → c → d: dominators of d are a, b, c in topological order.
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpNot, "b", a)
	c := g.MustAddNode(dfg.OpNeg, "c", b)
	d := g.MustAddNode(dfg.OpAbs, "d", c)
	g.MustFreeze()
	e := newAnalyzer(g)
	onPath := bitset.New(g.N())
	back := bitset.New(g.N())
	reach, chain := e.analyzePaths(d, back, onPath, nil, -1, nil, true)
	if !reach {
		t.Fatal("d unreachable")
	}
	if want := []int{a, b, c}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	// Blocking b separates d entirely.
	e.Iuser.Add(b)
	reach, _ = e.analyzePaths(d, back, onPath, nil, -1, nil, true)
	if reach {
		t.Fatal("d should be separated with b blocked")
	}
}
