package enum

// White-box property test for the incremental search-state engine: driving
// a real enumeration worker's push/undo methods (growS/shrinkS and their
// journal undos) through randomized sequences must keep the maintained cut
// S bit-identical to the from-scratch reference rebuildS at every step.
// This is the engine-level counterpart of the kernel-level
// TestDeltaCutMatchesRebuild in package dfg: it additionally exercises the
// per-depth journal slot discipline the recursion relies on.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// engineOp is one applied push, replayed backward to undo.
type engineOp struct {
	isOutput bool
	v        int
	depth    int
}

func (e *incEnum) sMatchesRebuild(scratch *bitset.Set) bool {
	scratch.Clear()
	e.tr.CutNodesInto(scratch, e.outs, e.Iuser)
	return e.S.Equal(scratch)
}

func TestEngineDeltaSMatchesRebuildS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randValGraph(r, 8+r.Intn(120))
		sh := newEnumShared(g, DefaultOptions())
		e := sh.newWorker(func(Cut) bool { return true }, nil)
		ref := bitset.New(g.N())
		var stack []engineOp
		depth := 0

		for step := 0; step < 60; step++ {
			switch {
			case r.Intn(3) == 0 && len(stack) > 0: // undo the top push
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.isOutput {
					e.undoGrowS(top.depth)
					e.outSet.Remove(top.v)
					e.outs = e.outs[:len(e.outs)-1]
				} else {
					e.undoShrinkS(top.depth)
					e.popInput(top.v)
				}
				depth--
			case r.Intn(2) == 0 || e.S.Empty(): // push an output
				o := r.Intn(g.N())
				if e.S.Has(o) || e.Iuser.Has(o) || e.outSet.Has(o) {
					continue
				}
				e.outs = append(e.outs, o)
				e.outSet.Add(o)
				e.growS(depth)
				stack = append(stack, engineOp{isOutput: true, v: o, depth: depth})
				depth++
			default: // push an input from inside S
				w := -1
				for probe := 0; probe < 8; probe++ {
					c := r.Intn(g.N())
					if e.S.Has(c) && !e.outSet.Has(c) {
						w = c
						break
					}
				}
				if w < 0 {
					continue
				}
				e.pushInput(w)
				e.shrinkS(depth, w)
				stack = append(stack, engineOp{isOutput: false, v: w, depth: depth})
				depth++
			}
			if !e.sMatchesRebuild(ref) {
				t.Logf("seed=%d step=%d: S=%v rebuild=%v outs=%v I=%v",
					seed, step, e.S.Members(), ref.Members(), e.outs, e.Ilist)
				return false
			}
		}
		// Full unwind must leave the worker empty, as topLevel requires.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.isOutput {
				e.undoGrowS(top.depth)
				e.outSet.Remove(top.v)
				e.outs = e.outs[:len(e.outs)-1]
			} else {
				e.undoShrinkS(top.depth)
				e.popInput(top.v)
			}
			if !e.sMatchesRebuild(ref) {
				return false
			}
		}
		return e.S.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
