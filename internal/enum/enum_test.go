package enum_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/baseline"
	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// ladder is the shared reference graph:
//
//	a(0)  b(1)  c(2)    roots
//	  \   / \   /
//	   d(3)  e(4)
//	    \   / \
//	     f(5)  g(6)
//	      \   /
//	       h(7)
func ladder(t testing.TB) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	c := g.MustAddNode(dfg.OpVar, "c")
	d := g.MustAddNode(dfg.OpAdd, "d", a, b)
	e := g.MustAddNode(dfg.OpMul, "e", b, c)
	f := g.MustAddNode(dfg.OpSub, "f", d, e)
	gg := g.MustAddNode(dfg.OpXor, "g", e)
	h := g.MustAddNode(dfg.OpOr, "h", f, gg)
	_, _ = gg, h
	g.MustFreeze()
	return g
}

func signatures(cuts []enum.Cut) []string {
	out := make([]string, len(cuts))
	for i, c := range cuts {
		out[i] = c.Nodes.Signature()
	}
	return out
}

// checkAgainstBrute compares an enumeration against the brute-force oracle.
func checkAgainstBrute(t *testing.T, g *dfg.Graph, opt enum.Options) {
	t.Helper()
	want, _ := baseline.CollectBrute(g, opt)
	got, stats := enum.CollectAll(g, opt)
	if !reflect.DeepEqual(signatures(got), signatures(want)) {
		t.Fatalf("enum/brute mismatch (opt=%+v):\n got  %d cuts %v\n want %d cuts %v\n stats %+v",
			opt, len(got), cutStrings(got), len(want), cutStrings(want), stats)
	}
}

func cutStrings(cuts []enum.Cut) []string {
	out := make([]string, len(cuts))
	for i, c := range cuts {
		out[i] = c.String()
	}
	return out
}

func TestLadderAgainstBrute(t *testing.T) {
	g := ladder(t)
	for _, opt := range []enum.Options{
		enum.DefaultOptions(),
		withIO(enum.DefaultOptions(), 2, 1),
		withIO(enum.DefaultOptions(), 3, 2),
		withIO(enum.DefaultOptions(), 4, 3),
	} {
		checkAgainstBrute(t, g, opt)
	}
}

func withIO(opt enum.Options, nin, nout int) enum.Options {
	opt.MaxInputs = nin
	opt.MaxOutputs = nout
	return opt
}

func TestLadderKnownCuts(t *testing.T) {
	g := ladder(t)
	opt := withIO(enum.DefaultOptions(), 4, 2)
	cuts, _ := enum.CollectAll(g, opt)
	bySig := map[string]enum.Cut{}
	for _, c := range cuts {
		bySig[c.Nodes.Signature()] = c
	}
	// {f, g}: inputs {d, e}, outputs {f, g}.
	fg := bitset.FromMembers(g.N(), 5, 6)
	c, ok := bySig[fg.Signature()]
	if !ok {
		t.Fatal("cut {f,g} not enumerated")
	}
	if !reflect.DeepEqual(c.Inputs, []int{3, 4}) || !reflect.DeepEqual(c.Outputs, []int{5, 6}) {
		t.Fatalf("cut {f,g} IO wrong: %v", c)
	}
	// The whole computable block {d,e,f,g,h}: 3 inputs, 1 output.
	all := bitset.FromMembers(g.N(), 3, 4, 5, 6, 7)
	if _, ok := bySig[all.Signature()]; !ok {
		t.Fatal("whole-block cut not enumerated")
	}
	// Singletons are valid 2-input cuts.
	for _, v := range []int{3, 4, 5, 6, 7} {
		if _, ok := bySig[bitset.FromMembers(g.N(), v).Signature()]; !ok {
			t.Fatalf("singleton {%d} not enumerated", v)
		}
	}
}

func TestForbiddenNodesExcluded(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	ld := g.MustAddNode(dfg.OpLoad, "ld", a)
	x := g.MustAddNode(dfg.OpAdd, "x", ld, a)
	y := g.MustAddNode(dfg.OpMul, "y", x, ld)
	_ = y
	if err := g.MarkForbidden(ld); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	opt := enum.DefaultOptions()
	cuts, _ := enum.CollectAll(g, opt)
	for _, c := range cuts {
		if c.Nodes.Has(ld) {
			t.Fatalf("forbidden load inside cut %v", c)
		}
	}
	// The load must still appear as an input of cuts containing y.
	foundLdInput := false
	for _, c := range cuts {
		if c.Nodes.Has(y) {
			for _, in := range c.Inputs {
				if in == ld {
					foundLdInput = true
				}
			}
		}
	}
	if !foundLdInput {
		t.Fatal("forbidden node never used as an input")
	}
	checkAgainstBrute(t, g, opt)
}

func TestBasicMatchesIncremental(t *testing.T) {
	g := ladder(t)
	for _, opt := range []enum.Options{
		withIO(enum.DefaultOptions(), 2, 1),
		withIO(enum.DefaultOptions(), 4, 2),
	} {
		inc, _ := enum.CollectAll(g, opt)
		bas, _ := enum.CollectBasic(g, opt)
		if !reflect.DeepEqual(signatures(inc), signatures(bas)) {
			t.Fatalf("basic/incremental mismatch:\n inc %v\n bas %v",
				cutStrings(inc), cutStrings(bas))
		}
	}
}

func TestPrunedSearchMatchesBrute(t *testing.T) {
	g := ladder(t)
	for _, opt := range []enum.Options{
		withIO(enum.DefaultOptions(), 2, 1),
		withIO(enum.DefaultOptions(), 4, 2),
	} {
		want, _ := baseline.CollectBrute(g, opt)
		got, _ := baseline.CollectPruned(g, opt)
		if !reflect.DeepEqual(signatures(got), signatures(want)) {
			t.Fatalf("pruned/brute mismatch:\n got  %v\n want %v",
				cutStrings(got), cutStrings(want))
		}
	}
}

func TestConnectedOnly(t *testing.T) {
	// Two independent chains: x→p, y→q. {p,q} is a valid 2-output cut but
	// not connected.
	g := dfg.New()
	x := g.MustAddNode(dfg.OpVar, "x")
	y := g.MustAddNode(dfg.OpVar, "y")
	p := g.MustAddNode(dfg.OpAdd, "p", x, x)
	q := g.MustAddNode(dfg.OpMul, "q", y, y)
	g.MustFreeze()

	opt := withIO(enum.DefaultOptions(), 4, 2)
	cuts, _ := enum.CollectAll(g, opt)
	pq := bitset.FromMembers(g.N(), p, q)
	if !hasSig(cuts, pq.Signature()) {
		t.Fatal("disconnected cut missing without ConnectedOnly")
	}

	opt.ConnectedOnly = true
	cuts, _ = enum.CollectAll(g, opt)
	if hasSig(cuts, pq.Signature()) {
		t.Fatal("disconnected cut present with ConnectedOnly")
	}
	if !hasSig(cuts, bitset.FromMembers(g.N(), p).Signature()) {
		t.Fatal("singleton missing with ConnectedOnly")
	}
	checkAgainstBrute(t, g, opt)
}

func TestMaxDepth(t *testing.T) {
	// Chain a→b→c→d→e: with MaxDepth 1 only cuts of ≤ 2 chained nodes
	// survive.
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpNot, "b", a)
	c := g.MustAddNode(dfg.OpNeg, "c", b)
	d := g.MustAddNode(dfg.OpAbs, "d", c)
	e := g.MustAddNode(dfg.OpNot, "e", d)
	_ = e
	g.MustFreeze()
	opt := withIO(enum.DefaultOptions(), 4, 2)
	opt.MaxDepth = 1
	cuts, _ := enum.CollectAll(g, opt)
	for _, cut := range cuts {
		if cut.Nodes.Count() > 2 {
			t.Fatalf("cut %v too deep for MaxDepth=1", cut)
		}
	}
	checkAgainstBrute(t, g, opt)
}

func TestEarlyStop(t *testing.T) {
	g := ladder(t)
	n := 0
	enum.Enumerate(g, enum.DefaultOptions(), func(enum.Cut) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visitor called %d times, want 3", n)
	}
}

func TestStatsSanity(t *testing.T) {
	g := ladder(t)
	_, stats := enum.CollectAll(g, enum.DefaultOptions())
	if stats.Valid == 0 || stats.Candidates < stats.Valid {
		t.Fatalf("implausible stats %+v", stats)
	}
	if stats.LTRuns == 0 {
		t.Fatal("no Lengauer–Tarjan runs recorded")
	}
}

// randDFG builds a random DAG with forbidden memory nodes and occasional
// extra live-outs — the adversarial instance family for cross-validation.
func randDFG(r *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(4) == 0 {
			g.MustAddNode(dfg.OpVar, "")
			continue
		}
		k := 1 + r.Intn(2)
		preds := make([]int, 0, k)
		for j := 0; j < k; j++ {
			preds = append(preds, r.Intn(i))
		}
		op := dfg.OpAdd
		if r.Intn(7) == 0 {
			op = dfg.OpLoad
		}
		id := g.MustAddNode(op, "", preds...)
		if op == dfg.OpLoad {
			if err := g.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
		if r.Intn(10) == 0 {
			if err := g.MarkLiveOut(id); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

func TestQuickIncrementalMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(11))
		opt := enum.DefaultOptions()
		opt.MaxInputs = 1 + r.Intn(4)
		opt.MaxOutputs = 1 + r.Intn(3)
		if r.Intn(4) == 0 {
			opt.ConnectedOnly = true
		}
		want, _ := baseline.CollectBrute(g, opt)
		got, _ := enum.CollectAll(g, opt)
		if !reflect.DeepEqual(signatures(got), signatures(want)) {
			t.Logf("seed=%d opt=%+v\n got  %v\n want %v",
				seed, opt, cutStrings(got), cutStrings(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrunedMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(11))
		opt := enum.DefaultOptions()
		opt.MaxInputs = 1 + r.Intn(4)
		opt.MaxOutputs = 1 + r.Intn(3)
		want, _ := baseline.CollectBrute(g, opt)
		got, _ := baseline.CollectPruned(g, opt)
		if !reflect.DeepEqual(signatures(got), signatures(want)) {
			t.Logf("seed=%d opt=%+v\n got  %v\n want %v",
				seed, opt, cutStrings(got), cutStrings(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBasicMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(8))
		opt := enum.DefaultOptions()
		opt.MaxInputs = 1 + r.Intn(3)
		opt.MaxOutputs = 1 + r.Intn(2)
		want, _ := baseline.CollectBrute(g, opt)
		got, _ := enum.CollectBasic(g, opt)
		if !reflect.DeepEqual(signatures(got), signatures(want)) {
			t.Logf("seed=%d opt=%+v\n got  %v\n want %v",
				seed, opt, cutStrings(got), cutStrings(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPruningsDoNotChangeResults(t *testing.T) {
	// Toggling each pruning off must not change the enumerated cut sets.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(9))
		base := enum.DefaultOptions()
		base.MaxInputs = 1 + r.Intn(4)
		base.MaxOutputs = 1 + r.Intn(2)
		want, _ := enum.CollectAll(g, base)
		variants := []func(*enum.Options){
			func(o *enum.Options) { o.PruneOutputOutput = false },
			func(o *enum.Options) { o.PruneInputInput = false },
			func(o *enum.Options) { o.PruneOutputInput = false },
			func(o *enum.Options) { o.PruneWhileBuildingS = false },
		}
		for _, mutate := range variants {
			opt := base
			mutate(&opt)
			got, _ := enum.CollectAll(g, opt)
			if !reflect.DeepEqual(signatures(got), signatures(want)) {
				t.Logf("seed=%d variant=%+v differs", seed, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDominatorInputPruningIsSubset documents the deliberate deviation from
// §5.3: the paper's "simplified" dominator–input test, implemented
// literally, can lose cuts (which is why it is off by default). It must
// still never invent cuts.
func TestDominatorInputPruningIsSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(10))
		base := enum.DefaultOptions()
		base.MaxInputs = 1 + r.Intn(4)
		base.MaxOutputs = 1 + r.Intn(2)
		exact, _ := enum.CollectAll(g, base)
		pruned := base
		pruned.PruneDominatorInput = true
		approx, _ := enum.CollectAll(g, pruned)
		want := map[string]bool{}
		for _, c := range exact {
			want[c.Nodes.Signature()] = true
		}
		for _, c := range approx {
			if !want[c.Nodes.Signature()] {
				t.Logf("seed=%d invented cut %v", seed, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDominatorInputPruningLosesKnownCut pins the concrete counterexample:
// in the ladder, seed g(6) for output h(7) succeeds first; seed f(5) is not
// an ancestor of g, so the literal rule skips it and the cut {g,h} with
// inputs {e,f} is lost.
func TestDominatorInputPruningLosesKnownCut(t *testing.T) {
	g := ladder(t)
	opt := withIO(enum.DefaultOptions(), 4, 2)
	opt.PruneDominatorInput = true
	cuts, _ := enum.CollectAll(g, opt)
	gh := bitset.FromMembers(g.N(), 6, 7)
	if hasSig(cuts, gh.Signature()) {
		t.Skip("pruned search found {g,h} after all; counterexample no longer applies")
	}
	exact, _ := enum.CollectAll(g, withIO(enum.DefaultOptions(), 4, 2))
	if !hasSig(exact, gh.Signature()) {
		t.Fatal("exact enumeration must contain {g,h}")
	}
}

// TestPaperModeIsSubsetWithHighRecall: the paper-mode approximate prunings
// (forbidden-ancestor exclusion + simplified dominator–input) may only drop
// cuts, never invent them, and on random blocks the loss stays small.
func TestPaperModeIsSubsetWithHighRecall(t *testing.T) {
	totalExact, totalApprox := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 8+r.Intn(12))
		exact, _ := enum.CollectAll(g, enum.DefaultOptions())
		approx, _ := enum.CollectAll(g, enum.PaperOptions())
		want := map[string]bool{}
		for _, c := range exact {
			want[c.Nodes.Signature()] = true
		}
		for _, c := range approx {
			if !want[c.Nodes.Signature()] {
				t.Fatalf("seed=%d: paper mode invented cut %v", seed, c)
			}
		}
		totalExact += len(exact)
		totalApprox += len(approx)
	}
	if totalExact == 0 {
		t.Fatal("no cuts at all")
	}
	recall := float64(totalApprox) / float64(totalExact)
	t.Logf("paper-mode recall over 40 random blocks: %d/%d = %.3f",
		totalApprox, totalExact, recall)
	if recall < 0.85 {
		t.Fatalf("paper-mode recall %.3f implausibly low", recall)
	}
}

func hasSig(cuts []enum.Cut, sig string) bool {
	for _, c := range cuts {
		if c.Nodes.Signature() == sig {
			return true
		}
	}
	return false
}
