package enum

import (
	"fmt"
	"time"
)

// StopReason classifies why an enumeration ended before exhausting the
// search space. The values are ordered by precedence: when several causes
// coincide across parallel workers, the aggregated Stats report the
// highest-valued one (an internal error outranks cancellation, which
// outranks the deadline, and so on down to a voluntary visitor stop).
type StopReason uint8

const (
	// StopNone: the enumeration ran to completion.
	StopNone StopReason = iota
	// StopVisitor: the visitor returned false.
	StopVisitor
	// StopBudget: a resource budget was reached (Options.MaxDedupBytes or
	// Options.MaxCuts). The stats are exact for the emitted prefix.
	StopBudget
	// StopCheckpoint: Options.CheckpointStop was closed; the run wrote a
	// final snapshot (when Options.CheckpointPath is set) and stopped
	// cleanly at its next quiescent point. A StopCheckpoint run is the
	// designed prefix of a ResumeEnumerate continuation.
	StopCheckpoint
	// StopDeadline: the wall clock passed Options.Deadline.
	StopDeadline
	// StopCanceled: Options.Context was canceled.
	StopCanceled
	// StopError: a worker, steal task or the merge consumer failed — a
	// contained panic or a steal-handoff stall. Stats.Err carries the
	// first error, with the captured stack when it was a panic.
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopVisitor:
		return "visitor-stop"
	case StopBudget:
		return "budget"
	case StopCheckpoint:
		return "checkpoint-stop"
	case StopDeadline:
		return "deadline"
	case StopCanceled:
		return "canceled"
	case StopError:
		return "worker-error"
	}
	return fmt.Sprintf("stop(%d)", uint8(r))
}

// RecordStop merges reason r into the stats, keeping the highest-precedence
// reason and maintaining the deprecated TimedOut alias.
func (s *Stats) RecordStop(r StopReason) {
	if r > s.StopReason {
		s.StopReason = r
	}
	if r == StopDeadline {
		s.TimedOut = true
	}
}

// PanicError is the first-error a contained panic is converted to: the
// recovered value together with the stack of the panicking goroutine,
// captured at the recovery boundary (shard, steal task, merge consumer, or
// the serial search loop).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("enum: panic in enumeration: %v", e.Value)
}

// StallError reports a steal handoff that never completed: a donor claimed
// a hungry worker and published a task, but no thief accepted it within the
// watchdog timeout. Under the handoff protocol this cannot happen unless a
// liveness invariant is broken, so it is surfaced as a diagnosable error —
// the donor reabsorbs the donated range and the run stops cleanly — instead
// of deadlocking the merge.
type StallError struct {
	Timeout time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("enum: steal handoff not accepted within %v (liveness invariant broken)", e.Timeout)
}

// stopPollMask samples the expensive stop sources (wall clock, context
// channel) once every 4096 polls; the overrun past a deadline or
// cancellation is a few thousand search steps.
const stopPollMask = 0x0fff

// Stopper polls the run-abort sources an Options carries — context
// cancellation and the wall-clock deadline — on a sampled tick, so the
// check stays affordable inside search hot loops. It is the one stop
// primitive shared by the incremental enumeration, EnumerateBasic and the
// baseline searches (internal/baseline), which keeps cancellation semantics
// identical between poly and oracle runs. One Stopper serves one worker;
// it is not safe for concurrent use (the cross-worker stop flag of the
// parallel enumeration is separate).
type Stopper struct {
	done     <-chan struct{} // Context.Done(), nil when no context
	ckpt     <-chan struct{} // Options.CheckpointStop, nil when unset
	deadline time.Time
	tick     uint32
}

// NewStopper builds a Stopper from the options' Context, Deadline and
// CheckpointStop channel.
func NewStopper(opt Options) Stopper {
	s := Stopper{deadline: opt.Deadline, ckpt: opt.CheckpointStop}
	if opt.Context != nil {
		s.done = opt.Context.Done()
	}
	return s
}

// Poll reports why the run must stop, or StopNone. Only every 4096th call
// samples the clock and channels; with no source configured it is two
// loads.
func (s *Stopper) Poll() StopReason {
	if s.done == nil && s.ckpt == nil && s.deadline.IsZero() {
		return StopNone
	}
	s.tick++
	if s.tick&stopPollMask != 0 {
		return StopNone
	}
	return s.Now()
}

// Now checks the stop sources immediately, without tick sampling.
// Cancellation outranks the deadline, which outranks a checkpoint-stop
// request, matching StopReason precedence.
func (s *Stopper) Now() StopReason {
	if s.done != nil {
		select {
		case <-s.done:
			return StopCanceled
		default:
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return StopDeadline
	}
	if s.ckpt != nil {
		select {
		case <-s.ckpt:
			return StopCheckpoint
		default:
		}
	}
	return StopNone
}
