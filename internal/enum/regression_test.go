package enum_test

import (
	"os"
	"reflect"
	"testing"

	"polyise/internal/enum"
	"polyise/internal/workload"
)

// The gap-regression corpus test: on the instances where the pre-fix dedup
// digest dropped valid cuts for two engine revisions (EXPERIMENTS.md
// "Resolved: the n ≥ 140 completeness gap"), the merged cut sequence is
// pinned bit-for-bit. PR 2 and PR 3 reported 7 668 versus 7 669 cuts on
// the n=220 instance — the same missing-cut set surfacing differently
// because the collision victim is whichever cut of a colliding pair is
// visited second — so counting cuts is not enough: any engine revision
// must reproduce the identical sequence, or update these pins consciously
// with an EXPERIMENTS.md entry explaining why the enumeration changed.

// seqDigest is a byte-FNV-1a over the visit-ordered cut signatures,
// newline-separated. Deterministic in the graph and the canonical
// exploration order only — no machine or scheduling dependence (the
// parallel merge promises the serial order).
func seqDigest(seq []string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, s := range seq {
		for _, b := range []byte(s) {
			h = (h ^ uint64(b)) * 0x100000001b3
		}
		h = (h ^ '\n') * 0x100000001b3
	}
	return h
}

// pinnedSeq carries the expected enumeration sequence per gap instance.
var pinnedSeq = map[string]uint64{
	"mibench-n140-seed5":  0x75c529ef33383704,
	"mibench-n220-seed17": 0x1b23a4aacc555323,
}

// TestGapRegressionSequenceIdentity asserts, for every pinned gap
// instance, that (a) the serial visit sequence matches the pinned count
// and digest, (b) parallel runs at several worker counts reproduce it
// exactly, and (c) the basic figure 2 algorithm enumerates the same cut
// set (order differs by construction, so sets are compared sorted).
//
// Tiering keeps the cost sane: short mode (the race-detector sweep) runs
// only the n=140 instance without the basic cross-check; the basic
// algorithm at n=220 (~1 min) runs only under `make diff-oracle`
// (POLYISE_ORACLE_BUDGET set).
func TestGapRegressionSequenceIdentity(t *testing.T) {
	full := os.Getenv("POLYISE_ORACLE_BUDGET") != ""
	for _, gi := range workload.GapRegressionInstances() {
		gi := gi
		t.Run(gi.Name, func(t *testing.T) {
			if testing.Short() && gi.N > 150 {
				t.Skip("short mode: large instance covered by the non-race run")
			}
			g := gi.Graph()
			opt := enum.DefaultOptions()
			opt.Parallelism = 1
			serial := visitSequence(g, opt)
			if len(serial) != gi.WantCuts {
				t.Fatalf("%s: %d cuts, pinned %d", gi.Name, len(serial), gi.WantCuts)
			}
			if got := seqDigest(serial); got != pinnedSeq[gi.Name] {
				t.Fatalf("%s: sequence digest %#016x, pinned %#016x — the enumeration changed; "+
					"if intentional, update the pin and record why in EXPERIMENTS.md", gi.Name, got, pinnedSeq[gi.Name])
			}
			// workers=g.N() is the steal-forced schedule: one worker per
			// first-output position, so every load-balancing decision is an
			// interior steal — the digest must still match bit-for-bit.
			for _, workers := range []int{2, 5, g.N()} {
				popt := opt
				popt.Parallelism = workers
				if par := visitSequence(g, popt); !reflect.DeepEqual(serial, par) {
					t.Fatalf("%s: parallel w=%d sequence diverges from serial (%d vs %d cuts)",
						gi.Name, workers, len(par), len(serial))
				}
			}
			if testing.Short() || (gi.N > 150 && !full) {
				return
			}
			basic, _ := enum.CollectBasic(g, opt)
			incr, _ := enum.CollectAll(g, opt)
			if !reflect.DeepEqual(signatures(basic), signatures(incr)) {
				t.Fatalf("%s: basic algorithm cut set diverges (%d vs %d cuts)", gi.Name, len(basic), len(incr))
			}
		})
	}
}
