package enum

import (
	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/faultinject"
)

// This file implements the incremental validation engine: the per-candidate
// §3 admission checks of CHECK-CUT run on search state that is maintained
// across the search tree instead of being swept from scratch per candidate.
//
// The from-scratch Validator (cut.go) pays O(|S|) adjacency-row operations
// per candidate to derive I(S), O(S) and the convexity cones ∪ReachFrom(S)
// and ∪ReachTo(S). DeltaValidator mirrors the delta architecture of the
// search-state engine (dfg/delta.go): three aggregates over the members of
// the maintained cut S —
//
//	predU = ⋃_{u∈S} preds(u)   so  I(S)  = predU \ S  and the output
//	                               frontier maxS = S \ predU
//	succU = ⋃_{u∈S} succs(u)   so the input frontier minS = S \ succU
//	outs  = O(S) per definition 1
//
// — are brought up to date by exact set deltas in O(|delta|) adjacency
// rows, not by per-candidate sweeps. The convexity cones need no
// maintenance at all: reachability unions over S collapse to its frontiers
// (see isConvex), so ∪ReachFrom(S) and ∪ReachTo(S) are |minS| + |maxS| row
// unions at admission time instead of 2|S|.
//
// Synchronization is by journaled mirror, not by per-push notification.
// The search already maintains S itself through per-depth delta journals
// (growS/shrinkS and their undos); most of those pushes are exploration
// that never reaches CHECK-CUT, so charging even O(1) per push is pure
// overhead, and charging O(|delta|) — the measured push/candidate ratio is
// ~10:1 — would cost more than the sweeps it replaces. Instead the engine
// keeps its own journal: a mirror Srep of the cut as of the last admission
// check. At the next check it diffs the live S against the mirror (two
// word-parallel passes), applies the net delta D+ = S \ Srep,
// D− = Srep \ S in one exact transition, and re-journals the mirror.
// Backtracking therefore costs the engine nothing — the next diff simply
// sees the rolled-back S — and a push/pop pair that never meets an
// admission check is never paid for at all. Every membership test in the
// transition runs against the final S, which makes the update
// path-independent (the property tests drive randomized push/undo
// sequences against a from-scratch recomputation to pin exactly this).
//
// Past a delta-size threshold the transition falls back to rebuilding the
// aggregates from S directly, exactly like ShrinkCut's from-scratch
// fallback, so worst-case behavior never regresses below the old
// per-candidate sweep.
//
// Admission checks are staged cheapest-first: the O(words) budget
// rejections (|I(S)| and |O(S)| against Nin/Nout) fire before the frontier
// cone unions, which fire before the only remaining traversals — the shared
// root-reachability closure of the technical condition and the per-input
// closures of the connectedness restriction — and those traversals are
// confined to the cut's ancestor cone (∪ReachTo(S) ∪ S), outside which they
// cannot make progress anyway.
//
// The from-scratch Validator remains the reference semantics — the same
// demotion rebuildS underwent in PR 3 — and the property tests pin
// DeltaValidator to it on randomized graphs with both fallback directions
// forced.

// valFallbackNum/Den control when the mirror transition falls back to
// rebuilding the aggregates from S: the net delta must stay under num/den
// of |S|, since the incremental transition costs ~two adjacency rows per
// delta member against one per member of S for the rebuild. Variables so
// the property tests can force each path deterministically.
var valFallbackNum, valFallbackDen = 1, 2

// DeltaValidator is the incremental validation engine for one enumeration
// worker. It owns scratch storage and the aggregate mirror, is allocation-
// free in steady state, and is NOT safe for concurrent use — each worker
// of the sharded enumeration owns its own (clone-per-shard discipline).
type DeltaValidator struct {
	g   *dfg.Graph
	opt Options
	tr  *dfg.Traverser
	S   *bitset.Set // the search-maintained cut, owned by the worker

	// Mirror and delta-maintained aggregates over the members of S.
	srep  *bitset.Set // the cut as of the last sync: the engine's journal
	predU *bitset.Set // ⋃ preds(u): I(S) = predU \ S, output frontier = S \ predU
	succU *bitset.Set // ⋃ succs(u): input frontier = S \ succU
	outs  *bitset.Set // O(S), definition 1

	// Admission-check scratch.
	ins, down, up *bitset.Set
	within        *bitset.Set // ∪ReachTo(S) ∪ S: confinement of the §3 traversals
	frontier      *bitset.Set
	rootReach     *bitset.Set
	reach         *bitset.Set
	dPlus, dMinus *bitset.Set
	predD, cand   *bitset.Set
	rootValid     bool
	insBuf        []int
	outsBuf       []int
	inputsTo      []uint64
	depthBuf      []int32
}

// NewDeltaValidator creates the incremental validation engine for g over
// the search-maintained cut S (aliased, not copied: the engine reads the
// caller's live cut and journals its own mirror of it).
func NewDeltaValidator(g *dfg.Graph, opt Options, S *bitset.Set) *DeltaValidator {
	n := g.N()
	return &DeltaValidator{
		g:         g,
		opt:       opt,
		tr:        g.NewTraverser(),
		S:         S,
		srep:      bitset.New(n),
		predU:     bitset.New(n),
		succU:     bitset.New(n),
		outs:      bitset.New(n),
		ins:       bitset.New(n),
		down:      bitset.New(n),
		up:        bitset.New(n),
		within:    bitset.New(n),
		frontier:  bitset.New(n),
		rootReach: bitset.New(n),
		reach:     bitset.New(n),
		dPlus:     bitset.New(n),
		dMinus:    bitset.New(n),
		predD:     bitset.New(n),
		cand:      bitset.New(n),
		depthBuf:  make([]int32, n),
	}
}

// sync brings the aggregates from the journaled mirror to the live cut in
// one exact transition over the net delta, then re-journals the mirror.
// Every membership test runs against the final S, so the result is
// independent of the push/pop path that produced the diff.
func (d *DeltaValidator) sync() {
	g := d.g
	S := d.S
	dPlus, dMinus := d.dPlus, d.dMinus
	dPlus.CopyAndNot(S, d.srep)
	dMinus.CopyAndNot(d.srep, S)
	nd := dPlus.Count() + dMinus.Count()
	if nd == 0 {
		return
	}
	d.srep.Copy(S)
	if faultinject.ForcedFallback() || nd*valFallbackDen > S.Count()*valFallbackNum {
		d.rebuild()
		return
	}
	sw := S.Words()

	// Departed members first: an aggregate bit disappears only when every
	// member backing it left, and the candidates are exactly the departed
	// members' adjacency unions. A survivor feeding a departed vertex now
	// has a successor outside S, making it an output outright.
	if !dMinus.Empty() {
		predD := d.predD
		succD := d.cand
		predD.Clear()
		succD.Clear()
		d.tr.UnionPredRows(predD, dMinus)
		d.tr.UnionSuccRows(succD, dMinus)
		predD.ForEach(func(b int) bool {
			if !g.SuccsIntersect(b, S) {
				d.predU.Remove(b)
			}
			return true
		})
		succD.ForEach(func(b int) bool {
			if !g.PredsIntersect(b, S) {
				d.succU.Remove(b)
			}
			return true
		})
		d.outs.Intersect(S)
		predD.Intersect(S)
		d.outs.Union(predD)
	}

	// New members extend the aggregates monotonically; their own output
	// status is one successor-row scan each (the row is already loaded for
	// succU), and existing outputs feeding a new member may have lost their
	// last outside successor (Oext members never stop being outputs).
	if !dPlus.Empty() {
		predD := d.predD
		predD.Clear()
		dPlus.ForEach(func(v int) bool {
			prow := g.PredRow(v)
			d.predU.UnionWords(prow)
			predD.UnionWords(prow)
			srow := g.SuccRow(v)
			d.succU.UnionWords(srow)
			out := g.IsLiveOut(v)
			if !out {
				for i, r := range srow {
					if r&^sw[i] != 0 {
						out = true
						break
					}
				}
			}
			if out {
				d.outs.Add(v)
			} else {
				d.outs.Remove(v) // a returning member may have been an output before
			}
			return true
		})
		cand := d.cand
		cand.CopyIntersect(d.outs, predD)
		cand.Subtract(dPlus)
		cand.Subtract(g.OextSet())
		cand.ForEach(func(v int) bool {
			for i, r := range g.SuccRow(v) {
				if r&^sw[i] != 0 {
					return true
				}
			}
			d.outs.Remove(v)
			return true
		})
	}
}

// rebuild recomputes the aggregates from S directly — the fallback for
// oversized net deltas and the reference the property tests compare the
// incremental transitions against.
func (d *DeltaValidator) rebuild() {
	g := d.g
	d.predU.Clear()
	d.succU.Clear()
	d.outs.Clear()
	sw := d.S.Words()
	d.S.ForEach(func(v int) bool {
		d.predU.UnionWords(g.PredRow(v))
		srow := g.SuccRow(v)
		d.succU.UnionWords(srow)
		out := g.IsLiveOut(v)
		if !out {
			for i, r := range srow {
				if r&^sw[i] != 0 {
					out = true
					break
				}
			}
		}
		if out {
			d.outs.Add(v)
		}
		return true
	})
}

// NumOutputs returns |O(S)| for the current maintained cut — the real-
// output budget test of CHECK-CUT, reduced to a population count on the
// maintained aggregate. It syncs the mirror first.
func (d *DeltaValidator) NumOutputs() int {
	d.sync()
	return d.outs.Count()
}

// Validate checks the current maintained cut S against the §3 problem
// statement, mirroring Validator.Validate bit for bit (the property tests
// enforce the agreement): non-empty, disjoint from F and the roots, within
// the input/output budgets, convex, and satisfying the technical condition
// plus the connectedness and depth limits the options request. On success
// it fills cut with S's derived inputs and outputs; the slices share the
// validator's scratch storage unless Options.KeepCuts is set.
//
// Checks are staged cheapest-first on the maintained aggregates: set
// intersections and population counts reject before any adjacency row is
// touched, frontier-cone unions before any traversal runs.
func (d *DeltaValidator) Validate(cut *Cut) bool {
	d.sync()
	g := d.g
	S := d.S
	if S.Empty() {
		return false
	}
	if S.Intersects(g.ForbiddenSet()) || S.Intersects(g.RootSet()) {
		return false
	}
	d.ins.CopyAndNot(d.predU, S)
	d.insBuf = d.ins.AppendMembers(d.insBuf[:0])
	d.rootValid = false
	if len(d.insBuf) > d.opt.MaxInputs {
		return false
	}
	d.outsBuf = d.outs.AppendMembers(d.outsBuf[:0])
	if len(d.outsBuf) > d.opt.MaxOutputs {
		return false
	}
	if !d.isConvex() {
		return false
	}
	if !d.technicalConditionHolds() {
		return false
	}
	if d.opt.ConnectedOnly && !d.isConnectedCut() {
		return false
	}
	if d.opt.MaxDepth > 0 && d.internalDepth() > d.opt.MaxDepth {
		return false
	}
	if cut != nil {
		cut.Nodes = S
		if d.opt.KeepCuts {
			cut.Inputs = append([]int(nil), d.insBuf...)
			cut.Outputs = append([]int(nil), d.outsBuf...)
		} else {
			cut.Inputs = d.insBuf
			cut.Outputs = d.outsBuf
		}
	}
	return true
}

// isConvex is the frontier-cone form of definition 2: S is convex exactly
// when ReachFrom(S) ∩ ReachTo(S) \ S is empty. The member unions collapse
// to S's frontiers: every member u sits on an S-internal predecessor chain
// from some member m with no predecessor in S (the input frontier,
// S \ succU), and m reaching u gives ReachFrom(m) ⊇ ReachFrom(u) ∪ {u};
// dually for ReachTo and the output frontier S \ predU. So the gap region
// of the full unions equals the gap region of the frontier unions, at
// |minS| + |maxS| row unions instead of 2|S|. As a byproduct the ancestor
// cone ∪ReachTo(S) ∪ S is recorded in d.within, confining the traversals
// of the later stages.
func (d *DeltaValidator) isConvex() bool {
	g := d.g
	S := d.S
	d.down.Clear()
	d.up.Clear()
	fr := d.frontier
	fr.CopyAndNot(S, d.succU)
	fr.ForEach(func(m int) bool {
		d.down.UnionWords(g.ReachFrom(m).Words())
		return true
	})
	fr.CopyAndNot(S, d.predU)
	fr.ForEach(func(m int) bool {
		d.up.UnionWords(g.ReachTo(m).Words())
		return true
	})
	d.within.Copy(d.up)
	d.within.Union(S)
	return !d.down.AndNotAny(d.up, S)
}

// technicalConditionHolds implements the §3 condition on the inputs derived
// by the enclosing Validate call: every input w needs a root path reaching
// w while avoiding the other inputs. The reduction to one shared forward
// closure plus a predecessor-row test per input is Validator's (see the
// proof sketch there); here the closure is additionally confined to the
// cut's ancestor cone d.within — sound because every vertex on a simple
// source path to a predecessor p of an input is an ancestor of p, hence an
// ancestor of some member of S, and so lies in ∪ReachTo(S).
func (d *DeltaValidator) technicalConditionHolds() bool {
	if len(d.insBuf) <= 1 {
		return true
	}
	g := d.g
	d.ensureRootReach()
	for _, w := range d.insBuf {
		if g.IsRoot(w) || g.IsUserForbidden(w) {
			continue
		}
		if !g.PredsIntersect(w, d.rootReach) {
			return false
		}
	}
	return true
}

// ensureRootReach computes the forward closure from the virtual source
// avoiding I(S), confined to the cut's ancestor cone, once per Validate
// call; the technical-condition and connectedness checks share it.
func (d *DeltaValidator) ensureRootReach() {
	if !d.rootValid {
		d.tr.ReachForwardAvoiding(d.rootReach, d.g.Entries(), d.ins, d.within)
		d.rootValid = true
	}
}

// isConnectedCut implements definition 4 exactly as Validator does, with
// the per-input forward closures confined to d.within: every vertex on a
// path from an input's successor to an output o ∈ S reaches o, so it lies
// in ReachTo(o) ∪ {o} ⊆ ∪ReachTo(S) ∪ S.
func (d *DeltaValidator) isConnectedCut() bool {
	if len(d.outsBuf) <= 1 {
		return true
	}
	if len(d.insBuf) > 64 {
		return false // cannot happen under any sane port constraint
	}
	g := d.g
	d.inputsTo = d.inputsTo[:0]
	for range d.outsBuf {
		d.inputsTo = append(d.inputsTo, 0)
	}
	d.ensureRootReach()
	for bi, i := range d.insBuf {
		rootFeeds := g.IsRoot(i) || g.IsUserForbidden(i) || g.PredsIntersect(i, d.rootReach)
		if !rootFeeds {
			continue
		}
		d.tr.ReachForwardAvoiding(d.reach, g.Succs(i), d.ins, d.within)
		for k, o := range d.outsBuf {
			if d.reach.Has(o) {
				d.inputsTo[k] |= 1 << uint(bi)
			}
		}
	}
	for a := 0; a < len(d.outsBuf); a++ {
		for b := a + 1; b < len(d.outsBuf); b++ {
			if d.inputsTo[a]&d.inputsTo[b] == 0 {
				return false
			}
		}
	}
	return true
}

// internalDepth returns the number of edges on the longest path inside S.
// Members are visited in ascending id order, which IS topological order
// (Freeze pins the identity permutation), so every member's depth is
// written before any in-S successor reads it — and unlike the reference,
// only S's members are walked, not the whole vertex range.
func (d *DeltaValidator) internalDepth() int {
	g := d.g
	S := d.S
	max := int32(0)
	S.ForEach(func(u int) bool {
		dep := int32(0)
		for _, p := range g.Preds(u) {
			if S.Has(p) {
				if dp := d.depthBuf[p] + 1; dp > dep {
					dep = dp
				}
			}
		}
		d.depthBuf[u] = dep
		if dep > max {
			max = dep
		}
		return true
	})
	return int(max)
}
