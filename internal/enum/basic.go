package enum

import (
	"runtime/debug"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
	"polyise/internal/multidom"
)

// EnumerateBasic is POLY-ENUM of figure 2: for every admissible output set,
// couple every generalized dominator of each output, rebuild the cut with
// theorem 3, and keep combinations whose real outputs equal the chosen ones.
// It precomputes full generalized-dominator lists per output (the "setup
// phase" the incremental algorithm avoids), so it is the reference
// implementation: simple, clearly correct, and the baseline for the
// basic-versus-incremental ablation.
//
// The visitor may return false to stop the enumeration early.
func EnumerateBasic(g *dfg.Graph, opt Options, visit func(Cut) bool) Stats {
	e := &basicEnum{
		g:       g,
		opt:     opt,
		visit:   visit,
		md:      multidom.New(g),
		val:     NewValidator(g, opt),
		seen:    newSigSet(),
		gendoms: make(map[int][][]int),
		S:       bitset.New(g.N()),
		I:       bitset.New(g.N()),
		outSet:  bitset.New(g.N()),
		scratch: bitset.New(g.N()),
		outTest: bitset.New(g.N()),
	}
	e.stop = NewStopper(opt)
	pds := domtree.ReverseSolver(g)
	pds.Run(nil)
	e.pdt = pds.BuildTree()
	func() {
		// Same failure semantics as Enumerate's serial path: a panic in
		// the search or the visitor becomes Stats.Err + StopError, with
		// the cuts already visited a coherent prefix.
		defer func() {
			if v := recover(); v != nil {
				if e.stats.Err == nil {
					e.stats.Err = &PanicError{Value: v, Stack: debug.Stack()}
				}
				e.stats.RecordStop(StopError)
			}
		}()
		e.doEnum(-1, opt.MaxOutputs)
	}()
	return e.stats
}

type basicEnum struct {
	g     *dfg.Graph
	opt   Options
	visit func(Cut) bool
	md    *multidom.Enumerator
	pdt   *domtree.Tree
	val   *Validator
	stats Stats
	seen  *sigSet

	gendoms map[int][][]int // memoized generalized dominators per output

	S       *bitset.Set
	I       *bitset.Set
	outs    []int
	outSet  *bitset.Set
	scratch *bitset.Set
	outTest *bitset.Set
	stopped bool
	stop    Stopper // shared cancel/deadline poll primitive (stop.go)
}

// checkStop polls the run's stop sources (Options.Context, Options.Deadline)
// through the shared Stopper, mirroring the incremental search's checkStop.
func (e *basicEnum) checkStop() {
	if r := e.stop.Poll(); r != StopNone {
		e.stats.RecordStop(r)
		e.stopped = true
	}
}

// domsOf returns the generalized dominators of o with ≤ MaxInputs members.
func (e *basicEnum) domsOf(o int) [][]int {
	if d, ok := e.gendoms[o]; ok {
		return d
	}
	d := e.md.Enumerate(o, e.opt.MaxInputs)
	e.gendoms[o] = d
	return d
}

// admissibleOutput applies figure 2's output rule: o may not be forbidden or
// a root, must not repeat or be postdominated by (or postdominate) a chosen
// output.
func (e *basicEnum) admissibleOutput(o int) bool {
	if e.g.IsForbidden(o) || e.outSet.Has(o) || e.I.Has(o) {
		return false
	}
	for _, prev := range e.outs {
		if e.pdt.Dominates(prev, o) || e.pdt.Dominates(o, prev) {
			return false
		}
	}
	return true
}

func (e *basicEnum) doEnum(lastOut, noutLeft int) {
	e.checkStop()
	if e.stopped {
		return
	}
	for o := lastOut + 1; o < e.g.N(); o++ {
		if !e.admissibleOutput(o) {
			continue
		}
		e.stats.OutputsTried++
		for _, D := range e.domsOf(o) {
			if e.stopped {
				return
			}
			if !e.tryDominator(D) {
				continue
			}
			// Snapshot state, extend, recurse, restore. The basic algorithm
			// recomputes the cut from scratch at every step (§5.2 contrasts
			// this with the incremental version).
			savedI := e.I.Clone()
			e.outs = append(e.outs, o)
			e.outSet.Add(o)
			for _, w := range D {
				e.I.Add(w)
			}
			e.g.CutNodesInto(e.S, e.outs, e.I)

			e.checkCandidate()
			if noutLeft > 1 {
				e.doEnum(o, noutLeft-1)
			}

			e.outs = e.outs[:len(e.outs)-1]
			e.outSet.Remove(o)
			e.I.Copy(savedI)
			e.g.CutNodesInto(e.S, e.outs, e.I)
		}
	}
}

// tryDominator pre-filters a (output, dominator) pair: the combined input
// set must fit the budget. A new input may currently lie inside the
// accumulated cut — theorem 3 subtracts the final input set, which the
// caller does after extending S.
func (e *basicEnum) tryDominator(D []int) bool {
	extra := 0
	for _, w := range D {
		if !e.I.Has(w) {
			extra++
		}
	}
	return e.I.Count()+extra <= e.opt.MaxInputs
}

// checkCandidate applies figure 2's validity test — O(S) must equal the
// chosen outputs and S must avoid F — then the full §3 validation.
func (e *basicEnum) checkCandidate() {
	e.checkStop()
	if e.stopped {
		return
	}
	e.stats.Candidates++
	e.g.OutputsInto(e.outTest, e.S)
	if e.outTest.Count() != len(e.outs) {
		return
	}
	for _, o := range e.outs {
		if !e.outTest.Has(o) {
			return
		}
	}
	if e.S.Intersects(e.g.ForbiddenSet()) {
		return
	}
	if e.opt.MaxDedupBytes > 0 && e.seen.WouldGrowPast(e.opt.MaxDedupBytes) {
		e.stats.RecordStop(StopBudget)
		e.stopped = true
		return
	}
	if !e.seen.Insert(e.S.Hash128()) {
		e.stats.Duplicates++
		return
	}
	var cut Cut
	if !e.val.Validate(e.S, &cut) {
		e.stats.Invalid++
		return
	}
	e.stats.Valid++
	if e.opt.KeepCuts {
		cut.Nodes = cut.Nodes.Clone()
	}
	if !e.visit(cut) {
		e.stats.RecordStop(StopVisitor)
		e.stopped = true
		return
	}
	if e.opt.MaxCuts > 0 && e.stats.Valid >= e.opt.MaxCuts {
		e.stats.RecordStop(StopBudget)
		e.stopped = true
	}
}
