package enum

// Sharded parallel POLY-ENUM-INCR with interior work-stealing. The top
// level of the incremental search chooses the first output by walking the
// topological order, and the subtree under each first-output choice touches
// no search state of any other subtree (topLevel resets the worker between
// positions). That makes first-output positions the natural initial shard
// grain: workers claim positions dynamically, each running the exact serial
// algorithm on its own clone-per-shard state (validator, dedup map, bitset
// scratch, flow solver), and a merge stage reassembles the per-position cut
// streams in position order.
//
// Subtree sizes are heavily skewed, though — one fat first-output subtree
// bounds the speedup of pure position sharding at any worker count. So once
// the positions run out, workers turn thief: a busy worker that notices a
// hungry peer (maybeSplit, polled on the admission paths) splits the
// remaining next-output interval of its shallowest splittable search level
// and hands the upper half over as a stealTask. The task carries only the
// output/input choice prefixes of that level; the thief reconstructs the
// donor's full search state from them, because the maintained cut S is a
// pure function of (outs, Ilist) — rebuildS — and the incremental
// validation engine resyncs its mirror to an arbitrary S jump on its next
// admission check (deltaval.go). Seed-extension intervals are deliberately
// not stealable (see posRange); stolen tasks can split again, so a fat
// subtree keeps decomposing for as long as workers go hungry.
//
// Determinism. The serial enumeration visits cuts in a well-defined order:
// the concatenation, over first-output positions, of each subtree's
// discovery sequence, with a global first-occurrence dedup. The parallel
// enumeration reproduces that order exactly at every worker count and under
// every steal schedule. Order is preserved structurally rather than by
// numbering: the merge (parallel.SplitOrdered) drains a linked list of
// stream segments that starts as one segment per first-output position, and
// every split splices the stolen range's segment — followed by the donor's
// resume segment — at exactly the list position where the stolen output
// belongs in the serial sequence (see maybeSplit for why splicing at the
// donor's current segment is the right spot). Dedup splits the same way:
// each worker dedups within the ranges it actually ran (the map resets per
// top-level position and per stolen task), and the merge performs the
// global dedup with first-wins semantics while draining in list order,
// which is serial order. A cut seen by both the donor and a thief of the
// same subtree is emitted twice and collapses in the merge exactly as a
// cross-subtree repeat does. The visitor therefore sees the same cuts, in
// the same order, as Parallelism=1 — including the same prefix when it
// stops the enumeration early. Under any external stop — Options.Deadline,
// Options.Context cancellation, a resource budget, a contained panic or a
// handoff stall — the visited sequence is still a prefix of the serial
// order (a stopping worker raises the shared stop before any truncated
// segment closes; see checkStop), though not necessarily the same prefix a
// serial run stopped the same way would reach — workers progress at
// different rates.
//
// Stats. For runs that complete, Candidates, LTRuns, OutputsTried and
// SeedsPruned partition exactly across workers — every search-tree node is
// executed exactly once by somebody holding the same state the serial run
// would hold — and the merge fixes Valid to the count of cuts actually
// delivered to the visitor, so all of those equal the serial counters;
// Duplicates+Invalid mass is likewise preserved, though attribution can
// shift between the two (a candidate repeating an already-INVALID vertex
// set from another dedup scope is re-validated where the serial global
// dedup would have counted a Duplicate). After an early visitor stop the
// counters are NOT preserved: workers already past the stopped prefix
// report work a serial run would never have started, so Candidates etc.
// may exceed the serial-stopped values, while Valid still counts exactly
// the visited cuts. Steals counts accepted steal tasks and is zero in
// serial runs; it is scheduling-dependent and excluded from the
// determinism contract.

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"polyise/internal/dfg"
	"polyise/internal/faultinject"
	"polyise/internal/parallel"
)

// shardStreamBuf bounds the number of undrained cuts buffered per merge
// segment. Producers ahead of the merge frontier block once their segment's
// buffer fills, so total in-flight memory is at most workers×shardStreamBuf
// cuts beyond the frontier.
const shardStreamBuf = 64

// streamBuf shrinks the per-segment buffer on very large graphs. Streams
// materialize lazily as segments are claimed and are released once drained
// (parallel.SplitOrdered), so the common case pays only for the ~workers
// streams that actually hold data; the cap bounds the worst case — every
// segment emitting into a buffer while producers sprint ahead of the drain
// frontier — to a few MB even for blocks far beyond the corpus's 1196-node
// ceiling.
func streamBuf(n int) int {
	const totalSlots = 1 << 18
	if b := totalSlots / n; b < shardStreamBuf {
		if b < 4 {
			return 4
		}
		return b
	}
	return shardStreamBuf
}

// stealTask is one donated unit of work: the tail [posStart, posEnd) of a
// next-output interval at recursion depth `depth`, together with the
// output/input choice prefixes identifying the donor's search state at that
// level and the merge segment the range's cuts must flow into. outs and ins
// are private copies — the thief mutates its own state only.
type stealTask struct {
	seg      *parallel.Seg[Cut]
	depth    int
	posStart int
	posEnd   int
	ninLeft  int
	noutLeft int
	outs     []int
	ins      []int
}

// stealState is the coordination block all workers of one parallel
// enumeration share.
//
// Tasks are created by handoff only: a donor first claims a hungry worker
// (claimHungry), and only then splices the merge segments and sends the
// task on the unbuffered channel. Every open merge segment therefore always
// has a live owner — donor, thief, or a task in flight to a committed
// receiver — which is exactly the liveness discipline SplitOrdered's
// deadlock-freedom argument requires. A queued-task design would break it:
// all workers could block emitting into full buffers while the merge head
// waits on a queued task nobody is running.
//
// active counts liveness tokens: workers still claiming top-level
// positions, workers running a task, and tasks in flight. A donor mints the
// task's token (active.Add(1)) before sending, the receiver inherits it and
// releases it when the task finishes. A worker with nothing to do releases
// its own token; whoever drops the count to zero proves no work exists and
// none can be created (donors hold tokens), and closes done to release the
// remaining waiters.
type stealState struct {
	ord    *parallel.SplitOrdered[Cut]
	tasks  chan stealTask
	done   chan struct{}
	hungry atomic.Int64
	active atomic.Int64
}

// claimHungry atomically claims one hungry worker, reporting false when
// none is waiting (or another donor won the race for the last one).
func (st *stealState) claimHungry() bool {
	for {
		h := st.hungry.Load()
		if h <= 0 {
			return false
		}
		if st.hungry.CompareAndSwap(h, h-1) {
			return true
		}
	}
}

// runTask executes one stolen range on worker e: reconstruct the donor's
// search state at the stolen level from the choice prefixes, run the
// range's loop, and leave the worker state empty again. The stolen segment
// is closed even when the task is dropped because the enumeration already
// stopped — the merge drains every spliced segment — and even when the
// body panics: containment (containPanic) walks curSeg onto the task's
// final segment, closing the intermediate ones, exactly as the skipped
// frame epilogues would have.
func (e *incEnum) runTask(t stealTask) {
	e.curSeg = t.seg
	if e.stopped || (e.ext != nil && e.ext.Load()) {
		e.steal.ord.Close(e.curSeg)
		return
	}
	e.runTaskBody(t)
	// The frame epilogue (or containPanic, when the body died) left curSeg
	// on the task's final segment and emptied the range/segment stacks;
	// reset the choice state for the next claim.
	e.resetChoice()
	e.steal.ord.Close(e.curSeg)
}

// runTaskBody is the contained interior of a stolen task: state
// reconstruction and the range loop, under the parallel panic boundary.
func (e *incEnum) runTaskBody(t stealTask) {
	defer e.containPanic()
	if h := faultinject.OnStealClaim; h != nil {
		// Fires after the thief accepted the task (it owns t.seg and the
		// task's liveness token) but before any reconstruction — a panic
		// here is the "thief dies mid-handoff" case.
		h()
	}
	e.stats.Steals++
	// Fresh dedup scope for the stolen range; the merge reconciles repeats
	// across the steal boundary in serial order.
	e.seen.Reset()
	e.outs = append(e.outs[:0], t.outs...)
	e.outSet.Clear()
	for _, o := range e.outs {
		e.outSet.Add(o)
	}
	e.Ilist = append(e.Ilist[:0], t.ins...)
	e.Iuser.Clear()
	for _, i := range e.Ilist {
		e.Iuser.Add(i)
	}
	e.rebuildS() // S is a pure function of the prefixes just installed
	e.pickOutputRange(t.depth, t.posStart, t.posEnd, t.ninLeft, t.noutLeft)
}

// runTop executes one top-level subtree under the parallel panic boundary;
// the caller closes curSeg afterwards whether or not the subtree died.
func (e *incEnum) runTop(pos int) {
	defer e.containPanic()
	e.seen.Reset()
	e.topLevel(pos)
}

// enumerateParallel runs the sharded enumeration with the given worker
// count (≥ 2). The caller guarantees g is frozen and has at least 2 nodes.
// rs, when non-nil, resumes from a snapshot: workers start claiming
// top-level positions at the snapshot frontier and the merge's dedup table
// and delivered count are pre-seeded, so the replayed frontier subtree
// re-emits only novel cuts (see ResumeEnumerate).
func enumerateParallel(g *dfg.Graph, opt Options, visit func(Cut) bool, workers int, rs *resumeState) Stats {
	n := g.N()
	if workers > n {
		// More initial shards than first-output positions would only burn
		// per-worker setup (validator, traverser, scratch); work-stealing
		// is what balances skew, not extra idle states.
		workers = n
	}
	sh := newEnumShared(g, opt)
	var ck *ckptWriter
	if opt.CheckpointPath != "" {
		ck = newCkptWriter(g, opt)
	}

	// Shards must hand cuts across goroutines, so their node sets are
	// always cloned regardless of the caller's KeepCuts; the visitor
	// contract ("shared scratch, valid only during the call" when KeepCuts
	// is off) is trivially satisfied by the clone.
	sopt := opt
	sopt.KeepCuts = true
	sh.opt = sopt

	st := &stealState{
		ord:   parallel.NewSplitOrdered[Cut](n, streamBuf(n)),
		tasks: make(chan stealTask),
		done:  make(chan struct{}),
	}
	st.active.Store(int64(workers))
	var stop atomic.Bool
	var next atomic.Int64
	var mu sync.Mutex
	var agg Stats
	if rs != nil {
		next.Store(int64(rs.startTop))
		agg = rs.stats // counter baseline; Valid is overwritten below
		agg.Valid = 0
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e *incEnum
			e = sh.newWorker(func(c Cut) bool {
				st.ord.Emit(e.curSeg, c)
				return !stop.Load()
			}, &stop)
			e.steal = st
			for {
				pos := int(next.Add(1)) - 1
				if pos >= n {
					break
				}
				// After a stop (early visitor stop or a deadline) keep
				// claiming positions so every top-level segment gets
				// closed — the merge drains all of them.
				e.curSeg = st.ord.Top(pos)
				if !e.stopped && !stop.Load() {
					e.runTop(pos)
					// Frame epilogues (or containment, if the subtree
					// panicked) have restored curSeg to the position's own
					// segment; any segments donated from this subtree
					// belong to their thieves now.
				}
				st.ord.Close(e.curSeg)
			}
			// Top-level positions exhausted: turn thief. Wait for donated
			// ranges until every token is released, i.e. until no worker
			// can possibly create more work. A donor claims a hungry slot
			// before minting the task's token and sending, and donors hold
			// tokens of their own, so done cannot close while a send is
			// pending — the select below never strands a task.
		thief:
			for {
				if st.active.Add(-1) == 0 {
					close(st.done)
					break
				}
				st.hungry.Add(1)
				select {
				case t := <-st.tasks:
					e.runTask(t)
					// Loop: release the task's token, go hungry again.
				case <-st.done:
					break thief
				}
			}
			mu.Lock()
			addStats(&agg, e.stats)
			mu.Unlock()
		}()
	}

	// Merge stage: drain the segment list in order, dedup across scopes
	// (first occurrence wins, matching the serial global dedup), and feed
	// the caller's visitor until it stops. Draining continues after a stop
	// so blocked producers always finish, but post-stop cuts are discarded
	// without deduping — under a dedup budget the global table must not
	// keep growing, and post-stop Duplicates attribution is outside the
	// Stats contract anyway; `discarded` keeps the arithmetic exact for the
	// pre-stop prefix. The merge is also a containment boundary: a
	// panicking visitor becomes the run's first error while the drain keeps
	// going, so no producer is left blocked on a full buffer.
	seen := newSigSet()
	var mStats Stats // merge-level stop reason and first error
	emitted, unique, visited, discarded := 0, 0, 0, 0
	startTop := 0
	if rs != nil {
		// Resume seeding: the pre-snapshot prefix counts as visited (MaxCuts
		// and CheckpointEvery bind across the seam), its digests suppress
		// re-delivery from the replayed frontier subtree, and the top-level
		// segments before the frontier — which no worker will claim — close
		// empty so the drain walks straight past them.
		startTop = rs.startTop
		visited = int(rs.visited)
		for _, d := range rs.digests {
			seen.Insert(d)
		}
		for i := 0; i < startTop && i < n; i++ {
			st.ord.Close(st.ord.Top(i))
		}
	}
	curTop := startTop // top-level position of the last delivered cut
	safeVisit := func(c Cut) (ok bool) {
		defer func() {
			if v := recover(); v != nil {
				if mStats.Err == nil {
					mStats.Err = &PanicError{Value: v, Stack: debug.Stack()}
				}
				mStats.RecordStop(StopError)
				ok = false
			}
		}()
		return visit(c)
	}
	st.ord.DrainWithIndex(func(top int, c Cut) {
		emitted++
		if stop.Load() {
			discarded++
			return
		}
		if opt.MaxDedupBytes > 0 && seen.WouldGrowPast(opt.MaxDedupBytes) {
			mStats.RecordStop(StopBudget)
			stop.Store(true)
			discarded++
			return
		}
		if !seen.Insert(c.Nodes.Hash128()) {
			return
		}
		unique++
		visited++
		curTop = top
		if !safeVisit(c) {
			// A voluntary visitor stop; on a visitor panic RecordStop's
			// max-precedence keeps the StopError recorded by safeVisit.
			mStats.RecordStop(StopVisitor)
			stop.Store(true)
			return
		}
		if opt.MaxCuts > 0 && visited >= opt.MaxCuts {
			mStats.RecordStop(StopBudget)
			stop.Store(true)
			return
		}
		// The merge polls the preemption hook too: workers poll it in their
		// own Stoppers, but on a small search they may all have finished
		// producing before the drain delivers the cut whose visitor pulls
		// the trigger — the drain must still stop at the next visit point.
		if opt.CheckpointStop != nil {
			select {
			case <-opt.CheckpointStop:
				mStats.RecordStop(StopCheckpoint)
				stop.Store(true)
				return
			default:
			}
		}
		// Periodic checkpoint cadence, at the merge's global visit point —
		// the one place where "the first `visited` cuts of the serial
		// order" is true under any steal schedule. Every top-level segment
		// before curTop is fully drained here, so curTop is the resume
		// frontier. A failed write stops the run: continuing would
		// silently void durability.
		if ck != nil && opt.CheckpointEvery > 0 && visited%opt.CheckpointEvery == 0 {
			if err := ck.write(ck.mergeSnap(seen, visited, curTop, mStats)); err != nil {
				if mStats.Err == nil {
					mStats.Err = err
				}
				mStats.RecordStop(StopError)
				stop.Store(true)
			}
		}
	})
	wg.Wait()

	agg.Valid = visited
	agg.Duplicates += emitted - discarded - unique
	addStats(&agg, mStats)
	if ck != nil {
		// Final snapshot, after every worker settled: resumable at the
		// last delivered cut's frontier, or marked Done on completion.
		snap := ck.mergeSnap(seen, visited, curTop, agg)
		if agg.StopReason == StopNone {
			snap.Done = true
			snap.CurTop = n
			snap.Digests = nil
		}
		if err := ck.write(snap); err != nil && agg.Err == nil {
			agg.Err = err
			agg.RecordStop(StopError)
		}
	}
	return agg
}

// addStats accumulates one worker's counters into the aggregate.
func addStats(dst *Stats, s Stats) {
	dst.Valid += s.Valid
	dst.Candidates += s.Candidates
	dst.Duplicates += s.Duplicates
	dst.Invalid += s.Invalid
	dst.LTRuns += s.LTRuns
	dst.SeedsPruned += s.SeedsPruned
	dst.OutputsTried += s.OutputsTried
	dst.Steals += s.Steals
	dst.TimedOut = dst.TimedOut || s.TimedOut
	dst.RecordStop(s.StopReason)
	if dst.Err == nil {
		dst.Err = s.Err
	}
}
