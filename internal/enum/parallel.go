package enum

// Sharded parallel POLY-ENUM-INCR. The top level of the incremental search
// chooses the first output by walking the topological order, and the
// subtree under each first-output choice touches no search state of any
// other subtree (topLevel resets the worker between positions). That makes
// first-output positions the natural shard grain: workers claim positions
// dynamically, each running the exact serial algorithm on its own
// clone-per-shard state (validator, dedup map, bitset scratch, flow
// solver), and a merge stage reassembles the per-position cut streams in
// position order.
//
// Determinism. The serial enumeration visits cuts in a well-defined order:
// the concatenation, over first-output positions, of each subtree's
// discovery sequence, with a global first-occurrence dedup. The parallel
// enumeration reproduces that order exactly. Each shard dedups within its
// subtree only (the dedup map is cleared per position, so a position's
// stream is a pure function of the graph, the options and the position),
// and the merge stage performs the cross-subtree dedup with first-wins
// semantics while draining positions in ascending order. The visitor
// therefore sees the same cuts, in the same order, as Parallelism=1 —
// including the same prefix when it stops the enumeration early. Under
// Options.Deadline the visited sequence is still a prefix of the serial
// order (a timed-out shard raises the shared stop before closing its
// truncated stream, so the merge never visits past the first incomplete
// subtree), though not necessarily the same prefix a serial run with the
// same deadline would reach — shards progress at different rates.
//
// Stats. Candidates, Valid, Duplicates, LTRuns, SeedsPruned and
// OutputsTried aggregate across shards; Valid and Duplicates are corrected
// at the merge so Valid counts distinct visited cuts and the examined mass
// Valid + Invalid + Duplicates matches the serial run. Two counters can
// still differ from a serial run: a candidate that repeats an
// already-INVALID vertex set from another shard's subtree is re-validated
// (counting Invalid) where the serial run's global dedup map would have
// counted a Duplicate; and after an early visitor stop, shards already past
// the stopped prefix report work a serial run would never have started.

import (
	"sync"
	"sync/atomic"

	"polyise/internal/dfg"
	"polyise/internal/parallel"
)

// shardStreamBuf bounds the number of undrained cuts buffered per
// first-output position. Producers ahead of the merge frontier block once
// their position's buffer fills, so total in-flight memory is at most
// workers×shardStreamBuf cuts beyond the frontier.
const shardStreamBuf = 64

// streamBuf shrinks the per-position buffer on very large graphs. Streams
// materialize lazily as positions are claimed and are released once
// drained (parallel.Ordered), so the common case pays only for the
// ~workers streams that actually hold data; the cap bounds the worst case
// — every position emitting into a buffer while producers sprint ahead of
// the drain frontier — to a few MB even for blocks far beyond the
// corpus's 1196-node ceiling.
func streamBuf(n int) int {
	const totalSlots = 1 << 18
	if b := totalSlots / n; b < shardStreamBuf {
		if b < 4 {
			return 4
		}
		return b
	}
	return shardStreamBuf
}

// enumerateParallel runs the sharded enumeration with the given worker
// count (≥ 2). The caller guarantees g is frozen and has at least 2 nodes.
func enumerateParallel(g *dfg.Graph, opt Options, visit func(Cut) bool, workers int) Stats {
	n := g.N()
	sh := newEnumShared(g, opt)

	// Shards must hand cuts across goroutines, so their node sets are
	// always cloned regardless of the caller's KeepCuts; the visitor
	// contract ("shared scratch, valid only during the call" when KeepCuts
	// is off) is trivially satisfied by the clone.
	sopt := opt
	sopt.KeepCuts = true
	sh.opt = sopt

	ord := parallel.NewOrdered[Cut](n, streamBuf(n))
	var stop atomic.Bool
	var next atomic.Int64
	var mu sync.Mutex
	var agg Stats

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := -1
			e := sh.newWorker(func(c Cut) bool {
				ord.Emit(cur, c)
				return !stop.Load()
			}, &stop)
			for {
				pos := int(next.Add(1)) - 1
				if pos >= n {
					break
				}
				// After a stop (early visitor stop or a deadline) keep
				// claiming positions so every stream gets closed — the
				// merge drains all n of them.
				if !e.stopped && !stop.Load() {
					cur = pos
					e.seen.Reset()
					e.topLevel(pos)
				}
				// A shard that hits the deadline raises the shared stop
				// BEFORE closing its truncated stream. The merge observes
				// the close only after draining that stream, and a channel
				// close is an acquire/release pair, so by the time the
				// drain advances past this position it is guaranteed to
				// see the flag and stop visiting. The visitor therefore
				// receives a coherent prefix — complete subtrees up to the
				// timed-out position plus that position's partial stream —
				// exactly the shape a serial timeout produces.
				if e.stats.TimedOut {
					stop.Store(true)
				}
				ord.Close(pos)
			}
			mu.Lock()
			addStats(&agg, e.stats)
			mu.Unlock()
		}()
	}

	// Merge stage: drain position streams in ascending order, dedup across
	// subtrees (first occurrence wins, matching the serial global dedup),
	// and feed the caller's visitor until it stops. Draining continues
	// after a stop so blocked producers always finish.
	seen := newSigSet()
	emitted, unique := 0, 0
	ord.Drain(func(c Cut) {
		emitted++
		if !seen.Insert(c.Nodes.Hash128()) {
			return
		}
		unique++
		if !stop.Load() && !visit(c) {
			stop.Store(true)
		}
	})
	wg.Wait()

	agg.Valid = unique
	agg.Duplicates += emitted - unique
	return agg
}

// addStats accumulates one shard's counters into the aggregate.
func addStats(dst *Stats, s Stats) {
	dst.Valid += s.Valid
	dst.Candidates += s.Candidates
	dst.Duplicates += s.Duplicates
	dst.Invalid += s.Invalid
	dst.LTRuns += s.LTRuns
	dst.SeedsPruned += s.SeedsPruned
	dst.OutputsTried += s.OutputsTried
	dst.TimedOut = dst.TimedOut || s.TimedOut
}
