package enum_test

// Failure-path semantics of the enumeration: contained panics (visitor,
// worker, thief mid-handoff), context cancellation, and resource budgets.
// Every test asserts the two halves of the fail-safe contract — the run
// terminates cleanly (no hang, merge drained) and the cuts already visited
// are an exact prefix of the serial enumeration order. All of these run
// under -race in CI (`make test-race`, `make chaos`).

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/workload"
)

// failGraph is the shared mid-size instance: rich enough to shard, steal
// and exceed dedup budgets, small enough to enumerate in milliseconds.
func failGraph(t *testing.T, seed int64, n int) (*dfg.Graph, []string) {
	t.Helper()
	g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), n, workload.DefaultProfile())
	sopt := enum.DefaultOptions()
	sopt.Parallelism = 1
	serial := visitSequence(g, sopt)
	if len(serial) < 10 {
		t.Fatalf("seed %d yields only %d cuts; pick a richer seed", seed, len(serial))
	}
	return g, serial
}

// runBounded runs fn with a liveness bound: a fail-safe enumeration must
// terminate on its own well within any watchdog.
func runBounded(t *testing.T, what string, fn func() enum.Stats) enum.Stats {
	t.Helper()
	done := make(chan enum.Stats, 1)
	go func() { done <- fn() }()
	select {
	case s := <-done:
		return s
	case <-time.After(60 * time.Second):
		t.Fatalf("%s did not terminate", what)
		panic("unreachable")
	}
}

func isPrefix(got, full []string) bool {
	if len(got) > len(full) {
		return false
	}
	for i := range got {
		if got[i] != full[i] {
			return false
		}
	}
	return true
}

// TestFailurePanickingVisitorSerial: a panic thrown by the visitor itself
// is contained at the serial boundary, reported as a *PanicError with the
// stack, and the cuts delivered before it form the exact serial prefix.
func TestFailurePanickingVisitorSerial(t *testing.T) {
	g, serial := failGraph(t, 3, 60)
	k := len(serial) / 2
	opt := enum.DefaultOptions()
	opt.Parallelism = 1
	opt.KeepCuts = true
	var got []string
	stats := runBounded(t, "serial run with panicking visitor", func() enum.Stats {
		return enum.Enumerate(g, opt, func(c enum.Cut) bool {
			got = append(got, c.String())
			if len(got) == k {
				panic("visitor exploded")
			}
			return true
		})
	})
	var pe *enum.PanicError
	if !errors.As(stats.Err, &pe) {
		t.Fatalf("Stats.Err = %v, want *PanicError", stats.Err)
	}
	if pe.Value != "visitor exploded" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
	if stats.StopReason != enum.StopError {
		t.Fatalf("StopReason = %v, want %v", stats.StopReason, enum.StopError)
	}
	if !reflect.DeepEqual(got, serial[:k]) {
		t.Fatalf("visited cuts diverge from the serial prefix (%d vs %d)", len(got), k)
	}
}

// TestFailurePanickingVisitorParallel: the same contract at the merge
// containment boundary — the drain keeps going so no producer is left
// blocked, and nothing is visited past the panic.
func TestFailurePanickingVisitorParallel(t *testing.T) {
	g, serial := failGraph(t, 3, 60)
	k := len(serial) / 2
	opt := enum.DefaultOptions()
	opt.Parallelism = 4
	var got []string
	stats := runBounded(t, "parallel run with panicking visitor", func() enum.Stats {
		return enum.Enumerate(g, opt, func(c enum.Cut) bool {
			got = append(got, c.String())
			if len(got) == k {
				panic("visitor exploded")
			}
			return true
		})
	})
	var pe *enum.PanicError
	if !errors.As(stats.Err, &pe) {
		t.Fatalf("Stats.Err = %v, want *PanicError", stats.Err)
	}
	if stats.StopReason != enum.StopError {
		t.Fatalf("StopReason = %v, want %v", stats.StopReason, enum.StopError)
	}
	if !reflect.DeepEqual(got, serial[:k]) {
		t.Fatalf("visited cuts diverge from the serial prefix (%d vs %d)", len(got), k)
	}
}

// TestFailurePanickingThiefMidHandoff forces interior stealing (one worker
// per top-level position) and kills the first thief right after it accepts
// a stolen range, before it reconstructs the donor's state. Containment
// must close the stranded stolen segment so the merge drains, and the
// visited cuts must still be a serial-order prefix. Steals are
// scheduling-dependent, so the test sweeps seeds and requires the fault to
// actually land at least once.
func TestFailurePanickingThiefMidHandoff(t *testing.T) {
	landed := 0
	for seed := int64(1); seed <= 4; seed++ {
		g, serial := failGraph(t, seed, 70)
		plan := faultinject.Install(faultinject.Injection{
			Site: faultinject.SiteStealClaim, Hit: 1, Action: faultinject.ActPanic,
		})
		opt := enum.DefaultOptions()
		opt.Parallelism = g.N()
		var got []string
		stats := runBounded(t, "steal-forced run with panicking thief", func() enum.Stats {
			return enum.Enumerate(g, opt, func(c enum.Cut) bool {
				got = append(got, c.String())
				return true
			})
		})
		fired := plan.Fired(faultinject.SiteStealClaim)
		faultinject.Uninstall()

		if fired == 0 {
			// No steal happened on this schedule: the run must be untouched.
			if stats.Err != nil || !reflect.DeepEqual(got, serial) {
				t.Fatalf("seed %d: no injection fired yet run disturbed: err=%v", seed, stats.Err)
			}
			continue
		}
		landed++
		var pe *enum.PanicError
		if !errors.As(stats.Err, &pe) {
			t.Fatalf("seed %d: Stats.Err = %v, want *PanicError", seed, stats.Err)
		}
		ip, ok := pe.Value.(faultinject.InjectedPanic)
		if !ok || ip.Site != faultinject.SiteStealClaim {
			t.Fatalf("seed %d: contained value %v, want the injected stealClaim panic", seed, pe.Value)
		}
		if stats.StopReason != enum.StopError {
			t.Fatalf("seed %d: StopReason = %v, want %v", seed, stats.StopReason, enum.StopError)
		}
		if !isPrefix(got, serial) {
			t.Fatalf("seed %d: visited cuts are not a serial-order prefix (%d cuts)", seed, len(got))
		}
	}
	if landed == 0 {
		t.Fatal("no thief panic landed across the seed sweep — the stealing path is dead")
	}
}

// TestFailureContextCanceledMidRun cancels Options.Context from inside the
// visitor: the run must stop with StopCanceled, EnumerateContext must
// surface ctx.Err(), and the visited cuts stay a serial-order prefix at
// every worker count.
func TestFailureContextCanceledMidRun(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(5)), 300, workload.DefaultProfile())
	// The serial reference is computed lazily per run: cancellation lands at
	// a schedule-dependent point, and the full n=300 enumeration is far more
	// work than the canceled prefix, so the reference run is capped at
	// exactly the visited length with MaxCuts (whose serial-prefix exactness
	// TestFailureMaxCuts pins independently).
	serialPrefix := func(k int) []string {
		opt := enum.DefaultOptions()
		opt.Parallelism = 1
		opt.KeepCuts = true
		opt.MaxCuts = k
		var seq []string
		enum.Enumerate(g, opt, func(c enum.Cut) bool {
			seq = append(seq, c.String())
			return true
		})
		return seq
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		opt := enum.DefaultOptions()
		opt.Parallelism = workers
		opt.KeepCuts = true
		var got []string
		var stats enum.Stats
		var err error
		runBounded(t, "canceled run", func() enum.Stats {
			stats, err = enum.EnumerateContext(ctx, g, opt, func(c enum.Cut) bool {
				got = append(got, c.String())
				if len(got) == 3 {
					cancel()
				}
				return true
			})
			return stats
		})
		cancel()
		if stats.StopReason != enum.StopCanceled {
			t.Fatalf("workers=%d: StopReason = %v, want %v", workers, stats.StopReason, enum.StopCanceled)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: EnumerateContext error = %v, want context.Canceled", workers, err)
		}
		if len(got) < 3 || !reflect.DeepEqual(got, serialPrefix(len(got))) {
			t.Fatalf("workers=%d: %d visited cuts are not a serial-order prefix", workers, len(got))
		}
	}
}

// TestFailureContextExpiredBeforeSteal starts a steal-forced run whose
// context is already expired: every worker must notice promptly — through
// the one shared Stopper primitive — and the run must report StopCanceled
// without hanging on the handoff protocol.
func TestFailureContextExpiredBeforeSteal(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(5)), 400, workload.DefaultProfile())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := enum.DefaultOptions()
	opt.Parallelism = g.N() // the steal-forced configuration
	var stats enum.Stats
	var err error
	runBounded(t, "steal-forced run with expired context", func() enum.Stats {
		stats, err = enum.EnumerateContext(ctx, g, opt, func(enum.Cut) bool { return true })
		return stats
	})
	if stats.StopReason != enum.StopCanceled {
		t.Fatalf("StopReason = %v, want %v", stats.StopReason, enum.StopCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestFailureDedupBudget drives the enumeration into Options.MaxDedupBytes:
// the run must stop with StopBudget (graceful degradation, not an error)
// and the visited cuts must be a serial-order prefix at every worker count.
func TestFailureDedupBudget(t *testing.T) {
	g, serial := failGraph(t, 3, 60)
	for _, workers := range []int{1, 4, g.N()} {
		opt := enum.DefaultOptions()
		opt.Parallelism = workers
		opt.KeepCuts = true
		opt.MaxDedupBytes = 1024
		var got []string
		stats := runBounded(t, "budgeted run", func() enum.Stats {
			return enum.Enumerate(g, opt, func(c enum.Cut) bool {
				got = append(got, c.String())
				return true
			})
		})
		if stats.StopReason != enum.StopBudget {
			t.Fatalf("workers=%d: StopReason = %v, want %v", workers, stats.StopReason, enum.StopBudget)
		}
		if stats.Err != nil {
			t.Fatalf("workers=%d: budget stop is not an error, got %v", workers, stats.Err)
		}
		if len(got) == 0 || len(got) >= len(serial) {
			t.Fatalf("workers=%d: budget of 1KiB visited %d of %d cuts — did not bind", workers, len(got), len(serial))
		}
		if !isPrefix(got, serial) {
			t.Fatalf("workers=%d: budget-stopped cuts are not a serial-order prefix", workers)
		}
	}
}

// TestFailureMaxCuts pins the exact-prefix semantics of the cut-count cap:
// at every worker count the visitor receives precisely the first MaxCuts
// serial cuts, Stats.Valid counts exactly those, and the stop is reported
// as StopBudget.
func TestFailureMaxCuts(t *testing.T) {
	g, serial := failGraph(t, 3, 60)
	for _, workers := range []int{1, 4, g.N()} {
		for _, k := range []int{1, 3, len(serial) / 2} {
			opt := enum.DefaultOptions()
			opt.Parallelism = workers
			opt.KeepCuts = true
			opt.MaxCuts = k
			var got []string
			stats := runBounded(t, "capped run", func() enum.Stats {
				return enum.Enumerate(g, opt, func(c enum.Cut) bool {
					got = append(got, c.String())
					return true
				})
			})
			if !reflect.DeepEqual(got, serial[:k]) {
				t.Fatalf("workers=%d MaxCuts=%d: got %d cuts, not the exact serial prefix", workers, k, len(got))
			}
			if stats.Valid != k {
				t.Fatalf("workers=%d MaxCuts=%d: Stats.Valid = %d", workers, k, stats.Valid)
			}
			if stats.StopReason != enum.StopBudget {
				t.Fatalf("workers=%d MaxCuts=%d: StopReason = %v", workers, k, stats.StopReason)
			}
		}
	}
}

// TestFailureEnumerateContextCompletes: a run that exhausts the search
// space under a live context reports no error and StopNone.
func TestFailureEnumerateContextCompletes(t *testing.T) {
	g, serial := failGraph(t, 3, 60)
	opt := enum.DefaultOptions()
	opt.Parallelism = 4
	opt.KeepCuts = true
	var got []string
	stats, err := enum.EnumerateContext(context.Background(), g, opt, func(c enum.Cut) bool {
		got = append(got, c.String())
		return true
	})
	if err != nil || stats.Err != nil || stats.StopReason != enum.StopNone {
		t.Fatalf("clean run reported err=%v stats.Err=%v reason=%v", err, stats.Err, stats.StopReason)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatalf("clean run diverges from serial (%d vs %d cuts)", len(got), len(serial))
	}
}
