// Package enum implements the paper's core contribution: enumeration of all
// convex cuts of a data-flow graph under input/output constraints in
// polynomial time, O(n^(Nin+Nout+1)) (§5).
//
// Two algorithms are provided. EnumerateBasic is the straightforward
// POLY-ENUM of figure 2: couple every admissible output set with every
// generalized dominator of each output. Enumerate is the incremental
// POLY-ENUM-INCR of figure 3, which builds the cut S while choosing inputs
// and outputs, interleaves Dubrova-style seed-set exploration with
// Lengauer–Tarjan runs on reduced graphs, and applies the pruning techniques
// of §5.3. docs/ALGORITHM.md maps both figures onto this package pseudocode
// line by line.
//
// # Completeness guarantees
//
// Both algorithms validate every candidate cut directly against the problem
// statement of §3 and deduplicate by a 128-bit vertex-set digest, so no
// configuration can ever produce an invalid or repeated cut. Completeness —
// every valid cut is produced — holds under DefaultOptions and is verified
// by measurement at two tiers: against the brute-force oracle over all
// vertex subsets to n ≈ 16 (any Options), and against the pruned-exhaustive
// oracle (baseline.DiffOracle, `make diff-oracle`) to n ≈ 240 on the
// MiBench-like corpus, including the pinned regression instances of the
// historical n ≥ 140 gap. That gap was a collision class in the dedup
// digest, not a search deficiency — the dedup layer is as
// completeness-critical as the search, which is why the oracle compares by
// full signature and triages digest collisions explicitly. The two
// approximate §5.3 prunings (PruneDominatorInput, PruneForbiddenAncestors)
// are the only knobs that trade completeness away, are off by default, and
// have their loss quantified in EXPERIMENTS.md.
//
// # The incremental search-state engine
//
// The paper's polynomial bound comes from sharing work across the search
// tree (§5.3), and since PR 3 the implementation shares state the same
// way: nothing about the current search node is recomputed from scratch.
// The cut S lives across pushes as journaled deltas — an output push grows
// S by the memoized backward cone of the new output, clipped by a
// traversal only where a chosen input blocks part of the cone
// (dfg.Traverser.GrowCut), and an input push shrinks S by recomputing
// survival only inside the new input's ancestor region, falling back to
// the from-scratch rebuild when that region is most of S
// (dfg.Traverser.ShrinkCut). Each push records exactly the vertices it
// changed in a per-depth undo journal, so backtracking is one word-
// parallel Subtract/Union. Reduced-graph dominators are read off a
// running-max sweep over the surviving-path region (analyzePaths), which
// exploits the identity topological order dfg.Freeze pins: bit index ≡
// topological position, so "does any surviving edge jump over v" is a
// highest-set-bit scan per vertex. The from-scratch recomputation
// (rebuildS) survives as the reference that property tests pin every
// delta against.
//
// Since PR 5 the sharing extends past S to the per-output analysis and the
// admission checks themselves. The reaches-o frontier of PICK-INPUTS is
// derived from its parent seed level by a confined delta
// (dfg.Traverser.ShrinkReachInto) instead of re-traversed; the source→o
// on-path set and the reduced-graph dominators fall out of one fused
// ascending pass over that frontier with no forward closure at all; an
// output push that is doomed with the input budget exhausted is rejected
// by one word-parallel scan before the grow kernel runs (quickOffending);
// and CHECK-CUT's §3 validation runs on the incremental validation engine
// (DeltaValidator, deltaval.go), which mirrors S through the search's own
// journals and keeps I(S), O(S) and the convexity frontiers as
// delta-maintained aggregates, demoting the from-scratch Validator to the
// property-tested reference.
package enum

import (
	"context"
	"time"
)

// Options configures an enumeration run.
//
// Validity always includes the technical condition the paper adds in §3 —
// every input needs a private root path into the cut avoiding all other
// inputs. Theorems 2 and 3, on which the generation and several prunings
// rest, hold under that condition; cuts it excludes are recoverable as
// S ∪ {w} per the discussion in §3.
type Options struct {
	// MaxInputs is Nin, the register-file read ports available to a custom
	// instruction (§3). Must be ≥ 1.
	MaxInputs int
	// MaxOutputs is Nout, the register-file write ports. Must be ≥ 1.
	MaxOutputs int

	// Parallelism selects how many workers the enumeration shards its
	// top-level search subtrees across: 0 means auto (GOMAXPROCS), 1 runs
	// the serial paper algorithm, and any larger value is taken literally
	// (oversubscribing GOMAXPROCS is allowed).
	//
	// Workers start on first-output subtrees and then re-balance by
	// stealing interior next-output ranges from busy peers, so skewed
	// subtree sizes no longer bound the speedup (see
	// internal/enum/parallel.go).
	//
	// Determinism contract: at ANY worker count, under ANY steal schedule,
	// the visitor receives exactly the cuts a serial run would produce, in
	// exactly the serial order, including the same prefix when the visitor
	// stops early — selection built on the enumeration is bit-for-bit
	// reproducible regardless of parallelism. The differential harness and
	// the pinned sequence digests of the gap-regression corpus enforce
	// this. Stats are NOT part of that contract. For runs that complete,
	// Valid, Candidates, LTRuns, OutputsTried and SeedsPruned match the
	// serial run exactly and only attribution can shift between Duplicates
	// and Invalid (their sum is preserved): a candidate repeated across
	// two dedup scopes is re-validated instead of being caught by the
	// serial run's global dedup. After an early visitor stop the work
	// counters are NOT preserved — workers already past the stopped prefix
	// report Candidates/OutputsTried/etc. a serial run would never have
	// started, and only Valid is exact: it counts precisely the cuts the
	// visitor received. Steals is scheduling-dependent and zero in serial
	// runs. Corpus-level drivers (internal/bench, cmd/compare) reuse the
	// same knob to shard across basic blocks instead. Use Parallelism=1 to
	// reproduce the paper's serial numbers.
	Parallelism int

	// ConnectedOnly restricts the search to connected cuts (definition 4),
	// the Yu–Mitra style restriction discussed in §2 and §5.3.
	ConnectedOnly bool

	// MaxDepth, when positive, rejects cuts whose internal critical path
	// exceeds this many edges — the Configurable Compute Accelerator
	// restriction mentioned in §5.3 (output–input pruning).
	MaxDepth int

	// Pruning toggles (§5.3). The first four are exact: they trade work for
	// nothing and the set of enumerated cuts is unchanged. They are on by
	// default.
	PruneOutputOutput   bool // skip outputs that are ancestors of chosen ones
	PruneInputInput     bool // skip seed pairs related by postdominance
	PruneOutputInput    bool // forbidden-node path partitioning + lower bound
	PruneWhileBuildingS bool // abort candidates as soon as S violates F/Nout
	// PruneInfeasibleBudget bounds seed extension with a min-vertex-cut
	// argument: completing the current output's dominator needs at least
	// maxflow(source→output) further inputs, counted over surviving paths
	// and with each already-chosen seed's mandatory vertices uncuttable
	// (cutting one would make that seed redundant). Exact; this is what
	// keeps the figure 4 tree family polynomial in practice.
	PruneInfeasibleBudget bool

	// PruneDominatorInput enables the paper's "simplified" dominator–input
	// test (§5.3): after a seed yields a valid dominator, later candidates
	// for the same slot are restricted to that seed's ancestors (and a
	// forbidden seed ends the slot). Implemented literally, this test is NOT
	// exact — it loses cuts whose dominators use an incomparable seed (the
	// test suite demonstrates this) — so unlike the paper we keep it OFF by
	// default and expose it only for the ablation study.
	PruneDominatorInput bool

	// PruneForbiddenAncestors enables the paper's aggressive form of the
	// output–input pruning: "if a forbidden node w is an ancestor of v, w's
	// ancestors will not be valid inputs to v" (§5.3). Taken literally this
	// is NOT exact either — an input may reach the output both through a
	// forbidden node and around it (the test suite demonstrates the loss) —
	// but it is what makes thousand-node memory-heavy blocks tractable, so
	// it ships as the opt-in "paper mode" used by the large-cluster
	// benchmarks.
	PruneForbiddenAncestors bool

	// KeepCuts controls whether valid cuts are handed to the visitor with
	// their node sets retained (cloned). When false the visitor receives a
	// shared scratch cut that is only valid during the call.
	KeepCuts bool

	// Deadline, when non-zero, aborts the enumeration once the wall clock
	// passes it; Stats.StopReason reports StopDeadline (and the deprecated
	// TimedOut alias stays set). The check runs every few thousand search
	// steps, so overruns are small.
	Deadline time.Time

	// Context, when non-nil, cancels the enumeration once its Done channel
	// closes; Stats.StopReason reports StopCanceled. It is polled at the
	// same sampled sites as Deadline, so cancellation latency is a few
	// thousand search steps. A stopped run still delivers a coherent
	// prefix of the serial visit order at every worker count (see the
	// Parallelism determinism contract); EnumerateContext is the
	// convenience wrapper that also returns an error.
	Context context.Context

	// MaxDedupBytes, when positive, bounds the memory of the global dedup
	// digest table (the open-addressing set that makes every cut unique):
	// the serial run's table, or the merge stage's in parallel runs. When
	// an insert would grow it past the budget the run ends early with
	// StopReason = StopBudget and exact partial stats, instead of growing
	// without bound on adversarial graphs. The table fills in serial cut
	// order at every worker count, so degradation delivers the longest
	// affordable serial-order prefix. (The transient per-worker scoped
	// tables, reset at every subtree, are not budgeted.)
	MaxDedupBytes int

	// MaxCuts, when positive, stops the run once the visitor has received
	// that many cuts, with StopReason = StopBudget. The delivered prefix
	// is bit-exact the first MaxCuts cuts of the serial order at every
	// worker count — a deterministic cuts-retained cap for callers that
	// collect results. On a resumed run (ResumeEnumerate) the cap counts
	// cuts delivered across the whole logical run, snapshot prefix
	// included, so the same Options mean the same thing before and after a
	// crash.
	MaxCuts int

	// CheckpointPath, when non-empty, makes the run durable: snapshots of
	// the enumeration state are written to this file (atomically, via a
	// temp file and rename) so a later ResumeEnumerate can continue the
	// run bit-exactly after a crash or kill. A snapshot is written every
	// CheckpointEvery delivered cuts and once more when the run stops for
	// any clean reason (completion, visitor stop, budget, deadline,
	// cancellation, CheckpointStop) or dies to a contained panic. All
	// snapshots are taken at the serial-order visit point — the one
	// quiescent cut across worker schedules, the same point where MaxCuts
	// binds — so the snapshot prefix is exactly "the first Visited cuts of
	// the serial order" at any worker count. A failed snapshot write stops
	// the run with StopError rather than continuing un-durably.
	CheckpointPath string

	// CheckpointEvery is the period, in delivered cuts, of periodic
	// snapshots; 0 disables periodic snapshots (only the final stop-time
	// snapshot is written). Ignored unless CheckpointPath is set. On a
	// resumed run the period counts across the seam, continuing the
	// interrupted run's cadence.
	CheckpointEvery int

	// CheckpointStop, when non-nil, requests a checkpoint-and-stop: once
	// the channel closes, the run writes a final snapshot (when
	// CheckpointPath is set) and stops cleanly with StopReason =
	// StopCheckpoint. This is the preemption hook — SIGINT handlers and
	// job schedulers close it instead of canceling the Context, turning
	// "shut down" into "park the run on disk". Polled at the same sampled
	// sites as Deadline.
	CheckpointStop <-chan struct{}

	// StealStallTimeout bounds how long a parallel donor waits for a
	// claimed thief to accept a steal handoff before declaring the
	// protocol's liveness broken and failing the run with a *StallError
	// (see the watchdog note in internal/enum/incremental.go). Zero means
	// the 10 s default. Under the handoff discipline a healthy send
	// completes in microseconds, so the timeout only matters as a
	// diagnosability bound; long-running services tighten it per request
	// so a broken run is reported quickly instead of occupying a slot for
	// the full default.
	StealStallTimeout time.Duration
}

// DefaultOptions returns the paper's standard configuration: Nin=4, Nout=2,
// unrestricted latency and connectivity, technical condition required, all
// prunings enabled.
func DefaultOptions() Options {
	return Options{
		MaxInputs:             4,
		MaxOutputs:            2,
		PruneOutputOutput:     true,
		PruneInputInput:       true,
		PruneOutputInput:      true,
		PruneWhileBuildingS:   true,
		PruneInfeasibleBudget: true,
		KeepCuts:              true,
	}
}

// PaperOptions returns the configuration closest to the paper's own
// implementation: the standard Nin=4/Nout=2 constraint with every §5.3
// pruning enabled, including the two approximate ones
// (PruneDominatorInput, PruneForbiddenAncestors). Enumeration under these
// options is fast but may miss a small fraction of valid cuts;
// EXPERIMENTS.md quantifies the loss.
func PaperOptions() Options {
	o := DefaultOptions()
	o.PruneDominatorInput = true
	o.PruneForbiddenAncestors = true
	return o
}

// Stats reports the work an enumeration performed and, for runs that ended
// early, why they stopped (StopReason) and with what error (Err).
type Stats struct {
	Valid        int // distinct valid cuts reported
	Candidates   int // candidate cuts submitted to validation
	Duplicates   int // candidates that repeated an already-seen vertex set
	Invalid      int // candidates that failed validation
	LTRuns       int // reduced-graph dominator analyses performed
	SeedsPruned  int // seed vertices skipped by §5.3 prunings
	OutputsTried int // output choices explored
	Steals       int // stolen interior ranges executed (0 in serial runs)

	// StopReason classifies an early end of the run: StopNone means the
	// search space was exhausted; any other value means the visited cuts
	// are a (coherent, serial-order) prefix. When several causes coincide
	// across parallel workers the highest-precedence reason wins.
	StopReason StopReason

	// Err is the first error of a failed run: a *PanicError for a panic
	// contained at a shard, steal-task or merge-consumer boundary, a
	// *StallError for a steal handoff the watchdog declared dead, or a
	// baseline-specific error. Non-nil implies StopReason == StopError.
	Err error

	// TimedOut reports that the run hit Options.Deadline.
	//
	// Deprecated: equivalent to StopReason == StopDeadline; kept as an
	// alias for callers predating StopReason.
	TimedOut bool
}
