package enum_test

import (
	"testing"

	"polyise/internal/enum"
	"polyise/internal/workload"
)

// legacyHash128 is the pre-fix digest, preserved here verbatim as an
// executable record of the n ≥ 140 completeness gap's root cause: folding
// raw words FNV-style lets an XOR difference confined to bit 63 of a word
// pass through multiplication by an odd constant as exactly a bit-63 flip
// ((x ± 2^63)·p ≡ x·p ± 2^63 mod 2^64), so toggling the top bit of two
// different words cancels in both lanes whatever the primes. See the
// Hash128 doc comment in internal/bitset and docs/ALGORITHM.md §7.
func legacyHash128(words []uint64) [2]uint64 {
	const (
		offset1 = 0xcbf29ce484222325
		prime1  = 0x100000001b3
		offset2 = 0x6c62272e07bb0142
		prime2  = 0x3f4e5a7b9d1c8e63
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for _, w := range words {
		h1 = (h1 ^ w) * prime1
		h2 = (h2 ^ w) * prime2
	}
	return [2]uint64{h1, h2}
}

// TestGapRootCauseDigestCollision demonstrates, on the first measured gap
// instance (n=140/seed 5), that the search was complete all along and the
// loss sat in the dedup layer: among the instance's 4 565 valid cuts the
// legacy digest collides for dozens of distinct pairs (the first victim is
// cut {127} colliding with cut {63}), while the fixed Hash128 keeps all
// 4 565 digests distinct. If this test starts failing on the "fixed" side,
// the dedup layer is eating cuts again — run `make diff-oracle` and read
// the DigestCollisions triage.
func TestGapRootCauseDigestCollision(t *testing.T) {
	gi := workload.GapRegressionInstances()[0]
	g := gi.Graph()
	opt := enum.DefaultOptions()
	opt.Parallelism = 1
	cuts, _ := enum.CollectAll(g, opt)
	if len(cuts) != gi.WantCuts {
		t.Fatalf("expected the pinned %d cuts, got %d", gi.WantCuts, len(cuts))
	}

	legacy := make(map[[2]uint64]string, len(cuts))
	fixed := make(map[[2]uint64]string, len(cuts))
	legacyCollisions := 0
	for _, c := range cuts {
		sig := c.Nodes.Signature()
		lh := legacyHash128(c.Nodes.Words())
		if prev, ok := legacy[lh]; ok && prev != sig {
			legacyCollisions++
		} else {
			legacy[lh] = sig
		}
		fh := c.Nodes.Hash128()
		if prev, ok := fixed[fh]; ok && prev != sig {
			t.Fatalf("fixed digest collision between %s and %s", prev, sig)
		}
		fixed[fh] = sig
	}
	if legacyCollisions == 0 {
		t.Fatal("expected the legacy digest to collide on this instance — " +
			"the executable root-cause record no longer reproduces")
	}
	t.Logf("legacy digest: %d colliding cuts among %d; fixed digest: 0", legacyCollisions, len(cuts))
}
