package enum

// Property tests keeping the word-parallel Validator honest against the
// scalar reference predicates retained on dfg.Graph, plus the allocation
// regression tests for the steady-state enumeration visit loop.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// randValGraph builds a random DAG with forbidden memory nodes and
// occasional extra live-outs, mirroring the external test package's randDFG
// (not importable from this internal test file).
func randValGraph(r *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(4) == 0 {
			g.MustAddNode(dfg.OpVar, "")
			continue
		}
		k := 1 + r.Intn(2)
		preds := make([]int, 0, k)
		for j := 0; j < k; j++ {
			preds = append(preds, r.Intn(i))
		}
		op := dfg.OpAdd
		if r.Intn(7) == 0 {
			op = dfg.OpLoad
		}
		id := g.MustAddNode(op, "", preds...)
		if op == dfg.OpLoad {
			if err := g.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
		if r.Intn(10) == 0 {
			if err := g.MarkLiveOut(id); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

// scalarValidate is the pre-engine Validate, written against the scalar
// reference predicates on dfg.Graph.
func scalarValidate(g *dfg.Graph, opt Options, S *bitset.Set, cut *Cut) bool {
	if S.Empty() {
		return false
	}
	if S.Intersects(g.ForbiddenSet()) || S.Intersects(g.RootSet()) {
		return false
	}
	ins := bitset.New(g.N())
	g.InputsInto(ins, S)
	if ins.Count() > opt.MaxInputs {
		return false
	}
	outs := bitset.New(g.N())
	g.OutputsInto(outs, S)
	if outs.Count() > opt.MaxOutputs {
		return false
	}
	if !g.IsConvex(S) {
		return false
	}
	if !g.TechnicalConditionHolds(S) {
		return false
	}
	if opt.ConnectedOnly && !g.IsConnectedCut(S) {
		return false
	}
	if opt.MaxDepth > 0 && scalarInternalDepth(g, S) > opt.MaxDepth {
		return false
	}
	if cut != nil {
		cut.Nodes = S
		cut.Inputs = ins.Members()
		cut.Outputs = outs.Members()
	}
	return true
}

func scalarInternalDepth(g *dfg.Graph, S *bitset.Set) int {
	depth := make(map[int]int, S.Count())
	max := 0
	for _, v := range g.Topo() {
		if !S.Has(v) {
			continue
		}
		d := 0
		for _, p := range g.Preds(v) {
			if S.Has(p) {
				if dp := depth[p] + 1; dp > d {
					d = dp
				}
			}
		}
		depth[v] = d
		if d > max {
			max = d
		}
	}
	return max
}

func TestValidatorMatchesScalarReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randValGraph(r, 2+r.Intn(80))
		n := g.N()
		opt := DefaultOptions()
		opt.KeepCuts = false
		opt.MaxInputs = 1 + r.Intn(5)
		opt.MaxOutputs = 1 + r.Intn(3)
		opt.ConnectedOnly = r.Intn(2) == 0
		opt.MaxDepth = r.Intn(4) // 0 disables the restriction
		val := NewValidator(g, opt)
		S := bitset.New(n)
		for trial := 0; trial < 20; trial++ {
			S.Clear()
			for v := 0; v < n; v++ {
				if r.Intn(3) == 0 {
					S.Add(v)
				}
			}
			var got, want Cut
			gotOK := val.Validate(S, &got)
			wantOK := scalarValidate(g, opt, S, &want)
			if gotOK != wantOK {
				t.Logf("seed=%d S=%v got %v want %v (opt=%+v)", seed, S, gotOK, wantOK, opt)
				return false
			}
			if gotOK {
				if !reflect.DeepEqual(got.Inputs, want.Inputs) ||
					!reflect.DeepEqual(got.Outputs, want.Outputs) {
					t.Logf("seed=%d S=%v io mismatch: %v vs %v", seed, S, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestValidatorCutsAreCutNodeSets drives the validator with the candidate
// sets the enumeration actually produces (CutNodesInto results), not just
// uniform-random subsets, so the agreement test covers the distribution the
// hot path sees.
func TestValidatorMatchesScalarOnEnumCandidates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randValGraph(r, 2+r.Intn(60))
		n := g.N()
		opt := DefaultOptions()
		opt.KeepCuts = false
		opt.ConnectedOnly = r.Intn(2) == 0
		val := NewValidator(g, opt)
		tr := g.NewTraverser()
		S := bitset.New(n)
		avoid := bitset.New(n)
		for trial := 0; trial < 15; trial++ {
			avoid.Clear()
			for v := 0; v < n; v++ {
				if r.Intn(5) == 0 {
					avoid.Add(v)
				}
			}
			outs := []int{r.Intn(n)}
			if r.Intn(2) == 0 {
				outs = append(outs, r.Intn(n))
			}
			tr.CutNodesInto(S, outs, avoid)
			if val.Validate(S, nil) != scalarValidate(g, opt, S, nil) {
				t.Logf("seed=%d outs=%v avoid=%v S=%v", seed, outs, avoid, S)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateZeroAlloc pins the allocation contract of the per-candidate
// validation: with KeepCuts off, a warmed validator must not allocate.
func TestValidateZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randValGraph(r, 120)
	opt := DefaultOptions()
	opt.KeepCuts = false
	opt.ConnectedOnly = true // exercise every predicate
	val := NewValidator(g, opt)
	tr := g.NewTraverser()
	n := g.N()
	S := bitset.New(n)
	avoid := bitset.New(n)
	var cut Cut
	// Warm: one pass grows the members scratch.
	tr.CutNodesInto(S, []int{n - 1}, avoid)
	val.Validate(S, &cut)
	allocs := testing.AllocsPerRun(100, func() {
		for o := n - 5; o < n; o++ {
			tr.CutNodesInto(S, []int{o}, avoid)
			val.Validate(S, &cut)
		}
	})
	if allocs != 0 {
		t.Fatalf("Validate allocated %.1f times per run, want 0", allocs)
	}
}

// TestEnumerateSteadyStateAllocs pins the steady-state behaviour of the
// whole visit loop: after a warm-up enumeration on the same worker (scratch
// buffers, per-depth snapshots and the dedup table all grown), re-running
// every top-level subtree must allocate nothing.
func TestEnumerateSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randValGraph(r, 100)
	opt := DefaultOptions()
	opt.KeepCuts = false
	sh := newEnumShared(g, opt)
	e := sh.newWorker(func(Cut) bool { return true }, nil)
	run := func() {
		for pos := range g.Topo() {
			e.topLevel(pos)
		}
	}
	run() // warm-up: grows all scratch state
	allocs := testing.AllocsPerRun(3, run)
	if allocs > 0 {
		t.Fatalf("steady-state visit loop allocated %.1f times per run, want 0", allocs)
	}
}

func TestSigSet(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	s := newSigSet()
	ref := make(map[[2]uint64]bool)
	keys := make([][2]uint64, 0, 4096)
	keys = append(keys, [2]uint64{0, 0}) // zero key is representable
	for i := 0; i < 4000; i++ {
		keys = append(keys, [2]uint64{r.Uint64() >> uint(r.Intn(64)), r.Uint64() >> uint(r.Intn(64))})
	}
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			want := !ref[k]
			if got := s.Insert(k); got != want {
				t.Fatalf("round %d: Insert(%v) = %v, want %v", round, k, got, want)
			}
			ref[k] = true
		}
		if s.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, s.Len(), len(ref))
		}
		s.Reset()
		if s.Len() != 0 {
			t.Fatalf("round %d: Len after Reset = %d", round, s.Len())
		}
		clear(ref)
	}
}
