package enum

// Durable checkpoint/resume integration. A run with Options.CheckpointPath
// set writes snapshots (internal/checkpoint) at the serial-order visit
// point — the only quiescent cut across worker schedules — and
// ResumeEnumerate continues an interrupted run such that the snapshot's
// delivered prefix concatenated with the resumed run's sequence is
// bit-identical to an uninterrupted serial run, at any worker count on
// either side of the seam.
//
// # What a snapshot needs, and why it is enough
//
// Three facts carry the whole design (docs/ALGORITHM.md §12):
//
//  1. Cut validity is a pure function of the vertex set S, which is itself
//     a pure function of the (outs, Ilist) choice stacks (rebuildS — the
//     PR 6 stealing invariant).
//  2. The exploration order is independent of dedup contents and visitor
//     verdicts: the search visits candidate (outs, Ilist) nodes in a fixed
//     order; dedup and validation only decide delivery, never traversal.
//  3. Every snapshot is taken at the serial-order visit point, so "the
//     first Visited cuts of the serial order" describes the delivered
//     prefix exactly, at any worker count.
//
// Therefore a resume needs only: the first top-level position not fully
// visited (CurTop), the dedup digests of what was already delivered, and
// the delivered count. It restarts the top-level loop at CurTop; the
// in-progress subtree is REPLAYED, and the restored digest table suppresses
// re-delivery of its pre-snapshot cuts — the dedup table is the skip
// mechanism, not just an optimization. By facts 1 and 2 the replay walks
// the same nodes to the same verdicts, so the first novel delivery is
// exactly the cut the interrupted run would have delivered next.
//
// Serial snapshots additionally carry the open pickOutputRange frames (the
// stealTask representation: (O,I) prefixes plus position ranges), used as a
// fast-forward path: a replayed frame whose identity matches a saved frame
// starts its loop at the saved position, skipping the fully-explored
// prefix of its range (ffwdEngage). Frames alone cannot BE the resume —
// the seed-extension loops between them thread cross-iteration state
// (lastValid under PruneDominatorInput) that is deliberately not
// serialized, for exactly the reason those loops are not stealable (see
// posRange) — so fast-forward accelerates the replay without replacing it.
//
// Dedup-scope compatibility across the seam: serial tables hold every
// candidate digest, the parallel merge's table only delivered cuts'. Both
// resume directions are sound because a digest NOT in the table is simply
// re-validated — and by fact 1 an invalid candidate re-validates to
// invalid — so only the Duplicates/Invalid attribution can shift, which
// the Stats contract already leaves free.

import (
	"errors"
	"fmt"
	"runtime/debug"

	"polyise/internal/bitset"
	"polyise/internal/checkpoint"
	"polyise/internal/dfg"
	"polyise/internal/faultinject"
	"polyise/internal/parallel"
)

// ErrCompleted is returned by ResumeEnumerate for a snapshot whose run
// exhausted the search space: there is nothing to resume.
var ErrCompleted = errors.New("enum: snapshot records a completed run; nothing to resume")

// optionsFingerprint hashes the Options fields that define the cut set and
// its visit order: the port constraints, connectivity/latency restrictions
// and the pruning toggles (the two approximate prunings change the cut set,
// the exact ones canonicalize the order's derivation). Budgets, deadlines,
// contexts, KeepCuts and Parallelism are excluded on purpose — the
// determinism contract makes them output-invariant, so a resume may
// legitimately change them (most obviously the worker count).
func optionsFingerprint(opt Options) uint64 {
	h := bitset.NewHasher128()
	h.Int(opt.MaxInputs)
	h.Int(opt.MaxOutputs)
	h.Int(opt.MaxDepth)
	flags := 0
	for i, b := range [...]bool{
		opt.ConnectedOnly,
		opt.PruneOutputOutput,
		opt.PruneInputInput,
		opt.PruneOutputInput,
		opt.PruneWhileBuildingS,
		opt.PruneInfeasibleBudget,
		opt.PruneDominatorInput,
		opt.PruneForbiddenAncestors,
	} {
		if b {
			flags |= 1 << i
		}
	}
	h.Int(flags)
	return h.Sum()[0]
}

// ckptWriter owns one run's snapshot output: the destination path and the
// precomputed identity fields every snapshot carries.
type ckptWriter struct {
	path    string
	gHash   [2]uint64
	gN      int
	optHash uint64
}

func newCkptWriter(g *dfg.Graph, opt Options) *ckptWriter {
	return &ckptWriter{
		path:    opt.CheckpointPath,
		gHash:   checkpoint.GraphDigest(g),
		gN:      g.N(),
		optHash: optionsFingerprint(opt),
	}
}

// write persists one snapshot atomically. The faultinject site lets the
// chaos suite kill a run in the middle of a snapshot write and prove the
// previous snapshot survives (checkpoint.WriteFile is temp+rename). A
// panic during the write is contained here and surfaced as the write
// error — snapshot writes happen at the final-write and merge-drain call
// sites that sit outside the workers' recoverPanic scope, so containment
// must live with the write itself.
func (ck *ckptWriter) write(s *checkpoint.Snapshot) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if h := faultinject.OnCheckpointWrite; h != nil {
		h()
	}
	return checkpoint.WriteFile(ck.path, s)
}

// newSnap starts a snapshot with the run's identity fields filled in.
func (ck *ckptWriter) newSnap() *checkpoint.Snapshot {
	return &checkpoint.Snapshot{GraphHash: ck.gHash, GraphN: ck.gN, OptHash: ck.optHash}
}

// countersOf extracts the advisory work counters of a Stats.
func countersOf(s Stats) checkpoint.Counters {
	return checkpoint.Counters{
		Valid:        int64(s.Valid),
		Candidates:   int64(s.Candidates),
		Duplicates:   int64(s.Duplicates),
		Invalid:      int64(s.Invalid),
		LTRuns:       int64(s.LTRuns),
		SeedsPruned:  int64(s.SeedsPruned),
		OutputsTried: int64(s.OutputsTried),
		Steals:       int64(s.Steals),
	}
}

// statsFromCounters is the inverse of countersOf, as the resumed run's
// counter baseline.
func statsFromCounters(c checkpoint.Counters) Stats {
	return Stats{
		Valid:        int(c.Valid),
		Candidates:   int(c.Candidates),
		Duplicates:   int(c.Duplicates),
		Invalid:      int(c.Invalid),
		LTRuns:       int(c.LTRuns),
		SeedsPruned:  int(c.SeedsPruned),
		OutputsTried: int(c.OutputsTried),
		Steals:       int(c.Steals),
	}
}

// liveSnap captures the serial worker's current state as a snapshot: the
// delivered count, the in-progress top-level position, every candidate
// digest seen so far, and the open pickOutputRange frames with the choice
// stacks backing them. Everything is copied — the capture must survive the
// stack unwinding that follows a stop.
func (e *incEnum) liveSnap() *checkpoint.Snapshot {
	s := e.ck.newSnap()
	s.Reason = uint8(e.stats.StopReason)
	s.Visited = int64(e.stats.Valid)
	s.CurTop = e.topPos
	s.Stats = countersOf(e.stats)
	s.Digests = e.seen.AppendDigests(nil)
	s.Outs = append([]int(nil), e.outs...)
	s.Ins = append([]int(nil), e.Ilist...)
	if len(e.ranges) > 0 {
		s.Frames = make([]checkpoint.Frame, len(e.ranges))
		for i, r := range e.ranges {
			s.Frames[i] = checkpoint.Frame{
				Depth: r.depth, Cur: r.cur, End: r.end,
				OutsLen: r.outsLen, InsLen: r.insLen,
				NinLeft: r.ninLeft, NoutLeft: r.noutLeft,
			}
		}
	}
	return s
}

// doneSnap is the completion snapshot: the run exhausted the search space,
// so only the identity and the final counters matter — no dedup table, no
// frames, nothing to resume.
func (e *incEnum) doneSnap() *checkpoint.Snapshot {
	s := e.ck.newSnap()
	s.Done = true
	s.Visited = int64(e.stats.Valid)
	s.CurTop = e.g.N()
	s.Stats = countersOf(e.stats)
	return s
}

// captureSnap records the live state at the serial stop moment, for the
// final snapshot write after the search unwinds. The first stop wins; the
// capture is valid even when the stop is a contained panic — the unwinding
// runs no frame epilogues, so e.ranges still holds the frame stack, whose
// claimed positions are coherent ([start, cur) fully explored at every
// level; the in-flight cur subtrees are replayed on resume).
func (e *incEnum) captureSnap() {
	if e.ck == nil || e.pendSnap != nil {
		return
	}
	e.pendSnap = e.liveSnap()
}

// writePeriodic writes a mid-run snapshot from the live state (serial
// periodic cadence; called at the visit point in checkCut). A failed write
// stops the run with StopError: continuing would silently void durability.
func (e *incEnum) writePeriodic() {
	if err := e.ck.write(e.liveSnap()); err != nil {
		e.fail(err)
	}
}

// writeFinal writes the stop-time snapshot of a serial run: the state
// captured at the stop moment, or the completion snapshot when the run
// exhausted the search space.
func (e *incEnum) writeFinal() {
	snap := e.pendSnap
	if snap == nil {
		if e.stats.StopReason != StopNone {
			snap = e.liveSnap() // defensive: stop without a capture point
		} else {
			snap = e.doneSnap()
		}
	}
	if err := e.ck.write(snap); err != nil && e.stats.Err == nil {
		e.stats.Err = err
		e.stats.RecordStop(StopError)
	}
}

// mergeSnap builds a parallel run's snapshot from the merge state: the
// delivered count, the top-level position of the last delivered cut (every
// earlier position is fully drained by merge order), and the global dedup
// table of delivered cuts. Parallel snapshots carry no frames — resume
// replays the whole CurTop subtree, because worker frame stacks are
// schedule-dependent and never quiescent at the merge's visit point.
func (ck *ckptWriter) mergeSnap(seen *sigSet, visited, curTop int, agg Stats) *checkpoint.Snapshot {
	s := ck.newSnap()
	s.Reason = uint8(agg.StopReason)
	s.Visited = int64(visited)
	s.CurTop = curTop
	agg.Valid = visited
	s.Stats = countersOf(agg)
	s.Digests = seen.AppendDigests(nil)
	return s
}

// resumeState carries a validated snapshot into the run internals.
type resumeState struct {
	startTop int
	visited  int64
	stats    Stats // counter baseline (advisory; Valid is overwritten)
	digests  [][2]uint64
	outs     []int
	ins      []int
	frames   []checkpoint.Frame
}

// installResume seeds a serial worker from the snapshot: the dedup table
// (the suppression mechanism for the replayed subtree), the counter
// baseline with Valid set to the delivered count — which keeps MaxCuts and
// CheckpointEvery counting globally across the seam — and the saved frames
// for fast-forward.
func (e *incEnum) installResume(rs *resumeState) {
	for _, d := range rs.digests {
		e.seen.Insert(d)
	}
	e.stats = rs.stats
	e.stats.Valid = int(rs.visited)
	if len(rs.frames) > 0 {
		e.ffwd = rs.frames
		e.ffwdOuts = rs.outs
		e.ffwdIns = rs.ins
	}
}

// ffwdEngage tries to align the just-pushed pickOutputRange frame at stack
// index ri with the resumed snapshot's saved frame of the same index. The
// frame identity — depth, range end, budgets, and the full (outs, Ilist)
// stacks at frame entry — determines the search node uniquely (each node
// is one choice sequence), so a full match means this IS the saved frame:
// the loop may start at the saved position, skipping the fully-explored
// [start, Cur) prefix. A mismatch just means the replay is passing through
// an earlier sibling node on its way to the saved path; nothing engages
// and nothing is skipped. Engagement is gated on e.ffwdOn — the number of
// saved frames currently matched-and-on-path — so a deeper saved frame can
// only engage while every shallower one is still sitting at its saved
// position (the claim loop truncates ffwdOn the moment a matched level
// moves past it).
func (e *incEnum) ffwdEngage(ri, depth, start, end, ninLeft, noutLeft int) {
	if ri != e.ffwdOn || ri >= len(e.ffwd) {
		return
	}
	f := e.ffwd[ri]
	if f.Depth != depth || f.End != end || f.Cur < start ||
		f.NinLeft != ninLeft || f.NoutLeft != noutLeft ||
		f.OutsLen != len(e.outs) || f.InsLen != len(e.Ilist) ||
		f.OutsLen > len(e.ffwdOuts) || f.InsLen > len(e.ffwdIns) {
		return
	}
	for i, o := range e.outs {
		if e.ffwdOuts[i] != o {
			return
		}
	}
	for i, v := range e.Ilist {
		if e.ffwdIns[i] != v {
			return
		}
	}
	e.ranges[ri].cur = f.Cur - 1 // the loop's next claim is the saved Cur
	e.ffwdOn = ri + 1
}

// ResumeEnumerate continues an interrupted enumeration from a decoded
// snapshot (checkpoint.ReadFile): after validating that g and opt describe
// the same problem the snapshot was taken from, it delivers to visit
// exactly the cuts an uninterrupted serial run would have delivered AFTER
// the snapshot's prefix — prefix + resumed sequence is bit-identical to
// the uninterrupted serial sequence, at any Parallelism on either side of
// the seam, with no duplicate or missing cuts.
//
// Counting is global across the seam: the returned Stats.Valid, a MaxCuts
// cap and the CheckpointEvery cadence all count cuts of the whole logical
// run, snapshot prefix included. The work counters (Candidates, LTRuns, …)
// are advisory on a resumed run — the replay of the in-progress subtree
// re-executes pre-snapshot work — and a pre-snapshot candidate replayed
// against a dedup table that only tracked deliveries can shift attribution
// between Duplicates and Invalid, exactly the freedom the Stats contract
// already grants across worker counts.
//
// Errors: ErrCompleted when the snapshot records a finished run, a
// *checkpoint.MismatchError when g or the semantic Options differ from the
// snapshot's, and the run's own Stats.Err (panic, stall, failed snapshot
// write) otherwise. With CheckpointPath set the resumed run keeps
// checkpointing, so crash→resume chains arbitrarily.
func ResumeEnumerate(g *dfg.Graph, opt Options, snap *checkpoint.Snapshot, visit func(Cut) bool) (Stats, error) {
	// Identity is validated before the Done check: a completed snapshot
	// for a *different* graph or configuration must be refused as a
	// mismatch, not reported as "nothing to resume" for this one.
	if gh := checkpoint.GraphDigest(g); gh != snap.GraphHash || g.N() != snap.GraphN {
		return Stats{}, &checkpoint.MismatchError{
			Field: "graph",
			Want:  fmt.Sprintf("n=%d digest=%016x%016x", snap.GraphN, snap.GraphHash[0], snap.GraphHash[1]),
			Got:   fmt.Sprintf("n=%d digest=%016x%016x", g.N(), gh[0], gh[1]),
		}
	}
	if oh := optionsFingerprint(opt); oh != snap.OptHash {
		return Stats{}, &checkpoint.MismatchError{
			Field: "options",
			Want:  fmt.Sprintf("%016x", snap.OptHash),
			Got:   fmt.Sprintf("%016x", oh),
		}
	}
	if snap.Done {
		return Stats{}, ErrCompleted
	}
	if snap.CurTop < 0 || snap.CurTop > g.N() {
		return Stats{}, &checkpoint.FormatError{Reason: "frontier position out of range"}
	}
	rs := &resumeState{
		startTop: snap.CurTop,
		visited:  snap.Visited,
		stats:    statsFromCounters(snap.Stats),
		digests:  snap.Digests,
		outs:     snap.Outs,
		ins:      snap.Ins,
		frames:   snap.Frames,
	}
	var stats Stats
	if w := parallel.Workers(opt.Parallelism); w > 1 && g.N() > 1 {
		stats = enumerateParallel(g, opt, visit, w, rs)
	} else {
		stats = enumerateSerial(g, opt, visit, rs)
	}
	if stats.Err != nil {
		return stats, stats.Err
	}
	return stats, nil
}
