package enum_test

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"polyise/internal/baseline"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

// The differential harness behind the parallel enumeration: sharding the
// search may never change WHAT is enumerated (the cut set must match the
// serial algorithm and, on small graphs, the brute-force oracle) nor the
// ORDER it is reported in (the parallel merge promises the serial visit
// sequence exactly). Every case runs over random MiBench-like DFGs across
// several sizes, seeds and (Nin, Nout) constraints, so a state-ownership
// bug in the clone-per-shard refactor has nowhere to hide.

// visitSequence records the exact visitor-facing enumeration: cut vertex
// signatures with derived inputs/outputs, in visit order.
func visitSequence(g *dfg.Graph, opt enum.Options) []string {
	opt.KeepCuts = true
	var seq []string
	enum.Enumerate(g, opt, func(c enum.Cut) bool {
		seq = append(seq, c.String())
		return true
	})
	return seq
}

// diffConstraints are the (Nin, Nout) pairs every differential case runs
// under, spanning the paper's standard constraint and tighter ones.
var diffConstraints = [][2]int{{2, 1}, {3, 2}, {4, 2}}

func optVariants(nin, nout int) map[string]enum.Options {
	std := enum.DefaultOptions()
	std.MaxInputs, std.MaxOutputs = nin, nout
	paper := enum.PaperOptions()
	paper.MaxInputs, paper.MaxOutputs = nin, nout
	conn := std
	conn.ConnectedOnly = true
	// All exact prunings off: the search revisits the same cuts through
	// many subtrees, which maximally stresses the cross-shard merge dedup.
	unpruned := std
	unpruned.PruneOutputOutput = false
	unpruned.PruneInputInput = false
	unpruned.PruneOutputInput = false
	unpruned.PruneWhileBuildingS = false
	unpruned.PruneInfeasibleBudget = false
	return map[string]enum.Options{
		"default": std, "paper": paper, "connected": conn, "unpruned": unpruned,
	}
}

// TestParallelMatchesSerialOnRandomCorpus is the core differential test:
// on a corpus of random DFGs (several sizes × seeds × constraints ×
// pruning configurations), the parallel enumeration must yield exactly the
// serial visit sequence.
func TestParallelMatchesSerialOnRandomCorpus(t *testing.T) {
	sizes := []int{12, 20, 35, 60, 90}
	for _, n := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), n, workload.DefaultProfile())
			for _, io := range diffConstraints {
				for name, opt := range optVariants(io[0], io[1]) {
					if name == "unpruned" && n > 35 {
						continue // exponential revisiting; the small sizes already stress the merge
					}
					sopt := opt
					sopt.Parallelism = 1
					serial := visitSequence(g, sopt)
					// 2 and 5 exercise the skewed-shard regime; n forces all
					// balancing through interior work-stealing.
					for _, workers := range []int{2, 5, n} {
						popt := opt
						popt.Parallelism = workers
						par := visitSequence(g, popt)
						if !reflect.DeepEqual(serial, par) {
							t.Fatalf("n=%d seed=%d io=%v opt=%s workers=%d: parallel sequence diverges\nserial   (%d cuts): %v\nparallel (%d cuts): %v",
								n, seed, io, name, workers, len(serial), serial, len(par), par)
						}
					}
				}
			}
		}
	}
}

// TestParallelMatchesBruteForce closes the loop with the oracle: on small
// graphs, serial enumeration, parallel enumeration and the exhaustive
// brute force must agree on the cut set.
func TestParallelMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := workload.MiBenchLike(r, 10+int(seed), workload.DefaultProfile())
		for _, io := range diffConstraints {
			opt := enum.DefaultOptions()
			opt.MaxInputs, opt.MaxOutputs = io[0], io[1]

			brute, _ := baseline.CollectBrute(g, opt)
			sopt := opt
			sopt.Parallelism = 1
			serial, _ := enum.CollectAll(g, sopt)
			popt := opt
			popt.Parallelism = 4
			par, _ := enum.CollectAll(g, popt)

			want := signatures(brute)
			if got := signatures(serial); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d io=%v: serial (%d cuts) vs brute (%d cuts) mismatch",
					seed, io, len(got), len(want))
			}
			if got := signatures(par); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d io=%v: parallel (%d cuts) vs brute (%d cuts) mismatch",
					seed, io, len(got), len(want))
			}
		}
	}
}

// oracleBudget is the per-run wall-clock budget of the mid-size oracle
// tests. The default keeps plain `go test ./...` (and the race-detector
// sweep, where every run is 10–20× slower but still deadline-capped) fast:
// runs that exceed it report inconclusive and are skipped, not failed.
// `make diff-oracle` raises it via POLYISE_ORACLE_BUDGET so every pinned
// and fresh instance is verified to completion; `make ci` uses an
// intermediate budget that covers all pinned instances on the CI machine.
func oracleBudget(t *testing.T) time.Duration {
	if s := os.Getenv("POLYISE_ORACLE_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("POLYISE_ORACLE_BUDGET: %v", err)
		}
		return d
	}
	return 3 * time.Second
}

// runOracle runs one budgeted poly-versus-pruned-exhaustive comparison and
// fails the test on any disagreement, with the oracle's own triage (digest
// collisions, basic-algorithm cross-check) in the failure message.
func runOracle(t *testing.T, name string, g *dfg.Graph, budget time.Duration) baseline.OracleReport {
	t.Helper()
	opt := enum.DefaultOptions()
	opt.Parallelism = 1
	rep := baseline.DiffOracle(name, g, opt, budget)
	if rep.Stopped() {
		t.Skipf("%s: budget %v exceeded — inconclusive (raise POLYISE_ORACLE_BUDGET or use `make diff-oracle`)", name, budget)
	}
	if !rep.Agree() {
		t.Fatalf("completeness violation:\n%s", rep)
	}
	t.Logf("%s", rep)
	return rep
}

// TestMidSizeOracleOnPinnedGapInstances re-verifies the instances on which
// the pre-fix dedup digest dropped valid cuts (the n ≥ 140 completeness
// gap): the polynomial enumeration must now match the pruned-exhaustive
// oracle exactly, at the exact pinned counts (4 565 and 7 891). This is
// the regression anchor — these instances sat in the measured gap for two
// engine revisions.
func TestMidSizeOracleOnPinnedGapInstances(t *testing.T) {
	for _, gi := range workload.GapRegressionInstances() {
		t.Run(gi.Name, func(t *testing.T) {
			rep := runOracle(t, gi.Name, gi.Graph(), oracleBudget(t))
			if rep.PolyCuts != gi.WantCuts {
				t.Fatalf("%s: %d cuts, pinned corpus expects %d", gi.Name, rep.PolyCuts, gi.WantCuts)
			}
		})
	}
}

// TestMidSizeOracleFreshRandom sweeps fresh MiBench-like instances at
// sizes straddling the bitset word boundaries (128, 192) up to the n ≈ 240
// oracle coverage bound. Unlike the pinned test it has no expected counts;
// agreement with the pruned-exhaustive search is the whole assertion.
func TestMidSizeOracleFreshRandom(t *testing.T) {
	budget := oracleBudget(t)
	for _, c := range []struct {
		n    int
		seed int64
	}{{130, 2}, {150, 3}, {190, 7}, {210, 11}, {240, 13}} {
		name, g := workload.FreshOracleInstance(c.n, c.seed)
		t.Run(name, func(t *testing.T) {
			runOracle(t, name, g, budget)
		})
	}
}

// TestParallelStatsConsistency pins down which Stats counters are exactly
// preserved by sharding (see the contract in parallel.go): for runs that
// complete, the amount of search work and the number of distinct valid
// cuts are identical — including under forced work-stealing, where search
// levels are executed piecewise by different workers — and the candidate
// accounting identity holds on both sides; only the Duplicates/Invalid
// attribution may shift. After an early visitor stop the work counters are
// explicitly NOT preserved (workers past the stopped prefix report extra
// work); the invariants that remain are Valid ≡ visited cuts and the
// parallel work counters dominating the serial-stop baseline's.
func TestParallelStatsConsistency(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), 50, workload.DefaultProfile())
		sopt := enum.DefaultOptions()
		sopt.Parallelism = 1
		_, ss := enum.CollectAll(g, sopt)
		// workers=3 is the skew-sharding regime; workers=n forces all
		// balancing through interior steals.
		for _, workers := range []int{3, g.N()} {
			popt := enum.DefaultOptions()
			popt.Parallelism = workers
			_, ps := enum.CollectAll(g, popt)

			if ps.Valid != ss.Valid || ps.Candidates != ss.Candidates ||
				ps.LTRuns != ss.LTRuns || ps.OutputsTried != ss.OutputsTried ||
				ps.SeedsPruned != ss.SeedsPruned {
				t.Fatalf("seed=%d workers=%d: work counters diverge\nserial   %+v\nparallel %+v",
					seed, workers, ss, ps)
			}
			// Candidates split into a pre-filter reject (outputs over budget,
			// forbidden overlap), then Valid/Invalid/Duplicates. The pre-filter
			// reject mass is deterministic per subtree, so the examined mass
			// Valid+Invalid+Duplicates must agree even though the
			// Duplicates/Invalid attribution may shift between serial (global
			// dedup) and parallel (per-scope dedup plus merge).
			if ps.Duplicates+ps.Invalid != ss.Duplicates+ss.Invalid {
				t.Fatalf("seed=%d workers=%d: duplicate+invalid mass diverges\nserial   %+v\nparallel %+v",
					seed, workers, ss, ps)
			}
		}

		// Early-stop invariants: Valid counts exactly the visited cuts, and
		// the parallel run can only have done MORE exploratory work than a
		// serial run stopped at the same cut, never less (the merge visiting
		// cut k proves every earlier scope fully drained).
		if ss.Valid < 4 {
			continue
		}
		k := ss.Valid / 2
		stopAfter := func(opt enum.Options) enum.Stats {
			seen := 0
			return enum.Enumerate(g, opt, func(enum.Cut) bool {
				seen++
				return seen < k
			})
		}
		sstop := stopAfter(sopt)
		popt := enum.DefaultOptions()
		popt.Parallelism = g.N()
		pstop := stopAfter(popt)
		if sstop.Valid != k || pstop.Valid != k {
			t.Fatalf("seed=%d: early-stop Valid = %d serial / %d parallel, want %d",
				seed, sstop.Valid, pstop.Valid, k)
		}
		if pstop.Candidates < sstop.Candidates || pstop.OutputsTried < sstop.OutputsTried ||
			pstop.LTRuns < sstop.LTRuns {
			t.Fatalf("seed=%d: stopped parallel run reports less work than the stopped serial run\nserial   %+v\nparallel %+v",
				seed, sstop, pstop)
		}
	}
}

// TestParallelTreeWorstCase runs the differential check on the figure 4
// family, whose deep identical subtrees are the classic trap for
// shard-local deduplication.
func TestParallelTreeWorstCase(t *testing.T) {
	for depth := 2; depth <= 4; depth++ {
		g := workload.Tree(depth, 2)
		for _, io := range diffConstraints {
			opt := enum.DefaultOptions()
			opt.MaxInputs, opt.MaxOutputs = io[0], io[1]
			sopt := opt
			sopt.Parallelism = 1
			popt := opt
			popt.Parallelism = 6
			serial := visitSequence(g, sopt)
			par := visitSequence(g, popt)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("tree depth=%d io=%v: %d serial vs %d parallel cuts",
					depth, io, len(serial), len(par))
			}
		}
	}
}

// TestParallelIterativeIdentifyDeterministic is exercised through the enum
// package's own surface: repeated full runs at growing worker counts on the
// same graph must keep producing the identical sequence (guards against
// scheduling-order leaks into the merge).
func TestParallelRepeatable(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(11)), 70, workload.DefaultProfile())
	opt := enum.DefaultOptions()
	opt.Parallelism = 4
	first := visitSequence(g, opt)
	if len(first) == 0 {
		t.Fatal("expected cuts on the reference graph")
	}
	for run := 1; run <= 4; run++ {
		opt.Parallelism = 1 + run*2
		if got := visitSequence(g, opt); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d (workers=%d): sequence changed:\nfirst %v\ngot   %v",
				run, opt.Parallelism, first, got)
		}
	}
}

// ExampleEnumerate_parallelism documents the reproduction switch: the
// paper's serial numbers come from Parallelism=1, and any other worker
// count enumerates the same cuts in the same order.
func ExampleEnumerate_parallelism() {
	g := workload.Tree(2, 2)
	opt := enum.DefaultOptions()
	opt.MaxInputs, opt.MaxOutputs = 2, 1

	opt.Parallelism = 1
	serial, _ := enum.CollectAll(g, opt)
	opt.Parallelism = 8
	parallel, _ := enum.CollectAll(g, opt)
	fmt.Println(len(serial) == len(parallel) && serial[0].String() == parallel[0].String())
	// Output: true
}
