package ise

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

// mac builds a multiply-accumulate chain: acc = a*b + c*d + e.
func mac(t testing.TB) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	c := g.MustAddNode(dfg.OpVar, "c")
	d := g.MustAddNode(dfg.OpVar, "d")
	e := g.MustAddNode(dfg.OpVar, "e")
	m1 := g.MustAddNode(dfg.OpMul, "m1", a, b)
	m2 := g.MustAddNode(dfg.OpMul, "m2", c, d)
	s1 := g.MustAddNode(dfg.OpAdd, "s1", m1, m2)
	s2 := g.MustAddNode(dfg.OpAdd, "s2", s1, e)
	_ = s2
	g.MustFreeze()
	return g
}

func cutOf(g *dfg.Graph, nodes ...int) enum.Cut {
	S := bitset.FromMembers(g.N(), nodes...)
	return enum.Cut{
		Nodes:   S,
		Inputs:  g.Inputs(S),
		Outputs: g.Outputs(S),
	}
}

func TestEstimateMAC(t *testing.T) {
	g := mac(t)
	est := NewEstimator(g, DefaultModel())
	// Whole computation {m1,m2,s1,s2}: SW = 3+3+1+1 = 8.
	// HW critical path: mul (0.9) + add (0.3) + add (0.3) = 1.5 → ceil 2.
	// 5 inputs → 3 extra input cycles. HW = 5. Saving = 3.
	e := est.Estimate(cutOf(g, 5, 6, 7, 8))
	if e.SWCycles != 8 {
		t.Errorf("SWCycles = %d, want 8", e.SWCycles)
	}
	if e.HWCycles != 5 {
		t.Errorf("HWCycles = %d, want 5", e.HWCycles)
	}
	if e.Saving != 3 {
		t.Errorf("Saving = %d, want 3", e.Saving)
	}
	// Single add: SW 1, HW 1, saving 0.
	e = est.Estimate(cutOf(g, 8))
	if e.Saving != 0 {
		t.Errorf("single add saving = %d, want 0", e.Saving)
	}
	// The two multiplies plus first add {m1,m2,s1}: SW 7, path 0.9+0.3 → 2,
	// 4 inputs → +2, HW 4, saving 3.
	e = est.Estimate(cutOf(g, 5, 6, 7))
	if e.SWCycles != 7 || e.HWCycles != 4 || e.Saving != 3 {
		t.Errorf("mac3 estimate = %+v", e)
	}
}

func TestBlockCycles(t *testing.T) {
	g := mac(t)
	est := NewEstimator(g, DefaultModel())
	// 5 vars (0 cycles) + 2 muls (3) + 2 adds (1) = 8.
	if got := est.BlockCycles(); got != 8 {
		t.Fatalf("BlockCycles = %d, want 8", got)
	}
}

func TestEstimateEmptyAndAreaAccumulation(t *testing.T) {
	g := mac(t)
	est := NewEstimator(g, DefaultModel())
	e := est.Estimate(cutOf(g, 5, 6))
	wantArea := 16.0 // two multipliers
	if e.Area != wantArea {
		t.Errorf("area = %v, want %v", e.Area, wantArea)
	}
	if !e.Overlaps(est.Estimate(cutOf(g, 6, 7))) {
		t.Error("overlapping cuts not detected")
	}
	if e.Overlaps(est.Estimate(cutOf(g, 8))) {
		t.Error("disjoint cuts reported overlapping")
	}
}

func TestSelectGreedyNonOverlapping(t *testing.T) {
	g := mac(t)
	cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
	sel := Select(g, DefaultModel(), cuts, DefaultSelectOptions())
	if len(sel.Chosen) == 0 {
		t.Fatal("nothing selected")
	}
	used := bitset.New(g.N())
	for _, c := range sel.Chosen {
		if used.Intersects(c.Cut.Nodes) {
			t.Fatal("selected instructions overlap")
		}
		used.Union(c.Cut.Nodes)
		if c.Saving <= 0 {
			t.Fatal("selected a non-saving instruction")
		}
	}
	if sel.Speedup() <= 1.0 {
		t.Fatalf("speedup = %v, want > 1", sel.Speedup())
	}
	if sel.BlockCyclesBefore != 8 {
		t.Fatalf("before = %d, want 8", sel.BlockCyclesBefore)
	}
}

func TestSelectRespectsBudgets(t *testing.T) {
	g := mac(t)
	cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
	opt := DefaultSelectOptions()
	opt.MaxInstructions = 1
	sel := Select(g, DefaultModel(), cuts, opt)
	if len(sel.Chosen) > 1 {
		t.Fatalf("chose %d instructions, budget 1", len(sel.Chosen))
	}
	opt = DefaultSelectOptions()
	opt.AreaBudget = 0.5 // too small for any multiplier
	sel = Select(g, DefaultModel(), cuts, opt)
	for _, c := range sel.Chosen {
		if c.Area > 0.5 {
			t.Fatalf("area budget violated: %v", c)
		}
	}
}

func TestExactMatchesOrBeatsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := workload.MiBenchLike(r, 12+r.Intn(20), workload.DefaultProfile())
		cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
		if len(cuts) == 0 {
			return true
		}
		// Bound candidate count so exact stays fast.
		if len(cuts) > 18 {
			cuts = cuts[:18]
		}
		greedy := Select(g, DefaultModel(), cuts, DefaultSelectOptions())
		exopt := DefaultSelectOptions()
		exopt.Exact = true
		exopt.ExactLimit = 18
		exact := Select(g, DefaultModel(), cuts, exopt)
		gSave := greedy.BlockCyclesBefore - greedy.BlockCyclesAfter
		eSave := exact.BlockCyclesBefore - exact.BlockCyclesAfter
		if eSave < gSave {
			t.Logf("seed=%d exact %d < greedy %d", seed, eSave, gSave)
			return false
		}
		// Exact selection must also be non-overlapping.
		used := bitset.New(g.N())
		for _, c := range exact.Chosen {
			if used.Intersects(c.Cut.Nodes) {
				return false
			}
			used.Union(c.Cut.Nodes)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentifyEndToEnd(t *testing.T) {
	g := mac(t)
	sel := Identify(g, enum.DefaultOptions(), DefaultModel(), DefaultSelectOptions())
	if sel.Speedup() < 1.5 {
		t.Fatalf("MAC speedup = %v, expected ≥ 1.5", sel.Speedup())
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	s := Selection{BlockCyclesBefore: 10, BlockCyclesAfter: 0}
	if s.Speedup() != 1 {
		t.Fatal("degenerate speedup should be 1")
	}
}
