package ise

import (
	"fmt"

	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// Round records one iteration of the iterative identification flow.
type Round struct {
	// Instruction is the cut selected in this round, scored against the
	// graph it was found in.
	Instruction Estimate
	// Graph is the block after collapsing the instruction.
	Graph *dfg.Graph
}

// IterativeResult is the outcome of IterativeIdentify.
type IterativeResult struct {
	Rounds []Round
	// Final is the block with every selected instruction collapsed.
	Final *dfg.Graph
	// CyclesBefore and CyclesAfter measure the block on the cost model
	// before the first and after the last round.
	CyclesBefore int
	CyclesAfter  int
}

// Speedup returns the block-level speedup achieved by all rounds together.
func (r IterativeResult) Speedup() float64 {
	if r.CyclesAfter <= 0 {
		return 1
	}
	return float64(r.CyclesBefore) / float64(r.CyclesAfter)
}

// IterativeIdentify runs the compiler-toolchain flow the paper's §7 refers
// to ([8]): repeatedly enumerate the current block's cuts, pick the single
// best instruction, collapse it into an OpCustom node (which is forbidden
// in later rounds), and continue on the rewritten block until no
// instruction saves cycles or maxRounds is reached.
//
// Collapsing between rounds is what lets one block yield several
// non-overlapping instructions without re-examining overlapping candidates,
// and it models the real compiler pipeline: each selected instruction
// becomes an opaque unit of the ISA.
//
// Each round's enumeration honors eopt.Parallelism; because the parallel
// enumeration visits cuts in the serial order, the chosen instruction — and
// therefore the whole iterative trajectory — is identical at any worker
// count.
func IterativeIdentify(g *dfg.Graph, eopt enum.Options, m Model, maxRounds int) (IterativeResult, error) {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	res := IterativeResult{
		Final:        g,
		CyclesBefore: NewEstimator(g, m).BlockCycles(),
	}
	cur := g
	for round := 0; round < maxRounds; round++ {
		est := NewEstimator(cur, m)
		var best Estimate
		enum.Enumerate(cur, eopt, func(c enum.Cut) bool {
			e := est.Estimate(c)
			if e.Saving > best.Saving {
				if !eopt.KeepCuts {
					// The visitor's cut shares enumeration scratch (node
					// set AND input/output slices) that later candidates
					// overwrite; retaining it across calls needs a full
					// clone.
					e.Cut = e.Cut.Clone()
				}
				best = e
			}
			return true
		})
		if best.Cut.Nodes == nil || best.Saving <= 0 {
			break
		}
		next, _, err := cur.CollapseCut(best.Cut.Nodes,
			fmt.Sprintf("ise%d", round), best.HWCycles)
		if err != nil {
			return res, fmt.Errorf("ise: collapsing round %d: %w", round, err)
		}
		res.Rounds = append(res.Rounds, Round{Instruction: best, Graph: next})
		cur = next
	}
	res.Final = cur
	res.CyclesAfter = NewEstimator(cur, m).BlockCycles()
	return res, nil
}
