package ise

import (
	"sort"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// SelectOptions configures instruction selection.
type SelectOptions struct {
	// MaxInstructions bounds how many custom instructions are selected;
	// zero means unlimited.
	MaxInstructions int
	// AreaBudget bounds the summed datapath area; zero means unlimited.
	AreaBudget float64
	// MinSaving discards candidates saving fewer cycles per execution.
	MinSaving int
	// Exact switches from the greedy heuristic to exhaustive
	// branch-and-bound over candidates; exponential, so it is only used
	// when the candidate list is small (≤ ExactLimit).
	Exact      bool
	ExactLimit int
}

// DefaultSelectOptions uses unlimited resources, greedy selection and a
// minimum saving of one cycle.
func DefaultSelectOptions() SelectOptions {
	return SelectOptions{MinSaving: 1, ExactLimit: 24}
}

// Selection is the result of instruction selection on one basic block.
type Selection struct {
	Chosen []Estimate
	// BlockCyclesBefore and After are the block's software execution time
	// without and with the selected instructions.
	BlockCyclesBefore int
	BlockCyclesAfter  int
	// TotalArea is the summed datapath area of the chosen instructions.
	TotalArea float64
}

// Speedup returns the estimated block-level speedup factor.
func (s Selection) Speedup() float64 {
	if s.BlockCyclesAfter <= 0 {
		return 1
	}
	return float64(s.BlockCyclesBefore) / float64(s.BlockCyclesAfter)
}

// Select scores every candidate cut and picks a non-overlapping subset
// maximizing the saved cycles under the given resource constraints.
func Select(g *dfg.Graph, m Model, cuts []enum.Cut, opt SelectOptions) Selection {
	est := NewEstimator(g, m)
	cands := make([]Estimate, 0, len(cuts))
	for _, c := range cuts {
		s := est.Estimate(c)
		if s.Saving >= opt.MinSaving && s.Saving > 0 {
			cands = append(cands, s)
		}
	}
	// Deterministic order: by descending saving, then fewer nodes, then by
	// vertex-set signature.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Saving != cands[j].Saving {
			return cands[i].Saving > cands[j].Saving
		}
		ci, cj := cands[i].Cut.Nodes.Count(), cands[j].Cut.Nodes.Count()
		if ci != cj {
			return ci < cj
		}
		return cands[i].Cut.Nodes.Signature() < cands[j].Cut.Nodes.Signature()
	})

	// A zero ExactLimit with Exact set would silently degrade every request
	// to the greedy heuristic (len(cands) <= 0 only holds for an empty
	// list); treat zero as "unset" and apply the default limit instead.
	if opt.Exact && opt.ExactLimit == 0 {
		opt.ExactLimit = DefaultSelectOptions().ExactLimit
	}
	var chosen []Estimate
	if opt.Exact && len(cands) <= opt.ExactLimit {
		chosen = exactSelect(g.N(), cands, opt)
	} else {
		chosen = greedySelect(g.N(), cands, opt)
	}

	sel := Selection{Chosen: chosen, BlockCyclesBefore: est.BlockCycles()}
	saved := 0
	for _, c := range chosen {
		saved += c.Saving
		sel.TotalArea += c.Area
	}
	sel.BlockCyclesAfter = sel.BlockCyclesBefore - saved
	if sel.BlockCyclesAfter < 1 && sel.BlockCyclesBefore > 0 {
		sel.BlockCyclesAfter = 1
	}
	return sel
}

func greedySelect(n int, cands []Estimate, opt SelectOptions) []Estimate {
	used := bitset.New(n)
	var chosen []Estimate
	area := 0.0
	for _, c := range cands {
		if opt.MaxInstructions > 0 && len(chosen) >= opt.MaxInstructions {
			break
		}
		if opt.AreaBudget > 0 && area+c.Area > opt.AreaBudget {
			continue
		}
		if used.Intersects(c.Cut.Nodes) {
			continue
		}
		chosen = append(chosen, c)
		used.Union(c.Cut.Nodes)
		area += c.Area
	}
	return chosen
}

// exactSelect finds the saving-maximal non-overlapping subset by
// branch-and-bound over the (sorted) candidate list.
func exactSelect(n int, cands []Estimate, opt SelectOptions) []Estimate {
	// suffixSaving[i] = total saving of candidates i.. (upper bound).
	suffix := make([]int, len(cands)+1)
	for i := len(cands) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + cands[i].Saving
	}
	var (
		best       []int
		bestSaving int
		cur        []int
		curSaving  int
		curArea    float64
		used       = bitset.New(n)
	)
	var rec func(i int)
	rec = func(i int) {
		if curSaving > bestSaving {
			bestSaving = curSaving
			best = append(best[:0], cur...)
		}
		if i == len(cands) || curSaving+suffix[i] <= bestSaving {
			return
		}
		c := cands[i]
		canTake := !(opt.MaxInstructions > 0 && len(cur) >= opt.MaxInstructions) &&
			!(opt.AreaBudget > 0 && curArea+c.Area > opt.AreaBudget) &&
			!used.Intersects(c.Cut.Nodes)
		if canTake {
			cur = append(cur, i)
			curSaving += c.Saving
			curArea += c.Area
			used.Union(c.Cut.Nodes)
			rec(i + 1)
			used.Subtract(c.Cut.Nodes)
			curArea -= c.Area
			curSaving -= c.Saving
			cur = cur[:len(cur)-1]
		}
		rec(i + 1)
	}
	rec(0)
	out := make([]Estimate, len(best))
	for i, idx := range best {
		out[i] = cands[idx]
	}
	return out
}

// Identify is the end-to-end flow: enumerate all cuts of g under the port
// constraints, then select custom instructions. It is the programmatic
// equivalent of the paper's compiler-toolchain use ([8], §7). The
// enumeration honors eopt.Parallelism (0 shards the search across
// GOMAXPROCS workers; 1 reproduces the paper's serial run); selection
// itself is deterministic either way because parallel enumeration preserves
// the serial cut order.
func Identify(g *dfg.Graph, eopt enum.Options, m Model, sopt SelectOptions) Selection {
	cuts, _ := enum.CollectAll(g, eopt)
	return Select(g, m, cuts, sopt)
}
