package ise_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/ise"
	"polyise/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the .golden files with current output")

// compareGolden pins got byte-for-byte against testdata/<name>.golden.
// Regenerate with `go test ./internal/ise/ -run Golden -update` and review
// the diff: RTL output is an external interface, so any change must be
// deliberate.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// allOpsGraph covers every operation WriteVerilog can emit, so the golden
// file pins each RTL template, including the unnamed-port fallback and the
// signed-shift and comparison idioms.
func allOpsGraph(t *testing.T) (*dfg.Graph, enum.Cut) {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	c := g.MustAddNode(dfg.OpConst, "") // unnamed: exercises the in<N> fallback
	if err := g.SetConst(c, -7); err != nil {
		t.Fatal(err)
	}

	add := g.MustAddNode(dfg.OpAdd, "", a, b)
	sub := g.MustAddNode(dfg.OpSub, "", add, c)
	mul := g.MustAddNode(dfg.OpMul, "", sub, a)
	div := g.MustAddNode(dfg.OpDiv, "", mul, b)
	rem := g.MustAddNode(dfg.OpRem, "", div, b)
	and := g.MustAddNode(dfg.OpAnd, "", rem, a)
	or := g.MustAddNode(dfg.OpOr, "", and, b)
	xor := g.MustAddNode(dfg.OpXor, "", or, a)
	not := g.MustAddNode(dfg.OpNot, "", xor)
	neg := g.MustAddNode(dfg.OpNeg, "", not)
	shl := g.MustAddNode(dfg.OpShl, "", neg, a)
	shr := g.MustAddNode(dfg.OpShr, "", shl, b)
	sar := g.MustAddNode(dfg.OpSar, "", shr, a)
	eq := g.MustAddNode(dfg.OpCmpEQ, "", sar, b)
	ne := g.MustAddNode(dfg.OpCmpNE, "", eq, a)
	lt := g.MustAddNode(dfg.OpCmpLT, "", ne, b)
	le := g.MustAddNode(dfg.OpCmpLE, "", lt, a)
	sel := g.MustAddNode(dfg.OpSelect, "", le, a, b)
	mn := g.MustAddNode(dfg.OpMin, "", sel, a)
	mx := g.MustAddNode(dfg.OpMax, "", mn, b)
	ab := g.MustAddNode(dfg.OpAbs, "", mx)
	if err := g.MarkLiveOut(ab); err != nil {
		t.Fatal(err)
	}
	fg := g.MustFreeze()

	S := bitset.New(fg.N())
	for v := 0; v < fg.N(); v++ {
		if !fg.IsRoot(v) {
			S.Add(v)
		}
	}
	return fg, enum.Cut{Nodes: S, Inputs: fg.Inputs(S), Outputs: fg.Outputs(S)}
}

func TestWriteVerilogAllOpsGolden(t *testing.T) {
	g, cut := allOpsGraph(t)
	var sb strings.Builder
	if err := ise.WriteVerilog(&sb, g, cut, "all_ops"); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	compareGolden(t, "verilog_all_ops", sb.String())
}

// TestWriteVerilogSelectionGolden pins the RTL for every instruction the
// selector actually chooses on the named corpus kernels — the end product
// of the pipeline, exactly as the scenario benchmarks hash it.
func TestWriteVerilogSelectionGolden(t *testing.T) {
	for _, name := range []string{"fir4", "hash-round", "mem-kernel"} {
		t.Run(name, func(t *testing.T) {
			var blk *workload.SelBlock
			for i, b := range workload.SelectionCorpus() {
				if b.Name == name {
					blk = &workload.SelectionCorpus()[i]
					break
				}
			}
			if blk == nil {
				t.Fatalf("block %q not in selection corpus", name)
			}
			cuts, _ := enum.CollectAll(blk.G, enum.DefaultOptions())
			sel := ise.Select(blk.G, ise.DefaultModel(), cuts, ise.DefaultSelectOptions())
			if len(sel.Chosen) == 0 {
				t.Fatalf("selector chose nothing on %s; golden would be empty", name)
			}
			var sb strings.Builder
			for i, c := range sel.Chosen {
				if i > 0 {
					sb.WriteString("\n")
				}
				if err := ise.WriteVerilog(&sb, blk.G, c.Cut, fmt.Sprintf("ise%d", i)); err != nil {
					t.Fatalf("WriteVerilog ise%d: %v", i, err)
				}
			}
			compareGolden(t, "verilog_"+name, sb.String())
		})
	}
}

func TestWriteVerilogRejectsNonRTLOps(t *testing.T) {
	g := dfg.New()
	p := g.MustAddNode(dfg.OpVar, "p")
	ld := g.MustAddNode(dfg.OpLoad, "", p)
	if err := g.MarkLiveOut(ld); err != nil {
		t.Fatal(err)
	}
	fg := g.MustFreeze()
	S := bitset.FromMembers(fg.N(), ld)
	cut := enum.Cut{Nodes: S, Inputs: fg.Inputs(S), Outputs: fg.Outputs(S)}
	err := ise.WriteVerilog(&strings.Builder{}, fg, cut, "bad")
	if err == nil || !strings.Contains(err.Error(), "RTL") {
		t.Fatalf("load in cut: err = %v, want RTL-emission refusal", err)
	}
}

func TestWriteVerilogDefaultModuleName(t *testing.T) {
	g, cut := allOpsGraph(t)
	var sb strings.Builder
	if err := ise.WriteVerilog(&sb, g, cut, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module ise_unit (") {
		t.Fatal("empty name did not fall back to ise_unit")
	}
}
