package ise

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

func TestIterativeIdentifyMAC(t *testing.T) {
	g := mac(t)
	res, err := IterativeIdentify(g, enum.DefaultOptions(), DefaultModel(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds selected")
	}
	if res.Speedup() <= 1 {
		t.Fatalf("speedup = %v, want > 1", res.Speedup())
	}
	// The final graph contains one custom node per round.
	customs := 0
	for v := 0; v < res.Final.N(); v++ {
		if res.Final.Op(v) == dfg.OpCustom {
			customs++
		}
	}
	if customs != len(res.Rounds) {
		t.Fatalf("custom nodes = %d, rounds = %d", customs, len(res.Rounds))
	}
	// Cycle accounting: after = before − Σ savings.
	saved := 0
	for _, r := range res.Rounds {
		saved += r.Instruction.Saving
	}
	if res.CyclesBefore-saved != res.CyclesAfter {
		t.Fatalf("cycle accounting: %d - %d != %d",
			res.CyclesBefore, saved, res.CyclesAfter)
	}
}

func TestIterativeIdentifyStopsWhenNoSaving(t *testing.T) {
	// A single add: no instruction can save a cycle, so zero rounds.
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	g.MustAddNode(dfg.OpAdd, "x", a, a)
	g.MustFreeze()
	res, err := IterativeIdentify(g, enum.DefaultOptions(), DefaultModel(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 {
		t.Fatalf("rounds = %d, want 0", len(res.Rounds))
	}
	if res.Speedup() != 1 {
		t.Fatalf("speedup = %v, want 1", res.Speedup())
	}
}

func TestIterativeIdentifyOnRandomBlocks(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := workload.MiBenchLike(r, 40+r.Intn(40), workload.DefaultProfile())
		res, err := IterativeIdentify(g, enum.DefaultOptions(), DefaultModel(), 5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Speedup() < 1 {
			t.Fatalf("seed %d: speedup %v < 1", seed, res.Speedup())
		}
		// Monotone: every extra round must not hurt.
		if res.CyclesAfter > res.CyclesBefore {
			t.Fatalf("seed %d: cycles increased", seed)
		}
	}
}

func TestWriteVerilogMAC(t *testing.T) {
	g := mac(t)
	est := NewEstimator(g, DefaultModel())
	cut := est.Estimate(cutOf(g, 5, 6, 7, 8)) // whole MAC
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, g, cut.Cut, "mac4"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module mac4",
		"input  wire signed [31:0] a",
		"input  wire signed [31:0] e",
		"* ", // multiplications present
		"assign",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
	// Two multiplies, two adds.
	if strings.Count(v, "*") != 2 {
		t.Errorf("want 2 multiplies:\n%s", v)
	}
	if strings.Count(v, " + ") != 2 {
		t.Errorf("want 2 adds:\n%s", v)
	}
}

func TestWriteVerilogAllOps(t *testing.T) {
	// A kernel touching every emittable operation.
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	k := g.MustAddNode(dfg.OpConst, "")
	if err := g.SetConst(k, 3); err != nil {
		t.Fatal(err)
	}
	n1 := g.MustAddNode(dfg.OpSub, "", a, b)
	n2 := g.MustAddNode(dfg.OpAbs, "", n1)
	n3 := g.MustAddNode(dfg.OpShl, "", n2, k)
	n4 := g.MustAddNode(dfg.OpSar, "", n3, k)
	n5 := g.MustAddNode(dfg.OpCmpLE, "", n4, a)
	n6 := g.MustAddNode(dfg.OpSelect, "", n5, n4, b)
	n7 := g.MustAddNode(dfg.OpMin, "", n6, a)
	n8 := g.MustAddNode(dfg.OpMax, "", n7, b)
	n9 := g.MustAddNode(dfg.OpXor, "", n8, b)
	n10 := g.MustAddNode(dfg.OpOr, "", n9, a)
	n11 := g.MustAddNode(dfg.OpAnd, "", n10, b)
	n12 := g.MustAddNode(dfg.OpNot, "", n11)
	n13 := g.MustAddNode(dfg.OpNeg, "", n12)
	_ = n13
	g.MustFreeze()

	// Cut = all non-root nodes.
	members := []int{}
	for v := 0; v < g.N(); v++ {
		if !g.IsRoot(v) {
			members = append(members, v)
		}
	}
	cut := cutOf(g, members...)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, g, cut, ""); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module ise_unit", "32'sd3", ">>>", "<<<", "? ", "~", "-n",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestWriteVerilogRejectsMemory(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	ld := g.MustAddNode(dfg.OpLoad, "ld", a)
	g.MustFreeze()
	cut := cutOf(g, ld)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, g, cut, "bad"); err == nil {
		t.Fatal("memory op emitted as RTL")
	}
}
