package ise_test

import (
	"strings"
	"testing"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/ise"
	"polyise/internal/semoracle"
	"polyise/internal/workload"
)

// Edge-case pins for the cost model and selector, in an external test
// package so they can hold selections to the semoracle invariant checker —
// the same one the scenario benchmarks enforce.

// TestEstimateZeroLatencyCut pins the hardware-latency clamp: a cut whose
// every operation is free in both software and hardware (constants) still
// costs at least one issue cycle, so its saving is negative and the
// selector must never take it.
func TestEstimateZeroLatencyCut(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	c1 := g.MustAddNode(dfg.OpConst, "")
	if err := g.SetConst(c1, 3); err != nil {
		t.Fatal(err)
	}
	add := g.MustAddNode(dfg.OpAdd, "", a, c1)
	if err := g.MarkLiveOut(add); err != nil {
		t.Fatal(err)
	}
	fg := g.MustFreeze()

	S := bitset.FromMembers(fg.N(), c1)
	cut := enum.Cut{Nodes: S, Inputs: fg.Inputs(S), Outputs: fg.Outputs(S)}
	est := ise.NewEstimator(fg, ise.DefaultModel()).Estimate(cut)
	if est.SWCycles != 0 {
		t.Fatalf("constant cut has SWCycles %d, want 0", est.SWCycles)
	}
	if est.HWCycles < 1 {
		t.Fatalf("HWCycles %d violates the >= 1 clamp", est.HWCycles)
	}
	if est.Saving >= 0 {
		t.Fatalf("free-op cut has saving %d, want negative", est.Saving)
	}
	sel := ise.Select(fg, ise.DefaultModel(), []enum.Cut{cut}, ise.SelectOptions{})
	if len(sel.Chosen) != 0 {
		t.Fatalf("selector took a negative-saving cut: %v", sel.Chosen)
	}
}

// TestSelectEmptySelectionAccounting pins the no-candidates path: with
// nothing worth selecting the block's cycle count must be untouched and
// the speedup exactly 1.
func TestSelectEmptySelectionAccounting(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	add := g.MustAddNode(dfg.OpAdd, "", a, b)
	if err := g.MarkLiveOut(add); err != nil {
		t.Fatal(err)
	}
	fg := g.MustFreeze()
	sel := ise.Select(fg, ise.DefaultModel(), nil, ise.DefaultSelectOptions())
	if len(sel.Chosen) != 0 || sel.TotalArea != 0 {
		t.Fatalf("empty candidate list selected %d cuts, area %.1f", len(sel.Chosen), sel.TotalArea)
	}
	if sel.BlockCyclesAfter != sel.BlockCyclesBefore {
		t.Fatalf("empty selection changed cycles: %d -> %d", sel.BlockCyclesBefore, sel.BlockCyclesAfter)
	}
	if sel.Speedup() != 1 {
		t.Fatalf("empty selection reports speedup %.3f, want 1", sel.Speedup())
	}
}

// TestSelectNeverTakesNegativeSaving pins the Saving > 0 guard
// independently of MinSaving: even an explicitly negative MinSaving must
// not admit cuts that slow the block down.
func TestSelectNeverTakesNegativeSaving(t *testing.T) {
	g := workload.SelectionCorpus()[0].G // fir4
	cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
	sel := ise.Select(g, ise.DefaultModel(), cuts, ise.SelectOptions{MinSaving: -100})
	if len(sel.Chosen) == 0 {
		t.Fatal("fir4 should still yield profitable cuts")
	}
	for _, c := range sel.Chosen {
		if c.Saving <= 0 {
			t.Fatalf("selected cut with saving %d", c.Saving)
		}
	}
}

// TestSelectExactZeroLimitUsesDefault pins the ExactLimit fix: Exact with
// a zero (unset) limit must run the branch-and-bound at the default limit
// instead of silently degrading to greedy. The trap graph chains two
// divisions through an add: the whole-chain cut has the single largest
// saving (26) and greedy grabs it, but the two separate division cuts
// save 14 + 14 = 28, so the two modes provably differ.
func TestSelectExactZeroLimitUsesDefault(t *testing.T) {
	g := trapGraph(t)
	cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
	m := ise.DefaultModel()
	explicit := ise.Select(g, m, cuts, ise.SelectOptions{MinSaving: 1, Exact: true, ExactLimit: 24})
	unset := ise.Select(g, m, cuts, ise.SelectOptions{MinSaving: 1, Exact: true})
	if got, want := saving(unset), saving(explicit); got != want {
		t.Fatalf("Exact with zero ExactLimit saves %d, explicit limit saves %d", got, want)
	}
	greedy := ise.Select(g, m, cuts, ise.SelectOptions{MinSaving: 1})
	if saving(greedy) >= saving(explicit) {
		t.Fatalf("trap graph no longer separates greedy (%d) from exact (%d); the regression is unobservable",
			saving(greedy), saving(explicit))
	}
}

// TestSelectionInvariantsOnEveryCorpusBlock holds the default greedy
// selection on every selection-corpus instance to the semoracle invariant
// set: disjointness, port bounds, budget compliance and exact cycle
// accounting.
func TestSelectionInvariantsOnEveryCorpusBlock(t *testing.T) {
	for _, blk := range workload.SelectionCorpus() {
		eopt := enum.DefaultOptions()
		sopt := ise.DefaultSelectOptions()
		cuts, _ := enum.CollectAll(blk.G, eopt)
		sel := ise.Select(blk.G, ise.DefaultModel(), cuts, sopt)
		if problems := semoracle.Invariants(blk.G, sel, eopt, sopt); len(problems) > 0 {
			t.Errorf("%s: %s", blk.Name, strings.Join(problems, "; "))
		}
	}
}

// trapGraph builds d1 = a/b; p1 = d1 + c; d2 = p1/e. Under the default
// model the serialized whole-chain cut pays the full critical path
// (hw 11, saving 26) yet sorts first, while the two division cuts it
// blocks save 14 each — the canonical shape where greedy selection is
// provably suboptimal.
func trapGraph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	in := func(name string) int { return g.MustAddNode(dfg.OpVar, name) }
	a, b, c, e := in("a"), in("b"), in("c"), in("e")
	d1 := g.MustAddNode(dfg.OpDiv, "", a, b)
	p1 := g.MustAddNode(dfg.OpAdd, "", d1, c)
	d2 := g.MustAddNode(dfg.OpDiv, "", p1, e)
	if err := g.MarkLiveOut(d2); err != nil {
		t.Fatal(err)
	}
	return g.MustFreeze()
}

func saving(s ise.Selection) int {
	total := 0
	for _, c := range s.Chosen {
		total += c.Saving
	}
	return total
}
