// Package ise turns enumerated convex cuts into Instruction Set Extensions:
// it scores cuts with a latency/area model, selects a non-overlapping set of
// custom instructions, and estimates the resulting basic-block speedup —
// the application flow the paper's introduction motivates and §7 reports
// ("full subgraph enumeration allows detection of high-performance custom
// instruction sets, yielding speedups up to 6x").
package ise

import (
	"fmt"
	"math"

	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// OpCost is the cost model entry for one operation kind.
type OpCost struct {
	// SWCycles is the operation's latency on the base processor pipeline.
	SWCycles int
	// HWDelay is the operation's propagation delay through the custom
	// functional unit, normalized so 1.0 equals one processor cycle.
	HWDelay float64
	// Area is the silicon cost of one instance, in arbitrary units
	// (NAND2-equivalents scaled down).
	Area float64
}

// Model maps operations to costs plus the per-instruction I/O overhead.
type Model struct {
	Costs [32]OpCost
	// ExtraInputCycles is the register-file overhead per custom-instruction
	// operand beyond the first two (sequenced reads on a 2-read-port file).
	ExtraInputCycles float64
	// ExtraOutputCycles is the write-back overhead per result beyond the
	// first.
	ExtraOutputCycles float64
}

// DefaultModel returns a cost model for a single-issue embedded RISC core
// with a 32-bit datapath, in the spirit of the models used by Atasu et al.
// and Pozzi et al.: single-cycle ALU ops, multi-cycle multiply/divide in
// software, and combinational delays well under a cycle for simple gates so
// that chaining several operations into one instruction is profitable.
func DefaultModel() Model {
	m := Model{
		ExtraInputCycles:  1,
		ExtraOutputCycles: 1,
	}
	set := func(op dfg.Op, sw int, hw, area float64) {
		m.Costs[op] = OpCost{SWCycles: sw, HWDelay: hw, Area: area}
	}
	set(dfg.OpVar, 0, 0, 0)
	set(dfg.OpConst, 0, 0, 0)
	set(dfg.OpAdd, 1, 0.30, 1.0)
	set(dfg.OpSub, 1, 0.30, 1.0)
	set(dfg.OpMul, 3, 0.90, 8.0)
	set(dfg.OpDiv, 18, 4.00, 20.0)
	set(dfg.OpRem, 18, 4.00, 20.0)
	set(dfg.OpAnd, 1, 0.05, 0.2)
	set(dfg.OpOr, 1, 0.05, 0.2)
	set(dfg.OpXor, 1, 0.06, 0.3)
	set(dfg.OpNot, 1, 0.03, 0.1)
	set(dfg.OpNeg, 1, 0.30, 0.8)
	set(dfg.OpShl, 1, 0.20, 1.5)
	set(dfg.OpShr, 1, 0.20, 1.5)
	set(dfg.OpSar, 1, 0.20, 1.5)
	set(dfg.OpCmpEQ, 1, 0.25, 0.7)
	set(dfg.OpCmpNE, 1, 0.25, 0.7)
	set(dfg.OpCmpLT, 1, 0.30, 0.9)
	set(dfg.OpCmpLE, 1, 0.30, 0.9)
	set(dfg.OpSelect, 1, 0.10, 0.9)
	set(dfg.OpMin, 1, 0.40, 1.2)
	set(dfg.OpMax, 1, 0.40, 1.2)
	set(dfg.OpAbs, 1, 0.35, 1.0)
	set(dfg.OpLoad, 2, 0, 0) // never inside a cut
	set(dfg.OpStore, 2, 0, 0)
	set(dfg.OpCall, 10, 0, 0)
	return m
}

// Cost returns the model entry for op.
func (m *Model) Cost(op dfg.Op) OpCost { return m.Costs[op] }

// Estimate is the scored form of a candidate instruction.
type Estimate struct {
	Cut enum.Cut
	// SWCycles is the software execution time of the covered operations.
	SWCycles int
	// HWCycles is the custom instruction's latency in cycles: the critical
	// path through the datapath, rounded up, plus I/O sequencing overhead,
	// at least 1.
	HWCycles int
	// Saving is SWCycles − HWCycles per execution (may be ≤ 0).
	Saving int
	// Area is the summed datapath area.
	Area float64
}

// Estimator scores cuts of one graph under a model.
type Estimator struct {
	g *dfg.Graph
	m Model
}

// NewEstimator creates an Estimator.
func NewEstimator(g *dfg.Graph, m Model) *Estimator {
	return &Estimator{g: g, m: m}
}

// swCycles returns the software latency of node v: the model entry for its
// operation, except custom instructions, whose latency is recorded in their
// const payload when the cut was collapsed (result extractors are free).
func (e *Estimator) swCycles(v int) int {
	switch e.g.Op(v) {
	case dfg.OpCustom:
		return int(e.g.ConstValue(v))
	case dfg.OpExtract:
		return 0
	}
	return e.m.Cost(e.g.Op(v)).SWCycles
}

// Estimate scores one cut.
func (e *Estimator) Estimate(c enum.Cut) Estimate {
	sw := 0
	area := 0.0
	// Critical path through the cut in normalized delay units.
	depth := make(map[int]float64, c.Nodes.Count())
	maxDelay := 0.0
	for _, v := range e.g.Topo() {
		if !c.Nodes.Has(v) {
			continue
		}
		cost := e.m.Cost(e.g.Op(v))
		sw += e.swCycles(v)
		area += cost.Area
		d := 0.0
		for _, p := range e.g.Preds(v) {
			if c.Nodes.Has(p) {
				if dp := depth[p]; dp > d {
					d = dp
				}
			}
		}
		d += cost.HWDelay
		depth[v] = d
		if d > maxDelay {
			maxDelay = d
		}
	}
	hw := math.Ceil(maxDelay)
	if nin := len(c.Inputs); nin > 2 {
		hw += float64(nin-2) * e.m.ExtraInputCycles
	}
	if nout := len(c.Outputs); nout > 1 {
		hw += float64(nout-1) * e.m.ExtraOutputCycles
	}
	if hw < 1 {
		hw = 1
	}
	return Estimate{
		Cut:      c,
		SWCycles: sw,
		HWCycles: int(hw),
		Saving:   sw - int(hw),
		Area:     area,
	}
}

// BlockCycles returns the software execution time of the whole block: the
// summed latency of every operation (custom instructions contribute their
// recorded hardware latency).
func (e *Estimator) BlockCycles() int {
	total := 0
	for v := 0; v < e.g.N(); v++ {
		total += e.swCycles(v)
	}
	return total
}

// Graph returns the underlying graph.
func (e *Estimator) Graph() *dfg.Graph { return e.g }

// String renders an estimate for reports.
func (s Estimate) String() string {
	return fmt.Sprintf("ISE{nodes=%d in=%d out=%d sw=%d hw=%d save=%d area=%.1f}",
		s.Cut.Nodes.Count(), len(s.Cut.Inputs), len(s.Cut.Outputs),
		s.SWCycles, s.HWCycles, s.Saving, s.Area)
}

// Overlaps reports whether two estimates share any graph vertex.
func (s Estimate) Overlaps(t Estimate) bool {
	return s.Cut.Nodes.Intersects(t.Cut.Nodes)
}
