// Package session turns the polyise enumeration library into a hardened
// long-running service: enumeration-as-a-service. It layers, over the
// library's existing fail-safe machinery (panic containment, budgets,
// deadlines, durable checkpoints), the concerns a server process has that a
// library call does not:
//
//   - Content-addressed graph caching. Frozen graphs are identified by
//     checkpoint.GraphDigest — the same hash that gates checkpoint resume —
//     so a client submits a graph once and every later request addresses it
//     by id. Identical submissions deduplicate to one cached instance, which
//     concurrent enumerations share safely (everything a Freeze computes is
//     immutable; the lazily built Augmented structures are sync.Once-guarded).
//
//   - One global memory budget. Cached graphs and the live dedup tables of
//     running enumerations draw reservations from a single Budget, so the
//     process's dominant memory consumers are bounded by one number. Under
//     pressure the cache evicts idle (refcount-zero) graphs in LRU order;
//     when eviction cannot free enough, the request is refused with a typed
//     OverloadError instead of growing without bound.
//
//   - Admission control. A bounded slot pool caps concurrent enumerations
//     and a bounded wait queue absorbs bursts; past that, requests are shed
//     immediately with an OverloadError carrying a retry-after hint —
//     load shedding, not load collapse.
//
//   - Per-request isolation. Every request runs under the PR 7 containment
//     contract: a panic anywhere in request handling surfaces as a
//     *enum.PanicError on that request alone, never as a dead server.
//
//   - Graceful degradation on shutdown. Shutdown closes a drain channel
//     that doubles as every running enumeration's Options.CheckpointStop:
//     short runs finish, durable runs park a snapshot on disk
//     (SuspendedError names it) and resume bit-exactly — possibly in a
//     different process — via ResumeEnumerate, and non-durable runs end
//     cleanly having delivered an exact serial-order prefix.
//
// The HTTP front end (http.go, cmd/polyised) is a thin translation onto
// this layer; everything above is exercisable — and chaos-tested — without
// a socket.
package session

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polyise/internal/checkpoint"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/graphio"
	"polyise/internal/ise"
)

// GraphID is the content address of a cached graph: checkpoint.GraphDigest
// of the frozen graph, so equal graphs get equal ids in every process.
type GraphID [2]uint64

// String renders the id as 32 hex digits, the wire form.
func (id GraphID) String() string { return checkpoint.DigestString(id) }

// ParseGraphID inverts GraphID.String.
func ParseGraphID(s string) (GraphID, error) {
	d, err := checkpoint.ParseDigest(s)
	return GraphID(d), err
}

// Config sizes a Service. The zero value is usable: unlimited memory, caps
// derived from GOMAXPROCS, no checkpoint directory (Durable requests are
// refused).
type Config struct {
	// MaxConcurrent caps enumerations running at once; 0 means GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth caps requests waiting for a slot beyond MaxConcurrent;
	// a request arriving past the queue is shed immediately. 0 means a
	// queue as deep as the slot pool.
	QueueDepth int
	// MemoryBudget bounds, in bytes, the cached graphs plus the live dedup
	// tables of running enumerations, together. 0 means unlimited.
	MemoryBudget int64
	// Limits caps graph submissions (graphio.ReadLimited). Zero fields are
	// unlimited — production configs should set all three.
	Limits graphio.Limits
	// DefaultDeadline bounds a request that does not set its own; 0 means
	// none.
	DefaultDeadline time.Duration
	// MaxCutsCeiling caps any request's MaxCuts (and applies when a
	// request sets none). 0 means no ceiling.
	MaxCutsCeiling int
	// DedupBudgetDefault is the per-request dedup-table reservation used
	// when a request does not set one. 0 means unbudgeted dedup (only
	// sensible with MemoryBudget == 0).
	DedupBudgetDefault int
	// CheckpointDir is where Durable runs park their snapshots; empty
	// refuses Durable requests.
	CheckpointDir string
	// RetryAfter is the backoff hint attached to shed requests; 0 means
	// one second.
	RetryAfter time.Duration
	// StallTimeout overrides enum.Options.StealStallTimeout per request so
	// a broken run frees its slot quickly; 0 keeps the library default.
	StallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.MaxConcurrent
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Request names one enumeration (or selection) over a cached graph.
type Request struct {
	// Graph addresses the cached graph (SubmitGraph's return).
	Graph GraphID
	// Options carries the enumeration configuration. The budget fields
	// (MaxCuts, MaxDedupBytes, Deadline, Context, Checkpoint*) are owned
	// by the service and overwritten from the fields below.
	Options enum.Options
	// MaxCuts caps delivered cuts; capped by Config.MaxCutsCeiling.
	MaxCuts int
	// DedupBudget is the dedup-table reservation in bytes; 0 takes
	// Config.DedupBudgetDefault.
	DedupBudget int
	// Deadline bounds the run; 0 takes Config.DefaultDeadline.
	Deadline time.Duration
	// Durable parks the run on shutdown (and checkpoints periodically)
	// instead of just stopping it; requires RunID and Config.CheckpointDir.
	Durable bool
	// RunID names the durable run's snapshot file; must be non-empty for
	// Durable requests and is restricted to [a-zA-Z0-9._-].
	RunID string
	// CheckpointEvery is the durable run's snapshot cadence in delivered
	// cuts; 0 writes only the stop-time snapshot.
	CheckpointEvery int
}

// Stats is a point-in-time summary of a Service.
type Stats struct {
	Admitted  uint64 // requests that won an execution slot
	Shed      uint64 // requests refused by admission control
	Completed uint64 // runs that returned to the client
	Panics    uint64 // runs that died to a contained panic
	Suspended uint64 // durable runs parked by shutdown
	Resumed   uint64 // runs continued from a snapshot
	Running   int64  // runs holding a slot right now

	Cache       CacheStats
	BudgetUsed  int64
	BudgetTotal int64 // 0 = unlimited
}

// Service is the enumeration session layer. All methods are safe for
// concurrent use.
type Service struct {
	cfg    Config
	budget *Budget
	cache  *Cache

	slots chan struct{}
	// inflight counts requests holding or waiting for a slot; admission
	// sheds when it would exceed MaxConcurrent+QueueDepth.
	inflight atomic.Int64
	drain    chan struct{}
	closing  atomic.Bool
	wg       sync.WaitGroup

	admitted  atomic.Uint64
	shed      atomic.Uint64
	completed atomic.Uint64
	panics    atomic.Uint64
	suspended atomic.Uint64
	resumed   atomic.Uint64
	running   atomic.Int64
}

// NewService builds a Service from cfg (see Config for zero-value
// semantics).
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	b := NewBudget(cfg.MemoryBudget)
	return &Service{
		cfg:    cfg,
		budget: b,
		cache:  NewCache(b),
		slots:  make(chan struct{}, cfg.MaxConcurrent),
		drain:  make(chan struct{}),
	}
}

// Cache exposes the graph cache (tests and the stats endpoint).
func (s *Service) Cache() *Cache { return s.cache }

// Stats returns a consistent-enough snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Admitted:    s.admitted.Load(),
		Shed:        s.shed.Load(),
		Completed:   s.completed.Load(),
		Panics:      s.panics.Load(),
		Suspended:   s.suspended.Load(),
		Resumed:     s.resumed.Load(),
		Running:     s.running.Load(),
		Cache:       s.cache.Stats(),
		BudgetUsed:  s.budget.Used(),
		BudgetTotal: s.budget.Total(),
	}
}

// SubmitGraph parses a graph from r under the configured Limits, freezes
// it, and publishes it into the content-addressed cache, evicting idle
// graphs if the budget demands it. It returns the graph's id and node
// count. Resubmitting an identical graph is a cache hit returning the same
// id. Errors are typed: *graphio.LimitError for an over-limit submission,
// *OverloadError when the graph cannot be cached within the budget,
// *enum.PanicError for a contained panic.
func (s *Service) SubmitGraph(r io.Reader) (id GraphID, nodes int, err error) {
	defer s.contain(&err)
	g, err := graphio.ReadLimited(r, s.cfg.Limits)
	if err != nil {
		return GraphID{}, 0, err
	}
	id, err = s.cache.Put(g)
	if err != nil {
		return GraphID{}, 0, err
	}
	return id, g.N(), nil
}

// Enumerate runs one enumeration request, streaming every cut to visit
// exactly as the library would (the serial-order determinism contract holds
// unchanged — the service adds no reordering). It blocks in the admission
// queue when the service is saturated; a shed request fails fast with
// *OverloadError. A durable run interrupted by Shutdown returns
// *SuspendedError naming the parked snapshot.
func (s *Service) Enumerate(ctx context.Context, req Request, visit func(enum.Cut) bool) (stats enum.Stats, err error) {
	defer s.contain(&err)
	release, err := s.admit(ctx)
	if err != nil {
		return enum.Stats{}, err
	}
	defer release()
	return s.run(ctx, req, nil, visit)
}

// Resume continues a durable run parked by a previous Shutdown (possibly
// of a previous process). req.RunID names the snapshot; req.Graph and the
// semantic fields of req.Options must match the original request or the
// resume is refused with a *checkpoint.MismatchError. The visitor receives
// exactly the cuts the uninterrupted run would have delivered after the
// snapshot prefix.
func (s *Service) Resume(ctx context.Context, req Request, visit func(enum.Cut) bool) (stats enum.Stats, err error) {
	defer s.contain(&err)
	if !req.Durable || req.RunID == "" {
		return enum.Stats{}, fmt.Errorf("session: Resume requires a Durable request with a RunID")
	}
	path, err := s.snapshotPath(req.RunID)
	if err != nil {
		return enum.Stats{}, err
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return enum.Stats{}, &NotFoundError{Kind: "run", ID: req.RunID}
		}
		return enum.Stats{}, err
	}
	if GraphID(snap.GraphHash) != req.Graph {
		return enum.Stats{}, &checkpoint.MismatchError{
			Field: "graph",
			Want:  GraphID(snap.GraphHash).String(),
			Got:   req.Graph.String(),
		}
	}
	release, err := s.admit(ctx)
	if err != nil {
		return enum.Stats{}, err
	}
	defer release()
	s.resumed.Add(1)
	return s.run(ctx, req, snap, visit)
}

// Select enumerates under req and runs instruction selection over the
// collected cuts — the end-to-end ISE identification flow as one request.
// The enumeration leg honors every budget exactly like Enumerate; the
// returned Stats describe it.
func (s *Service) Select(ctx context.Context, req Request, m ise.Model, sopt ise.SelectOptions) (sel ise.Selection, stats enum.Stats, err error) {
	defer s.contain(&err)
	release, err := s.admit(ctx)
	if err != nil {
		return ise.Selection{}, enum.Stats{}, err
	}
	defer release()
	req.Options.KeepCuts = true
	var cuts []enum.Cut
	stats, err = s.run(ctx, req, nil, func(c enum.Cut) bool {
		cuts = append(cuts, c)
		return true
	})
	if err != nil {
		return ise.Selection{}, stats, err
	}
	g, ok := s.cache.Acquire(req.Graph)
	if !ok {
		return ise.Selection{}, stats, &NotFoundError{Kind: "graph", ID: req.Graph.String()}
	}
	defer s.cache.Release(req.Graph)
	return ise.Select(g, m, cuts, sopt), stats, nil
}

// Shutdown drains the service: new admissions are refused, the drain
// channel stops every running enumeration at its next quiescent point
// (durable runs park a snapshot first), and Shutdown returns when the last
// run has released its slot or ctx expires. It is idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.closing.CompareAndSwap(false, true) {
		close(s.drain)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool { return s.closing.Load() }

// admit implements admission control: it acquires an execution slot or
// fails with a typed error, never blocking past the bounded queue. On
// success it returns the slot-release func and registers the run with the
// drain group.
func (s *Service) admit(ctx context.Context) (func(), error) {
	if s.closing.Load() {
		return nil, &OverloadError{Cause: CauseShutdown}
	}
	if s.inflight.Add(1) > int64(s.cfg.QueueDepth)+int64(s.cfg.MaxConcurrent) {
		s.inflight.Add(-1)
		s.shed.Add(1)
		return nil, &OverloadError{Cause: CauseQueue, RetryAfter: s.cfg.RetryAfter}
	}
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.inflight.Add(-1)
		return nil, ctx.Err()
	case <-s.drain:
		s.inflight.Add(-1)
		s.shed.Add(1)
		return nil, &OverloadError{Cause: CauseShutdown}
	}
	s.wg.Add(1)
	s.admitted.Add(1)
	s.running.Add(1)
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.running.Add(-1)
			s.inflight.Add(-1)
			<-s.slots
			s.wg.Done()
		})
	}
	// The admission fault site fires with the slot held; a panic here must
	// release it or the injected fault leaks capacity forever.
	if h := faultinject.OnAdmission; h != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					release()
					panic(r)
				}
			}()
			h()
		}()
	}
	return release, nil
}

// run executes one enumeration with the service budgets wired in; the
// caller holds an admission slot. snap non-nil resumes instead of starting.
func (s *Service) run(ctx context.Context, req Request, snap *checkpoint.Snapshot, visit func(enum.Cut) bool) (enum.Stats, error) {
	g, ok := s.cache.Acquire(req.Graph)
	if !ok {
		return enum.Stats{}, &NotFoundError{Kind: "graph", ID: req.Graph.String()}
	}
	defer s.cache.Release(req.Graph)

	opt := req.Options
	opt.Context = ctx
	opt.CheckpointStop = s.drain
	if s.cfg.StallTimeout > 0 && opt.StealStallTimeout == 0 {
		opt.StealStallTimeout = s.cfg.StallTimeout
	}

	opt.MaxCuts = req.MaxCuts
	if s.cfg.MaxCutsCeiling > 0 && (opt.MaxCuts == 0 || opt.MaxCuts > s.cfg.MaxCutsCeiling) {
		opt.MaxCuts = s.cfg.MaxCutsCeiling
	}
	if dl := req.Deadline; dl > 0 {
		opt.Deadline = time.Now().Add(dl)
	} else if s.cfg.DefaultDeadline > 0 {
		opt.Deadline = time.Now().Add(s.cfg.DefaultDeadline)
	}

	// The dedup table draws from the same budget as the graph cache: the
	// reservation may evict idle graphs, and an unaffordable reservation
	// sheds the request instead of letting the table grow unaccounted.
	dedup := req.DedupBudget
	if dedup == 0 {
		dedup = s.cfg.DedupBudgetDefault
	}
	if dedup > 0 {
		if !s.cache.ReserveBytes(int64(dedup)) {
			s.shed.Add(1)
			return enum.Stats{}, &OverloadError{Cause: CauseMemory, RetryAfter: s.cfg.RetryAfter}
		}
		defer s.cache.ReleaseBytes(int64(dedup))
		opt.MaxDedupBytes = dedup
	}

	opt.CheckpointPath, opt.CheckpointEvery = "", 0
	if req.Durable {
		path, err := s.snapshotPath(req.RunID)
		if err != nil {
			return enum.Stats{}, err
		}
		opt.CheckpointPath = path
		opt.CheckpointEvery = req.CheckpointEvery
	}

	var stats enum.Stats
	if snap != nil {
		var err error
		stats, err = enum.ResumeEnumerate(g, opt, snap, visit)
		if err != nil && stats.StopReason != enum.StopCheckpoint {
			s.completed.Add(1)
			return stats, err
		}
	} else {
		stats = enum.Enumerate(g, opt, visit)
	}
	s.completed.Add(1)
	switch {
	case stats.Err != nil:
		return stats, stats.Err
	case stats.StopReason == enum.StopCheckpoint:
		s.suspended.Add(1)
		return stats, &SuspendedError{RunID: req.RunID, SnapshotPath: opt.CheckpointPath, Visited: stats.Valid}
	case stats.StopReason == enum.StopCanceled && ctx.Err() != nil:
		return stats, ctx.Err()
	}
	return stats, nil
}

// snapshotPath validates a run id and maps it into CheckpointDir. The
// character restriction is what keeps client-chosen ids from escaping the
// directory.
func (s *Service) snapshotPath(runID string) (string, error) {
	if s.cfg.CheckpointDir == "" {
		return "", fmt.Errorf("session: durable runs disabled (no CheckpointDir configured)")
	}
	if runID == "" {
		return "", fmt.Errorf("session: durable run requires a RunID")
	}
	for _, c := range runID {
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return "", fmt.Errorf("session: run id %q: only [a-zA-Z0-9._-] allowed", runID)
		}
	}
	if strings.Trim(runID, ".") == "" {
		return "", fmt.Errorf("session: run id %q is not a file name", runID)
	}
	return filepath.Join(s.cfg.CheckpointDir, runID+".ckpt"), nil
}

// contain is the request-boundary panic barrier: it converts a panic in
// request handling (including injected faults at the session sites) into a
// *enum.PanicError on that request, keeping the process alive.
func (s *Service) contain(err *error) {
	if r := recover(); r != nil {
		s.panics.Add(1)
		*err = &enum.PanicError{Value: r, Stack: debug.Stack()}
	}
}
