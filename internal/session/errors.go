package session

import (
	"fmt"
	"time"
)

// OverloadCause classifies why admission refused a request.
type OverloadCause string

const (
	// CauseQueue: the bounded admission queue was full.
	CauseQueue OverloadCause = "queue"
	// CauseMemory: the memory budget could not cover the request even
	// after evicting every idle cached graph.
	CauseMemory OverloadCause = "memory"
	// CauseShutdown: the service is draining.
	CauseShutdown OverloadCause = "shutdown"
)

// OverloadError is the load-shedding refusal: the service chose not to run
// the request now, and (except under shutdown) a retry after RetryAfter is
// reasonable. It maps to HTTP 429/503.
type OverloadError struct {
	Cause      OverloadCause
	RetryAfter time.Duration // 0 = no hint (shutdown)
}

func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("session: overloaded (%s); retry after %v", e.Cause, e.RetryAfter)
	}
	return fmt.Sprintf("session: overloaded (%s)", e.Cause)
}

// NotFoundError reports a request addressing an unknown graph or parked
// run. For Kind "graph" the client resubmits the graph (content addressing
// makes that idempotent); for Kind "run" there is no snapshot to resume.
type NotFoundError struct {
	Kind string // "graph" or "run"
	ID   string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("session: %s %s not found", e.Kind, e.ID)
}

// SuspendedError reports a run stopped by Shutdown at a quiescent point
// after delivering Visited cuts — an exact serial-order prefix. For a
// durable run SnapshotPath names the parked snapshot and Resume continues
// it bit-exactly; for a non-durable run both RunID and SnapshotPath are
// empty and the prefix is all the client gets.
type SuspendedError struct {
	RunID        string
	SnapshotPath string
	Visited      int
}

func (e *SuspendedError) Error() string {
	if e.SnapshotPath == "" {
		return fmt.Sprintf("session: run stopped by shutdown after %d cuts (not durable)", e.Visited)
	}
	return fmt.Sprintf("session: run %s suspended by shutdown after %d cuts; snapshot at %s", e.RunID, e.Visited, e.SnapshotPath)
}
