package session

import (
	"container/list"
	"sync"

	"polyise/internal/checkpoint"
	"polyise/internal/dfg"
	"polyise/internal/faultinject"
)

// CacheStats is a point-in-time summary of the graph cache.
type CacheStats struct {
	Entries   int
	Bytes     int64 // resident graph bytes charged to the budget
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is the content-addressed graph store. Entries are keyed by
// GraphID (checkpoint.GraphDigest), charged against the shared Budget by
// dfg.Graph.FootprintBytes, and refcounted: a graph acquired by a running
// request is pinned; only idle (refcount-zero) entries are evictable, in
// LRU order. Eviction is triggered by reservation pressure — from a new
// graph or a dedup-table reservation — never by time.
//
// The concurrency contract leans on dfg.Graph immutability after Freeze:
// Acquire hands the same *dfg.Graph to any number of concurrent
// enumerations.
type Cache struct {
	// mu guards everything below. Hook panics inside the critical section
	// are safe: mutations happen only after the hook returns, and the
	// deferred unlock keeps siblings runnable.
	mu      sync.Mutex
	budget  *Budget
	entries map[GraphID]*entry
	idle    *list.List // of GraphID; front = most recently released

	hits, misses, evictions uint64
	bytes                   int64
}

// entry is one cached graph.
type entry struct {
	g     *dfg.Graph
	bytes int64
	refs  int
	idle  *list.Element // non-nil iff refs == 0 (listed for eviction)
}

// NewCache returns an empty cache charging b.
func NewCache(b *Budget) *Cache {
	return &Cache{budget: b, entries: make(map[GraphID]*entry), idle: list.New()}
}

// Put publishes a frozen graph and returns its content address. An
// identical graph already resident is a hit — the existing instance is
// kept and re-warmed in LRU order. A miss charges the graph's footprint to
// the budget, evicting idle entries as needed; when even a fully drained
// cache cannot afford it, Put fails with *OverloadError (CauseMemory).
func (c *Cache) Put(g *dfg.Graph) (GraphID, error) {
	id := GraphID(checkpoint.GraphDigest(g))
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		c.hits++
		c.touch(id, e)
		return id, nil
	}
	c.misses++
	if h := faultinject.OnCacheInsert; h != nil {
		h()
	}
	bytes := g.FootprintBytes()
	if !c.reserveEvicting(bytes) {
		return GraphID{}, &OverloadError{Cause: CauseMemory}
	}
	e := &entry{g: g, bytes: bytes}
	e.idle = c.idle.PushFront(id)
	c.entries[id] = e
	c.bytes += bytes
	return id, nil
}

// Acquire pins the graph for a request. The caller must Release(id) when
// the request finishes; until then the entry cannot be evicted.
func (c *Cache) Acquire(id GraphID) (*dfg.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e.refs++
	if e.idle != nil {
		c.idle.Remove(e.idle)
		e.idle = nil
	}
	return e.g, true
}

// Release unpins one Acquire. The last release lists the entry for
// eviction at the warm end of the LRU order.
func (c *Cache) Release(id GraphID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.refs <= 0 {
		panic("session: Cache.Release without matching Acquire")
	}
	e.refs--
	if e.refs == 0 {
		e.idle = c.idle.PushFront(id)
	}
}

// ReserveBytes charges n bytes of non-cache memory (a dedup table) to the
// shared budget, evicting idle graphs under pressure. Balanced by
// ReleaseBytes.
func (c *Cache) ReserveBytes(n int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reserveEvicting(n)
}

// ReleaseBytes returns a ReserveBytes charge.
func (c *Cache) ReleaseBytes(n int64) { c.budget.Release(n) }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// touch re-warms an entry in the idle order (pinned entries have no idle
// position to move).
func (c *Cache) touch(id GraphID, e *entry) {
	if e.idle != nil {
		c.idle.MoveToFront(e.idle)
	}
}

// reserveEvicting reserves n bytes from the budget, evicting idle entries
// coldest-first until the reservation fits or nothing evictable remains.
// Called with c.mu held. Each eviction is completed — entry dropped, bytes
// released — before the next reservation attempt, so a hook panic between
// steps leaves the accounting balanced.
func (c *Cache) reserveEvicting(n int64) bool {
	for {
		if c.budget.TryReserve(n) {
			return true
		}
		victim := c.idle.Back()
		if victim == nil {
			return false
		}
		if h := faultinject.OnCacheEvict; h != nil {
			h()
		}
		id := victim.Value.(GraphID)
		e := c.entries[id]
		c.idle.Remove(victim)
		delete(c.entries, id)
		c.bytes -= e.bytes
		c.budget.Release(e.bytes)
		c.evictions++
	}
}
