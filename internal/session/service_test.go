package session

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/graphio"
	"polyise/internal/workload"
)

// submitGraph pushes g through the service's submission path and returns
// its id.
func submitGraph(t testing.TB, s *Service, g *dfg.Graph) GraphID {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	id, _, err := s.SubmitGraph(&buf)
	if err != nil {
		t.Fatalf("SubmitGraph: %v", err)
	}
	return id
}

// serialReference enumerates g with the library directly (serial,
// unbudgeted) and returns the visit-ordered cut strings.
func serialReference(t testing.TB, g *dfg.Graph, opt enum.Options) []string {
	t.Helper()
	opt.Parallelism = 1
	var seq []string
	enum.Enumerate(g, opt, func(c enum.Cut) bool {
		seq = append(seq, c.String())
		return true
	})
	return seq
}

func collectStrings(seq *[]string) func(enum.Cut) bool {
	return func(c enum.Cut) bool {
		*seq = append(*seq, c.String())
		return true
	}
}

func TestServiceCachedEqualsFreshBitExact(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(7)), 80, workload.DefaultProfile())
	want := serialReference(t, g, enum.DefaultOptions())
	if len(want) == 0 {
		t.Fatal("reference enumeration empty; pick a richer graph")
	}
	s := NewService(Config{})
	id := submitGraph(t, s, g)
	// First request freezes-and-caches; second hits the cache. Both must
	// reproduce the library sequence bit-for-bit.
	for round := 0; round < 2; round++ {
		var got []string
		stats, err := s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, collectStrings(&got))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.StopReason != enum.StopNone {
			t.Fatalf("round %d: StopReason = %v", round, stats.StopReason)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: cached enumeration diverges from fresh library run (%d vs %d cuts)", round, len(got), len(want))
		}
	}
	if hits := s.Cache().Stats().Hits; hits == 0 {
		t.Fatal("second round did not hit the cache")
	}
}

// TestServiceConcurrentSharedGraph runs many enumerations of the same
// cached graph concurrently (one *dfg.Graph instance shared by all) under
// -race; every run must deliver the identical serial sequence.
func TestServiceConcurrentSharedGraph(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(11)), 60, workload.DefaultProfile())
	want := serialReference(t, g, enum.DefaultOptions())
	s := NewService(Config{MaxConcurrent: 4, QueueDepth: 16})
	id := submitGraph(t, s, g)
	const runs = 8
	var wg sync.WaitGroup
	results := make([][]string, runs)
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, collectStrings(&results[i]))
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("run %d diverges from the serial reference", i)
		}
	}
}

func TestServiceAdmissionShedsPastQueue(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 40, workload.DefaultProfile())
	s := NewService(Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	id := submitGraph(t, s, g)

	// Occupy the only slot with a visitor parked on a channel.
	inSlot := make(chan struct{}, 1)
	unblock := make(chan struct{})
	slotDone := make(chan error, 1)
	go func() {
		_, err := s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, func(enum.Cut) bool {
			select {
			case inSlot <- struct{}{}:
			default:
			}
			<-unblock
			return false
		})
		slotDone <- err
	}()
	<-inSlot

	// Fill the one queue seat with a canceled-later waiter.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.Enumerate(waiterCtx, Request{Graph: id, Options: enum.DefaultOptions()}, func(enum.Cut) bool { return false })
		waiterDone <- err
	}()
	// The waiter registers before blocking on the slot; give it a moment.
	deadline := time.After(5 * time.Second)
	for s.inflight.Load() < 2 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Slot taken, queue full: the next request must shed immediately.
	start := time.Now()
	_, err := s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, func(enum.Cut) bool { return true })
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("overflow request: err = %v, want *OverloadError", err)
	}
	if over.Cause != CauseQueue {
		t.Fatalf("Cause = %v, want %v", over.Cause, CauseQueue)
	}
	if over.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want the configured 2s", over.RetryAfter)
	}
	if shedLatency := time.Since(start); shedLatency > time.Second {
		t.Fatalf("shedding took %v; must be immediate", shedLatency)
	}
	if s.Stats().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}

	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	close(unblock)
	if err := <-slotDone; err != nil {
		t.Fatalf("slot holder: %v", err)
	}
}

func TestServicePoisonRequestIsIsolated(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(5)), 50, workload.DefaultProfile())
	s := NewService(Config{MaxConcurrent: 2})
	id := submitGraph(t, s, g)
	_, err := s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, func(enum.Cut) bool {
		panic("poison visitor")
	})
	var pe *enum.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("poison request: err = %v (%T), want *enum.PanicError", err, err)
	}
	// The service survives: the slot was released and healthy requests run.
	want := serialReference(t, g, enum.DefaultOptions())
	var got []string
	if _, err := s.Enumerate(context.Background(), Request{Graph: id, Options: enum.DefaultOptions()}, collectStrings(&got)); err != nil {
		t.Fatalf("request after poison: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("request after poison diverges from the serial reference")
	}
	if s.Stats().Running != 0 {
		t.Fatalf("Running = %d after all requests returned", s.Stats().Running)
	}
}

func TestServiceDedupBudgetShedsWhenUnaffordable(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(9)), 40, workload.DefaultProfile())
	s := NewService(Config{MemoryBudget: g.FootprintBytes() + 1024})
	id := submitGraph(t, s, g)
	// A dedup reservation bigger than the whole budget can never fit, even
	// after evicting the (pinned-free) cache — but the graph itself is
	// pinned by the request, so eviction cannot free it.
	_, err := s.Enumerate(context.Background(), Request{
		Graph:       id,
		Options:     enum.DefaultOptions(),
		DedupBudget: int(s.budget.Total()) * 2,
	}, func(enum.Cut) bool { return true })
	var over *OverloadError
	if !errors.As(err, &over) || over.Cause != CauseMemory {
		t.Fatalf("err = %v, want *OverloadError(memory)", err)
	}
	// An affordable request still runs, and the budget drains back to just
	// the cached graph afterwards.
	if _, err := s.Enumerate(context.Background(), Request{
		Graph:       id,
		Options:     enum.DefaultOptions(),
		DedupBudget: 512,
	}, func(enum.Cut) bool { return true }); err != nil {
		t.Fatalf("affordable request: %v", err)
	}
	if used, cached := s.budget.Used(), s.Cache().Stats().Bytes; used != cached {
		t.Fatalf("budget used %d != cached bytes %d after requests drained", used, cached)
	}
}

func TestServiceShutdownParksDurableRunAndResumesBitExact(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 100, workload.DefaultProfile())
	want := serialReference(t, g, enum.DefaultOptions())
	if len(want) < 300 {
		t.Fatalf("reference has only %d cuts; too short to interrupt meaningfully", len(want))
	}
	dir := t.TempDir()
	s := NewService(Config{CheckpointDir: dir})
	id := submitGraph(t, s, g)

	req := Request{
		Graph:           id,
		Options:         enum.DefaultOptions(),
		Durable:         true,
		RunID:           "park-test",
		CheckpointEvery: 64,
	}
	// The visitor triggers Shutdown from inside the run after 100 cuts,
	// then waits for draining to begin so the park point is deterministic.
	var first []string
	shutdownErr := make(chan error, 1)
	stats, err := s.Enumerate(context.Background(), req, func(c enum.Cut) bool {
		first = append(first, c.String())
		if len(first) == 100 {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				shutdownErr <- s.Shutdown(ctx)
			}()
			for !s.Draining() {
				time.Sleep(100 * time.Microsecond)
			}
		}
		return true
	})
	var susp *SuspendedError
	if !errors.As(err, &susp) {
		t.Fatalf("interrupted durable run: err = %v, want *SuspendedError", err)
	}
	if susp.RunID != "park-test" || susp.SnapshotPath == "" {
		t.Fatalf("SuspendedError = %+v, want run id and snapshot path", susp)
	}
	if stats.StopReason != enum.StopCheckpoint {
		t.Fatalf("StopReason = %v, want %v", stats.StopReason, enum.StopCheckpoint)
	}
	if susp.Visited != len(first) {
		t.Fatalf("SuspendedError.Visited = %d, visitor saw %d", susp.Visited, len(first))
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Drained service refuses new work.
	var shedErr *OverloadError
	if _, err := s.Enumerate(context.Background(), req, func(enum.Cut) bool { return true }); !errors.As(err, &shedErr) || shedErr.Cause != CauseShutdown {
		t.Fatalf("drained service: err = %v, want *OverloadError(shutdown)", err)
	}

	// "Restart": a fresh service over the same checkpoint directory. The
	// graph must be resubmitted (the cache died with the process) — content
	// addressing gives it the same id — and Resume must deliver exactly
	// the cuts after the parked prefix.
	s2 := NewService(Config{CheckpointDir: dir})
	id2 := submitGraph(t, s2, g)
	if id2 != id {
		t.Fatalf("resubmitted graph got id %v, want %v", id2, id)
	}
	var rest []string
	rstats, err := s2.Resume(context.Background(), req, collectStrings(&rest))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if rstats.StopReason != enum.StopNone {
		t.Fatalf("resumed run StopReason = %v", rstats.StopReason)
	}
	if got := append(append([]string{}, first...), rest...); !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix(%d) + resumed(%d) != uninterrupted serial run (%d cuts)", len(first), len(rest), len(want))
	}
	// Resuming the now-completed run reports there is nothing left.
	if _, err := s2.Resume(context.Background(), req, func(enum.Cut) bool { return true }); !errors.Is(err, enum.ErrCompleted) {
		t.Fatalf("second resume: err = %v, want enum.ErrCompleted", err)
	}
}

func TestServiceResumeRefusesWrongGraph(t *testing.T) {
	gA := workload.MiBenchLike(rand.New(rand.NewSource(21)), 60, workload.DefaultProfile())
	gB := workload.MiBenchLike(rand.New(rand.NewSource(22)), 60, workload.DefaultProfile())
	dir := t.TempDir()
	s := NewService(Config{CheckpointDir: dir})
	idA := submitGraph(t, s, gA)
	idB := submitGraph(t, s, gB)
	req := Request{Graph: idA, Options: enum.DefaultOptions(), Durable: true, RunID: "wrong-graph"}
	// Complete a short durable run for graph A (final snapshot written).
	if _, err := s.Enumerate(context.Background(), req, func(enum.Cut) bool { return true }); err != nil {
		t.Fatalf("durable run: %v", err)
	}
	// Resuming run "wrong-graph" against graph B must be refused loudly.
	bad := req
	bad.Graph = idB
	_, err := s.Resume(context.Background(), bad, func(enum.Cut) bool { return true })
	if err == nil {
		t.Fatal("resume against the wrong graph succeeded")
	}
	// Unknown run ids are a typed not-found.
	missing := req
	missing.RunID = "never-started"
	var nf *NotFoundError
	if _, err := s.Resume(context.Background(), missing, func(enum.Cut) bool { return true }); !errors.As(err, &nf) || nf.Kind != "run" {
		t.Fatalf("unknown run: err = %v, want *NotFoundError(run)", err)
	}
}

func TestServiceRunIDValidation(t *testing.T) {
	s := NewService(Config{CheckpointDir: t.TempDir()})
	g := workload.MiBenchLike(rand.New(rand.NewSource(2)), 30, workload.DefaultProfile())
	id := submitGraph(t, s, g)
	for _, bad := range []string{"", "../escape", "a/b", "..", "x y"} {
		req := Request{Graph: id, Options: enum.DefaultOptions(), Durable: true, RunID: bad}
		if _, err := s.Enumerate(context.Background(), req, func(enum.Cut) bool { return true }); err == nil {
			t.Errorf("run id %q accepted", bad)
		}
	}
}
