package session

// The soak test: chaos under load for the whole session layer. A saturated
// service handles a mixed storm — healthy enumerations, capped runs,
// poison (panicking) visitors, oversized submissions, unaffordable budget
// requests, mid-run cancellations, HTTP streaming clients — while delay
// injections perturb the session fault sites (cache insert/evict,
// admission, response write). The invariants, checked continuously or per
// request:
//
//   - every bad-request class fails with its typed error, nothing else;
//   - every healthy run is bit-identical to the serial library reference
//     (cached graph, shared instance, any interleaving);
//   - the memory budget is never exceeded, while eviction is actually
//     exercised;
//   - after the storm the service drains: no slots leaked, budget back to
//     cache-resident bytes only;
//   - shutdown parks an in-flight durable run and a fresh service resumes
//     it bit-exactly (the restart leg).
//
// `make soak` runs this under -race; `make ci` includes it.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/graphio"
	"polyise/internal/workload"
)

func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak storm is covered by make soak / make ci")
	}
	// Graph pool: distinct sizes so footprints differ and eviction has
	// texture. References are the plain serial library runs.
	sizes := []int{35, 45, 55, 65}
	graphs := make([]*dfg.Graph, len(sizes))
	refs := make([][]string, len(sizes))
	var maxFootprint int64
	for i, n := range sizes {
		graphs[i] = workload.MiBenchLike(rand.New(rand.NewSource(int64(100+i))), n, workload.DefaultProfile())
		refs[i] = serialReference(t, graphs[i], enum.DefaultOptions())
		if len(refs[i]) == 0 {
			t.Fatalf("graph %d has no cuts; useless for the soak", i)
		}
		if b := graphs[i].FootprintBytes(); b > maxFootprint {
			maxFootprint = b
		}
	}

	// Budget: two graphs plus a little dedup headroom — tight enough that
	// the storm constantly evicts and occasionally sheds on memory.
	const dedupSlice = 1 << 15
	budget := 2*maxFootprint + 4*dedupSlice
	dir := t.TempDir()
	s := NewService(Config{
		MaxConcurrent:      4,
		QueueDepth:         4,
		MemoryBudget:       budget,
		Limits:             graphio.Limits{MaxNodes: 120, MaxPreds: 16, MaxLineBytes: 512},
		DedupBudgetDefault: dedupSlice,
		CheckpointDir:      dir,
		RetryAfter:         10 * time.Millisecond,
	})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{WriteTimeout: 10 * time.Second}))
	defer ts.Close()

	// Delay injections at every session site, firing on every traversal,
	// to widen race windows inside the cache and admission paths.
	faultinject.Install(
		faultinject.Injection{Site: faultinject.SiteCacheInsert, Hit: 0, Action: faultinject.ActDelay, Delay: 50 * time.Microsecond},
		faultinject.Injection{Site: faultinject.SiteCacheEvict, Hit: 0, Action: faultinject.ActDelay, Delay: 50 * time.Microsecond},
		faultinject.Injection{Site: faultinject.SiteAdmission, Hit: 0, Action: faultinject.ActDelay, Delay: 20 * time.Microsecond},
		faultinject.Injection{Site: faultinject.SiteResponseWrite, Hit: 0, Action: faultinject.ActDelay, Delay: 10 * time.Microsecond},
	)
	defer faultinject.Uninstall()

	ids := make([]GraphID, len(graphs))
	for i, g := range graphs {
		ids[i] = submitGraph(t, s, g)
	}

	// Continuous budget monitor.
	stopMonitor := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stopMonitor:
				return
			default:
			}
			if used := s.budget.Used(); budget > 0 && used > budget {
				t.Errorf("budget oversubscribed: %d > %d", used, budget)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// enumerateRetrying runs one request, absorbing queue sheds (the
	// legitimate overload answer) with the hinted backoff.
	enumerateRetrying := func(req Request, visit func(enum.Cut) bool) (enum.Stats, error) {
		for {
			stats, err := s.Enumerate(context.Background(), req, visit)
			var over *OverloadError
			if errors.As(err, &over) && over.Cause == CauseQueue {
				time.Sleep(over.RetryAfter)
				continue
			}
			return stats, err
		}
	}

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				gi := r.Intn(len(graphs))
				req := Request{Graph: ids[gi], Options: enum.DefaultOptions()}
				switch r.Intn(6) {
				case 0, 1: // healthy full run: bit-exact or a legal refusal
					var got []string
					_, err := enumerateRetrying(req, collectStrings(&got))
					var over *OverloadError
					if errors.As(err, &over) && over.Cause == CauseMemory {
						continue // tight budget may legally refuse dedup space
					}
					var nf *NotFoundError
					if errors.As(err, &nf) {
						// Evicted under pressure: resubmit (content address
						// is stable) and let a later iteration cover it. The
						// cache may itself be too contended to re-admit the
						// graph right now; that refusal is also legal.
						var buf bytes.Buffer
						if werr := graphio.Write(&buf, graphs[gi]); werr == nil {
							s.SubmitGraph(&buf)
						}
						continue
					}
					if err != nil {
						t.Errorf("healthy run: %v", err)
						return
					}
					if !reflect.DeepEqual(got, refs[gi]) {
						t.Errorf("healthy run diverged from serial reference (%d vs %d cuts)", len(got), len(refs[gi]))
						return
					}
				case 2: // capped run: exact prefix
					cap := 1 + r.Intn(len(refs[gi]))
					req.MaxCuts = cap
					var got []string
					_, err := enumerateRetrying(req, collectStrings(&got))
					if err != nil {
						continue
					}
					if !reflect.DeepEqual(got, refs[gi][:len(got)]) || len(got) > cap {
						t.Errorf("capped run is not a serial prefix (got %d, cap %d)", len(got), cap)
						return
					}
				case 3: // poison visitor: contained, typed, isolated
					_, err := enumerateRetrying(req, func(enum.Cut) bool { panic("soak poison") })
					var pe *enum.PanicError
					var nf *NotFoundError
					var over *OverloadError
					// A memory shed or eviction can legally refuse the
					// request before the visitor ever runs; otherwise the
					// panic must surface contained and typed.
					if !errors.As(err, &pe) && !errors.As(err, &nf) &&
						!(errors.As(err, &over) && over.Cause == CauseMemory) {
						t.Errorf("poison request: err = %v, want *enum.PanicError", err)
						return
					}
				case 4: // bad-request classes: oversized submit, unaffordable budget
					if r.Intn(2) == 0 {
						var buf bytes.Buffer
						graphio.Write(&buf, workload.MiBenchLike(rand.New(rand.NewSource(999)), 121, workload.DefaultProfile()))
						_, _, err := s.SubmitGraph(&buf)
						var le *graphio.LimitError
						if !errors.As(err, &le) {
							t.Errorf("oversized submit: err = %v, want *graphio.LimitError", err)
							return
						}
					} else {
						req.DedupBudget = int(budget) * 2
						_, err := s.Enumerate(context.Background(), req, func(enum.Cut) bool { return true })
						var over *OverloadError
						var nf *NotFoundError
						if !errors.As(err, &over) && !errors.As(err, &nf) {
							t.Errorf("unaffordable budget: err = %v, want *OverloadError", err)
							return
						}
					}
				case 5: // canceled mid-run, or an HTTP streaming client
					if r.Intn(2) == 0 {
						ctx, cancel := context.WithCancel(context.Background())
						n := 0
						_, err := s.Enumerate(ctx, req, func(enum.Cut) bool {
							n++
							if n == 3 {
								cancel()
							}
							return true
						})
						cancel()
						if err != nil && !errors.Is(err, context.Canceled) {
							var over *OverloadError
							var nf *NotFoundError
							if !errors.As(err, &over) && !errors.As(err, &nf) {
								t.Errorf("canceled run: err = %v", err)
								return
							}
						}
					} else {
						resp, err := http.Post(ts.URL+"/v1/graphs/"+ids[gi].String()+"/enumerate", "", nil)
						if err != nil {
							t.Errorf("http enumerate: %v", err)
							return
						}
						rows, ok := countNDJSONCuts(t, resp)
						resp.Body.Close()
						if ok && rows != len(refs[gi]) {
							t.Errorf("http stream delivered %d cuts, want %d", rows, len(refs[gi]))
							return
						}
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stopMonitor)
	<-monitorDone
	if t.Failed() {
		return
	}

	st := s.Stats()
	if st.Cache.Evictions == 0 {
		t.Error("storm produced no evictions; budget pressure was not exercised")
	}
	if st.Running != 0 {
		t.Errorf("Running = %d after storm drained", st.Running)
	}
	if used, cached := s.budget.Used(), s.Cache().Stats().Bytes; used != cached {
		t.Errorf("budget used %d != cache bytes %d after storm (leaked dedup reservation?)", used, cached)
	}

	// Restart leg: park a durable run via shutdown, resume on a fresh
	// service over the same directory, and demand bit-exact continuation.
	big := workload.MiBenchLike(rand.New(rand.NewSource(17)), 100, workload.DefaultProfile())
	bigRef := serialReference(t, big, enum.DefaultOptions())
	bigID := submitGraph(t, s, big)
	req := Request{Graph: bigID, Options: enum.DefaultOptions(), Durable: true, RunID: "soak-park", CheckpointEvery: 32}
	var first []string
	_, err := s.Enumerate(context.Background(), req, func(c enum.Cut) bool {
		first = append(first, c.String())
		if len(first) == 40 {
			go s.Shutdown(context.Background())
			for !s.Draining() {
				time.Sleep(100 * time.Microsecond)
			}
		}
		return true
	})
	var susp *SuspendedError
	if !errors.As(err, &susp) {
		t.Fatalf("durable storm run: err = %v, want *SuspendedError", err)
	}
	s2 := NewService(Config{CheckpointDir: dir})
	if id := submitGraph(t, s2, big); id != bigID {
		t.Fatalf("content address changed across restart")
	}
	var rest []string
	if _, err := s2.Resume(context.Background(), req, collectStrings(&rest)); err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	if got := append(append([]string{}, first...), rest...); !reflect.DeepEqual(got, bigRef) {
		t.Fatalf("prefix(%d)+resumed(%d) != uninterrupted run (%d cuts)", len(first), len(rest), len(bigRef))
	}
}

// countNDJSONCuts drains an enumerate stream, returning the cut-row count
// and whether the stream completed cleanly (done terminal record).
func countNDJSONCuts(t *testing.T, resp *http.Response) (int, bool) {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		return 0, false // shed or evicted under load: legal
	}
	rows, clean := 0, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("bad stream line %q: %v", line, err)
			return rows, false
		}
		if d, ok := rec["done"]; ok {
			clean = d == true
			continue
		}
		rows++
	}
	return rows, clean
}
