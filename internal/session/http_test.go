package session

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/graphio"
	"polyise/internal/workload"
)

func graphText(t testing.TB, g *dfg.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func httpSubmit(t *testing.T, ts *httptest.Server, body string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", resp
	}
	var out struct {
		ID    string `json:"id"`
		Nodes int    `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return out.ID, resp
}

func TestHTTPSubmitAndEnumerateStream(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(31)), 50, workload.DefaultProfile())
	want := serialReference(t, g, enum.DefaultOptions())
	s := NewService(Config{})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()

	id, _ := httpSubmit(t, ts, graphText(t, g))
	if id == "" {
		t.Fatal("submit failed")
	}
	// Resubmission is idempotent: same content, same id.
	id2, _ := httpSubmit(t, ts, graphText(t, g))
	if id2 != id {
		t.Fatalf("resubmission id %s != %s", id2, id)
	}

	resp, err := http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var rows int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v: %s", err, sc.Text())
		}
		if done, ok := rec["done"]; ok {
			if done != true {
				t.Fatalf("terminal record not done: %s", sc.Text())
			}
			stats := rec["stats"].(map[string]any)
			if int(stats["valid"].(float64)) != len(want) {
				t.Fatalf("stream stats valid = %v, want %d", stats["valid"], len(want))
			}
			sawDone = true
			continue
		}
		if _, ok := rec["nodes"]; !ok {
			t.Fatalf("cut record without nodes: %s", sc.Text())
		}
		rows++
	}
	if rows != len(want) {
		t.Fatalf("streamed %d cuts, library produced %d", rows, len(want))
	}
	if !sawDone {
		t.Fatal("stream ended without a terminal record")
	}
}

func TestHTTPEnumerateMaxCuts(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(31)), 50, workload.DefaultProfile())
	s := NewService(Config{})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()
	id, _ := httpSubmit(t, ts, graphText(t, g))
	resp, err := http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate?max_cuts=5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 6 {
		t.Fatalf("max_cuts=5: got %d lines, want 5 cuts + terminal", len(lines))
	}
	if !strings.Contains(lines[5], `"budget"`) {
		t.Fatalf("terminal record should report the budget stop: %s", lines[5])
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 30, workload.DefaultProfile())
	s := NewService(Config{Limits: graphio.Limits{MaxNodes: 64, MaxPreds: 8, MaxLineBytes: 256}})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()

	// Over-limit submission → 413 with the limit named.
	_, resp := httpSubmit(t, ts, strings.Repeat("node var\n", 65))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit submit: status %d, want 413", resp.StatusCode)
	}

	// Malformed graph → 400.
	_, resp = httpSubmit(t, ts, "node bogus-op\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: status %d, want 400", resp.StatusCode)
	}

	// Unknown (but well-formed) id → 404.
	missing := strings.Repeat("0", 31) + "1"
	resp, err := http.Post(ts.URL+"/v1/graphs/"+missing+"/enumerate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}

	// Malformed id → 400.
	resp, err = http.Post(ts.URL+"/v1/graphs/nothex/enumerate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}

	// Bad query parameter → 400.
	id, _ := httpSubmit(t, ts, graphText(t, g))
	resp, err = http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate?max_cuts=banana", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPOverloadAndShutdownStatuses(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 40, workload.DefaultProfile())
	s := NewService(Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()
	id, _ := httpSubmit(t, ts, graphText(t, g))
	gid, err := ParseGraphID(id)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate: one run holding the slot, one queued. The inSlot handshake
	// guarantees the holder owns the slot before the waiter launches.
	inSlot := make(chan struct{}, 1)
	unblock := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		s.Enumerate(context.Background(), Request{Graph: gid, Options: enum.DefaultOptions()}, func(enum.Cut) bool {
			select {
			case inSlot <- struct{}{}:
			default:
			}
			<-unblock
			return false
		})
	}()
	<-inSlot
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		s.Enumerate(waiterCtx, Request{Graph: gid, Options: enum.DefaultOptions()}, func(enum.Cut) bool { return false })
	}()
	deadline := time.After(5 * time.Second)
	for s.inflight.Load() < 2 {
		select {
		case <-deadline:
			t.Fatal("saturation never reached")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	cancelWaiter()
	close(unblock)
	<-holderDone
	<-waiterDone

	// Drained service → 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shutdown: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPSelectAndStats(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(13)), 60, workload.DefaultProfile())
	s := NewService(Config{})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()
	id, _ := httpSubmit(t, ts, graphText(t, g))

	resp, err := http.Post(ts.URL+"/v1/graphs/"+id+"/select", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: status %d", resp.StatusCode)
	}
	var sel struct {
		Chosen  []json.RawMessage `json:"chosen"`
		Speedup float64           `json:"speedup"`
		Stats   map[string]any    `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sel); err != nil {
		t.Fatalf("select response: %v", err)
	}
	if sel.Speedup < 1 {
		t.Fatalf("speedup %v < 1", sel.Speedup)
	}
	if sel.Stats["stop"] != "none" {
		t.Fatalf("selection enumeration stop = %v", sel.Stats["stop"])
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats response: %v", err)
	}
	if stats.Admitted == 0 || stats.Cache.Entries != 1 {
		t.Fatalf("stats = %+v, want admissions and one cached graph", stats)
	}
}

// TestHTTPDurableResumeOverHTTP drives the park/resume cycle through the
// HTTP surface: enumerate?run=… interrupted by shutdown answers with a
// terminal "suspended" record, and a second server over the same
// checkpoint directory resumes to completion with the exact remaining
// cuts.
func TestHTTPDurableResumeOverHTTP(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 100, workload.DefaultProfile())
	want := serialReference(t, g, enum.DefaultOptions())
	dir := t.TempDir()
	s := NewService(Config{CheckpointDir: dir})
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	id, _ := httpSubmit(t, ts, graphText(t, g))

	resp, err := http.Post(ts.URL+"/v1/graphs/"+id+"/enumerate?run=httppark&checkpoint_every=64", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var prefix int
	var suspended bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64), 1<<20)
	shutdownStarted := make(chan struct{})
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if _, ok := rec["suspended"]; ok {
			suspended = true
			break
		}
		if _, ok := rec["done"]; ok {
			break
		}
		prefix++
		if prefix == 50 {
			go func() {
				defer close(shutdownStarted)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
		}
	}
	resp.Body.Close()
	if prefix >= 50 {
		<-shutdownStarted
	}
	ts.Close()
	if !suspended {
		t.Fatalf("stream ended without suspension after %d cuts (graph too small?)", prefix)
	}
	if prefix >= len(want) {
		t.Fatal("entire enumeration delivered before suspension")
	}

	// Restart: new service, same directory; resubmit (same id) and resume.
	s2 := NewService(Config{CheckpointDir: dir})
	ts2 := httptest.NewServer(NewHandler(s2, HandlerConfig{}))
	defer ts2.Close()
	if id2, _ := httpSubmit(t, ts2, graphText(t, g)); id2 != id {
		t.Fatalf("id changed across restart: %s vs %s", id2, id)
	}
	resp2, err := http.Post(ts2.URL+"/v1/graphs/"+id+"/resume?run=httppark", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("resume: status %d: %s", resp2.StatusCode, body)
	}
	var rest, done int
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 0, 64), 1<<20)
	for sc2.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc2.Bytes(), &rec); err != nil {
			t.Fatalf("bad resume line: %v", err)
		}
		if d, ok := rec["done"]; ok {
			if d != true {
				t.Fatalf("resume terminal record: %s", sc2.Text())
			}
			done++
			continue
		}
		rest++
	}
	if done != 1 {
		t.Fatal("resume stream missing terminal record")
	}
	if prefix+rest != len(want) {
		t.Fatalf("prefix %d + resumed %d != %d total cuts", prefix, rest, len(want))
	}
}
