package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"polyise/internal/checkpoint"
	"polyise/internal/enum"
	"polyise/internal/faultinject"
	"polyise/internal/graphio"
	"polyise/internal/ise"
)

// HandlerConfig tunes the HTTP front end.
type HandlerConfig struct {
	// WriteTimeout bounds each individual response write, so one stalled
	// client cannot pin an enumeration slot forever: when a streamed write
	// blocks past it the run is stopped (the client has by then received
	// an exact serial-order prefix). 0 means 30 s.
	WriteTimeout time.Duration
}

// NewHandler translates HTTP onto a Service.
//
//	POST /v1/graphs                     submit a graph (text format body)
//	POST /v1/graphs/{id}/enumerate      stream cuts as NDJSON
//	POST /v1/graphs/{id}/select         run ISE selection, return JSON
//	POST /v1/graphs/{id}/resume         continue a parked durable run
//	GET  /v1/stats                      service counters
//
// Enumeration parameters ride in the query string: nin, nout, max_cuts,
// dedup_bytes, deadline_ms, connected, run (making the request durable
// under that id), checkpoint_every.
//
// Typed service errors map onto statuses: *graphio.LimitError → 413,
// *OverloadError → 429 (503 under shutdown) with Retry-After,
// *NotFoundError → 404, *checkpoint.MismatchError → 409, parse errors →
// 400, *enum.PanicError → 500. A *SuspendedError ends an already-started
// stream with a terminal "suspended" record instead.
func NewHandler(s *Service, hc HandlerConfig) http.Handler {
	if hc.WriteTimeout <= 0 {
		hc.WriteTimeout = 30 * time.Second
	}
	h := &handler{s: s, cfg: hc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", h.submit)
	mux.HandleFunc("POST /v1/graphs/{id}/enumerate", h.enumerate)
	mux.HandleFunc("POST /v1/graphs/{id}/select", h.selectISE)
	mux.HandleFunc("POST /v1/graphs/{id}/resume", h.resume)
	mux.HandleFunc("GET /v1/stats", h.stats)
	return mux
}

type handler struct {
	s   *Service
	cfg HandlerConfig
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	id, nodes, err := h.s.SubmitGraph(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{"id": id.String(), "nodes": nodes})
}

func (h *handler) enumerate(w http.ResponseWriter, r *http.Request) {
	req, err := requestFromHTTP(r)
	if err != nil {
		writeError(w, err)
		return
	}
	st := newStream(w, r, h.cfg.WriteTimeout)
	stats, err := h.s.Enumerate(r.Context(), req, st.visit)
	st.finish(stats, err)
}

func (h *handler) resume(w http.ResponseWriter, r *http.Request) {
	req, err := requestFromHTTP(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.RunID == "" {
		writeError(w, fmt.Errorf("session: resume requires the run query parameter"))
		return
	}
	st := newStream(w, r, h.cfg.WriteTimeout)
	stats, err := h.s.Resume(r.Context(), req, st.visit)
	st.finish(stats, err)
}

func (h *handler) selectISE(w http.ResponseWriter, r *http.Request) {
	req, err := requestFromHTTP(r)
	if err != nil {
		writeError(w, err)
		return
	}
	sel, stats, err := h.s.Select(r.Context(), req, ise.DefaultModel(), ise.DefaultSelectOptions())
	if err != nil {
		writeError(w, err)
		return
	}
	chosen := make([]map[string]any, 0, len(sel.Chosen))
	for _, e := range sel.Chosen {
		chosen = append(chosen, map[string]any{
			"nodes":   e.Cut.Nodes.Members(),
			"inputs":  e.Cut.Inputs,
			"outputs": e.Cut.Outputs,
			"saving":  e.Saving,
			"area":    e.Area,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"chosen":        chosen,
		"cycles_before": sel.BlockCyclesBefore,
		"cycles_after":  sel.BlockCyclesAfter,
		"speedup":       sel.Speedup(),
		"area":          sel.TotalArea,
		"stats":         statsJSON(stats),
	})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h.s.Stats())
}

// requestFromHTTP decodes the path graph id and query parameters.
func requestFromHTTP(r *http.Request) (Request, error) {
	id, err := ParseGraphID(r.PathValue("id"))
	if err != nil {
		return Request{}, err
	}
	q := r.URL.Query()
	req := Request{Graph: id, Options: enum.DefaultOptions()}
	intq := func(key string, dst *int) error {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("session: bad %s=%q", key, v)
			}
			*dst = n
		}
		return nil
	}
	if err := errors.Join(
		intq("nin", &req.Options.MaxInputs),
		intq("nout", &req.Options.MaxOutputs),
		intq("max_cuts", &req.MaxCuts),
		intq("dedup_bytes", &req.DedupBudget),
		intq("checkpoint_every", &req.CheckpointEvery),
	); err != nil {
		return Request{}, err
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			return Request{}, fmt.Errorf("session: bad deadline_ms=%q", v)
		}
		req.Deadline = time.Duration(ms) * time.Millisecond
	}
	if v := q.Get("connected"); v == "1" || v == "true" {
		req.Options.ConnectedOnly = true
	}
	if run := q.Get("run"); run != "" {
		req.Durable, req.RunID = true, run
	}
	// The visitor marshals the cut inside the callback, so the shared
	// scratch cut is safe and per-cut clones are skipped.
	req.Options.KeepCuts = false
	return req, nil
}

// stream writes the NDJSON cut stream with per-write deadlines. The HTTP
// status line is committed lazily: errors before the first row still get a
// real status code, errors after it become a terminal record.
type stream struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	enc     *json.Encoder
	timeout time.Duration
	started bool
	n       int
}

func newStream(w http.ResponseWriter, r *http.Request, timeout time.Duration) *stream {
	return &stream{w: w, rc: http.NewResponseController(w), enc: json.NewEncoder(w), timeout: timeout}
}

func (st *stream) visit(c enum.Cut) bool {
	if !st.started {
		st.started = true
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
	}
	if h := faultinject.OnResponseWrite; h != nil {
		h()
	}
	// The write deadline is the slow-client bound: a client that stops
	// reading stalls this write until the deadline kills the connection,
	// and the false return below releases the enumeration slot.
	st.rc.SetWriteDeadline(time.Now().Add(st.timeout))
	if err := st.enc.Encode(map[string]any{
		"nodes":   c.Nodes.Members(),
		"inputs":  c.Inputs,
		"outputs": c.Outputs,
	}); err != nil {
		return false
	}
	st.rc.Flush()
	st.n++
	return true
}

// finish terminates the response: an HTTP error status when nothing was
// streamed yet, a terminal NDJSON record otherwise.
func (st *stream) finish(stats enum.Stats, err error) {
	var susp *SuspendedError
	if err != nil && !errors.As(err, &susp) && !st.started {
		writeError(st.w, err)
		return
	}
	if !st.started {
		st.started = true
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
	}
	st.rc.SetWriteDeadline(time.Now().Add(st.timeout))
	final := map[string]any{"done": true, "stats": statsJSON(stats)}
	if susp != nil {
		final["done"] = false
		final["suspended"] = map[string]any{"run": susp.RunID, "visited": susp.Visited, "durable": susp.SnapshotPath != ""}
	} else if err != nil {
		final["done"] = false
		final["error"] = err.Error()
	}
	st.enc.Encode(final)
	st.rc.Flush()
}

func statsJSON(stats enum.Stats) map[string]any {
	out := map[string]any{
		"valid":      stats.Valid,
		"candidates": stats.Candidates,
		"stop":       stats.StopReason.String(),
	}
	if stats.Err != nil {
		out["err"] = stats.Err.Error()
	}
	return out
}

// writeError maps typed service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var (
		lim      *graphio.LimitError
		over     *OverloadError
		notFound *NotFoundError
		mismatch *checkpoint.MismatchError
		panicked *enum.PanicError
		susp     *SuspendedError
	)
	switch {
	case errors.As(err, &lim):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &over):
		status = http.StatusTooManyRequests
		if over.Cause == CauseShutdown {
			status = http.StatusServiceUnavailable
		}
		if over.RetryAfter > 0 {
			secs := int((over.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	case errors.As(err, &notFound):
		status = http.StatusNotFound
	case errors.As(err, &mismatch):
		status = http.StatusConflict
	case errors.Is(err, enum.ErrCompleted):
		status = http.StatusGone
	case errors.As(err, &susp):
		status = http.StatusServiceUnavailable
	case errors.As(err, &panicked):
		status = http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
}
