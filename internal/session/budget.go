package session

import "sync"

// Budget is a shared byte allowance. The cache charges resident graphs
// against it and every running enumeration charges its dedup-table
// reservation, so one number bounds the process's dominant memory
// consumers. Reservations are all-or-nothing — TryReserve never
// oversubscribes and never blocks, leaving the policy of what to do about a
// refusal (evict, shed) to the caller.
type Budget struct {
	mu    sync.Mutex
	total int64 // 0 = unlimited
	used  int64
}

// NewBudget returns a budget of total bytes; total <= 0 means unlimited.
func NewBudget(total int64) *Budget {
	if total < 0 {
		total = 0
	}
	return &Budget{total: total}
}

// TryReserve atomically charges n bytes if they fit, reporting success.
func (b *Budget) TryReserve(n int64) bool {
	if n < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total > 0 && b.used+n > b.total {
		return false
	}
	b.used += n
	return true
}

// Release returns n reserved bytes. Releasing more than is reserved is a
// bug in the caller's accounting and panics rather than silently
// unbalancing the budget.
func (b *Budget) Release(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 || n > b.used {
		panic("session: Budget.Release without matching reservation")
	}
	b.used -= n
}

// Used returns the bytes currently reserved.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Total returns the configured allowance; 0 means unlimited.
func (b *Budget) Total() int64 { return b.total }
