package session

import (
	"math/rand"
	"sync"
	"testing"

	"polyise/internal/dfg"
	"polyise/internal/workload"
)

// testGraphs builds distinct frozen graphs for cache tests.
func testGraphs(t testing.TB, n int) []*dfg.Graph {
	t.Helper()
	out := make([]*dfg.Graph, n)
	for i := range out {
		out[i] = workload.MiBenchLike(rand.New(rand.NewSource(int64(i+1))), 40, workload.DefaultProfile())
	}
	return out
}

func TestCachePutDeduplicatesByContent(t *testing.T) {
	c := NewCache(NewBudget(0))
	g := testGraphs(t, 1)[0]
	id1, err := c.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	// A structurally identical graph built independently must hit.
	g2 := workload.MiBenchLike(rand.New(rand.NewSource(1)), 40, workload.DefaultProfile())
	id2, err := c.Put(g2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("identical graphs got distinct ids %v, %v", id1, id2)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", st)
	}
	// The hit keeps the first instance: Acquire returns pointer-identical g.
	got, ok := c.Acquire(id1)
	if !ok || got != g {
		t.Fatalf("Acquire returned %p, want the first cached instance %p", got, g)
	}
	c.Release(id1)
}

func TestCacheEvictionUnderBudgetPressure(t *testing.T) {
	gs := testGraphs(t, 4)
	per := gs[0].FootprintBytes()
	for _, g := range gs {
		if b := g.FootprintBytes(); b > per {
			per = b
		}
	}
	// Room for roughly two graphs: inserting four must evict coldest-first.
	b := NewBudget(2*per + per/2)
	c := NewCache(b)
	var ids []GraphID
	for _, g := range gs {
		id, err := c.Put(g)
		if err != nil {
			t.Fatalf("Put under pressure: %v", err)
		}
		ids = append(ids, id)
		if b.Used() > b.Total() {
			t.Fatalf("budget exceeded: used %d > total %d", b.Used(), b.Total())
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite budget pressure")
	}
	if st.Bytes > b.Total() {
		t.Fatalf("cache holds %d bytes over the %d budget", st.Bytes, b.Total())
	}
	// The most recent insert must still be resident, the oldest gone.
	if _, ok := c.Acquire(ids[len(ids)-1]); !ok {
		t.Fatal("most recently inserted graph was evicted")
	}
	if _, ok := c.Acquire(ids[0]); ok {
		t.Fatal("coldest graph survived eviction pressure")
	}
}

func TestCachePinnedEntriesAreNotEvicted(t *testing.T) {
	gs := testGraphs(t, 2)
	b := NewBudget(gs[0].FootprintBytes() + gs[1].FootprintBytes()/2)
	c := NewCache(b)
	id0, err := c.Put(gs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Acquire(id0); !ok {
		t.Fatal("Acquire of fresh entry failed")
	}
	// gs[1] does not fit and the only resident entry is pinned: Put must
	// refuse with the typed overload, not evict the pinned graph.
	if _, err := c.Put(gs[1]); err == nil {
		t.Fatal("Put evicted a pinned entry (or oversubscribed the budget)")
	} else if _, ok := err.(*OverloadError); !ok {
		t.Fatalf("Put error = %T (%v), want *OverloadError", err, err)
	}
	if _, ok := c.Acquire(id0); !ok {
		t.Fatal("pinned entry vanished")
	}
	c.Release(id0)
	c.Release(id0)
	// Unpinned, the entry is evictable and the second graph fits.
	if _, err := c.Put(gs[1]); err != nil {
		t.Fatalf("Put after unpin: %v", err)
	}
	if _, ok := c.Acquire(id0); ok {
		t.Fatal("idle entry survived eviction it should have lost")
	}
}

// TestCacheConcurrentStorm hammers one cache from many goroutines with a
// budget that forces constant eviction, under -race. Invariants: the
// budget is never oversubscribed, acquired graphs are always usable, and
// the refcount accounting never underflows (Release panics would fail the
// test).
func TestCacheConcurrentStorm(t *testing.T) {
	gs := testGraphs(t, 6)
	per := int64(0)
	for _, g := range gs {
		if b := g.FootprintBytes(); b > per {
			per = b
		}
	}
	b := NewBudget(3 * per)
	c := NewCache(b)
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	// Budget monitor: the invariant must hold at every instant, not just
	// at the end.
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if used := b.Used(); used > b.Total() {
				t.Errorf("budget oversubscribed: %d > %d", used, b.Total())
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				g := gs[r.Intn(len(gs))]
				id, err := c.Put(g)
				if err != nil {
					continue // budget refusal under pin pressure is legal
				}
				got, ok := c.Acquire(id)
				if !ok {
					continue // evicted between Put and Acquire: legal
				}
				if got.N() != g.N() {
					t.Errorf("acquired graph has %d nodes, want %d", got.N(), g.N())
				}
				c.Release(id)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-monitorDone
	st := c.Stats()
	if st.Bytes > b.Total() {
		t.Fatalf("final cache bytes %d exceed budget %d", st.Bytes, b.Total())
	}
	if st.Evictions == 0 {
		t.Fatal("storm produced no evictions; budget pressure not exercised")
	}
}
