package exprc

import (
	"strings"
	"testing"

	"polyise/internal/dfg"
)

func TestCompileMAC(t *testing.T) {
	g := MustCompile(`
# multiply-accumulate
in a, b, c, d
m1 = a * b
m2 = c * d
out_sum = m1 + m2
out out_sum
`)
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7", g.N())
	}
	if len(g.Roots()) != 4 {
		t.Fatalf("roots = %v", g.Roots())
	}
	muls := 0
	for v := 0; v < g.N(); v++ {
		if g.Op(v) == dfg.OpMul {
			muls++
		}
	}
	if muls != 2 {
		t.Fatalf("muls = %d, want 2", muls)
	}
}

func TestPrecedence(t *testing.T) {
	// a + b*c must multiply first: the add's second operand is the mul.
	g := MustCompile("in a, b, c\nr = a + b * c\nout r")
	r := g.N() - 1
	if g.Op(r) != dfg.OpAdd {
		t.Fatalf("top op = %v, want add", g.Op(r))
	}
	preds := g.Preds(r)
	if g.Op(preds[0]) != dfg.OpVar || g.Op(preds[1]) != dfg.OpMul {
		t.Fatalf("operand ops = %v %v", g.Op(preds[0]), g.Op(preds[1]))
	}
	// Parentheses override: (a + b) * c.
	g = MustCompile("in a, b, c\nr = (a + b) * c\nout r")
	r = g.N() - 1
	if g.Op(r) != dfg.OpMul {
		t.Fatalf("top op = %v, want mul", g.Op(r))
	}
}

func TestShiftAndCompareAndSelect(t *testing.T) {
	g := MustCompile(`
in x, lo, hi
clamped = x < lo ? lo : (x > hi ? hi : x)
out clamped
`)
	sel, lt := 0, 0
	for v := 0; v < g.N(); v++ {
		switch g.Op(v) {
		case dfg.OpSelect:
			sel++
		case dfg.OpCmpLT:
			lt++
		}
	}
	if sel != 2 || lt != 2 { // x>hi compiles to hi<x
		t.Fatalf("select=%d lt=%d, want 2 and 2", sel, lt)
	}
}

func TestGreaterSwapsOperands(t *testing.T) {
	g := MustCompile("in a, b\nr = a > b\nout r")
	r := g.N() - 1
	if g.Op(r) != dfg.OpCmpLT {
		t.Fatalf("op = %v, want cmplt", g.Op(r))
	}
	p := g.Preds(r)
	if g.Name(p[0]) != "b" || g.Name(p[1]) != "a" {
		t.Fatalf("operands = %q,%q; want b,a", g.Name(p[0]), g.Name(p[1]))
	}
}

func TestMemoryOpsForbidden(t *testing.T) {
	g := MustCompile(`
in p, q, v
x = load(p)
y = x + v
store(q, y)
out y
`)
	loads, stores := 0, 0
	for v := 0; v < g.N(); v++ {
		if g.Op(v) == dfg.OpLoad {
			loads++
			if !g.IsUserForbidden(v) {
				t.Error("load not forbidden")
			}
		}
		if g.Op(v) == dfg.OpStore {
			stores++
			if !g.IsUserForbidden(v) {
				t.Error("store not forbidden")
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
}

func TestConstantsAndHex(t *testing.T) {
	g := MustCompile("in a\nr = (a ^ 0x5A) + 10\nout r")
	found := map[int64]bool{}
	for v := 0; v < g.N(); v++ {
		if g.Op(v) == dfg.OpConst {
			found[g.ConstValue(v)] = true
		}
	}
	if !found[0x5A] || !found[10] {
		t.Fatalf("constants = %v", found)
	}
}

func TestFunctions(t *testing.T) {
	g := MustCompile("in a, b\nr = min(abs(a - b), max(a, b))\nout r")
	ops := map[dfg.Op]int{}
	for v := 0; v < g.N(); v++ {
		ops[g.Op(v)]++
	}
	if ops[dfg.OpMin] != 1 || ops[dfg.OpMax] != 1 || ops[dfg.OpAbs] != 1 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestUnary(t *testing.T) {
	g := MustCompile("in a\nr = -~a\nout r")
	r := g.N() - 1
	if g.Op(r) != dfg.OpNeg || g.Op(g.Preds(r)[0]) != dfg.OpNot {
		t.Fatal("unary chain wrong")
	}
}

func TestLiveOut(t *testing.T) {
	g := MustCompile("in a\nx = a + a\ny = x + a\nout x, y")
	for v := 0; v < g.N(); v++ {
		if g.Name(v) == "" && g.Op(v) == dfg.OpAdd && len(g.Succs(v)) > 0 {
			if !g.IsLiveOut(v) {
				t.Fatal("x not live-out")
			}
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined", "r = a + 1"},
		{"reassign", "in a\na = a"},
		{"redeclare", "in a, a"},
		{"bad out", "out zz"},
		{"trailing", "in a\nr = a + 1 2"},
		{"unknown fn", "in a\nr = frob(a)"},
		{"arity", "in a\nr = min(a)"},
		{"unbalanced", "in a\nr = (a + 1"},
		{"bad stmt", "wibble"},
		{"bad name", "in a\n3x = a"},
		{"empty program", "# nothing"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	g := MustCompile("\n\n# header\n  in a  \n r = a+1 \nout r\n# trailer\n")
	if g.N() != 3 {
		t.Fatalf("n = %d, want 3", g.N())
	}
}

func TestLogicalOpsLowered(t *testing.T) {
	g := MustCompile("in a, b\nr = (a && b) || (a ^ b)\nout r")
	src := strings.Builder{}
	for v := 0; v < g.N(); v++ {
		src.WriteString(g.Op(v).String())
		src.WriteByte(' ')
	}
	s := src.String()
	if !strings.Contains(s, "and") || !strings.Contains(s, "or") || !strings.Contains(s, "xor") {
		t.Fatalf("lowered ops: %s", s)
	}
}
