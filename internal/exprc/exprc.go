// Package exprc compiles a tiny straight-line expression language into
// data-flow graphs. It stands in for the paper's GCC-based toolchain [8]:
// realistic kernels (FIR taps, hash rounds, saturating arithmetic) can be
// written as source text and fed to the enumerator and the ISE selector.
//
// Language, one statement per line:
//
//	in a, b, c          declare live-in variables
//	x = a*b + (c >> 2)  assignment; every name is single-assignment
//	store(addr, x)      memory write (forbidden node)
//	out x, y            mark names live-out
//	# comment
//
// Expressions support || && | ^ & == != < <= > >= << >> + - * / % unary -~
// parentheses, decimal/hex literals, the functions load(e), min(a,b),
// max(a,b), abs(e), select(c,a,b), and c ? a : b.
package exprc

import (
	"fmt"
	"strconv"
	"strings"

	"polyise/internal/dfg"
)

// Compile translates a program into a frozen data-flow graph. Loads and
// stores are marked forbidden, matching the paper's convention that the
// custom functional unit has no memory port.
func Compile(src string) (*dfg.Graph, error) {
	c := &compiler{
		g:    dfg.New(),
		vars: make(map[string]int),
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := c.statement(line); err != nil {
			return nil, fmt.Errorf("exprc: line %d: %w", lineNo+1, err)
		}
	}
	if err := c.g.Freeze(); err != nil {
		return nil, fmt.Errorf("exprc: %w", err)
	}
	return c.g, nil
}

// MustCompile is Compile that panics on error. It exists for tests and
// package examples where a malformed program is a bug in the test itself;
// library code and long-running services must use Compile and handle the
// error — the enumeration's panic containment would still convert an
// escaping compile panic into a clean Stats.Err, but a failed run is the
// wrong way to report bad input.
func MustCompile(src string) *dfg.Graph {
	g, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return g
}

type compiler struct {
	g    *dfg.Graph
	vars map[string]int
}

func (c *compiler) statement(line string) error {
	switch {
	case strings.HasPrefix(line, "in "):
		for _, name := range splitNames(line[3:]) {
			if _, dup := c.vars[name]; dup {
				return fmt.Errorf("duplicate name %q", name)
			}
			c.vars[name] = c.g.MustAddNode(dfg.OpVar, name)
		}
		return nil
	case strings.HasPrefix(line, "out "):
		for _, name := range splitNames(line[4:]) {
			id, ok := c.vars[name]
			if !ok {
				return fmt.Errorf("undefined name %q", name)
			}
			if err := c.g.MarkLiveOut(id); err != nil {
				return err
			}
		}
		return nil
	case strings.HasPrefix(line, "store"):
		p := newParser(line, c)
		if err := p.expectIdent("store"); err != nil {
			return err
		}
		_, err := p.call("store")
		if err != nil {
			return err
		}
		return p.expectEOF()
	}
	eq := strings.Index(line, "=")
	if eq < 0 {
		return fmt.Errorf("expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	if !isIdent(name) {
		return fmt.Errorf("bad variable name %q", name)
	}
	if _, dup := c.vars[name]; dup {
		return fmt.Errorf("name %q reassigned (the language is single-assignment)", name)
	}
	p := newParser(line[eq+1:], c)
	id, err := p.expr(0)
	if err != nil {
		return err
	}
	if err := p.expectEOF(); err != nil {
		return err
	}
	c.vars[name] = id
	return nil
}

func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if name := strings.TrimSpace(part); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ---- Pratt parser ----

type token struct {
	kind string // "ident", "num", "op", "eof"
	text string
}

type parser struct {
	toks []token
	pos  int
	c    *compiler
}

func newParser(src string, c *compiler) *parser {
	return &parser{toks: lex(src), c: c}
}

var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t':
			i++
		case ch >= '0' && ch <= '9':
			j := i + 1
			for j < len(src) && (isAlnum(src[j]) || src[j] == 'x' || src[j] == 'X') {
				j++
			}
			toks = append(toks, token{"num", src[i:j]})
			i = j
		case isAlpha(ch):
			j := i + 1
			for j < len(src) && isAlnum(src[j]) {
				j++
			}
			toks = append(toks, token{"ident", src[i:j]})
			i = j
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{"op", op})
					i += len(op)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, token{"op", string(ch)})
				i++
			}
		}
	}
	return append(toks, token{"eof", ""})
}

func isAlpha(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isAlnum(b byte) bool { return isAlpha(b) || (b >= '0' && b <= '9') }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != "op" || t.text != op {
		return fmt.Errorf("expected %q, got %q", op, t.text)
	}
	return nil
}

func (p *parser) expectIdent(name string) error {
	t := p.next()
	if t.kind != "ident" || t.text != name {
		return fmt.Errorf("expected %q, got %q", name, t.text)
	}
	return nil
}

func (p *parser) expectEOF() error {
	if t := p.peek(); t.kind != "eof" {
		return fmt.Errorf("trailing input %q", t.text)
	}
	return nil
}

// binding powers; higher binds tighter.
var binPower = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOp = map[string]dfg.Op{
	"||": dfg.OpOr, "&&": dfg.OpAnd,
	"|": dfg.OpOr, "^": dfg.OpXor, "&": dfg.OpAnd,
	"==": dfg.OpCmpEQ, "!=": dfg.OpCmpNE,
	"<": dfg.OpCmpLT, "<=": dfg.OpCmpLE,
	"<<": dfg.OpShl, ">>": dfg.OpShr,
	"+": dfg.OpAdd, "-": dfg.OpSub,
	"*": dfg.OpMul, "/": dfg.OpDiv, "%": dfg.OpRem,
}

// expr parses with operator precedence climbing; minBP is the minimum
// binding power that continues the loop.
func (p *parser) expr(minBP int) (int, error) {
	lhs, err := p.unary()
	if err != nil {
		return -1, err
	}
	for {
		t := p.peek()
		if t.kind == "op" && t.text == "?" && minBP == 0 {
			p.next()
			thenV, err := p.expr(0)
			if err != nil {
				return -1, err
			}
			if err := p.expectOp(":"); err != nil {
				return -1, err
			}
			elseV, err := p.expr(0)
			if err != nil {
				return -1, err
			}
			lhs = p.c.g.MustAddNode(dfg.OpSelect, "", lhs, thenV, elseV)
			continue
		}
		if t.kind != "op" {
			break
		}
		bp, ok := binPower[t.text]
		if !ok || bp < minBP {
			break
		}
		p.next()
		rhs, err := p.expr(bp + 1)
		if err != nil {
			return -1, err
		}
		op := binOp[t.text]
		// Comparisons with swapped operands: a > b ⇒ b < a.
		if t.text == ">" {
			lhs, rhs = rhs, lhs
			op = dfg.OpCmpLT
		} else if t.text == ">=" {
			lhs, rhs = rhs, lhs
			op = dfg.OpCmpLE
		}
		lhs = p.c.g.MustAddNode(op, "", lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) unary() (int, error) {
	t := p.next()
	switch {
	case t.kind == "op" && t.text == "-":
		v, err := p.unary()
		if err != nil {
			return -1, err
		}
		return p.c.g.MustAddNode(dfg.OpNeg, "", v), nil
	case t.kind == "op" && t.text == "~":
		v, err := p.unary()
		if err != nil {
			return -1, err
		}
		return p.c.g.MustAddNode(dfg.OpNot, "", v), nil
	case t.kind == "op" && t.text == "(":
		v, err := p.expr(0)
		if err != nil {
			return -1, err
		}
		return v, p.expectOp(")")
	case t.kind == "num":
		val, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return -1, fmt.Errorf("bad literal %q", t.text)
		}
		id := p.c.g.MustAddNode(dfg.OpConst, "")
		if err := p.c.g.SetConst(id, val); err != nil {
			return -1, err
		}
		return id, nil
	case t.kind == "ident":
		if p.peek().kind == "op" && p.peek().text == "(" {
			return p.call(t.text)
		}
		id, ok := p.c.vars[t.text]
		if !ok {
			return -1, fmt.Errorf("undefined name %q", t.text)
		}
		return id, nil
	}
	return -1, fmt.Errorf("unexpected token %q", t.text)
}

// call parses fn(args...) with fn already consumed.
func (p *parser) call(fn string) (int, error) {
	if err := p.expectOp("("); err != nil {
		return -1, err
	}
	var args []int
	if !(p.peek().kind == "op" && p.peek().text == ")") {
		for {
			a, err := p.expr(0)
			if err != nil {
				return -1, err
			}
			args = append(args, a)
			if p.peek().kind == "op" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return -1, err
	}
	want := map[string]struct {
		op    dfg.Op
		arity int
	}{
		"load":   {dfg.OpLoad, 1},
		"store":  {dfg.OpStore, 2},
		"min":    {dfg.OpMin, 2},
		"max":    {dfg.OpMax, 2},
		"abs":    {dfg.OpAbs, 1},
		"select": {dfg.OpSelect, 3},
	}
	spec, ok := want[fn]
	if !ok {
		return -1, fmt.Errorf("unknown function %q", fn)
	}
	if len(args) != spec.arity {
		return -1, fmt.Errorf("%s takes %d arguments, got %d", fn, spec.arity, len(args))
	}
	id := p.c.g.MustAddNode(spec.op, "", args...)
	if spec.op.IsMemory() {
		if err := p.c.g.MarkForbidden(id); err != nil {
			return -1, err
		}
	}
	return id, nil
}
