package exprc

import (
	"testing"

	"polyise/internal/interp"
)

// FuzzExprCompile hardens the expression compiler as the untrusted front
// door of the pipeline: arbitrary source must either be rejected with an
// error or produce a frozen, well-formed graph — never a panic. Accepted
// programs are additionally held to an executability contract: a graph
// the compiler emits always runs under the interpreter (operand counts
// are correct by construction), so a clean compile followed by an
// interpreter refusal is a compiler bug.
//
// Seed corpus: the inline seeds below plus the committed files under
// testdata/fuzz/FuzzExprCompile. Extend with
// `go test -fuzz=FuzzExprCompile ./internal/exprc/`.
func FuzzExprCompile(f *testing.F) {
	for _, seed := range []string{
		"in a, b\nr = a + b\nout r",
		"in a\nr = a ? a : -a\nout r",
		"in p, x\nstore(p, x)\ny = load(p + 4)\nout y",
		"in a\nr = min(abs(a - 1), max(a, 0x7f))\nout r",
		"in a\nr = -~a << 3 >> 1\nout r",
		"in a\nb = a / 0\nc = a % 0\nout b, c",
		"r = undefined + 1",            // use before declaration
		"in a\na = a",                  // reassignment
		"in a\nr = a +",                // truncated expression
		"in a\nr = (a",                 // unbalanced parens
		"out r",                        // out of nothing
		"in a\nr = a ? a\nout r",       // incomplete ternary
		"in \xff\nr = 1",               // hostile identifier
		"in a\nr = load(store(a, a))",  // store has no value? (parser decides)
		"# only a comment",
		"",
		"in a\nr = select(a)\nout r",   // wrong arity builtin
		"in a\nr = a | | a\nout r",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip()
		}
		g, err := Compile(src) // must not panic
		if err != nil {
			return // rejected cleanly
		}
		if g == nil || !g.Frozen() {
			t.Fatal("Compile returned a nil or unfrozen graph without error")
		}
		if g.N() == 0 {
			t.Fatal("Compile returned an empty graph without error")
		}
		// Structural invariants a frozen compile must satisfy.
		for v := 0; v < g.N(); v++ {
			for _, p := range g.Preds(v) {
				if p < 0 || p >= v {
					t.Fatalf("node %d has non-topological pred %d", v, p)
				}
			}
			if want := g.Op(v).Arity(); want > 0 && len(g.Preds(v)) < want {
				t.Fatalf("node %d (%v) has %d operands, needs %d", v, g.Op(v), len(g.Preds(v)), want)
			}
		}
		// Executability: compiled graphs carry correct operand counts, so
		// the interpreter must accept them on any environment.
		if _, err := interp.Run(g, interp.Env{Mem: interp.NewSeededMemory(1)}); err != nil {
			t.Fatalf("compiled graph refused by the interpreter: %v", err)
		}
	})
}
