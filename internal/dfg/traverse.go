package dfg

import (
	"math/bits"

	"polyise/internal/bitset"
)

// This file implements the word-parallel traversal engine the enumeration
// hot path runs on. The scalar traversals of cut.go walk edges one at a
// time, paying a branchy membership test per edge; the kernels here advance
// a whole frontier per step instead, OR-ing precomputed 64-bit adjacency
// rows (Graph.predBits/succBits, built by Freeze) and masking the result
// against an "allowed" set, so each step costs a handful of word operations
// per frontier vertex regardless of how many individual edges it covers.
// This is the §5.4 discipline — set operations on flat bit matrices —
// applied to the traversals themselves, not just the reachability closure.
//
// The scalar implementations in cut.go are retained as the reference
// semantics; property tests check every kernel against them on randomized
// graphs, seeds and avoid-sets.

// Traverser owns the scratch state of the word-parallel kernels for one
// graph. It is cheap to create, allocation-free in steady state, and NOT
// safe for concurrent use — each enumeration worker and validator owns its
// own (the clone-per-shard discipline of the parallel enumeration).
type Traverser struct {
	g        *Graph
	frontier *bitset.Set
	next     *bitset.Set
	allowed  *bitset.Set

	// Scratch of the delta-maintenance kernels (delta.go).
	region   *bitset.Set
	rest     *bitset.Set
	surv     *bitset.Set
	scratchS *bitset.Set
	seed1    [1]int
}

// NewTraverser returns a Traverser over g. The graph must be frozen.
func (g *Graph) NewTraverser() *Traverser {
	if !g.frozen {
		panic(ErrNotFrozen)
	}
	n := g.N()
	return &Traverser{
		g:        g,
		frontier: bitset.New(n),
		next:     bitset.New(n),
		allowed:  bitset.New(n),
		region:   bitset.New(n),
		rest:     bitset.New(n),
		surv:     bitset.New(n),
		scratchS: bitset.New(n),
	}
}

// closure grows dst to its transitive closure under the given adjacency
// matrix, restricted to allowed (nil = the whole graph). dst arrives
// pre-seeded; seeds are kept even when outside allowed, but expansion never
// leaves it. Frontier-at-a-time: each round ORs the adjacency rows of the
// current frontier and masks the union in whole words.
//
// Graphs of at most 256 vertices (stride ≤ 4) dispatch to specializations
// that keep the whole frontier, accumulator and visited set in registers;
// adjacency rows never contain bits ≥ N, so no capacity masking is needed.
func (t *Traverser) closure(dst *bitset.Set, rowBits []uint64, allowed *bitset.Set) {
	switch t.g.stride {
	case 1:
		closureW1(dst, rowBits, allowed)
		return
	case 2:
		closureW2(dst, rowBits, allowed)
		return
	case 3:
		closureW3(dst, rowBits, allowed)
		return
	case 4:
		closureW4(dst, rowBits, allowed)
		return
	}
	t.closureGeneric(dst, rowBits, allowed)
}

func closureW1(dst *bitset.Set, rows []uint64, allowed *bitset.Set) {
	aw := ^uint64(0)
	if allowed != nil {
		aw = allowed.Words()[0]
	}
	dw := dst.Words()
	d := dw[0]
	cur := d
	for cur != 0 {
		var n uint64
		for w := cur; w != 0; w &= w - 1 {
			n |= rows[bits.TrailingZeros64(w)]
		}
		n = n & aw &^ d
		d |= n
		cur = n
	}
	dw[0] = d
}

func closureW2(dst *bitset.Set, rows []uint64, allowed *bitset.Set) {
	a0, a1 := ^uint64(0), ^uint64(0)
	if allowed != nil {
		aw := allowed.Words()
		a0, a1 = aw[0], aw[1]
	}
	dw := dst.Words()
	d0, d1 := dw[0], dw[1]
	f0, f1 := d0, d1
	for {
		var n0, n1 uint64
		for w := f0; w != 0; w &= w - 1 {
			v := bits.TrailingZeros64(w)
			n0 |= rows[2*v]
			n1 |= rows[2*v+1]
		}
		for w := f1; w != 0; w &= w - 1 {
			v := 64 + bits.TrailingZeros64(w)
			n0 |= rows[2*v]
			n1 |= rows[2*v+1]
		}
		n0 = n0 & a0 &^ d0
		n1 = n1 & a1 &^ d1
		if n0|n1 == 0 {
			break
		}
		d0 |= n0
		d1 |= n1
		f0, f1 = n0, n1
	}
	dw[0], dw[1] = d0, d1
}

func closureW3(dst *bitset.Set, rows []uint64, allowed *bitset.Set) {
	a0, a1, a2 := ^uint64(0), ^uint64(0), ^uint64(0)
	if allowed != nil {
		aw := allowed.Words()
		a0, a1, a2 = aw[0], aw[1], aw[2]
	}
	dw := dst.Words()
	d0, d1, d2 := dw[0], dw[1], dw[2]
	f0, f1, f2 := d0, d1, d2
	for {
		var n0, n1, n2 uint64
		for wi, f := range [3]uint64{f0, f1, f2} {
			base := wi << 6
			for w := f; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				n0 |= rows[3*v]
				n1 |= rows[3*v+1]
				n2 |= rows[3*v+2]
			}
		}
		n0 = n0 & a0 &^ d0
		n1 = n1 & a1 &^ d1
		n2 = n2 & a2 &^ d2
		if n0|n1|n2 == 0 {
			break
		}
		d0 |= n0
		d1 |= n1
		d2 |= n2
		f0, f1, f2 = n0, n1, n2
	}
	dw[0], dw[1], dw[2] = d0, d1, d2
}

func closureW4(dst *bitset.Set, rows []uint64, allowed *bitset.Set) {
	a0, a1, a2, a3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
	if allowed != nil {
		aw := allowed.Words()
		a0, a1, a2, a3 = aw[0], aw[1], aw[2], aw[3]
	}
	dw := dst.Words()
	d0, d1, d2, d3 := dw[0], dw[1], dw[2], dw[3]
	f0, f1, f2, f3 := d0, d1, d2, d3
	for {
		var n0, n1, n2, n3 uint64
		for wi, f := range [4]uint64{f0, f1, f2, f3} {
			base := wi << 6
			for w := f; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				r := rows[4*v : 4*v+4 : 4*v+4]
				n0 |= r[0]
				n1 |= r[1]
				n2 |= r[2]
				n3 |= r[3]
			}
		}
		n0 = n0 & a0 &^ d0
		n1 = n1 & a1 &^ d1
		n2 = n2 & a2 &^ d2
		n3 = n3 & a3 &^ d3
		if n0|n1|n2|n3 == 0 {
			break
		}
		d0 |= n0
		d1 |= n1
		d2 |= n2
		d3 |= n3
		f0, f1, f2, f3 = n0, n1, n2, n3
	}
	dw[0], dw[1], dw[2], dw[3] = d0, d1, d2, d3
}

func (t *Traverser) closureGeneric(dst *bitset.Set, rowBits []uint64, allowed *bitset.Set) {
	stride := t.g.stride
	fr, nx := t.frontier, t.next
	fr.Copy(dst)
	dw := dst.Words()
	var aw []uint64
	if allowed != nil {
		aw = allowed.Words()
	}
	for {
		nw := nx.Words()
		for i := range nw {
			nw[i] = 0
		}
		for wi, w := range fr.Words() {
			for w != 0 {
				v := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				row := rowBits[v*stride : (v+1)*stride]
				for i, r := range row {
					nw[i] |= r
				}
			}
		}
		any := uint64(0)
		if aw != nil {
			for i := range nw {
				m := nw[i] & aw[i] &^ dw[i]
				nw[i] = m
				dw[i] |= m
				any |= m
			}
		} else {
			for i := range nw {
				m := nw[i] &^ dw[i]
				nw[i] = m
				dw[i] |= m
				any |= m
			}
		}
		if any == 0 {
			return
		}
		fr, nx = nx, fr
	}
}

// unionRows ORs into dst the adjacency rows of every member of src — the
// bulk primitive of the delta kernels (parent frontiers, aggregate
// maintenance). Like closure, graphs of at most 256 vertices dispatch to
// register-resident specializations; the scalar UnionWords loop per member
// costs roughly twice as much per row.
func (t *Traverser) unionRows(dst *bitset.Set, rowBits []uint64, src *bitset.Set) {
	switch t.g.stride {
	case 1:
		dw := dst.Words()
		d := dw[0]
		for w := src.Words()[0]; w != 0; w &= w - 1 {
			d |= rowBits[bits.TrailingZeros64(w)]
		}
		dw[0] = d
		return
	case 2:
		dw := dst.Words()
		d0, d1 := dw[0], dw[1]
		for wi, f := range [2]uint64{src.Words()[0], src.Words()[1]} {
			base := wi << 6
			for w := f; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				d0 |= rowBits[2*v]
				d1 |= rowBits[2*v+1]
			}
		}
		dw[0], dw[1] = d0, d1
		return
	case 3:
		sw := src.Words()
		dw := dst.Words()
		d0, d1, d2 := dw[0], dw[1], dw[2]
		for wi, f := range [3]uint64{sw[0], sw[1], sw[2]} {
			base := wi << 6
			for w := f; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				d0 |= rowBits[3*v]
				d1 |= rowBits[3*v+1]
				d2 |= rowBits[3*v+2]
			}
		}
		dw[0], dw[1], dw[2] = d0, d1, d2
		return
	case 4:
		sw := src.Words()
		dw := dst.Words()
		d0, d1, d2, d3 := dw[0], dw[1], dw[2], dw[3]
		for wi, f := range [4]uint64{sw[0], sw[1], sw[2], sw[3]} {
			base := wi << 6
			for w := f; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				r := rowBits[4*v : 4*v+4 : 4*v+4]
				d0 |= r[0]
				d1 |= r[1]
				d2 |= r[2]
				d3 |= r[3]
			}
		}
		dw[0], dw[1], dw[2], dw[3] = d0, d1, d2, d3
		return
	}
	stride := t.g.stride
	dw := dst.Words()
	for wi, f := range src.Words() {
		base := wi << 6
		for w := f; w != 0; w &= w - 1 {
			v := base + bits.TrailingZeros64(w)
			row := rowBits[v*stride : (v+1)*stride]
			for i, r := range row {
				dw[i] |= r
			}
		}
	}
}

// UnionPredRows ORs into dst the predecessor rows of every member of src.
func (t *Traverser) UnionPredRows(dst, src *bitset.Set) {
	t.unionRows(dst, t.g.predBits, src)
}

// UnionSuccRows ORs into dst the successor rows of every member of src.
func (t *Traverser) UnionSuccRows(dst, src *bitset.Set) {
	t.unionRows(dst, t.g.succBits, src)
}

// HighestMaskedBit returns the highest bit index set in row ∧ mask, or -1
// when the intersection is empty. With the identity topological order that
// Freeze pins (bit index ≡ topological position), applying it to an
// adjacency row masked by a region gives the highest-positioned neighbour
// inside the region — the load-bearing query of the running-max dominator
// sweeps in package enum (analyzePaths, mandatoryInto).
func HighestMaskedBit(row, mask []uint64) int {
	for i := len(row) - 1; i >= 0; i-- {
		if m := row[i] & mask[i]; m != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(m)
		}
	}
	return -1
}

// ForwardClosure extends the pre-seeded dst with everything reachable from
// it through successor edges inside allowed (nil = everywhere). Seeds stay
// in dst even when outside allowed.
func (t *Traverser) ForwardClosure(dst, allowed *bitset.Set) {
	t.closure(dst, t.g.succBits, allowed)
}

// BackwardClosure is ForwardClosure over predecessor edges.
func (t *Traverser) BackwardClosure(dst, allowed *bitset.Set) {
	t.closure(dst, t.g.predBits, allowed)
}

// prepAllowed loads t.allowed with within \ avoid (or U \ avoid when within
// is nil) and returns it.
func (t *Traverser) prepAllowed(avoid, within *bitset.Set) *bitset.Set {
	if within != nil {
		t.allowed.CopyAndNot(within, avoid)
	} else {
		t.allowed.ComplementOf(avoid)
	}
	return t.allowed
}

// ReachForwardAvoiding computes into dst every vertex reachable from the
// seed list along successor paths that avoid `avoid`, restricted to
// `within` when non-nil (seeds outside within \ avoid are dropped). Seeds
// themselves are included. Word-parallel equivalent of the forward scalar
// BFS in cut.go's rootReachesAvoiding / privatePathExists.
func (t *Traverser) ReachForwardAvoiding(dst *bitset.Set, seeds []int, avoid, within *bitset.Set) *bitset.Set {
	allowed := t.prepAllowed(avoid, within)
	dst.Clear()
	for _, s := range seeds {
		if allowed.Has(s) {
			dst.Add(s)
		}
	}
	t.closure(dst, t.g.succBits, allowed)
	return dst
}

// ReachBackwardAvoiding is ReachForwardAvoiding over predecessor edges: dst
// becomes every vertex that reaches a seed along a path avoiding `avoid`,
// restricted to `within` when non-nil.
func (t *Traverser) ReachBackwardAvoiding(dst *bitset.Set, seeds []int, avoid, within *bitset.Set) *bitset.Set {
	allowed := t.prepAllowed(avoid, within)
	dst.Clear()
	for _, s := range seeds {
		if allowed.Has(s) {
			dst.Add(s)
		}
	}
	t.closure(dst, t.g.predBits, allowed)
	return dst
}

// CutNodesInto is the word-parallel equivalent of Graph.CutNodesInto: the
// vertex set of the cut identified by the chosen outputs and the input set
// `avoid` (theorems 2 and 3), computed as one backward frontier traversal.
func (t *Traverser) CutNodesInto(dst *bitset.Set, outs []int, avoid *bitset.Set) *bitset.Set {
	return t.ReachBackwardAvoiding(dst, outs, avoid, nil)
}

// InputsInto computes I(S) (definition 1) into dst word-parallel: the union
// of the predecessor rows of S's members, minus S itself.
func (t *Traverser) InputsInto(dst *bitset.Set, S *bitset.Set) *bitset.Set {
	dst.Clear()
	g := t.g
	stride := g.stride
	dw := dst.Words()
	for wi, w := range S.Words() {
		for w != 0 {
			v := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			row := g.predBits[v*stride : (v+1)*stride]
			for i, r := range row {
				dw[i] |= r
			}
		}
	}
	dst.Subtract(S)
	return dst
}

// OutputsInto computes O(S) (definition 1) into dst: members of S that are
// in Oext or have a successor outside S, each tested with one word-parallel
// pass over the member's successor row.
func (t *Traverser) OutputsInto(dst *bitset.Set, S *bitset.Set) *bitset.Set {
	dst.Clear()
	g := t.g
	stride := g.stride
	sw := S.Words()
	ow := g.oext.Words()
	for wi, w := range sw {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := wi<<6 + b
			w &= w - 1
			if ow[wi]&(1<<uint(b)) != 0 {
				dst.Add(v)
				continue
			}
			row := g.succBits[v*stride : (v+1)*stride]
			for i, r := range row {
				if r&^sw[i] != 0 {
					dst.Add(v)
					break
				}
			}
		}
	}
	return dst
}
