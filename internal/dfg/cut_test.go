package dfg

import (
	"reflect"
	"testing"

	"polyise/internal/bitset"
)

// ladder builds the graph used by most cut tests:
//
//	a    b    c      (roots 0,1,2)
//	 \  / \  /
//	  d    e         (3,4)
//	   \  / \
//	    f    g       (5,6)
//	     \  /
//	      h          (7, sink)
func ladder(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpVar, "b")
	c := g.MustAddNode(OpVar, "c")
	d := g.MustAddNode(OpAdd, "d", a, b)
	e := g.MustAddNode(OpMul, "e", b, c)
	f := g.MustAddNode(OpSub, "f", d, e)
	gg := g.MustAddNode(OpXor, "g", e)
	h := g.MustAddNode(OpOr, "h", f, gg)
	_ = h
	g.MustFreeze()
	return g
}

func TestInputsOutputs(t *testing.T) {
	g := ladder(t)
	// S = {f, g}: inputs {d, e}, outputs {f, g}? f and g both feed h which is
	// outside S, so both are outputs.
	S := bitset.FromMembers(g.N(), 5, 6)
	if want := []int{3, 4}; !reflect.DeepEqual(g.Inputs(S), want) {
		t.Fatalf("Inputs = %v, want %v", g.Inputs(S), want)
	}
	if want := []int{5, 6}; !reflect.DeepEqual(g.Outputs(S), want) {
		t.Fatalf("Outputs = %v, want %v", g.Outputs(S), want)
	}
	// S = {d, e, f, g, h}: inputs are the roots, single output h.
	S = bitset.FromMembers(g.N(), 3, 4, 5, 6, 7)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(g.Inputs(S), want) {
		t.Fatalf("Inputs = %v, want %v", g.Inputs(S), want)
	}
	if want := []int{7}; !reflect.DeepEqual(g.Outputs(S), want) {
		t.Fatalf("Outputs = %v, want %v", g.Outputs(S), want)
	}
}

func TestOextMembersAreAlwaysOutputs(t *testing.T) {
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpAdd, "b", a, a)
	c := g.MustAddNode(OpMul, "c", b, b)
	_ = c
	if err := g.MarkLiveOut(b); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	// S = {b, c}: c is a structural sink; b is live-out, so even with its only
	// structural successor inside S it must be an output.
	S := bitset.FromMembers(g.N(), b, c)
	if want := []int{b, c}; !reflect.DeepEqual(g.Outputs(S), want) {
		t.Fatalf("Outputs = %v, want %v", g.Outputs(S), want)
	}
}

func TestIsConvex(t *testing.T) {
	g := ladder(t)
	cases := []struct {
		members []int
		want    bool
	}{
		{[]int{5, 6}, true},
		{[]int{3, 4, 5, 6, 7}, true},
		{[]int{4, 7}, false},    // path e→f→h and e→g→h leave and re-enter
		{[]int{3, 5}, true},     // d→f direct edge, convex
		{[]int{3, 7}, false},    // d→f→h with f outside
		{[]int{4}, true},        // singleton always convex
		{[]int{}, true},         // empty cut trivially convex
		{[]int{3, 4, 6}, true},  // d, e, g: no path between them leaves the set
		{[]int{4, 5, 6}, false}, // e→f needs d? no: e→f is a direct edge... see below
	}
	// Correction for the last case: {e,f,g} — e→f and e→g are direct edges,
	// and no path leaves and re-enters, so it IS convex.
	cases[len(cases)-1].want = true
	for _, c := range cases {
		S := bitset.FromMembers(g.N(), c.members...)
		if got := g.IsConvex(S); got != c.want {
			t.Errorf("IsConvex(%v) = %v, want %v", c.members, got, c.want)
		}
	}
}

func TestIsConnectedCut(t *testing.T) {
	g := ladder(t)
	// {f, g}: outputs f and g, shared input e reaches both → connected.
	if !g.IsConnectedCut(bitset.FromMembers(g.N(), 5, 6)) {
		t.Error("{f,g} should be connected (shared input e)")
	}
	// {d, g}: outputs d and g; inputs {a, b, e}. b reaches g only through
	// input e, so in the strict (theorem 1) sense b is not an input to g;
	// d's inputs {a, b} and g's input {e} share nothing → disconnected.
	if g.IsConnectedCut(bitset.FromMembers(g.N(), 3, 6)) {
		t.Error("{d,g} should be disconnected: no shared private input")
	}
	// Build a graph with two independent components to get a disconnected cut.
	g2 := New()
	x := g2.MustAddNode(OpVar, "x")
	y := g2.MustAddNode(OpVar, "y")
	p := g2.MustAddNode(OpAdd, "p", x, x)
	q := g2.MustAddNode(OpMul, "q", y, y)
	g2.MustFreeze()
	S := bitset.FromMembers(g2.N(), p, q)
	if g2.IsConnectedCut(S) {
		t.Error("{p,q} with disjoint inputs should not be connected")
	}
	if !g2.IsConnectedCut(bitset.FromMembers(g2.N(), p)) {
		t.Error("single-output cut is connected by definition")
	}
}

func TestTechnicalCondition(t *testing.T) {
	g := ladder(t)
	// S = {f}: inputs d and e; both have private paths (root→d→f avoids e,
	// root→e→f avoids d) → holds.
	if !g.TechnicalConditionHolds(bitset.FromMembers(g.N(), 5)) {
		t.Error("technical condition should hold for {f}")
	}
	// Chain where one input can only be reached through the other:
	// a → p → q → r, S = {r} with inputs... p and q are chained; I({r}) = {q}
	// only, so the condition trivially holds. Build the paper's situation
	// instead: inputs {p, q} for S = {q's successor} cannot happen unless q
	// has another pred. Construct:
	//   a → p → q,  a → q  (q has preds p and a),  q → r
	//   S = {r}: I = {q}. S = {q, r}: I = {p, a}; path root→a→q avoids p? a is
	//   a root, yes. p's private path: root→a... a is an input too. p is only
	//   reachable via a. So every path to p passes input a → condition fails
	//   for input p? Wait p's paths: root→a→p. contains input a → no private
	//   path for p... but a is also an input of S. So the condition fails.
	g2 := New()
	a := g2.MustAddNode(OpVar, "a")
	p := g2.MustAddNode(OpNot, "p", a)
	q := g2.MustAddNode(OpAdd, "q", p, a)
	r := g2.MustAddNode(OpNeg, "r", q)
	_ = r
	g2.MustFreeze()
	S := bitset.FromMembers(g2.N(), q, r)
	if got := g2.Inputs(S); !reflect.DeepEqual(got, []int{a, p}) {
		t.Fatalf("Inputs = %v, want [%d %d]", got, a, p)
	}
	if g2.TechnicalConditionHolds(S) {
		t.Error("condition should fail: every root→p path passes input a")
	}
	// And the cut S ∪ {p} that the paper says recovers it does satisfy it.
	S2 := bitset.FromMembers(g2.N(), p, q, r)
	if !g2.TechnicalConditionHolds(S2) {
		t.Error("condition should hold for S ∪ {p}")
	}
}

func TestTechnicalConditionSingleInput(t *testing.T) {
	g := ladder(t)
	// Cuts with ≤1 input trivially satisfy the condition.
	if !g.TechnicalConditionHolds(bitset.FromMembers(g.N(), 6)) { // {g}: input {e}
		t.Error("single-input cut must satisfy the condition")
	}
	if !g.TechnicalConditionHolds(bitset.New(g.N())) {
		t.Error("empty cut must satisfy the condition")
	}
}

func TestInputsOutputsEmptyCut(t *testing.T) {
	g := ladder(t)
	S := bitset.New(g.N())
	if got := g.Inputs(S); len(got) != 0 {
		t.Fatalf("Inputs(∅) = %v", got)
	}
	if got := g.Outputs(S); len(got) != 0 {
		t.Fatalf("Outputs(∅) = %v", got)
	}
}
