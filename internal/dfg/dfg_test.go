package dfg

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// diamond builds:
//
//	a   b      (roots)
//	 \ / \
//	  c   d
//	   \ /
//	    e      (sink)
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpVar, "b")
	c := g.MustAddNode(OpAdd, "c", a, b)
	d := g.MustAddNode(OpMul, "d", b)
	e := g.MustAddNode(OpSub, "e", c, d)
	_ = e
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNodeValidation(t *testing.T) {
	g := New()
	if _, err := g.AddNode(OpAdd, "x", 5); !errors.Is(err, ErrBadPred) {
		t.Fatalf("forward pred: err = %v, want ErrBadPred", err)
	}
	if _, err := g.AddNode(Op(200), "x"); err == nil {
		t.Fatal("invalid op accepted")
	}
	a, err := g.AddNode(OpVar, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(OpAdd, "self", a, a); err != nil {
		t.Fatalf("repeated pred should be fine: %v", err)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(OpAdd, "late", a); !errors.Is(err, ErrFrozen) {
		t.Fatalf("add after freeze: err = %v, want ErrFrozen", err)
	}
}

func TestFreezeEmpty(t *testing.T) {
	if err := New().Freeze(); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestRootsAndOext(t *testing.T) {
	g := diamond(t)
	if want := []int{0, 1}; !reflect.DeepEqual(g.Roots(), want) {
		t.Fatalf("Roots = %v, want %v", g.Roots(), want)
	}
	if want := []int{4}; !reflect.DeepEqual(g.Oext(), want) {
		t.Fatalf("Oext = %v, want %v", g.Oext(), want)
	}
	for _, r := range g.Roots() {
		if !g.IsForbidden(r) {
			t.Errorf("root %d should be implicitly forbidden", r)
		}
	}
}

func TestMarkLiveOut(t *testing.T) {
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpAdd, "b", a, a)
	c := g.MustAddNode(OpMul, "c", b, b)
	_ = c
	if err := g.MarkLiveOut(b); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	if want := []int{1, 2}; !reflect.DeepEqual(g.Oext(), want) {
		t.Fatalf("Oext = %v, want %v", g.Oext(), want)
	}
}

func TestMarkForbiddenAndCalls(t *testing.T) {
	g := New()
	a := g.MustAddNode(OpVar, "a")
	ld := g.MustAddNode(OpLoad, "ld", a)
	cl := g.MustAddNode(OpCall, "f", ld)
	add := g.MustAddNode(OpAdd, "s", ld, cl)
	_ = add
	if err := g.MarkForbidden(ld); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	if !g.IsUserForbidden(ld) {
		t.Error("load not forbidden after MarkForbidden")
	}
	if !g.IsUserForbidden(cl) {
		t.Error("call should be implicitly forbidden")
	}
	if g.IsUserForbidden(add) {
		t.Error("add wrongly forbidden")
	}
	if !g.IsForbidden(a) || g.IsUserForbidden(a) {
		t.Error("root must be implicitly but not user-forbidden")
	}
}

func TestTopoAndDepth(t *testing.T) {
	g := diamond(t)
	pos := make([]int, g.N())
	for i, v := range g.Topo() {
		pos[v] = i
		if g.TopoPos(v) != i {
			t.Fatalf("TopoPos(%d) = %d, want %d", v, g.TopoPos(v), i)
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, p := range g.Preds(v) {
			if pos[p] >= pos[v] {
				t.Fatalf("topo order violated: pred %d after %d", p, v)
			}
		}
	}
	wantDepth := []int{0, 0, 1, 1, 2}
	for v, want := range wantDepth {
		if g.Depth(v) != want {
			t.Errorf("Depth(%d) = %d, want %d", v, g.Depth(v), want)
		}
	}
}

func TestReachability(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		v, w int
		want bool
	}{
		{0, 2, true}, {0, 4, true}, {0, 3, false}, {1, 4, true},
		{2, 4, true}, {4, 0, false}, {2, 3, false}, {1, 2, true},
	}
	for _, c := range cases {
		if got := g.Reaches(c.v, c.w); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.v, c.w, got, c.want)
		}
	}
	// reachTo is the mirror of reachFrom.
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if g.ReachFrom(v).Has(w) != g.ReachTo(w).Has(v) {
				t.Fatalf("reach matrices disagree on (%d,%d)", v, w)
			}
		}
	}
}

func TestBetween(t *testing.T) {
	g := diamond(t)
	dst := bitset.New(g.N())
	// B({b}, e) must contain c, d, e but not a or b.
	g.BetweenSingleInto(dst, 1, 4)
	if want := []int{2, 3, 4}; !reflect.DeepEqual(dst.Members(), want) {
		t.Fatalf("B({b},e) = %v, want %v", dst.Members(), want)
	}
	// B({a}, e) goes only through c.
	g.BetweenSingleInto(dst, 0, 4)
	if want := []int{2, 4}; !reflect.DeepEqual(dst.Members(), want) {
		t.Fatalf("B({a},e) = %v, want %v", dst.Members(), want)
	}
	// No path: B({e}, a) empty.
	g.BetweenSingleInto(dst, 4, 0)
	if !dst.Empty() {
		t.Fatalf("B({e},a) = %v, want empty", dst.Members())
	}
	// Multi-source version unions path sets and removes sources.
	g.BetweenInto(dst, []int{0, 1}, 4)
	if want := []int{2, 3, 4}; !reflect.DeepEqual(dst.Members(), want) {
		t.Fatalf("B({a,b},e) = %v, want %v", dst.Members(), want)
	}
}

func TestBetweenExcludesSourceThatIsOnPath(t *testing.T) {
	// chain a→b→c; B({a,b},c) must not contain b even though b lies on the
	// path a→c (definition 6 excludes starting vertices).
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpNot, "b", a)
	c := g.MustAddNode(OpNeg, "c", b)
	g.MustFreeze()
	dst := bitset.New(g.N())
	g.BetweenInto(dst, []int{a, b}, c)
	if want := []int{c}; !reflect.DeepEqual(dst.Members(), want) {
		t.Fatalf("B({a,b},c) = %v, want %v", dst.Members(), want)
	}
}

func TestHasForbiddenBetween(t *testing.T) {
	// a → ld → x → e  and a → y → e, with ld forbidden.
	g := New()
	a := g.MustAddNode(OpVar, "a")
	ld := g.MustAddNode(OpLoad, "ld", a)
	x := g.MustAddNode(OpAdd, "x", ld, ld)
	y := g.MustAddNode(OpMul, "y", a, a)
	e := g.MustAddNode(OpSub, "e", x, y)
	if err := g.MarkForbidden(ld); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	if !g.HasForbiddenBetween(a, x) {
		t.Error("path a→ld→x should report forbidden between")
	}
	if g.HasForbiddenBetween(a, y) {
		t.Error("path a→y has no forbidden interior")
	}
	if g.HasForbiddenBetween(ld, e) {
		t.Error("ld→x→e interior {x} is not forbidden")
	}
	if !g.HasForbiddenBetween(a, e) {
		t.Error("some path a→e passes through forbidden ld")
	}
}

func TestReachesForbiddenFree(t *testing.T) {
	// a → ld → x, a → x (direct), ld forbidden: a reaches x forbidden-free
	// via the direct edge; b → ld → y only: no forbidden-free path b→y.
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpVar, "b")
	ld := g.MustAddNode(OpLoad, "ld", a, b)
	x := g.MustAddNode(OpAdd, "x", a, ld)
	y := g.MustAddNode(OpMul, "y", ld, ld)
	_ = x
	if err := g.MarkForbidden(ld); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	if !g.ReachesForbiddenFree(a, x) {
		t.Error("a→x direct edge should be forbidden-free")
	}
	if g.ReachesForbiddenFree(b, y) {
		t.Error("b→y only passes through forbidden ld")
	}
	// Forbidden start vertices may begin forbidden-free paths.
	if !g.ReachesForbiddenFree(ld, y) {
		t.Error("ld→y direct edge should be forbidden-free")
	}
	if g.ReachesForbiddenFree(y, a) {
		t.Error("no path y→a at all")
	}
}

func TestNumEdges(t *testing.T) {
	g := diamond(t)
	if got := g.NumEdges(); got != 5 {
		t.Fatalf("NumEdges = %d, want 5", got)
	}
}

// randGraph builds a random layered DAG for property tests.
func randGraph(r *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(5) == 0 {
			g.MustAddNode(OpVar, "")
			continue
		}
		k := 1 + r.Intn(2)
		preds := make([]int, 0, k)
		for j := 0; j < k; j++ {
			preds = append(preds, r.Intn(i))
		}
		op := OpAdd
		if r.Intn(10) == 0 {
			op = OpLoad
		}
		id := g.MustAddNode(op, "", preds...)
		if op == OpLoad {
			if err := g.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

func TestQuickReachMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 2+r.Intn(40))
		// Compare Reaches against a fresh DFS for random pairs.
		for k := 0; k < 20; k++ {
			v, w := r.Intn(g.N()), r.Intn(g.N())
			if g.Reaches(v, w) != dfsReaches(g, v, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func dfsReaches(g *Graph, v, w int) bool {
	if v == w {
		return false
	}
	seen := make([]bool, g.N())
	stack := []int{v}
	seen[v] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(x) {
			if s == w {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestQuickDepthConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 2+r.Intn(60))
		for v := 0; v < g.N(); v++ {
			want := 0
			for _, p := range g.Preds(v) {
				if g.Depth(p)+1 > want {
					want = g.Depth(p) + 1
				}
			}
			if g.Depth(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
