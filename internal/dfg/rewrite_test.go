package dfg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// macGraph: m1 = a*b, m2 = c*d, s = m1+m2, t = s+e.
func macGraph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	g.MustAddNode(OpVar, "a")
	g.MustAddNode(OpVar, "b")
	g.MustAddNode(OpVar, "c")
	g.MustAddNode(OpVar, "d")
	g.MustAddNode(OpVar, "e")
	g.MustAddNode(OpMul, "m1", 0, 1)
	g.MustAddNode(OpMul, "m2", 2, 3)
	g.MustAddNode(OpAdd, "s", 5, 6)
	g.MustAddNode(OpAdd, "t", 7, 4)
	g.MustFreeze()
	return g
}

func TestExtractCut(t *testing.T) {
	g := macGraph(t)
	S := bitset.FromMembers(g.N(), 5, 6, 7) // m1, m2, s
	ex, mapping, err := g.ExtractCut(S)
	if err != nil {
		t.Fatal(err)
	}
	// 4 inputs (a..d) + 3 ops.
	if ex.N() != 7 {
		t.Fatalf("extracted n = %d, want 7", ex.N())
	}
	if len(ex.Roots()) != 4 {
		t.Fatalf("roots = %v", ex.Roots())
	}
	if want := []int{mapping[7]}; !reflect.DeepEqual(ex.Oext(), want) {
		t.Fatalf("outputs = %v, want %v", ex.Oext(), want)
	}
	if ex.Op(mapping[7]) != OpAdd || ex.Name(mapping[7]) != "s" {
		t.Fatal("output op mangled")
	}
	// Input names survive.
	names := map[string]bool{}
	for _, r := range ex.Roots() {
		names[ex.Name(r)] = true
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		if !names[want] {
			t.Fatalf("missing input %q in %v", want, names)
		}
	}
}

func TestExtractCutConstInput(t *testing.T) {
	g := New()
	a := g.MustAddNode(OpVar, "a")
	k := g.MustAddNode(OpConst, "")
	if err := g.SetConst(k, 7); err != nil {
		t.Fatal(err)
	}
	x := g.MustAddNode(OpAdd, "x", a, k)
	g.MustFreeze()
	ex, mapping, err := g.ExtractCut(bitset.FromMembers(g.N(), x))
	if err != nil {
		t.Fatal(err)
	}
	foundConst := false
	for v := 0; v < ex.N(); v++ {
		if ex.Op(v) == OpConst && ex.ConstValue(v) == 7 {
			foundConst = true
		}
	}
	if !foundConst {
		t.Fatal("constant input lost")
	}
	_ = mapping
}

func TestExtractCutErrors(t *testing.T) {
	g := macGraph(t)
	if _, _, err := g.ExtractCut(bitset.New(g.N())); err == nil {
		t.Fatal("empty cut accepted")
	}
	unfrozen := New()
	unfrozen.MustAddNode(OpVar, "a")
	if _, _, err := unfrozen.ExtractCut(bitset.FromMembers(1, 0)); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestCollapseSingleOutput(t *testing.T) {
	g := macGraph(t)
	S := bitset.FromMembers(g.N(), 5, 6, 7) // m1,m2,s → one output s
	ng, mapping, err := g.CollapseCut(S, "mac3", 2)
	if err != nil {
		t.Fatal(err)
	}
	// 9 - 3 + 1 = 7 nodes.
	if ng.N() != 7 {
		t.Fatalf("n = %d, want 7", ng.N())
	}
	var custom int = -1
	for v := 0; v < ng.N(); v++ {
		if ng.Op(v) == OpCustom {
			custom = v
		}
	}
	if custom < 0 {
		t.Fatal("no custom node")
	}
	if ng.ConstValue(custom) != 2 {
		t.Fatalf("latency payload = %d, want 2", ng.ConstValue(custom))
	}
	if len(ng.Preds(custom)) != 4 {
		t.Fatalf("custom preds = %v, want 4 inputs", ng.Preds(custom))
	}
	if !ng.IsUserForbidden(custom) {
		t.Fatal("custom node must be forbidden")
	}
	// t must now consume the custom node.
	nt := mapping[8]
	if ng.Op(nt) != OpAdd {
		t.Fatal("t mangled")
	}
	foundCustomPred := false
	for _, p := range ng.Preds(nt) {
		if p == custom {
			foundCustomPred = true
		}
	}
	if !foundCustomPred {
		t.Fatalf("t's preds %v do not include custom %d", ng.Preds(nt), custom)
	}
}

func TestCollapseMultiOutput(t *testing.T) {
	// m1 and m2 both feed s, but also are live-out individually.
	g := New()
	g.MustAddNode(OpVar, "a")
	g.MustAddNode(OpVar, "b")
	m1 := g.MustAddNode(OpMul, "m1", 0, 1)
	m2 := g.MustAddNode(OpXor, "m2", 0, 1)
	s := g.MustAddNode(OpAdd, "s", m1, m2)
	_ = s
	g.MustFreeze()
	S := bitset.FromMembers(g.N(), m1, m2)
	ng, _, err := g.CollapseCut(S, "pair", 1)
	if err != nil {
		t.Fatal(err)
	}
	// 5 - 2 + 1 + 2 extracts = 6.
	if ng.N() != 6 {
		t.Fatalf("n = %d, want 6", ng.N())
	}
	extracts := 0
	for v := 0; v < ng.N(); v++ {
		if ng.Op(v) == OpExtract {
			extracts++
			if len(ng.Preds(v)) != 1 || ng.Op(ng.Preds(v)[0]) != OpCustom {
				t.Fatal("extract not fed by custom")
			}
		}
	}
	if extracts != 2 {
		t.Fatalf("extracts = %d, want 2", extracts)
	}
}

func TestCollapseInterleavedTopology(t *testing.T) {
	// Regression for the emission-order pitfall: input arrives
	// topologically after the first cut member, and an output consumer sits
	// between them: S = {x, y} with x→y, extra input a→y, consumer c of x.
	g := New()
	r := g.MustAddNode(OpVar, "r")
	x := g.MustAddNode(OpNot, "x", r)
	c := g.MustAddNode(OpNeg, "c", x)
	a := g.MustAddNode(OpVar, "a")
	y := g.MustAddNode(OpAdd, "y", x, a)
	_, _ = c, y
	g.MustFreeze()
	S := bitset.FromMembers(g.N(), x, y)
	ng, _, err := g.CollapseCut(S, "xy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != 4+2 { // r, a, c, custom, 2 extracts
		t.Fatalf("n = %d, want 6", ng.N())
	}
}

func TestCollapseRejectsNonConvex(t *testing.T) {
	g := macGraph(t)
	// {m1, t} is not convex (path m1→s→t with s outside).
	S := bitset.FromMembers(g.N(), 5, 8)
	if _, _, err := g.CollapseCut(S, "bad", 1); err == nil {
		t.Fatal("non-convex cut accepted")
	}
}

func TestQuickCollapsePreservesSurvivors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 6 + r.Intn(20)
		for i := 0; i < n; i++ {
			if i == 0 || r.Intn(4) == 0 {
				g.MustAddNode(OpVar, "")
				continue
			}
			g.MustAddNode(OpAdd, "", r.Intn(i), r.Intn(i))
		}
		g.MustFreeze()
		// Random convex cut: take a node and some of its ancestors' closure.
		v := r.Intn(n)
		if g.IsRoot(v) {
			return true
		}
		S := bitset.FromMembers(n, v)
		for _, p := range g.Preds(v) {
			if !g.IsRoot(p) && r.Intn(2) == 0 {
				// Include p and everything between p and v.
				S.Add(p)
			}
		}
		// Close under betweenness to ensure convexity.
		for x := 0; x < n; x++ {
			if !S.Has(x) && g.ReachTo(x).Intersects(S) && g.ReachFrom(x).Intersects(S) {
				S.Add(x)
			}
		}
		if !g.IsConvex(S) || S.Intersects(g.RootSet()) {
			return true
		}
		ng, mapping, err := g.CollapseCut(S, "c", 1)
		if err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		// Every survivor keeps its op and name.
		for orig, nid := range mapping {
			if g.Op(orig) != ng.Op(nid) || g.Name(orig) != ng.Name(nid) {
				return false
			}
		}
		// Exactly one custom node exists.
		customs := 0
		for x := 0; x < ng.N(); x++ {
			if ng.Op(x) == OpCustom {
				customs++
			}
		}
		return customs == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
