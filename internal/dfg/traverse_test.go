package dfg

// Property tests for the word-parallel traversal engine: every kernel must
// agree with its scalar reference (the cut.go implementations, or a plain
// BFS written here) on randomized graphs, seeds and avoid-sets. Graph sizes
// deliberately cross the 64/128/192/256-vertex stride boundaries so every
// specialized closure and the generic fallback are exercised.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// randTraverseGraph is randGraph plus random live-out marks, so OutputsInto
// sees Oext members that still have successors.
func randTraverseGraph(r *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(5) == 0 {
			g.MustAddNode(OpVar, "")
		} else {
			k := 1 + r.Intn(2)
			preds := make([]int, 0, k)
			for j := 0; j < k; j++ {
				preds = append(preds, r.Intn(i))
			}
			op := OpAdd
			if r.Intn(10) == 0 {
				op = OpLoad
			}
			id := g.MustAddNode(op, "", preds...)
			if op == OpLoad {
				if err := g.MarkForbidden(id); err != nil {
					panic(err)
				}
			}
		}
		if r.Intn(12) == 0 {
			if err := g.MarkLiveOut(i); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

// traverseSize spans all closure specializations (strides 1–4) and the
// generic fallback (stride ≥ 5).
func traverseSize(r *rand.Rand) int { return 2 + r.Intn(330) }

func randSubset(r *rand.Rand, n, den int) *bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if r.Intn(den) == 0 {
			s.Add(v)
		}
	}
	return s
}

// scalarReach is the reference BFS: everything reachable from the seeds
// (seeds outside within\avoid dropped, as the kernels specify) along edges
// given by next, never stepping on avoid or outside within.
func scalarReach(g *Graph, seeds []int, avoid, within *bitset.Set, next func(int) []int) *bitset.Set {
	dst := bitset.New(g.N())
	ok := func(v int) bool {
		return !avoid.Has(v) && (within == nil || within.Has(v))
	}
	var stack []int
	for _, s := range seeds {
		if ok(s) && !dst.Has(s) {
			dst.Add(s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range next(v) {
			if ok(w) && !dst.Has(w) {
				dst.Add(w)
				stack = append(stack, w)
			}
		}
	}
	return dst
}

func TestReachAvoidingMatchesScalarBFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randTraverseGraph(r, traverseSize(r))
		tr := g.NewTraverser()
		n := g.N()
		fwd := bitset.New(n)
		bwd := bitset.New(n)
		for trial := 0; trial < 8; trial++ {
			avoid := randSubset(r, n, 4)
			var within *bitset.Set
			if r.Intn(2) == 0 {
				within = randSubset(r, n, 2)
			}
			var seeds []int
			for k := 1 + r.Intn(3); k > 0; k-- {
				seeds = append(seeds, r.Intn(n))
			}
			tr.ReachForwardAvoiding(fwd, seeds, avoid, within)
			if want := scalarReach(g, seeds, avoid, within, g.Succs); !fwd.Equal(want) {
				t.Logf("seed=%d fwd %v want %v (seeds=%v)", seed, fwd, want, seeds)
				return false
			}
			tr.ReachBackwardAvoiding(bwd, seeds, avoid, within)
			if want := scalarReach(g, seeds, avoid, within, g.Preds); !bwd.Equal(want) {
				t.Logf("seed=%d bwd %v want %v (seeds=%v)", seed, bwd, want, seeds)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTraverserCutNodesMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randTraverseGraph(r, traverseSize(r))
		tr := g.NewTraverser()
		n := g.N()
		got := bitset.New(n)
		want := bitset.New(n)
		for trial := 0; trial < 8; trial++ {
			avoid := randSubset(r, n, 5)
			var outs []int
			for k := 1 + r.Intn(3); k > 0; k-- {
				outs = append(outs, r.Intn(n))
			}
			tr.CutNodesInto(got, outs, avoid)
			g.CutNodesInto(want, outs, avoid)
			if !got.Equal(want) {
				t.Logf("seed=%d outs=%v got %v want %v", seed, outs, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTraverserInputsOutputsMatchScalar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randTraverseGraph(r, traverseSize(r))
		tr := g.NewTraverser()
		n := g.N()
		got := bitset.New(n)
		want := bitset.New(n)
		for trial := 0; trial < 8; trial++ {
			S := randSubset(r, n, 3)
			tr.InputsInto(got, S)
			g.InputsInto(want, S)
			if !got.Equal(want) {
				t.Logf("seed=%d inputs of %v: got %v want %v", seed, S, got, want)
				return false
			}
			tr.OutputsInto(got, S)
			g.OutputsInto(want, S)
			if !got.Equal(want) {
				t.Logf("seed=%d outputs of %v: got %v want %v", seed, S, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRowIntersectAndEntries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randTraverseGraph(r, traverseSize(r))
		n := g.N()
		s := randSubset(r, n, 3)
		for v := 0; v < n; v++ {
			wantP, wantS := false, false
			for _, p := range g.Preds(v) {
				wantP = wantP || s.Has(p)
			}
			for _, w := range g.Succs(v) {
				wantS = wantS || s.Has(w)
			}
			if g.PredsIntersect(v, s) != wantP || g.SuccsIntersect(v, s) != wantS {
				return false
			}
		}
		// Entries must be exactly Iext ∪ user-forbidden, and EntrySet must
		// agree with the list.
		want := bitset.New(n)
		for v := 0; v < n; v++ {
			if g.IsRoot(v) || g.IsUserForbidden(v) {
				want.Add(v)
			}
		}
		if !g.EntrySet().Equal(want) {
			return false
		}
		es := g.Entries()
		if len(es) != want.Count() {
			return false
		}
		for _, v := range es {
			if !want.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTraverserSeedsOutsideAllowedKept pins the low-level closure contract
// mandatoryInto relies on: pre-seeded vertices survive even when the
// allowed set excludes them, while expansion stays inside it.
func TestTraverserSeedsOutsideAllowedKept(t *testing.T) {
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpNot, "b", a)
	c := g.MustAddNode(OpNeg, "c", b)
	g.MustFreeze()
	tr := g.NewTraverser()
	dst := bitset.New(g.N())
	dst.Add(a)
	allowed := bitset.FromMembers(g.N(), b, c)
	tr.ForwardClosure(dst, allowed)
	for _, v := range []int{a, b, c} {
		if !dst.Has(v) {
			t.Fatalf("closure missing %d: %v", v, dst)
		}
	}
	// With b disallowed the closure cannot get past it.
	dst.Clear()
	dst.Add(a)
	allowed = bitset.FromMembers(g.N(), c)
	tr.ForwardClosure(dst, allowed)
	if dst.Has(b) || dst.Has(c) {
		t.Fatalf("closure crossed a disallowed vertex: %v", dst)
	}
}

func TestTraverserZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randTraverseGraph(r, 200)
	tr := g.NewTraverser()
	n := g.N()
	dst := bitset.New(n)
	avoid := randSubset(r, n, 6)
	seeds := []int{n - 1, n / 2}
	allocs := testing.AllocsPerRun(50, func() {
		tr.ReachBackwardAvoiding(dst, seeds, avoid, nil)
		tr.ReachForwardAvoiding(dst, seeds, avoid, nil)
		tr.CutNodesInto(dst, seeds, avoid)
		tr.InputsInto(dst, avoid)
		tr.OutputsInto(dst, avoid)
	})
	if allocs != 0 {
		t.Fatalf("traversal kernels allocated %.1f times per run, want 0", allocs)
	}
}
