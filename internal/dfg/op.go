package dfg

// Op identifies the operation computed by a data-flow graph node. The set of
// operations mirrors what a compiler front end for an embedded RISC target
// emits inside a basic block: integer arithmetic, logic, shifts, comparisons,
// selects and memory accesses. Memory operations are the canonical
// user-forbidden nodes of the paper (§3): a custom functional unit without a
// memory port cannot execute them, though they may still feed a cut as
// inputs.
type Op uint8

// Operation kinds.
const (
	OpInvalid Op = iota
	OpVar        // live-in variable (basic-block input, a root of the DFG)
	OpConst      // literal constant
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpShr
	OpSar // arithmetic shift right
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpSelect // ternary select c ? a : b
	OpMin
	OpMax
	OpAbs
	OpLoad  // memory read; typically forbidden
	OpStore // memory write; typically forbidden
	OpCall  // opaque call; always treated as forbidden by convention

	// OpCustom is a custom instruction created by collapsing a cut
	// (CollapseCut); its const payload records the instruction's latency in
	// cycles. Custom nodes are implicitly forbidden: an already-selected
	// instruction does not join further cuts.
	OpCustom
	// OpExtract selects one result of a multi-output OpCustom; its const
	// payload is the result index.
	OpExtract
	numOps
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpVar:     "var",
	OpConst:   "const",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpRem:     "rem",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpNot:     "not",
	OpNeg:     "neg",
	OpShl:     "shl",
	OpShr:     "shr",
	OpSar:     "sar",
	OpCmpEQ:   "cmpeq",
	OpCmpNE:   "cmpne",
	OpCmpLT:   "cmplt",
	OpCmpLE:   "cmple",
	OpSelect:  "select",
	OpMin:     "min",
	OpMax:     "max",
	OpAbs:     "abs",
	OpLoad:    "load",
	OpStore:   "store",
	OpCall:    "call",
	OpCustom:  "custom",
	OpExtract: "extract",
}

// String returns the lower-case mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether o is a known operation kind.
func (o Op) Valid() bool { return o > OpInvalid && o < numOps }

// IsMemory reports whether the operation accesses memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// Arity returns the expected number of operands, or -1 if variable.
func (o Op) Arity() int {
	switch o {
	case OpVar, OpConst:
		return 0
	case OpNot, OpNeg, OpAbs, OpLoad, OpExtract:
		return 1
	case OpSelect:
		return 3
	case OpCall, OpCustom:
		return -1
	default:
		return 2
	}
}

// OpFromName returns the Op with the given mnemonic, or OpInvalid.
func OpFromName(name string) Op {
	for i, n := range opNames {
		if n == name && Op(i).Valid() {
			return Op(i)
		}
	}
	return OpInvalid
}
