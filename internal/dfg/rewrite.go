package dfg

import (
	"fmt"
	"sort"

	"polyise/internal/bitset"
)

// This file implements the graph rewrites behind the iterative ISE flow of
// the paper's compiler toolchain [8]: extracting a cut as a standalone
// datapath graph (for RTL generation) and collapsing a cut into a single
// custom-instruction node so that identification can be repeated on the
// remainder of the block.

// ExtractCut builds a standalone frozen graph containing only the cut's
// computation: one OpVar per input (named after the original node when it
// has a name), the cut's interior operations, and the cut's outputs marked
// live-out. The returned mapping translates original node ids to extracted
// ids. Constants among the inputs stay constants.
func (g *Graph) ExtractCut(S *bitset.Set) (*Graph, map[int]int, error) {
	if !g.frozen {
		return nil, nil, ErrNotFrozen
	}
	if S.Empty() {
		return nil, nil, fmt.Errorf("dfg: ExtractCut of empty cut")
	}
	out := New()
	mapping := make(map[int]int)
	for _, in := range g.Inputs(S) {
		name := g.names[in]
		if name == "" {
			name = fmt.Sprintf("in%d", in)
		}
		var id int
		if g.ops[in] == OpConst {
			id = out.MustAddNode(OpConst, name)
			if err := out.SetConst(id, g.value[in]); err != nil {
				return nil, nil, err
			}
		} else {
			id = out.MustAddNode(OpVar, name)
		}
		mapping[in] = id
	}
	for _, v := range g.Topo() {
		if !S.Has(v) {
			continue
		}
		preds := make([]int, len(g.preds[v]))
		for i, p := range g.preds[v] {
			m, ok := mapping[p]
			if !ok {
				return nil, nil, fmt.Errorf("dfg: cut not convex-closed at node %d (pred %d)", v, p)
			}
			preds[i] = m
		}
		id, err := out.AddNode(g.ops[v], g.names[v], preds...)
		if err != nil {
			return nil, nil, err
		}
		if g.ops[v] == OpConst {
			if err := out.SetConst(id, g.value[v]); err != nil {
				return nil, nil, err
			}
		}
		mapping[v] = id
	}
	for _, o := range g.Outputs(S) {
		if err := out.MarkLiveOut(mapping[o]); err != nil {
			return nil, nil, err
		}
	}
	if err := out.Freeze(); err != nil {
		return nil, nil, err
	}
	return out, mapping, nil
}

// CollapseCut rebuilds the graph with the cut replaced by one OpCustom node
// whose const payload is latencyCycles. For a single-output cut the custom
// node directly replaces the output; for k outputs the custom node feeds k
// OpExtract selectors (payload = result index) and consumers are rewired to
// those. The returned mapping translates surviving original ids to new ids.
//
// The rewrite preserves the relative order of the graph's external inputs:
// collapsed.Roots()[i] is mapping[g.Roots()[i]] for every i. Positional
// environments (interp.Env.RootValues) depend on this contract to run the
// original and the collapsed block on the same inputs.
//
// Custom and extract nodes are implicitly forbidden, so repeated
// identification never re-absorbs an already-selected instruction.
func (g *Graph) CollapseCut(S *bitset.Set, name string, latencyCycles int) (*Graph, map[int]int, error) {
	if !g.frozen {
		return nil, nil, ErrNotFrozen
	}
	if S.Empty() {
		return nil, nil, fmt.Errorf("dfg: CollapseCut of empty cut")
	}
	if !g.IsConvex(S) {
		return nil, nil, fmt.Errorf("dfg: CollapseCut of non-convex set")
	}
	inputs := g.Inputs(S)
	outputs := g.Outputs(S)

	sort.Ints(inputs) // the documented operand order of the custom node

	out := New()
	mapping := make(map[int]int)
	// replaced[o] for outputs of S: the node consumers read instead.
	replaced := make(map[int]int)

	// Collapsing creates new dependences (every consumer of an output now
	// depends on every input), so plain topological emission of survivors
	// can deadlock on interleavings. Convexity guarantees the rewritten
	// dependence relation is still acyclic, so demand-driven recursive
	// emission terminates.
	var emitNode func(v int) (int, error)
	customEmitted := false
	emitCustom := func() error {
		if customEmitted {
			return nil
		}
		customEmitted = true
		preds := make([]int, len(inputs))
		for i, in := range inputs {
			id, err := emitNode(in)
			if err != nil {
				return err
			}
			preds[i] = id
		}
		custom, err := out.AddNode(OpCustom, name, preds...)
		if err != nil {
			return err
		}
		if err := out.SetConst(custom, int64(latencyCycles)); err != nil {
			return err
		}
		if len(outputs) == 1 {
			replaced[outputs[0]] = custom
			if g.oext.Has(outputs[0]) {
				return out.MarkLiveOut(custom)
			}
			return nil
		}
		for idx, o := range outputs {
			ex, err := out.AddNode(OpExtract, fmt.Sprintf("%s.r%d", name, idx), custom)
			if err != nil {
				return err
			}
			if err := out.SetConst(ex, int64(idx)); err != nil {
				return err
			}
			replaced[o] = ex
			if g.oext.Has(o) {
				if err := out.MarkLiveOut(ex); err != nil {
					return err
				}
			}
		}
		return nil
	}
	emitNode = func(v int) (int, error) {
		if id, ok := mapping[v]; ok {
			return id, nil
		}
		if S.Has(v) {
			return 0, fmt.Errorf("dfg: emitNode called on cut member %d", v)
		}
		preds := make([]int, len(g.preds[v]))
		for i, p := range g.preds[v] {
			if S.Has(p) {
				if err := emitCustom(); err != nil {
					return 0, err
				}
				preds[i] = replaced[p]
				continue
			}
			id, err := emitNode(p)
			if err != nil {
				return 0, err
			}
			preds[i] = id
		}
		id, err := out.AddNode(g.ops[v], g.names[v], preds...)
		if err != nil {
			return 0, err
		}
		if g.ops[v] == OpConst || g.ops[v] == OpCustom || g.ops[v] == OpExtract {
			if err := out.SetConst(id, g.value[v]); err != nil {
				return 0, err
			}
		}
		if g.forb.Has(v) && g.ops[v] != OpCall && g.ops[v] != OpCustom && g.ops[v] != OpExtract {
			if err := out.MarkForbidden(id); err != nil {
				return 0, err
			}
		}
		if g.oext.Has(v) && len(g.succs[v]) > 0 {
			if err := out.MarkLiveOut(id); err != nil {
				return 0, err
			}
		}
		mapping[v] = id
		return id, nil
	}

	// Emit every root first, in root order. Without this, demand-driven
	// emission reorders roots: a cut input that is a root with an id above
	// the first rewired consumer would be pulled forward by emitCustom,
	// shifting every root in between and silently breaking positional
	// RootValues environments (the semantic oracle caught exactly this on a
	// disconnected two-output cut). Roots have no predecessors, so emitting
	// them early cannot violate the topological id order.
	for _, r := range g.Roots() {
		if S.Has(r) {
			continue // unreachable: external inputs are forbidden in cuts
		}
		if _, err := emitNode(r); err != nil {
			return nil, nil, err
		}
	}
	for _, v := range g.Topo() {
		if S.Has(v) {
			continue
		}
		if _, err := emitNode(v); err != nil {
			return nil, nil, err
		}
	}
	if err := emitCustom(); err != nil { // cuts whose outputs feed nothing
		return nil, nil, err
	}
	if err := out.Freeze(); err != nil {
		return nil, nil, err
	}
	// Sanity: the rewrite must preserve node accounting.
	want := g.N() - S.Count() + 1
	if len(outputs) > 1 {
		want += len(outputs)
	}
	if out.N() != want {
		return nil, nil, fmt.Errorf("dfg: collapse accounting: got %d nodes, want %d", out.N(), want)
	}
	return out, mapping, nil
}
