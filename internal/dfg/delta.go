package dfg

import (
	"math/bits"

	"polyise/internal/bitset"
	"polyise/internal/faultinject"
)

// This file implements the delta-maintenance kernels of the incremental
// search-state engine. The enumeration of package enum maintains the cut
//
//	S = ⋃_j B(I, o_j)   (theorem 3: everything reaching a chosen output
//	                     along a path avoiding the chosen inputs)
//
// across search-tree pushes, and since PR 5 also the per-output analysis
// frontiers (the reaches-o set and the source→o on-path set) across seed
// pushes. Recomputing any of them from scratch at every node of the search
// tree costs a full frontier traversal per push; the kernels here update
// them in place (or derive the child from the parent) and report the exact
// delta, so a push costs work proportional to the region that actually
// changes and the undo is a single word-parallel set operation on the
// journaled delta:
//
//   - GrowCut handles an output push (monotone: S only gains vertices). The
//     per-output backward cone B(∅, o) is memoized at Freeze time — it is
//     exactly reachTo(o) — so when no chosen input lies inside the cone the
//     push is one OR/clip over the cone row. Otherwise the growth is
//     *clipped*: only cone vertices upstream of a blocking input can be
//     severed, so the survival recomputation is confined to that uncertain
//     region (the rest of the cone joins unconditionally), with a fallback
//     to the plain backward traversal when the uncertain region is most of
//     the new cone.
//
//   - ShrinkCut handles an input push (non-monotone: the new input w and
//     every vertex whose last surviving path ran through w leave S). Only
//     ancestors of w can leave, so the recomputation is confined to
//     region = reachTo(w) ∩ S: survivors are seeded word-parallel (chosen
//     outputs in the region, plus any region vertex with an edge into the
//     untouched part of S) and closed backward inside the region. When the
//     region is a large fraction of S the kernel falls back to the
//     from-scratch rebuild (CutNodesInto), which stays the reference
//     semantics — the property tests pin both paths to it.
//
//   - ShrinkReachInto derives a child analysis frontier from its parent for
//     one newly blocked vertex, with the same confined-region discipline as
//     ShrinkCut but writing into a separate per-depth buffer (the search
//     keeps every ancestor level's frontier alive, so no undo is needed).
//     The source→o on-path set needs no kernel of its own: package enum
//     reads it off the shrunk frontier in the same ascending pass that
//     finds the reduced-graph dominators (see analyzePaths there).
//
// The grow/shrink kernels return their delta disjoint from (resp. contained
// in) S so the caller's undo journal is exact: undo a GrowCut with
// S.Subtract(delta) and a ShrinkCut with S.Union(removed).

// shrinkFallbackNum/Den control when ShrinkCut and ShrinkReachInto abandon
// the incremental removal for the from-scratch recomputation: the candidate
// region (ancestors of the newly blocked vertex inside the maintained set)
// must stay under num/den of the set. The incremental path costs ~three
// word-parallel passes over the region against one backward traversal of
// the surviving set, so beyond half the rebuild wins. Variables rather than
// constants so the property tests can force each path deterministically.
var shrinkFallbackNum, shrinkFallbackDen = 1, 2

// growFallbackNum/Den control when GrowCut abandons the clipped growth for
// the plain backward traversal: the uncertain region (cone vertices
// upstream of a blocking input) must stay under num/den of the cone's new
// vertices. The clipped path pays a per-member seed scan plus a survival
// closure over the uncertain region against the plain traversal's one
// closure over the whole delta, so it only wins when the uncertain region
// is a small fraction.
var growFallbackNum, growFallbackDen = 1, 3

// GrowCut grows the incrementally maintained cut S for a newly chosen
// output o: S ← S ∪ {o} ∪ B(I, o), with I given as the inputs bitset. The
// vertices actually added are recorded in delta (disjoint from the old S),
// so the caller can undo the push exactly with S.Subtract(delta).
//
// Preconditions: o ∉ S and o ∉ inputs (the enumeration's admissibility
// rules guarantee both). S must be the exactly maintained cut of the
// enclosing search (the S-stopping argument below relies on it).
func (t *Traverser) GrowCut(S, delta *bitset.Set, o int, inputs *bitset.Set) {
	g := t.g
	cone := g.reachTo[o] // B(∅, o) \ {o}, memoized by Freeze
	if !inputs.Intersects(cone) {
		// No input can sever any ancestor of o from o, so B(I, o) is the
		// whole cone: one OR, clipped against the vertices already in S.
		delta.CopyAndNot(cone, S)
		delta.Add(o)
		S.Union(delta)
		return
	}

	// Clipped cone growth. Every vertex on a path from a cone member to o
	// is itself a cone member, so only inputs *inside* the cone can block
	// anything, and only their ancestors can be blocked: a candidate that
	// reaches no in-cone input has every maximal path to o input-free and
	// joins unconditionally. That splits the cone's new vertices into a
	// certain part (joined with pure word operations) and an uncertain
	// region — cn ∩ ⋃ reachTo(i) over the in-cone inputs — whose survival
	// is recomputed locally: an uncertain vertex survives exactly when it
	// has an edge into the certain part, o itself, or another survivor
	// (survival closes backward inside the region). Vertices already in S
	// are skipped throughout: a new vertex whose o-path runs through an
	// S-member would already be in S (its members reach an earlier output
	// avoiding I through that very path), so stopping at S loses nothing.
	cn := t.region
	cn.CopyAndNot(cone, S) // candidate new vertices
	unc := t.rest
	unc.Clear()
	inputs.ForEach(func(i int) bool {
		if cone.Has(i) {
			unc.UnionWords(g.reachTo[i].Words())
			unc.Add(i)
		}
		return true
	})
	unc.Intersect(cn)

	if faultinject.ForcedFallback() || unc.Count()*growFallbackDen > cn.Count()*growFallbackNum {
		// Mostly-blocked cone: the confined recomputation would touch nearly
		// every candidate anyway. Traverse backward from o through the
		// unblocked part of the cone, skipping vertices already in S.
		allowed := t.allowed
		allowed.CopyAndNot(cone, inputs)
		allowed.Subtract(S)
		delta.Clear()
		delta.Add(o)
		t.closure(delta, g.predBits, allowed)
		S.Union(delta)
		return
	}

	delta.CopyAndNot(cn, unc) // the certain part joins unconditionally
	delta.Add(o)
	unc.Subtract(inputs) // inputs themselves can never join the cut
	surv := t.surv
	surv.Clear()
	dw := delta.Words()
	stride := g.stride
	for wi, word := range unc.Words() {
		for word != 0 {
			v := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			row := g.succBits[v*stride : (v+1)*stride]
			for i, r := range row {
				if r&dw[i] != 0 {
					surv.Add(v)
					break
				}
			}
		}
	}
	t.closure(surv, g.predBits, unc)
	delta.Union(surv)
	S.Union(delta)
}

// ShrinkCut shrinks the incrementally maintained cut S for a newly chosen
// input w: S ← S \ {vertices whose every surviving path to a chosen output
// ran through w}, w itself included. The removed vertices are recorded in
// removed (a subset of the old S), so the caller can undo the push exactly
// with S.Union(removed).
//
// Preconditions: w ∈ S, and inputs already contains w (push the input
// first, then shrink). outs lists the chosen outputs; outSet is the same
// set in bitset form. Chosen outputs are never removed (they cannot be
// inputs, so each trivially reaches itself).
func (t *Traverser) ShrinkCut(S, removed *bitset.Set, w int, outs []int, outSet, inputs *bitset.Set) {
	g := t.g
	region := t.region
	region.CopyIntersect(g.reachTo[w], S) // removal candidates besides w itself

	if faultinject.ForcedFallback() || region.Count()*shrinkFallbackDen > S.Count()*shrinkFallbackNum {
		// Non-monotone worst case: most of S is upstream of w, so the
		// confined recomputation would touch nearly everything. Rebuild
		// from scratch (the reference semantics) and diff for the journal.
		newS := t.scratchS
		t.CutNodesInto(newS, outs, inputs)
		removed.CopyAndNot(S, newS)
		S.Copy(newS)
		return
	}

	// Vertices of S outside the region survive: they do not reach w, so
	// their surviving paths cannot contain it. They seed survival into the
	// region: a region vertex with an edge into rest = S \ region \ {w}
	// keeps an avoiding path, as does a chosen output inside the region.
	rest := t.rest
	rest.CopyAndNot(S, region)
	rest.Remove(w)
	surv := t.surv
	surv.CopyIntersect(outSet, region)
	rw := rest.Words()
	stride := g.stride
	for wi, word := range region.Words() {
		for word != 0 {
			v := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			row := g.succBits[v*stride : (v+1)*stride]
			for i, r := range row {
				if r&rw[i] != 0 {
					surv.Add(v)
					break
				}
			}
		}
	}
	// Survival propagates to predecessors inside the region (an edge into a
	// survivor extends its avoiding path), and never through w: w is not a
	// region member, so the closure cannot resurrect it.
	t.closure(surv, g.predBits, region)
	removed.CopyAndNot(region, surv)
	removed.Add(w)
	S.Subtract(removed)
}

// ShrinkReachInto derives the child analysis frontier of output o for one
// newly blocked vertex w: dst ← src \ {w} \ {vertices whose every path to o
// inside src ran through w}, where src is the parent frontier — every
// vertex reaching o along a path avoiding the previously chosen inputs.
// With inputs = the child's input set (w included), dst is exactly the
// word-parallel backward closure ReachBackwardAvoiding([o], inputs, src),
// but computed from the parent in work proportional to w's ancestor region
// instead of the whole frontier; past the shrinkFallback threshold it
// falls back to that very closure. dst and src must be distinct sets.
//
// Preconditions: w ∈ src, o ∈ src, o ≠ w, inputs contains w.
func (t *Traverser) ShrinkReachInto(dst, src *bitset.Set, o, w int, inputs *bitset.Set) {
	g := t.g
	region := t.region
	region.CopyIntersect(g.reachTo[w], src) // removal candidates besides w itself

	if faultinject.ForcedFallback() || region.Count()*shrinkFallbackDen > src.Count()*shrinkFallbackNum {
		t.seed1[0] = o
		t.ReachBackwardAvoiding(dst, t.seed1[:], inputs, src)
		return
	}

	// Mirror of ShrinkCut with a single output: src members outside w's
	// ancestor region keep their o-paths (a path through w implies reaching
	// w); o itself is such a member (a DAG has no w→o→w paths), so it seeds
	// survival into the region together with every region vertex keeping an
	// edge into the untouched part.
	rest := t.rest
	rest.CopyAndNot(src, region)
	rest.Remove(w)
	surv := t.surv
	surv.Clear()
	rw := rest.Words()
	stride := g.stride
	for wi, word := range region.Words() {
		for word != 0 {
			v := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			row := g.succBits[v*stride : (v+1)*stride]
			for i, r := range row {
				if r&rw[i] != 0 {
					surv.Add(v)
					break
				}
			}
		}
	}
	t.closure(surv, g.predBits, region)
	dst.Copy(rest)
	dst.Union(surv)
}
