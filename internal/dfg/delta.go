package dfg

import (
	"math/bits"

	"polyise/internal/bitset"
)

// This file implements the delta-maintenance kernels of the incremental
// search-state engine. The enumeration of package enum maintains the cut
//
//	S = ⋃_j B(I, o_j)   (theorem 3: everything reaching a chosen output
//	                     along a path avoiding the chosen inputs)
//
// across search-tree pushes. Recomputing S from scratch at every node of
// the search tree costs a full backward traversal per push; the kernels
// here update S in place and report the exact delta, so a push costs work
// proportional to the region that actually changes and the undo is a single
// word-parallel set operation on the journaled delta:
//
//   - GrowCut handles an output push (monotone: S only gains vertices). The
//     per-output backward cone B(∅, o) is memoized at Freeze time — it is
//     exactly reachTo(o) — so when no chosen input lies inside the cone the
//     push is one OR/clip over the cone row; otherwise a backward frontier
//     traversal confined to the cone's unblocked, not-yet-in-S region
//     derives exactly the new vertices.
//
//   - ShrinkCut handles an input push (non-monotone: the new input w and
//     every vertex whose last surviving path ran through w leave S). Only
//     ancestors of w can leave, so the recomputation is confined to
//     region = reachTo(w) ∩ S: survivors are seeded word-parallel (chosen
//     outputs in the region, plus any region vertex with an edge into the
//     untouched part of S) and closed backward inside the region. When the
//     region is a large fraction of S the kernel falls back to the
//     from-scratch rebuild (CutNodesInto), which stays the reference
//     semantics — the property tests pin both paths to it.
//
// Both kernels return their delta disjoint from (resp. contained in) S so
// the caller's undo journal is exact: undo a GrowCut with S.Subtract(delta)
// and a ShrinkCut with S.Union(removed).

// shrinkFallbackNum/Den control when ShrinkCut abandons the incremental
// removal for the from-scratch rebuild: the candidate region (ancestors of
// the new input inside S) must stay under num/den of |S|. The incremental
// path costs ~three word-parallel passes over the region against one
// backward traversal of the surviving cut, so beyond half of S the rebuild
// wins. Variables rather than constants so the property tests can force
// each path deterministically.
var shrinkFallbackNum, shrinkFallbackDen = 1, 2

// GrowCut grows the incrementally maintained cut S for a newly chosen
// output o: S ← S ∪ {o} ∪ B(I, o), with I given as the inputs bitset. The
// vertices actually added are recorded in delta (disjoint from the old S),
// so the caller can undo the push exactly with S.Subtract(delta).
//
// Preconditions: o ∉ S and o ∉ inputs (the enumeration's admissibility
// rules guarantee both).
func (t *Traverser) GrowCut(S, delta *bitset.Set, o int, inputs *bitset.Set) {
	cone := t.g.reachTo[o] // B(∅, o) \ {o}, memoized by Freeze
	if !inputs.Intersects(cone) {
		// No input can sever any ancestor of o from o, so B(I, o) is the
		// whole cone: one OR, clipped against the vertices already in S.
		delta.CopyAndNot(cone, S)
		delta.Add(o)
		S.Union(delta)
		return
	}
	// Some ancestors of o are blocked. Traverse backward from o through the
	// unblocked part of the cone, skipping vertices already in S: a
	// predecessor chain that meets S stays inside S (its members reach an
	// earlier output avoiding I through the very same vertex), so stopping
	// at S loses nothing and confines the work to the genuinely new region.
	allowed := t.allowed
	allowed.CopyAndNot(cone, inputs)
	allowed.Subtract(S)
	delta.Clear()
	delta.Add(o)
	t.closure(delta, t.g.predBits, allowed)
	S.Union(delta)
}

// ShrinkCut shrinks the incrementally maintained cut S for a newly chosen
// input w: S ← S \ {vertices whose every surviving path to a chosen output
// ran through w}, w itself included. The removed vertices are recorded in
// removed (a subset of the old S), so the caller can undo the push exactly
// with S.Union(removed).
//
// Preconditions: w ∈ S, and inputs already contains w (push the input
// first, then shrink). outs lists the chosen outputs; outSet is the same
// set in bitset form. Chosen outputs are never removed (they cannot be
// inputs, so each trivially reaches itself).
func (t *Traverser) ShrinkCut(S, removed *bitset.Set, w int, outs []int, outSet, inputs *bitset.Set) {
	g := t.g
	region := t.region
	region.CopyIntersect(g.reachTo[w], S) // removal candidates besides w itself

	if region.Count()*shrinkFallbackDen > S.Count()*shrinkFallbackNum {
		// Non-monotone worst case: most of S is upstream of w, so the
		// confined recomputation would touch nearly everything. Rebuild
		// from scratch (the reference semantics) and diff for the journal.
		newS := t.scratchS
		t.CutNodesInto(newS, outs, inputs)
		removed.CopyAndNot(S, newS)
		S.Copy(newS)
		return
	}

	// Vertices of S outside the region survive: they do not reach w, so
	// their surviving paths cannot contain it. They seed survival into the
	// region: a region vertex with an edge into rest = S \ region \ {w}
	// keeps an avoiding path, as does a chosen output inside the region.
	rest := t.rest
	rest.CopyAndNot(S, region)
	rest.Remove(w)
	surv := t.surv
	surv.CopyIntersect(outSet, region)
	rw := rest.Words()
	stride := g.stride
	for wi, word := range region.Words() {
		for word != 0 {
			v := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			row := g.succBits[v*stride : (v+1)*stride]
			for i, r := range row {
				if r&rw[i] != 0 {
					surv.Add(v)
					break
				}
			}
		}
	}
	// Survival propagates to predecessors inside the region (an edge into a
	// survivor extends its avoiding path), and never through w: w is not a
	// region member, so the closure cannot resurrect it.
	t.closure(surv, g.predBits, region)
	removed.CopyAndNot(region, surv)
	removed.Add(w)
	S.Subtract(removed)
}
