package dfg

// The augmented graph of §3: the user DFG plus a virtual source that
// precedes every Iext vertex and every user-forbidden vertex, and a virtual
// sink that succeeds every Oext vertex. Dominators are computed on this
// rooted graph; postdominators on its reverse. Connecting forbidden vertices
// to the source encodes that any path through a forbidden node must be cut
// at that node or later, since the node itself can never join a cut.

// Aug is the cached augmented adjacency of a frozen Graph.
type Aug struct {
	N      int // total vertices: g.N() + 2
	Source int // g.N()
	Sink   int // g.N() + 1
	Succs  [][]int32
	Preds  [][]int32
}

// Augmented returns the augmented rooted graph. The result is computed once
// per graph, cached, and must not be modified. The graph must be frozen.
func (g *Graph) Augmented() *Aug {
	if !g.frozen {
		panic(ErrNotFrozen)
	}
	g.augOnce.Do(func() {
		n := g.N()
		a := &Aug{N: n + 2, Source: n, Sink: n + 1}
		a.Succs = make([][]int32, n+2)
		a.Preds = make([][]int32, n+2)
		for v := 0; v < n; v++ {
			sv := make([]int32, 0, len(g.succs[v])+1)
			for _, s := range g.succs[v] {
				sv = append(sv, int32(s))
			}
			if g.oext.Has(v) {
				sv = append(sv, int32(a.Sink))
			}
			a.Succs[v] = sv
			pv := make([]int32, 0, len(g.preds[v])+1)
			for _, p := range g.preds[v] {
				pv = append(pv, int32(p))
			}
			if g.iext.Has(v) || g.forb.Has(v) {
				pv = append(pv, int32(a.Source))
			}
			a.Preds[v] = pv
		}
		for v := 0; v < n; v++ {
			if g.iext.Has(v) || g.forb.Has(v) {
				a.Succs[a.Source] = append(a.Succs[a.Source], int32(v))
			}
			if g.oext.Has(v) {
				a.Preds[a.Sink] = append(a.Preds[a.Sink], int32(v))
			}
		}
		g.aug = a
	})
	return g.aug
}
