package dfg

// Property tests for the delta-maintenance kernels of the incremental
// search-state engine: across randomized push/pop sequences of outputs and
// inputs, the cut S maintained by GrowCut/ShrinkCut plus their undo
// journals must stay identical to the from-scratch reference CutNodesInto
// (package enum's rebuildS) after every single operation. Graph sizes cross
// every closure stride class, and the ShrinkCut fallback threshold is
// swept so both the confined incremental removal and the from-scratch
// non-monotone fallback are exercised on the same sequences.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

// deltaOp is one recorded push, with its journaled delta for undoing.
type deltaOp struct {
	isOutput bool
	v        int
	delta    *bitset.Set
}

// checkAgainstRebuild compares the maintained S with the from-scratch
// reference for the current outs/inputs.
func checkAgainstRebuild(t *testing.T, tr *Traverser, S *bitset.Set, outs []int, inputs *bitset.Set, step string) bool {
	t.Helper()
	ref := bitset.New(S.Cap())
	tr.CutNodesInto(ref, outs, inputs)
	if !S.Equal(ref) {
		t.Logf("%s: maintained S %v != rebuilt %v (outs=%v inputs=%v)",
			step, S.Members(), ref.Members(), outs, inputs.Members())
		return false
	}
	return true
}

// runDeltaSequence drives one randomized push/pop sequence on g, verifying
// S against the reference after every operation, and returns false on the
// first mismatch.
func runDeltaSequence(t *testing.T, r *rand.Rand, g *Graph, steps int) bool {
	t.Helper()
	n := g.N()
	tr := g.NewTraverser()
	S := bitset.New(n)
	inputs := bitset.New(n)
	outSet := bitset.New(n)
	var outs []int
	var stack []deltaOp

	for step := 0; step < steps; step++ {
		op := r.Intn(3)
		switch {
		case op == 0 && len(stack) > 0: // pop
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.isOutput {
				S.Subtract(top.delta)
				outs = outs[:len(outs)-1]
				outSet.Remove(top.v)
			} else {
				S.Union(top.delta)
				inputs.Remove(top.v)
			}
		case op == 1: // push output: any vertex outside S and I
			o := r.Intn(n)
			if S.Has(o) || inputs.Has(o) || outSet.Has(o) {
				continue
			}
			delta := bitset.New(n)
			tr.GrowCut(S, delta, o, inputs)
			outs = append(outs, o)
			outSet.Add(o)
			stack = append(stack, deltaOp{isOutput: true, v: o, delta: delta})
		default: // push input: any member of S that is not a chosen output
			if S.Empty() {
				continue
			}
			w := -1
			for probe := 0; probe < 8; probe++ {
				c := r.Intn(n)
				if S.Has(c) && !outSet.Has(c) {
					w = c
					break
				}
			}
			if w < 0 {
				continue
			}
			removed := bitset.New(n)
			inputs.Add(w)
			tr.ShrinkCut(S, removed, w, outs, outSet, inputs)
			stack = append(stack, deltaOp{isOutput: false, v: w, delta: removed})
		}
		if !checkAgainstRebuild(t, tr, S, outs, inputs, "after op") {
			return false
		}
	}
	// Unwind everything: the journal must restore the empty cut exactly.
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.isOutput {
			S.Subtract(top.delta)
			outs = outs[:len(outs)-1]
			outSet.Remove(top.v)
		} else {
			S.Union(top.delta)
			inputs.Remove(top.v)
		}
		if !checkAgainstRebuild(t, tr, S, outs, inputs, "during unwind") {
			return false
		}
	}
	if !S.Empty() {
		t.Logf("S not empty after full unwind: %v", S.Members())
		return false
	}
	return true
}

// TestDeltaCutMatchesRebuild pins the delta-maintained cut to the
// from-scratch reference across random push/pop sequences, under both
// ShrinkCut policies: the confined incremental removal (fallback disabled)
// and the from-scratch fallback (forced), plus the production threshold.
func TestDeltaCutMatchesRebuild(t *testing.T) {
	savedNum, savedDen := shrinkFallbackNum, shrinkFallbackDen
	defer func() { shrinkFallbackNum, shrinkFallbackDen = savedNum, savedDen }()

	policies := []struct {
		name     string
		num, den int
	}{
		{"incremental-only", 1, 0}, // region*0 > |S|*1 never holds
		{"fallback-always", 0, 1},  // region*1 > 0 holds for any non-empty region
		{"production", savedNum, savedDen},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			shrinkFallbackNum, shrinkFallbackDen = pol.num, pol.den
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				g := randTraverseGraph(r, traverseSize(r)) // crosses stride 1–4 + generic
				return runDeltaSequence(t, r, g, 40)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGrowCutClipPolicies pins the clipped cone growth to the plain
// backward traversal: the same randomized sequences must produce identical
// cuts with the clip forced always-on (every blocked cone takes the
// certain/uncertain split) and always-off (every blocked cone traverses),
// mirroring the ShrinkCut policy sweep above.
func TestGrowCutClipPolicies(t *testing.T) {
	savedNum, savedDen := growFallbackNum, growFallbackDen
	defer func() { growFallbackNum, growFallbackDen = savedNum, savedDen }()

	policies := []struct {
		name     string
		num, den int
	}{
		{"clip-always", 1, 0},     // unc*0 > cn*1 never holds
		{"traverse-always", 0, 1}, // unc*1 > 0 holds for any blocked cone
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			growFallbackNum, growFallbackDen = pol.num, pol.den
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				g := randTraverseGraph(r, traverseSize(r))
				return runDeltaSequence(t, r, g, 40)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShrinkReachMatchesReference pins ShrinkReachInto — the delta
// derivation of a child analysis frontier — to the from-scratch confined
// backward closure it replaces, across random graphs, outputs and
// incrementally blocked vertices, under both fallback policies.
func TestShrinkReachMatchesReference(t *testing.T) {
	savedNum, savedDen := shrinkFallbackNum, shrinkFallbackDen
	defer func() { shrinkFallbackNum, shrinkFallbackDen = savedNum, savedDen }()

	run := func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			g := randTraverseGraph(r, traverseSize(r))
			n := g.N()
			tr := g.NewTraverser()
			inputs := bitset.New(n)
			parent := bitset.New(n)
			child := bitset.New(n)
			ref := bitset.New(n)
			o := r.Intn(n)
			// Parent frontier: everything reaching o (no inputs yet).
			tr.ReachBackwardAvoiding(parent, []int{o}, inputs, nil)
			// Block up to 4 frontier members one at a time, deriving each
			// child from its parent and checking against the reference.
			for round := 0; round < 4; round++ {
				w := -1
				for probe := 0; probe < 8; probe++ {
					c := r.Intn(n)
					if parent.Has(c) && c != o {
						w = c
						break
					}
				}
				if w < 0 {
					return true
				}
				inputs.Add(w)
				tr.ShrinkReachInto(child, parent, o, w, inputs)
				tr.ReachBackwardAvoiding(ref, []int{o}, inputs, parent)
				if !child.Equal(ref) {
					t.Logf("seed=%d o=%d w=%d: child %v != ref %v (parent %v)",
						seed, o, w, child.Members(), ref.Members(), parent.Members())
					return false
				}
				// The unconfined recomputation must agree too (the
				// confinement argument of analyzePaths).
				tr.ReachBackwardAvoiding(ref, []int{o}, inputs, nil)
				if !child.Equal(ref) {
					t.Logf("seed=%d o=%d w=%d: child %v != unconfined %v",
						seed, o, w, child.Members(), ref.Members())
					return false
				}
				parent.Copy(child)
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("production", run)
	shrinkFallbackNum, shrinkFallbackDen = 1, 0 // never fall back
	t.Run("incremental-only", run)
	shrinkFallbackNum, shrinkFallbackDen = 0, 1 // always fall back
	t.Run("fallback-always", run)
}

// TestGrowCutConeFastPath forces the memoized-cone OR fast path (no input
// inside the new output's ancestor cone) and the clipped-traversal slow
// path on the same graph, checking both against the reference.
func TestGrowCutConeFastPath(t *testing.T) {
	// Chain a→b→c→d plus side root e feeding c: cone(d) = {a,b,c,e}.
	g := New()
	a := g.MustAddNode(OpVar, "a")
	b := g.MustAddNode(OpAdd, "b", a)
	e := g.MustAddNode(OpVar, "e")
	c := g.MustAddNode(OpAdd, "c", b, e)
	d := g.MustAddNode(OpNot, "d", c)
	g.MustFreeze()

	tr := g.NewTraverser()
	n := g.N()

	// Fast path: no inputs at all.
	S := bitset.New(n)
	delta := bitset.New(n)
	inputs := bitset.New(n)
	tr.GrowCut(S, delta, d, inputs)
	want := bitset.FromMembers(n, a, b, e, c, d)
	if !S.Equal(want) || !delta.Equal(want) {
		t.Fatalf("fast path: S=%v delta=%v want %v", S.Members(), delta.Members(), want.Members())
	}

	// Slow path: input b sits inside cone(d), so only {c,d,e} join.
	S.Clear()
	delta.Clear()
	inputs.Add(b)
	tr.GrowCut(S, delta, d, inputs)
	want = bitset.FromMembers(n, e, c, d)
	if !S.Equal(want) || !delta.Equal(want) {
		t.Fatalf("slow path: S=%v delta=%v want %v", S.Members(), delta.Members(), want.Members())
	}
}
