package dfg

import "polyise/internal/bitset"

// This file implements the cut-level primitives of §3 and §4: computing
// I(S) and O(S), convexity, def. 4 connectedness, and the technical
// condition the paper adds to the problem statement (every input must have a
// "private" path to the cut that avoids all other inputs).
//
// These are the scalar reference implementations. The enumeration hot path
// runs on the word-parallel equivalents (traverse.go kernels and
// enum.Validator); property tests check those against the functions here
// on randomized graphs, so the scalar forms stay load-bearing as the
// executable specification.

// CutNodesInto computes into dst the vertex set of the cut identified by
// the chosen outputs and the input set `avoid`:
//
//	S = { u ∉ avoid : u reaches some chosen output along a path that
//	      avoids every vertex in avoid } ∪ outs
//
// This is the constructive form of theorems 2 and 3. (Note it is NOT the
// literal union of the B(V,w) sets of definition 6: a path from one input
// that crosses another input is cut at the second input, so only the
// avoid-free suffixes contribute. The distinction matters whenever one
// input lies on a path between another input and an output.) Implemented as
// one backward traversal from the outputs, blocked at avoid; O(E) total.
func (g *Graph) CutNodesInto(dst *bitset.Set, outs []int, avoid *bitset.Set) *bitset.Set {
	dst.Clear()
	stack := make([]int, 0, 64)
	for _, o := range outs {
		if avoid.Has(o) || dst.Has(o) {
			continue
		}
		dst.Add(o)
		stack = append(stack, o)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.preds[x] {
				if !avoid.Has(p) && !dst.Has(p) {
					dst.Add(p)
					stack = append(stack, p)
				}
			}
		}
	}
	return dst
}

// InputsInto computes I(S) (definition 1) into dst: the predecessors of
// edges entering S from the rest of the graph. Returns dst.
func (g *Graph) InputsInto(dst *bitset.Set, S *bitset.Set) *bitset.Set {
	dst.Clear()
	S.ForEach(func(v int) bool {
		for _, p := range g.preds[v] {
			if !S.Has(p) {
				dst.Add(p)
			}
		}
		return true
	})
	return dst
}

// Inputs returns I(S) in ascending order.
func (g *Graph) Inputs(S *bitset.Set) []int {
	return g.InputsInto(bitset.New(g.N()), S).Members()
}

// OutputsInto computes O(S) (definition 1) into dst: the members of S with
// at least one successor outside S. Members of Oext inside S are always
// outputs because their values are observed outside the block (they have an
// edge to the virtual sink). Returns dst.
func (g *Graph) OutputsInto(dst *bitset.Set, S *bitset.Set) *bitset.Set {
	dst.Clear()
	S.ForEach(func(v int) bool {
		if g.oext.Has(v) {
			dst.Add(v)
			return true
		}
		for _, s := range g.succs[v] {
			if !S.Has(s) {
				dst.Add(v)
				return true
			}
		}
		return true
	})
	return dst
}

// Outputs returns O(S) in ascending order.
func (g *Graph) Outputs(S *bitset.Set) []int {
	return g.OutputsInto(bitset.New(g.N()), S).Members()
}

// IsConvex reports whether S is a convex cut (definition 2): no path leaves
// S and re-enters it.
func (g *Graph) IsConvex(S *bitset.Set) bool {
	for v := 0; v < g.N(); v++ {
		if S.Has(v) {
			continue
		}
		if g.reachTo[v].Intersects(S) && g.reachFrom[v].Intersects(S) {
			return false
		}
	}
	return true
}

// IsConnectedCut reports whether the convex cut S is connected per
// definition 4: it has at most one output, or every pair of outputs shares
// a vertex that is an input to both.
//
// "Input to a vertex" follows the generalized-dominator sense established
// by theorem 1: input i is an input to output o when some root→o path
// passes through i and avoids every other input of S. Plain reachability
// would be too lax — an input whose only route to o runs through another
// input does not feed o.
func (g *Graph) IsConnectedCut(S *bitset.Set) bool {
	outs := g.Outputs(S)
	if len(outs) <= 1 {
		return true
	}
	ins := g.Inputs(S)
	inSet := bitset.FromMembers(g.N(), ins...)
	visited := bitset.New(g.N())
	// inputsTo[k] = bitmask over ins of the inputs feeding outs[k].
	inputsTo := make([]uint64, len(outs))
	if len(ins) > 64 {
		return false // cannot happen under any sane port constraint
	}
	for k, o := range outs {
		for bi, i := range ins {
			if g.inputFeeds(inSet, i, o, visited) {
				inputsTo[k] |= 1 << uint(bi)
			}
		}
	}
	for a := 0; a < len(outs); a++ {
		for b := a + 1; b < len(outs); b++ {
			if inputsTo[a]&inputsTo[b] == 0 {
				return false
			}
		}
	}
	return true
}

// inputFeeds reports whether some root→o path passes through input i and
// avoids every other member of inSet.
func (g *Graph) inputFeeds(inSet *bitset.Set, i, o int, visited *bitset.Set) bool {
	// Phase 1: the root must reach i while avoiding the other inputs.
	if !g.rootReachesAvoiding(i, inSet, visited) {
		return false
	}
	// Phase 2: i must reach o while avoiding the other inputs.
	visited.Clear()
	stack := []int{i}
	visited.Add(i)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[v] {
			if s == o {
				return true
			}
			if !visited.Has(s) && !inSet.Has(s) {
				visited.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return false
}

// rootReachesAvoiding reports whether the virtual root reaches w while
// avoiding every member of inSet other than w itself.
func (g *Graph) rootReachesAvoiding(w int, inSet *bitset.Set, visited *bitset.Set) bool {
	visited.Clear()
	stack := make([]int, 0, 64)
	push := func(v int) {
		if !visited.Has(v) && !(inSet.Has(v) && v != w) {
			visited.Add(v)
			stack = append(stack, v)
		}
	}
	for _, v := range g.entries {
		push(v)
	}
	for len(stack) > 0 && !visited.Has(w) {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[v] {
			push(s)
		}
	}
	return visited.Has(w)
}

// TechnicalConditionHolds implements the extra validity condition of §3:
// for each input w ∈ I(S) there must be a vertex v ∈ S such that at least
// one path from the (virtual) root to v contains w but no other input of S.
//
// The virtual root precedes every Iext vertex and every forbidden vertex, so
// the search starts from those. The check runs one forward traversal per
// input, each blocked at the remaining inputs.
func (g *Graph) TechnicalConditionHolds(S *bitset.Set) bool {
	ins := g.Inputs(S)
	if len(ins) <= 1 {
		return true
	}
	inSet := bitset.FromMembers(g.N(), ins...)
	visited := bitset.New(g.N())
	for _, w := range ins {
		if !g.privatePathExists(S, inSet, w, visited) {
			return false
		}
	}
	return true
}

// privatePathExists reports whether a path root→…→w→…→v (v ∈ S) exists that
// avoids every input other than w.
func (g *Graph) privatePathExists(S, inSet *bitset.Set, w int, visited *bitset.Set) bool {
	if !g.rootReachesAvoiding(w, inSet, visited) {
		return false
	}
	// From w, reach some v ∈ S avoiding the other inputs.
	visited.Clear()
	stack := []int{w}
	visited.Add(w)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if S.Has(v) {
			return true
		}
		for _, s := range g.succs[v] {
			if !visited.Has(s) && !inSet.Has(s) {
				visited.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return false
}
