// Package dfg implements the data-flow graph substrate of polyise.
//
// A Graph represents the data flow of one basic block as a directed acyclic
// graph (paper §3). Root vertices (no predecessors) are the external inputs
// Iext; the set Oext of externally visible outputs is a superset of the
// vertices with no successors. User code marks forbidden vertices F (for
// example memory operations) that may never belong to a cut, although they
// may still feed one as inputs.
//
// After Freeze the graph becomes immutable and exposes the precomputed
// structures the enumeration algorithm relies on (§5.4): a topological
// order, full reachability in both directions as bitset matrices, per-node
// forbidden-predecessor masks, and the augmented rooted graph obtained by
// adding a virtual source (predecessor of every root and every forbidden
// vertex) and a virtual sink (successor of every Oext vertex).
package dfg

import (
	"errors"
	"fmt"
	"sync"

	"polyise/internal/bitset"
)

// Errors returned by graph construction and freezing.
var (
	ErrFrozen      = errors.New("dfg: graph is frozen")
	ErrNotFrozen   = errors.New("dfg: graph must be frozen first")
	ErrBadPred     = errors.New("dfg: predecessor does not exist")
	ErrEmptyGraph  = errors.New("dfg: graph has no nodes")
	ErrSelfEdge    = errors.New("dfg: self edge")
	ErrInvalidNode = errors.New("dfg: invalid node id")
)

// Graph is a basic-block data-flow graph. Create one with New, add nodes in
// any topological order with AddNode, then call Freeze before handing the
// graph to analyses. The zero value is not usable.
type Graph struct {
	ops   []Op
	names []string
	value []int64 // payload for OpConst nodes
	preds [][]int
	succs [][]int

	frozen bool

	forbUser map[int]bool // user-marked forbidden
	liveOut  map[int]bool // user-marked Oext members (beyond structural sinks)

	// Everything below is computed by Freeze.
	iext      *bitset.Set // roots
	oext      *bitset.Set // structural sinks ∪ liveOut
	forb      *bitset.Set // forbUser (Iext are additionally forbidden implicitly)
	topo      []int
	topoPos   []int
	reachFrom []*bitset.Set // reachFrom[v]: u such that v→…→u, v excluded
	reachTo   []*bitset.Set // reachTo[w]: u such that u→…→w, w excluded
	ffReach   []*bitset.Set // like reachFrom, but paths may not cross F
	forbPred  []*bitset.Set // forbidden predecessors of each node
	depth     []int         // longest-path depth from any root (roots = 0)
	entries   []int         // Iext ∪ user-forbidden: the virtual source's successors
	entrySet  *bitset.Set   // the same, as a bitset

	// Flat bitset adjacency matrices for the word-parallel traversal engine
	// (traverse.go): row v of predBits/succBits holds v's predecessor/
	// successor set, stride words per row.
	stride   int
	predBits []uint64
	succBits []uint64

	// maxSucc[v] is v's highest successor id (-1 for sinks). With the
	// identity topological order it bounds the highest position any
	// masked-row scan of v's successors can return, so the running-max
	// dominator sweeps in package enum skip the scan entirely whenever
	// maxSucc[v] cannot beat the running maximum.
	maxSucc []int32

	augOnce sync.Once
	aug     *Aug
}

// New returns an empty, mutable graph.
func New() *Graph {
	return &Graph{}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.ops) }

// AddNode appends a node computing op from the given predecessor nodes and
// returns its id. Predecessors must already exist, which forces construction
// in a topological order and keeps the graph acyclic by construction.
func (g *Graph) AddNode(op Op, name string, preds ...int) (int, error) {
	if g.frozen {
		return -1, ErrFrozen
	}
	if !op.Valid() {
		return -1, fmt.Errorf("dfg: invalid op %d", op)
	}
	id := len(g.ops)
	for _, p := range preds {
		if p < 0 || p >= id {
			return -1, fmt.Errorf("%w: %d (adding node %d)", ErrBadPred, p, id)
		}
	}
	g.ops = append(g.ops, op)
	g.names = append(g.names, name)
	g.value = append(g.value, 0)
	ps := make([]int, len(preds))
	copy(ps, preds)
	g.preds = append(g.preds, ps)
	g.succs = append(g.succs, nil)
	for _, p := range ps {
		g.succs[p] = append(g.succs[p], id)
	}
	return id, nil
}

// MustAddNode is AddNode that panics on error; intended for tests and
// generators that construct graphs programmatically.
func (g *Graph) MustAddNode(op Op, name string, preds ...int) int {
	id, err := g.AddNode(op, name, preds...)
	if err != nil {
		panic(err)
	}
	return id
}

// SetConst stores the literal value of an OpConst node.
func (g *Graph) SetConst(v int, value int64) error {
	if err := g.check(v); err != nil {
		return err
	}
	if g.frozen {
		return ErrFrozen
	}
	g.value[v] = value
	return nil
}

// ConstValue returns the literal payload of node v.
func (g *Graph) ConstValue(v int) int64 { return g.value[v] }

// MarkForbidden adds v to the user forbidden set F.
func (g *Graph) MarkForbidden(v int) error {
	if g.frozen {
		return ErrFrozen
	}
	if err := g.check(v); err != nil {
		return err
	}
	if g.forbUser == nil {
		g.forbUser = make(map[int]bool)
	}
	g.forbUser[v] = true
	return nil
}

// MarkLiveOut marks v as externally visible (a member of Oext) even if it
// has successors inside the block.
func (g *Graph) MarkLiveOut(v int) error {
	if g.frozen {
		return ErrFrozen
	}
	if err := g.check(v); err != nil {
		return err
	}
	if g.liveOut == nil {
		g.liveOut = make(map[int]bool)
	}
	g.liveOut[v] = true
	return nil
}

func (g *Graph) check(v int) error {
	if v < 0 || v >= len(g.ops) {
		return fmt.Errorf("%w: %d", ErrInvalidNode, v)
	}
	return nil
}

// Freeze finalizes the graph: it derives Iext, Oext and F, computes the
// topological order, the reachability matrices, per-node forbidden
// predecessor masks and node depths. After Freeze the graph is immutable.
func (g *Graph) Freeze() error {
	if g.frozen {
		return nil
	}
	n := len(g.ops)
	if n == 0 {
		return ErrEmptyGraph
	}

	g.iext = bitset.New(n)
	g.oext = bitset.New(n)
	g.forb = bitset.New(n)
	for v := 0; v < n; v++ {
		if len(g.preds[v]) == 0 {
			g.iext.Add(v)
		}
		if len(g.succs[v]) == 0 {
			g.oext.Add(v)
		}
		if g.forbUser[v] {
			g.forb.Add(v)
		}
		// Calls are opaque and always forbidden by convention; so are
		// already-collapsed custom instructions and their result selectors.
		if g.ops[v] == OpCall || g.ops[v] == OpCustom || g.ops[v] == OpExtract {
			g.forb.Add(v)
		}
	}
	for v := range g.liveOut {
		g.oext.Add(v)
	}

	// Node ids are a topological order by construction: AddNode only accepts
	// already-existing predecessors, so every edge goes from a smaller id to
	// a larger one and the graph is acyclic. Freeze pins topo to the
	// identity permutation rather than deriving a fresh order, because the
	// traversal engine exploits id ≡ position: bit index i of an adjacency
	// row IS topological position i, so "highest successor position inside a
	// region" reduces to a highest-set-bit scan of one masked row — the
	// operation the incremental dominator sweeps of package enum are built
	// on (see analyzePaths and mandatoryInto there).
	g.topo = make([]int, n)
	g.topoPos = make([]int, n)
	for v := 0; v < n; v++ {
		g.topo[v] = v
		g.topoPos[v] = v
	}

	// Reachability by dynamic programming over the topological order.
	g.reachFrom = make([]*bitset.Set, n)
	g.reachTo = make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		g.reachFrom[v] = bitset.New(n)
		g.reachTo[v] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := g.topo[i]
		for _, s := range g.succs[v] {
			g.reachFrom[v].Add(s)
			g.reachFrom[v].Union(g.reachFrom[s])
		}
	}
	for i := 0; i < n; i++ {
		w := g.topo[i]
		for _, p := range g.preds[w] {
			g.reachTo[w].Add(p)
			g.reachTo[w].Union(g.reachTo[p])
		}
	}

	// Forbidden-free reachability: paths whose interior avoids F. A path may
	// START at a forbidden vertex (forbidden vertices can feed a cut as
	// inputs), so propagation stops at forbidden vertices but still records
	// them as directly reachable.
	g.ffReach = make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		g.ffReach[v] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := g.topo[i]
		for _, s := range g.succs[v] {
			g.ffReach[v].Add(s)
			if !g.forb.Has(s) {
				g.ffReach[v].Union(g.ffReach[s])
			}
		}
	}

	g.forbPred = make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		g.forbPred[v] = bitset.New(n)
		for _, p := range g.preds[v] {
			if g.forb.Has(p) {
				g.forbPred[v].Add(p)
			}
		}
	}

	g.depth = make([]int, n)
	for _, v := range g.topo {
		d := 0
		for _, p := range g.preds[v] {
			if g.depth[p]+1 > d {
				d = g.depth[p] + 1
			}
		}
		g.depth[v] = d
	}

	// Successors of the augmented graph's virtual source (§3): every root
	// and every user-forbidden vertex. Traversals of the reduced graph all
	// start here, so the list is computed once instead of scanning all
	// vertices per traversal.
	g.entrySet = bitset.New(n)
	g.entrySet.Union(g.iext)
	g.entrySet.Union(g.forb)
	g.entries = g.entrySet.Members()

	// Adjacency rows as flat bit matrices, the substrate of the
	// word-parallel traversal kernels (§5.4: set operations on flat bit
	// matrices are what make the enumeration practical).
	g.stride = (n + 63) / 64
	g.predBits = make([]uint64, n*g.stride)
	g.succBits = make([]uint64, n*g.stride)
	g.maxSucc = make([]int32, n)
	for v := 0; v < n; v++ {
		prow := g.predBits[v*g.stride : (v+1)*g.stride]
		for _, p := range g.preds[v] {
			prow[p/64] |= 1 << uint(p%64)
		}
		srow := g.succBits[v*g.stride : (v+1)*g.stride]
		g.maxSucc[v] = -1
		for _, s := range g.succs[v] {
			srow[s/64] |= 1 << uint(s%64)
			if int32(s) > g.maxSucc[v] {
				g.maxSucc[v] = int32(s)
			}
		}
	}

	g.frozen = true
	return nil
}

// MustFreeze calls Freeze and panics on error.
func (g *Graph) MustFreeze() *Graph {
	if err := g.Freeze(); err != nil {
		panic(err)
	}
	return g
}

// Frozen reports whether Freeze has completed.
func (g *Graph) Frozen() bool { return g.frozen }

// FootprintBytes estimates the resident memory of a frozen graph — the
// derived reachability closures and flat adjacency matrices, which are
// O(n²) bits and dwarf everything else on large blocks, plus the per-node
// slices. The estimate is what a cache charges against its byte budget; it
// deliberately excludes the lazily built Augmented() structures (their
// construction is budgeted by whoever triggers it) and allocator overhead.
func (g *Graph) FootprintBytes() int64 {
	const wordB = 8
	n := int64(len(g.ops))
	b := n * (1 /*ops*/ + 16 /*names header*/ + 8 /*value*/ + 2*24 /*preds,succs headers*/ + 3*8 /*topo,topoPos,depth,maxSucc≈*/)
	for v := range g.preds {
		b += int64(len(g.preds[v])+len(g.succs[v])) * 8
		b += int64(len(g.names[v]))
	}
	perSet := func(rows []*bitset.Set) {
		for _, s := range rows {
			if s != nil {
				b += int64(len(s.Words()))*wordB + 24
			}
		}
	}
	perSet(g.reachFrom)
	perSet(g.reachTo)
	perSet(g.ffReach)
	perSet(g.forbPred)
	perSet([]*bitset.Set{g.iext, g.oext, g.forb, g.entrySet})
	b += int64(len(g.predBits)+len(g.succBits)) * wordB
	b += int64(len(g.entries)) * 8
	return b
}

// Op returns the operation of node v.
func (g *Graph) Op(v int) Op { return g.ops[v] }

// Name returns the (possibly empty) name of node v.
func (g *Graph) Name(v int) string { return g.names[v] }

// Preds returns the predecessor list of v. The caller must not modify it.
func (g *Graph) Preds(v int) []int { return g.preds[v] }

// Succs returns the successor list of v. The caller must not modify it.
func (g *Graph) Succs(v int) []int { return g.succs[v] }

// NumEdges returns the total number of edges.
func (g *Graph) NumEdges() int {
	e := 0
	for _, p := range g.preds {
		e += len(p)
	}
	return e
}

// IsRoot reports whether v is an external input (no predecessors).
func (g *Graph) IsRoot(v int) bool { return g.iext.Has(v) }

// IsLiveOut reports whether v belongs to Oext.
func (g *Graph) IsLiveOut(v int) bool { return g.oext.Has(v) }

// IsForbidden reports whether v may never be part of a cut. External inputs
// are implicitly forbidden (their values are computed outside the block).
func (g *Graph) IsForbidden(v int) bool { return g.forb.Has(v) || g.iext.Has(v) }

// IsUserForbidden reports whether v is in the explicit forbidden set F
// (user-marked or an opaque call), excluding the implicit Iext members.
func (g *Graph) IsUserForbidden(v int) bool { return g.forb.Has(v) }

// Roots returns Iext in ascending order.
func (g *Graph) Roots() []int { return g.iext.Members() }

// Oext returns the external output set in ascending order.
func (g *Graph) Oext() []int { return g.oext.Members() }

// Forbidden returns the explicit forbidden set F in ascending order.
func (g *Graph) Forbidden() []int { return g.forb.Members() }

// Entries returns the successors of the augmented graph's virtual source —
// Iext ∪ the user-forbidden set — in ascending order; read-only.
func (g *Graph) Entries() []int { return g.entries }

// EntrySet returns the same set as Entries as a bitset; read-only.
func (g *Graph) EntrySet() *bitset.Set { return g.entrySet }

// PredRow returns node v's predecessor set as a raw adjacency-matrix row;
// read-only. Available after Freeze.
func (g *Graph) PredRow(v int) []uint64 {
	return g.predBits[v*g.stride : (v+1)*g.stride]
}

// SuccRow returns node v's successor set as a raw adjacency-matrix row;
// read-only. Available after Freeze.
func (g *Graph) SuccRow(v int) []uint64 {
	return g.succBits[v*g.stride : (v+1)*g.stride]
}

// MaxSucc returns v's highest successor id, or -1 when v has no successors.
// Under the identity topological order this is also the highest position a
// successor of v can occupy, which lets region sweeps skip masked row scans
// that cannot change their running maximum. Available after Freeze.
func (g *Graph) MaxSucc(v int) int { return int(g.maxSucc[v]) }

// PredsIntersect reports whether any predecessor of v belongs to s, in one
// word-parallel pass over v's adjacency row.
func (g *Graph) PredsIntersect(v int, s *bitset.Set) bool {
	sw := s.Words()
	for i, w := range g.PredRow(v) {
		if w&sw[i] != 0 {
			return true
		}
	}
	return false
}

// SuccsIntersect reports whether any successor of v belongs to s.
func (g *Graph) SuccsIntersect(v int, s *bitset.Set) bool {
	sw := s.Words()
	for i, w := range g.SuccRow(v) {
		if w&sw[i] != 0 {
			return true
		}
	}
	return false
}

// ForbiddenSet returns the explicit forbidden set as a bitset; read-only.
func (g *Graph) ForbiddenSet() *bitset.Set { return g.forb }

// RootSet returns Iext as a bitset; read-only.
func (g *Graph) RootSet() *bitset.Set { return g.iext }

// OextSet returns Oext as a bitset; read-only.
func (g *Graph) OextSet() *bitset.Set { return g.oext }

// Topo returns a topological order of the nodes; read-only.
func (g *Graph) Topo() []int { return g.topo }

// TopoPos returns the position of v in the topological order.
func (g *Graph) TopoPos(v int) int { return g.topoPos[v] }

// Depth returns the longest-path distance of v from any root.
func (g *Graph) Depth(v int) int { return g.depth[v] }

// Reaches reports whether there is a non-empty path from v to w.
func (g *Graph) Reaches(v, w int) bool { return g.reachFrom[v].Has(w) }

// ReachFrom returns the set of nodes reachable from v (v excluded);
// read-only.
func (g *Graph) ReachFrom(v int) *bitset.Set { return g.reachFrom[v] }

// ReachTo returns the set of nodes that reach w (w excluded); read-only.
func (g *Graph) ReachTo(w int) *bitset.Set { return g.reachTo[w] }

// ForbiddenPreds returns the forbidden predecessors of v as a bitset;
// read-only.
func (g *Graph) ForbiddenPreds(v int) *bitset.Set { return g.forbPred[v] }

// HasForbiddenBetween reports whether some path v→…→w passes through a
// forbidden node strictly between v and w. Such (input, output) pairs can
// never appear together in a valid cut (§5.3, output–input pruning).
func (g *Graph) HasForbiddenBetween(v, w int) bool {
	if !g.Reaches(v, w) {
		return false
	}
	// interior(v,w) = reachFrom(v) ∩ reachTo(w); test intersection with F
	// without materializing: iterate words via IntersectionCount on a scratch
	// set would allocate, so walk forbidden members instead when F is small.
	f := g.forb
	if f.Empty() {
		return false
	}
	rf := g.reachFrom[v]
	rt := g.reachTo[w]
	found := false
	f.ForEach(func(x int) bool {
		if rf.Has(x) && rt.Has(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// BetweenInto computes B(V, w) of definition 6 into dst: every node lying on
// a path from some v ∈ V to w, excluding the start vertices and including w
// itself. dst must have capacity N(). It returns dst for convenience.
func (g *Graph) BetweenInto(dst *bitset.Set, V []int, w int) *bitset.Set {
	dst.Clear()
	any := false
	for _, v := range V {
		if g.reachFrom[v].Has(w) {
			dst.Union(g.reachFrom[v])
			any = true
		}
	}
	if !any {
		return dst
	}
	dst.Intersect(g.reachTo[w])
	dst.Add(w)
	// Exclude start vertices (a DAG has no self paths, but a start vertex can
	// lie between another start vertex and w).
	for _, v := range V {
		dst.Remove(v)
	}
	return dst
}

// BetweenSingleInto computes B({v}, w) into dst and returns it.
func (g *Graph) BetweenSingleInto(dst *bitset.Set, v, w int) *bitset.Set {
	dst.Clear()
	if !g.reachFrom[v].Has(w) {
		return dst
	}
	dst.Copy(g.reachFrom[v])
	dst.Intersect(g.reachTo[w])
	dst.Add(w)
	return dst
}

// ReachesForbiddenFree reports whether a path v→…→w exists whose interior
// avoids every forbidden vertex (v itself may be forbidden — forbidden
// vertices are legal cut inputs). An input of a valid cut must reach each
// output it dominates along such a path, because everything after the input
// on its private path lies inside the cut (§5.3, output–input pruning).
func (g *Graph) ReachesForbiddenFree(v, w int) bool {
	return g.ffReach[v].Has(w)
}
