// Package parallel is the shared concurrency substrate of polyise: a
// work-stealing index pool with batching, and two deterministic ordered
// merges of concurrently produced result streams.
//
// All enumeration grain sizes use it. Block-level sharding (a corpus of
// basic blocks spread over GOMAXPROCS workers, internal/bench) claims block
// indices from a Pool and writes results into a slice, so the merged output
// is ordered exactly as the serial loop would have produced it. Intra-block
// sharding (internal/enum's parallel Enumerate) additionally needs the
// *streams* of per-shard results interleaved deterministically. Ordered
// provides that for a fixed index range: producers emit into per-index
// channels out of order, one consumer drains them in strict index order.
// SplitOrdered generalizes it to a dynamically splittable sequence of
// stream segments, which is what interior work-stealing needs: a producer
// can split its stream at its current point, donating the tail of its
// remaining work to another producer while the merged output order stays
// exactly the order a serial execution would have produced.
//
// The package deliberately contains no enumeration logic: it only moves
// indices and values, so it can be raced-tested in isolation.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"polyise/internal/faultinject"
)

// Workers resolves a parallelism knob to a concrete worker count: any value
// below 1 means "auto" (GOMAXPROCS); anything else is taken literally.
// Values above GOMAXPROCS are allowed — oversubscription is harmless for
// correctness and the stress tests rely on it.
func Workers(knob int) int {
	if knob < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return knob
}

// ForEach runs fn(i) for every i in [0, n) across `workers` goroutines and
// blocks until all calls have returned. Indices are claimed dynamically in
// contiguous batches of `batch` (values below 1 mean 1) from an atomic
// counter, so cheap items amortize the claim and expensive items cannot
// stall a statically assigned peer. fn must be safe for concurrent calls
// with distinct i; every index is passed exactly once.
func ForEach(workers, n, batch int, fn func(i int)) {
	workers = Workers(workers)
	if batch < 1 {
		batch = 1
	}
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(batch))) - batch
				if start >= n {
					return
				}
				end := start + batch
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Ordered merges per-index streams, produced concurrently and out of order,
// into the single sequence a serial loop over the indices would have
// produced. Producers Emit values for an index and Close it exactly once;
// one consumer calls Drain, which yields every value of index 0, then every
// value of index 1, and so on.
//
// Streams are allocated lazily. NewOrdered reserves only an index table;
// an index's buffered channel materializes at its first Emit, an index
// closed without emitting is marked done with no channel at all, and Drain
// releases each stream once it is exhausted. Startup cost and steady-state
// memory therefore scale with the values actually in flight — bounded by
// the producers and their buffers — not with n, which matters when n is
// "one stream per graph vertex" and almost every stream is empty.
//
// Emit blocks when an index's buffer is full, which bounds memory: at most
// workers×buf values sit in flight ahead of the drain frontier.
//
// Protocol. Producers must claim indices in ascending order (e.g. from a
// shared atomic counter), finishing — and closing — one claim before taking
// the next, and every index must eventually be closed. A single producer
// owns any given index: Emit and Close for one index must come from one
// goroutine (concurrent producers own distinct indices). Under that
// discipline the merge cannot deadlock: the lowest unclosed index is either
// claimed, so its producer creates the very stream Drain is waiting on (the
// condition variable hands it over), or unclaimed, in which case all lower
// indices are closed and some producer's next claim reaches it. Claiming
// out of ascending order voids the guarantee — a producer blocked on a high
// index can then starve the unproduced low index Drain is waiting for.
type Ordered[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	chans []chan T // lazily created; nil = not yet emitted (or already drained)
	done  []bool   // closed with no channel ever created
	buf   int
}

// NewOrdered returns an Ordered merge over n indices whose streams carry a
// per-index buffer of buf values once they materialize.
func NewOrdered[T any](n, buf int) *Ordered[T] {
	o := &Ordered[T]{chans: make([]chan T, n), done: make([]bool, n), buf: buf}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Emit appends v to index i's stream, materializing it on first use. It may
// block until the consumer drains earlier indices.
func (o *Ordered[T]) Emit(i int, v T) {
	// Reading without the lock is safe: index i's channel is written only
	// by its single producer — this goroutine — below.
	ch := o.chans[i]
	if ch == nil {
		ch = make(chan T, o.buf)
		o.mu.Lock()
		o.chans[i] = ch
		o.mu.Unlock()
		o.cond.Broadcast()
	}
	ch <- v
}

// Close marks index i's stream complete. Every index must be closed exactly
// once for Drain to terminate. An index that never emitted closes without
// ever allocating a channel.
func (o *Ordered[T]) Close(i int) {
	if ch := o.chans[i]; ch != nil { // single-producer read, as in Emit
		close(ch)
		return
	}
	o.mu.Lock()
	o.done[i] = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// Drain consumes the streams in strict index order, calling visit for every
// value, and releases each stream as it finishes with it. It returns when
// all indices are closed and drained. Early termination is the caller's
// business: keep consuming (discarding) so blocked producers can finish.
func (o *Ordered[T]) Drain(visit func(T)) {
	for i := range o.chans {
		o.mu.Lock()
		for o.chans[i] == nil && !o.done[i] {
			o.cond.Wait()
		}
		ch := o.chans[i]
		o.mu.Unlock()
		if ch == nil {
			continue // closed empty, nothing was ever allocated
		}
		for v := range ch {
			visit(v)
		}
		o.mu.Lock()
		o.chans[i] = nil // release the drained stream's buffer
		o.mu.Unlock()
	}
}

// Seg is one stream segment of a SplitOrdered merge: a contiguous slice of
// the merged output sequence, produced by exactly one producer at a time.
// Ownership is transferable (a donor hands a stolen segment to a thief),
// but Emit and Close for one segment must never race — the handoff must
// happen-before the new owner's first use, e.g. through a channel send.
type Seg[T any] struct {
	ch   chan T  // lazily created; nil = not yet emitted (or already drained)
	next *Seg[T] // list order = serial output order; guarded by SplitOrdered.mu
	done bool    // closed with no channel ever created
}

// SplitOrdered merges a dynamically growing, ordered list of stream
// segments into the single sequence a serial execution would have produced.
// It starts as n top-level segments (exactly Ordered's shape: one per
// top-level work index, drained in index order), but any producer may call
// Split on the segment it is currently emitting into, which splices a
// (stolen, resume) segment pair into the list right after it. The stolen
// segment carries the output of donated work that serially comes after
// everything the donor will still emit into its current segment; the resume
// segment receives the donor's own output from the point it passes the
// donated work. Splitting is how interior work-stealing keeps a
// deterministic merge: hierarchical sequence numbers are represented
// structurally, as positions in the segment list, instead of numerically.
//
// Streams are allocated lazily exactly as in Ordered: a segment's channel
// materializes at its first Emit, a segment closed without emitting never
// allocates one, and Drain releases each stream once it is exhausted. Emit
// blocks when a segment's buffer is full, bounding in-flight memory.
//
// Protocol. Every segment must be closed exactly once, and a segment's
// Emit/Close calls must come from its single current owner. Split may only
// be called by a segment's owner on its own still-open segment, and the
// donor must close its current segment before switching to (and eventually
// closing) the resume segment; the stolen segment's ownership transfers to
// the thief, who must close it even if it declines the work. Deadlock
// freedom additionally requires that every open segment is owned by a LIVE
// producer (one that keeps emitting/closing without waiting on the merge
// frontier for anything but its own segment's buffer): under that handoff
// discipline the head segment's owner is either runnable or blocked
// emitting into the head itself, which the consumer is draining. Publishing
// a stolen segment without a committed executor voids the guarantee — the
// consumer would wait on a stream nobody is going to close.
type SplitOrdered[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	base []Seg[T] // the n top-level segments, pre-linked in index order
	buf  int
}

// NewSplitOrdered returns a merge over n top-level segments whose streams
// carry a per-segment buffer of buf values once they materialize. The
// top-level segments are allocated as one block; spliced segments are
// allocated pairwise by Split.
func NewSplitOrdered[T any](n, buf int) *SplitOrdered[T] {
	o := &SplitOrdered[T]{base: make([]Seg[T], n), buf: buf}
	for i := 0; i+1 < n; i++ {
		o.base[i].next = &o.base[i+1]
	}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Top returns the i-th top-level segment.
func (o *SplitOrdered[T]) Top(i int) *Seg[T] { return &o.base[i] }

// Emit appends v to segment s, materializing its stream on first use. It
// may block until the consumer drains every earlier segment.
func (o *SplitOrdered[T]) Emit(s *Seg[T], v T) {
	// Reading without the lock is safe: s's channel is written only by its
	// single owner — this goroutine — below.
	ch := s.ch
	if ch == nil {
		ch = make(chan T, o.buf)
		o.mu.Lock()
		s.ch = ch
		o.mu.Unlock()
		o.cond.Broadcast()
	}
	ch <- v
}

// Close marks segment s complete. Every segment must be closed exactly
// once for Drain to terminate. A segment that never emitted closes without
// ever allocating a channel.
func (o *SplitOrdered[T]) Close(s *Seg[T]) {
	if ch := s.ch; ch != nil { // single-owner read, as in Emit
		close(ch)
		return
	}
	o.mu.Lock()
	s.done = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// Split splices a (stolen, resume) segment pair into the list immediately
// after s, which must be the caller's own still-open current segment. The
// serial output order becomes: the rest of s, then stolen, then resume,
// then whatever followed s. Both new segments start empty and open; the
// caller keeps ownership of resume (to be emitted into once its own work
// passes the donated range, then closed) and hands stolen to the thief.
// The pair is one allocation.
func (o *SplitOrdered[T]) Split(s *Seg[T]) (stolen, resume *Seg[T]) {
	if h := faultinject.OnMergeSplice; h != nil {
		// Before any list mutation: an injected panic here propagates to
		// the caller with the segment list untouched, so the containment
		// layer above sees a consistent merge with no half-spliced pair.
		h()
	}
	pair := new([2]Seg[T])
	stolen, resume = &pair[0], &pair[1]
	o.mu.Lock()
	resume.next = s.next
	stolen.next = resume
	s.next = stolen
	o.mu.Unlock()
	return stolen, resume
}

// Drain consumes the segments in list order, calling visit for every value,
// and releases each stream as it finishes with it. It returns when the list
// is exhausted — which requires every segment, including ones spliced in
// while draining, to be closed. Early termination is the caller's business:
// keep consuming (discarding) so blocked producers can finish.
func (o *SplitOrdered[T]) Drain(visit func(T)) {
	o.DrainWithIndex(func(_ int, v T) { visit(v) })
}

// DrainWithIndex is Drain with provenance: visit additionally receives the
// top-level segment index whose span the value belongs to. Spliced segments
// inherit the index of the base segment they were (transitively) split
// from, so `top` is exactly "which top-level work item produced this value"
// — monotonically non-decreasing across the drain. The checkpoint subsystem
// uses it to record the serial-order frontier position of the last
// delivered value. Base segments are identified positionally: the walk
// reaches them in index order, and every splice lands strictly between two
// base segments, so one advancing cursor suffices — no per-segment index
// storage.
func (o *SplitOrdered[T]) DrainWithIndex(visit func(top int, v T)) {
	if len(o.base) == 0 {
		return
	}
	s := &o.base[0]
	top, nextBase := 0, 1
	for s != nil {
		if nextBase < len(o.base) && s == &o.base[nextBase] {
			top = nextBase
			nextBase++
		}
		o.mu.Lock()
		for s.ch == nil && !s.done {
			o.cond.Wait()
		}
		ch := s.ch
		o.mu.Unlock()
		if ch != nil {
			for v := range ch {
				visit(top, v)
			}
		}
		o.mu.Lock()
		s.ch = nil // release the drained stream's buffer
		// s.next is read under the lock only after s closed: splices happen
		// only on open segments, so the link is final by now — but the write
		// itself needs the same lock to be visible.
		next := s.next
		o.mu.Unlock()
		s = next
	}
}
