// Package parallel is the shared concurrency substrate of polyise: a
// work-stealing index pool with batching, and a deterministic ordered merge
// of per-index result streams.
//
// Both enumeration grain sizes use it. Block-level sharding (a corpus of
// basic blocks spread over GOMAXPROCS workers, internal/bench) claims block
// indices from a Pool and writes results into a slice, so the merged output
// is ordered exactly as the serial loop would have produced it. Intra-block
// sharding (internal/enum's parallel Enumerate) additionally needs the
// *streams* of per-shard results interleaved deterministically, which
// Ordered provides: producers emit into per-index channels out of order,
// one consumer drains them in strict index order.
//
// The package deliberately contains no enumeration logic: it only moves
// indices and values, so it can be raced-tested in isolation.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count: any value
// below 1 means "auto" (GOMAXPROCS); anything else is taken literally.
// Values above GOMAXPROCS are allowed — oversubscription is harmless for
// correctness and the stress tests rely on it.
func Workers(knob int) int {
	if knob < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return knob
}

// ForEach runs fn(i) for every i in [0, n) across `workers` goroutines and
// blocks until all calls have returned. Indices are claimed dynamically in
// contiguous batches of `batch` (values below 1 mean 1) from an atomic
// counter, so cheap items amortize the claim and expensive items cannot
// stall a statically assigned peer. fn must be safe for concurrent calls
// with distinct i; every index is passed exactly once.
func ForEach(workers, n, batch int, fn func(i int)) {
	workers = Workers(workers)
	if batch < 1 {
		batch = 1
	}
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(batch))) - batch
				if start >= n {
					return
				}
				end := start + batch
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Ordered merges per-index streams, produced concurrently and out of order,
// into the single sequence a serial loop over the indices would have
// produced. Producers Emit values for an index and Close it exactly once;
// one consumer calls Drain, which yields every value of index 0, then every
// value of index 1, and so on.
//
// Streams are allocated lazily. NewOrdered reserves only an index table;
// an index's buffered channel materializes at its first Emit, an index
// closed without emitting is marked done with no channel at all, and Drain
// releases each stream once it is exhausted. Startup cost and steady-state
// memory therefore scale with the values actually in flight — bounded by
// the producers and their buffers — not with n, which matters when n is
// "one stream per graph vertex" and almost every stream is empty.
//
// Emit blocks when an index's buffer is full, which bounds memory: at most
// workers×buf values sit in flight ahead of the drain frontier.
//
// Protocol. Producers must claim indices in ascending order (e.g. from a
// shared atomic counter), finishing — and closing — one claim before taking
// the next, and every index must eventually be closed. A single producer
// owns any given index: Emit and Close for one index must come from one
// goroutine (concurrent producers own distinct indices). Under that
// discipline the merge cannot deadlock: the lowest unclosed index is either
// claimed, so its producer creates the very stream Drain is waiting on (the
// condition variable hands it over), or unclaimed, in which case all lower
// indices are closed and some producer's next claim reaches it. Claiming
// out of ascending order voids the guarantee — a producer blocked on a high
// index can then starve the unproduced low index Drain is waiting for.
type Ordered[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	chans []chan T // lazily created; nil = not yet emitted (or already drained)
	done  []bool   // closed with no channel ever created
	buf   int
}

// NewOrdered returns an Ordered merge over n indices whose streams carry a
// per-index buffer of buf values once they materialize.
func NewOrdered[T any](n, buf int) *Ordered[T] {
	o := &Ordered[T]{chans: make([]chan T, n), done: make([]bool, n), buf: buf}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Emit appends v to index i's stream, materializing it on first use. It may
// block until the consumer drains earlier indices.
func (o *Ordered[T]) Emit(i int, v T) {
	// Reading without the lock is safe: index i's channel is written only
	// by its single producer — this goroutine — below.
	ch := o.chans[i]
	if ch == nil {
		ch = make(chan T, o.buf)
		o.mu.Lock()
		o.chans[i] = ch
		o.mu.Unlock()
		o.cond.Broadcast()
	}
	ch <- v
}

// Close marks index i's stream complete. Every index must be closed exactly
// once for Drain to terminate. An index that never emitted closes without
// ever allocating a channel.
func (o *Ordered[T]) Close(i int) {
	if ch := o.chans[i]; ch != nil { // single-producer read, as in Emit
		close(ch)
		return
	}
	o.mu.Lock()
	o.done[i] = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// Drain consumes the streams in strict index order, calling visit for every
// value, and releases each stream as it finishes with it. It returns when
// all indices are closed and drained. Early termination is the caller's
// business: keep consuming (discarding) so blocked producers can finish.
func (o *Ordered[T]) Drain(visit func(T)) {
	for i := range o.chans {
		o.mu.Lock()
		for o.chans[i] == nil && !o.done[i] {
			o.cond.Wait()
		}
		ch := o.chans[i]
		o.mu.Unlock()
		if ch == nil {
			continue // closed empty, nothing was ever allocated
		}
		for v := range ch {
			visit(v)
		}
		o.mu.Lock()
		o.chans[i] = nil // release the drained stream's buffer
		o.mu.Unlock()
	}
}
