package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := map[int]int{-1: max, 0: max, 1: 1, 3: 3, 100: 100}
	for knob, want := range cases {
		if got := Workers(knob); got != want {
			t.Errorf("Workers(%d) = %d, want %d", knob, got, want)
		}
	}
}

// TestForEachCoversEveryIndexOnce drives the pool across worker counts,
// batch sizes and edge shapes (more workers than items, batch larger than
// n, empty range) and checks the exactly-once contract with per-index
// atomic counters — under -race this also proves claim distribution is
// sound.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	shapes := []struct{ workers, n, batch int }{
		{1, 17, 1}, {4, 17, 1}, {4, 17, 3}, {4, 4, 8},
		{16, 5, 1}, {3, 1000, 7}, {8, 64, 64}, {2, 0, 1}, {0, 33, 0},
	}
	for _, s := range shapes {
		counts := make([]atomic.Int32, s.n)
		ForEach(s.workers, s.n, s.batch, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d n=%d batch=%d: index %d ran %d times",
					s.workers, s.n, s.batch, i, c)
			}
		}
	}
}

// TestForEachConcurrentWriters fills a shared slice by index — the pool's
// advertised usage for block-level corpus sharding.
func TestForEachConcurrentWriters(t *testing.T) {
	n := 500
	out := make([]int, n)
	ForEach(8, n, 4, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestOrderedMergesInIndexOrder has six producers claim indices in the
// mandated ascending order but complete them at scrambled times (jitter
// sleeps), so streams finish out of order; the merged sequence must still
// be sorted by index with per-index emit order preserved.
func TestOrderedMergesInIndexOrder(t *testing.T) {
	const n, perIndex = 50, 7
	ord := NewOrdered[[2]int](n, 2)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				// Scramble real-time completion order across workers.
				time.Sleep(time.Duration((idx*37+11)%5) * time.Millisecond)
				for k := 0; k < perIndex; k++ {
					ord.Emit(idx, [2]int{idx, k})
				}
				ord.Close(idx)
			}
		}()
	}
	var got [][2]int
	ord.Drain(func(v [2]int) { got = append(got, v) })
	wg.Wait()

	if len(got) != n*perIndex {
		t.Fatalf("drained %d values, want %d", len(got), n*perIndex)
	}
	for j, v := range got {
		if want := [2]int{j / perIndex, j % perIndex}; v != want {
			t.Fatalf("position %d: got %v, want %v", j, v, want)
		}
	}
}

// TestOrderedEmptyStreams checks that indices with no values don't stall
// the drain.
func TestOrderedEmptyStreams(t *testing.T) {
	ord := NewOrdered[int](10, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if i == 4 {
				ord.Emit(i, 42)
			}
			ord.Close(i)
		}
	}()
	var got []int
	ord.Drain(func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
}

// TestOrderedBackpressure proves a producer far ahead of the drain frontier
// blocks on its buffer instead of accumulating unboundedly, and unblocks
// once the frontier arrives.
func TestOrderedBackpressure(t *testing.T) {
	ord := NewOrdered[int](2, 1)
	blocked := make(chan struct{})
	go func() {
		ord.Emit(1, 0)
		ord.Emit(1, 1) // buffer of index 1 is full: must block until index 0 closes
		close(blocked)
		ord.Emit(1, 2)
		ord.Close(1)
	}()
	time.Sleep(50 * time.Millisecond) // give the producer time to (wrongly) run ahead
	select {
	case <-blocked:
		t.Fatal("producer ran past a full buffer with the frontier behind it")
	default:
	}
	ord.Close(0)
	var got []int
	ord.Drain(func(v int) { got = append(got, v) })
	<-blocked
	if len(got) != 3 {
		t.Fatalf("drained %v", got)
	}
}

// TestOrderedLazyAllocation pins the lazy-stream contract: indices closed
// without emitting never materialize a channel, emitting indices allocate
// exactly one, and Drain releases each stream after exhausting it — so
// buffer memory follows the values in flight, not the index count.
func TestOrderedLazyAllocation(t *testing.T) {
	const n = 1 << 12
	ord := NewOrdered[int](n, 64)
	live := func() int {
		ord.mu.Lock()
		defer ord.mu.Unlock()
		c := 0
		for _, ch := range ord.chans {
			if ch != nil {
				c++
			}
		}
		return c
	}
	if got := live(); got != 0 {
		t.Fatalf("NewOrdered materialized %d channels up front, want 0", got)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if i%97 == 0 {
				ord.Emit(i, i) // every 97th index carries one value
			}
			ord.Close(i)
		}
	}()
	drained := 0
	ord.Drain(func(v int) {
		if v%97 != 0 {
			t.Errorf("unexpected value %d", v)
		}
		drained++
	})
	wg.Wait()
	if want := (n + 96) / 97; drained != want {
		t.Fatalf("drained %d values, want %d", drained, want)
	}
	if got := live(); got != 0 {
		t.Fatalf("%d channels still live after Drain, want 0 (streams must be released)", got)
	}
}

// TestOrderedEarlyTerminatingConsumer pins the early-termination contract
// stated on Drain: a consumer that loses interest must keep draining
// (discarding) rather than return, and doing so lets every producer —
// including ones blocked on a full buffer — run to completion. The buffers
// are tiny and the producers emit far more than the consumer wants, so a
// consumer that actually stopped would deadlock the test.
func TestOrderedEarlyTerminatingConsumer(t *testing.T) {
	const n, perIndex, wantOnly = 64, 50, 5
	ord := NewOrdered[int](n, 1)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				for k := 0; k < perIndex; k++ {
					ord.Emit(idx, idx*perIndex+k)
				}
				ord.Close(idx)
			}
		}()
	}
	kept := []int{}
	total := 0
	ord.Drain(func(v int) {
		total++
		if len(kept) < wantOnly { // "stopped" consumer: discard the rest
			kept = append(kept, v)
		}
	})
	wg.Wait()
	if total != n*perIndex {
		t.Fatalf("drained %d values, want %d — producers were stranded", total, n*perIndex)
	}
	for i, v := range kept {
		if v != i {
			t.Fatalf("prefix position %d: got %d, want %d", i, v, i)
		}
	}
}

// TestOrderedAscendingClaimNoStarvation is the lowest-unclosed-index
// starvation guard: under the mandated ascending-claim discipline, workers
// that park on high indices (tiny buffers, the drain frontier far behind)
// can never starve the lowest unclosed index, because its producer either
// exists or will be the next claim of whoever finishes first. The claim
// order is steal-shaped on purpose — a worker grabs a new index the moment
// it finishes one, so late indices are claimed while early ones are still
// emitting — and the whole run is bounded by a watchdog so a starvation
// bug fails fast instead of hanging the suite.
func TestOrderedAscendingClaimNoStarvation(t *testing.T) {
	const n, perIndex = 200, 9
	ord := NewOrdered[int](n, 1) // 1-slot buffers: maximal blocking pressure
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				// Invert completion speed: early indices are slow, so high
				// indices pile up blocked ahead of the frontier.
				if idx < 8 {
					time.Sleep(time.Duration(8-idx) * time.Millisecond)
				}
				for k := 0; k < perIndex; k++ {
					ord.Emit(idx, idx)
				}
				ord.Close(idx)
			}
		}(w)
	}
	done := make(chan []int, 1)
	go func() {
		var got []int
		ord.Drain(func(v int) { got = append(got, v) })
		done <- got
	}()
	select {
	case got := <-done:
		if len(got) != n*perIndex {
			t.Fatalf("drained %d values, want %d", len(got), n*perIndex)
		}
		for j, v := range got {
			if v != j/perIndex {
				t.Fatalf("position %d: got %d, want %d — index order violated", j, v, j/perIndex)
			}
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain starved: lowest unclosed index never progressed")
	}
	wg.Wait()
}

// TestSplitOrderedWithoutSplitsMatchesOrdered checks the degenerate case:
// with no Split calls, SplitOrdered is exactly Ordered — per-index streams
// merged in index order, empty segments skipped, lazy channels released.
func TestSplitOrderedWithoutSplitsMatchesOrdered(t *testing.T) {
	const n = 40
	o := NewSplitOrdered[int](n, 2)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if i%3 != 0 { // leave every third segment empty
					o.Emit(o.Top(i), 2*i)
					o.Emit(o.Top(i), 2*i+1)
				}
				o.Close(o.Top(i))
			}
		}()
	}
	var got []int
	o.Drain(func(v int) { got = append(got, v) })
	wg.Wait()
	want := []int{}
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			want = append(want, 2*i, 2*i+1)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d values, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("position %d: got %d, want %d", j, got[j], want[j])
		}
	}
}

// TestSplitOrderedSpliceOrder pins the list semantics of Split with a
// single deterministic producer: values emitted into the donor's segment
// before AND after the split precede the stolen segment's values only when
// emitted before — after the split the donor's current segment still drains
// first (its remaining values serially precede the donated tail), then the
// stolen segment, then the resume segment, then later top segments. Also
// covers a re-split of the same segment: the second splice lands closer to
// the donor than the first, and the intermediate resume segment may close
// empty.
func TestSplitOrderedSpliceOrder(t *testing.T) {
	o := NewSplitOrdered[string](3, 16)
	s0, s1, s2 := o.Top(0), o.Top(1), o.Top(2)
	o.Emit(s0, "s0")
	o.Close(s0)

	o.Emit(s1, "a")
	stolen1, resume1 := o.Split(s1)
	o.Emit(s1, "b") // donor's remaining work: still ahead of the stolen tail
	stolen2, resume2 := o.Split(s1)
	o.Emit(s1, "c")
	o.Close(s1)
	// Thieves fill the stolen segments (order of fill is irrelevant).
	o.Emit(stolen2, "near-tail")
	o.Close(stolen2)
	o.Emit(stolen1, "far-tail")
	o.Close(stolen1)
	// Donor walks its resume chain: the intermediate resume closes empty.
	o.Close(resume2)
	o.Emit(resume1, "after")
	o.Close(resume1)

	o.Emit(s2, "s2")
	o.Close(s2)

	var got []string
	o.Drain(func(v string) { got = append(got, v) })
	want := []string{"s0", "a", "b", "c", "near-tail", "far-tail", "after", "s2"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSplitOrderedConcurrentRecursiveSplits is the stress version: every
// top segment logically owns the value range [0, M), and producers
// recursively donate the upper half of their remaining range to freshly
// spawned thief goroutines (each stolen segment has a live owner from
// birth, per the protocol), which may split again. Split decisions depend
// on scheduling only through WHERE the splits land, never on the merged
// sequence, which must come out exactly as the serial nested loop — under
// -race this is the package-level model of the enumeration's interior
// work-stealing.
func TestSplitOrderedConcurrentRecursiveSplits(t *testing.T) {
	const n, m = 24, 48
	o := NewSplitOrdered[[2]int](n, 2)
	var wg sync.WaitGroup
	// produce emits [lo, hi) of segment index i's range into seg, donating
	// upper halves along the way whenever the deterministic coin says so.
	var produce func(seg *Seg[[2]int], i, lo, hi, depth int)
	produce = func(seg *Seg[[2]int], i, lo, hi, depth int) {
		defer wg.Done()
		for j := lo; j < hi; j++ {
			if hi-j >= 2 && (i+j+depth)%3 == 0 {
				mid := j + (hi-j+1)/2
				stolen, resume := o.Split(seg)
				wg.Add(1)
				go produce(stolen, i, mid, hi, depth+1)
				hi = mid
				// This producer has nothing to emit past its range, so every
				// resume segment closes empty; the deferred closes run LIFO
				// (innermost donation first), mirroring the unwind order of
				// the enumeration's popRangeSegs.
				defer o.Close(resume)
			}
			o.Emit(seg, [2]int{i, j})
			time.Sleep(time.Duration((i*7+j*13)%3) * time.Microsecond)
		}
		o.Close(seg)
	}
	var next atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				wg.Add(1)
				produce(o.Top(i), i, 0, m, 0)
			}
		}()
	}
	var got [][2]int
	o.Drain(func(v [2]int) { got = append(got, v) })
	wg.Wait()
	if len(got) != n*m {
		t.Fatalf("drained %d values, want %d", len(got), n*m)
	}
	for p, v := range got {
		if want := [2]int{p / m, p % m}; v != want {
			t.Fatalf("position %d: got %v, want %v — splice order broken", p, v, want)
		}
	}
}

// TestSplitOrderedEarlyDiscard mirrors the Ordered early-termination test
// for the splittable merge: a consumer that discards after a prefix still
// drains every segment, including ones spliced in mid-drain.
func TestSplitOrderedEarlyDiscard(t *testing.T) {
	const n = 16
	o := NewSplitOrdered[int](n, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			seg := o.Top(i)
			o.Emit(seg, i)
			stolen, resume := o.Split(seg)
			o.Emit(seg, i)
			o.Close(seg)
			o.Emit(stolen, i)
			o.Close(stolen)
			o.Emit(resume, i)
			o.Close(resume)
		}
	}()
	total, kept := 0, 0
	o.Drain(func(v int) {
		total++
		if v < 2 {
			kept++
		}
	})
	wg.Wait()
	if total != 4*n {
		t.Fatalf("drained %d values, want %d", total, 4*n)
	}
}
