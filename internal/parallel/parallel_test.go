package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := map[int]int{-1: max, 0: max, 1: 1, 3: 3, 100: 100}
	for knob, want := range cases {
		if got := Workers(knob); got != want {
			t.Errorf("Workers(%d) = %d, want %d", knob, got, want)
		}
	}
}

// TestForEachCoversEveryIndexOnce drives the pool across worker counts,
// batch sizes and edge shapes (more workers than items, batch larger than
// n, empty range) and checks the exactly-once contract with per-index
// atomic counters — under -race this also proves claim distribution is
// sound.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	shapes := []struct{ workers, n, batch int }{
		{1, 17, 1}, {4, 17, 1}, {4, 17, 3}, {4, 4, 8},
		{16, 5, 1}, {3, 1000, 7}, {8, 64, 64}, {2, 0, 1}, {0, 33, 0},
	}
	for _, s := range shapes {
		counts := make([]atomic.Int32, s.n)
		ForEach(s.workers, s.n, s.batch, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d n=%d batch=%d: index %d ran %d times",
					s.workers, s.n, s.batch, i, c)
			}
		}
	}
}

// TestForEachConcurrentWriters fills a shared slice by index — the pool's
// advertised usage for block-level corpus sharding.
func TestForEachConcurrentWriters(t *testing.T) {
	n := 500
	out := make([]int, n)
	ForEach(8, n, 4, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestOrderedMergesInIndexOrder has six producers claim indices in the
// mandated ascending order but complete them at scrambled times (jitter
// sleeps), so streams finish out of order; the merged sequence must still
// be sorted by index with per-index emit order preserved.
func TestOrderedMergesInIndexOrder(t *testing.T) {
	const n, perIndex = 50, 7
	ord := NewOrdered[[2]int](n, 2)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				// Scramble real-time completion order across workers.
				time.Sleep(time.Duration((idx*37+11)%5) * time.Millisecond)
				for k := 0; k < perIndex; k++ {
					ord.Emit(idx, [2]int{idx, k})
				}
				ord.Close(idx)
			}
		}()
	}
	var got [][2]int
	ord.Drain(func(v [2]int) { got = append(got, v) })
	wg.Wait()

	if len(got) != n*perIndex {
		t.Fatalf("drained %d values, want %d", len(got), n*perIndex)
	}
	for j, v := range got {
		if want := [2]int{j / perIndex, j % perIndex}; v != want {
			t.Fatalf("position %d: got %v, want %v", j, v, want)
		}
	}
}

// TestOrderedEmptyStreams checks that indices with no values don't stall
// the drain.
func TestOrderedEmptyStreams(t *testing.T) {
	ord := NewOrdered[int](10, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if i == 4 {
				ord.Emit(i, 42)
			}
			ord.Close(i)
		}
	}()
	var got []int
	ord.Drain(func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v, want [42]", got)
	}
}

// TestOrderedBackpressure proves a producer far ahead of the drain frontier
// blocks on its buffer instead of accumulating unboundedly, and unblocks
// once the frontier arrives.
func TestOrderedBackpressure(t *testing.T) {
	ord := NewOrdered[int](2, 1)
	blocked := make(chan struct{})
	go func() {
		ord.Emit(1, 0)
		ord.Emit(1, 1) // buffer of index 1 is full: must block until index 0 closes
		close(blocked)
		ord.Emit(1, 2)
		ord.Close(1)
	}()
	time.Sleep(50 * time.Millisecond) // give the producer time to (wrongly) run ahead
	select {
	case <-blocked:
		t.Fatal("producer ran past a full buffer with the frontier behind it")
	default:
	}
	ord.Close(0)
	var got []int
	ord.Drain(func(v int) { got = append(got, v) })
	<-blocked
	if len(got) != 3 {
		t.Fatalf("drained %v", got)
	}
}

// TestOrderedLazyAllocation pins the lazy-stream contract: indices closed
// without emitting never materialize a channel, emitting indices allocate
// exactly one, and Drain releases each stream after exhausting it — so
// buffer memory follows the values in flight, not the index count.
func TestOrderedLazyAllocation(t *testing.T) {
	const n = 1 << 12
	ord := NewOrdered[int](n, 64)
	live := func() int {
		ord.mu.Lock()
		defer ord.mu.Unlock()
		c := 0
		for _, ch := range ord.chans {
			if ch != nil {
				c++
			}
		}
		return c
	}
	if got := live(); got != 0 {
		t.Fatalf("NewOrdered materialized %d channels up front, want 0", got)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if i%97 == 0 {
				ord.Emit(i, i) // every 97th index carries one value
			}
			ord.Close(i)
		}
	}()
	drained := 0
	ord.Drain(func(v int) {
		if v%97 != 0 {
			t.Errorf("unexpected value %d", v)
		}
		drained++
	})
	wg.Wait()
	if want := (n + 96) / 97; drained != want {
		t.Fatalf("drained %d values, want %d", drained, want)
	}
	if got := live(); got != 0 {
		t.Fatalf("%d channels still live after Drain, want 0 (streams must be released)", got)
	}
}
