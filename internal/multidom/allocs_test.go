package multidom

// Allocation regression tests for the query hot paths: once an Enumerator
// is warmed up, reachability checks, definition-5 verification and
// reduced-graph dominator extraction must not allocate — they run once per
// node of the seed-set search tree, and per-call allocation used to
// dominate dominator-rich graphs.

import (
	"math/rand"
	"testing"

	"polyise/internal/bitset"
)

func TestQueryPathsAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randDFG(r, 60)
	e := New(g)

	// Pick a query output with a non-trivial ancestor cone.
	o := -1
	for v := g.N() - 1; v >= 0; v-- {
		if !g.IsForbidden(v) && g.ReachTo(v).Count() >= 4 {
			o = v
			break
		}
	}
	if o < 0 {
		t.Skip("no suitable output in random graph")
	}
	anc := g.ReachTo(o).Members()
	seeds := bitset.New(e.aug.N)
	seeds.Add(anc[0])
	V := []int{anc[0], anc[len(anc)-1]}
	doms := make([]int, 0, g.N())

	// Warm-up: grows the solver arena, BFS queue and scratch sets.
	e.Separates(seeds, o)
	e.Check(V, o)
	doms, _ = e.ReducedDominators(seeds, o, doms[:0])
	_ = doms

	allocs := testing.AllocsPerRun(20, func() {
		e.Separates(seeds, o)
		e.Check(V, o)
		doms, _ = e.ReducedDominators(seeds, o, doms[:0])
	})
	if allocs > 0 {
		t.Fatalf("query paths allocated %.1f times per run, want 0", allocs)
	}
}
