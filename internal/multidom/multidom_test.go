package multidom

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// ladder builds the reference graph used across the test suite:
//
//	a(0)  b(1)  c(2)    roots
//	  \   / \   /
//	   d(3)  e(4)
//	    \   / \
//	     f(5)  g(6)
//	      \   /
//	       h(7)
func ladder(t testing.TB) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	c := g.MustAddNode(dfg.OpVar, "c")
	d := g.MustAddNode(dfg.OpAdd, "d", a, b)
	e := g.MustAddNode(dfg.OpMul, "e", b, c)
	f := g.MustAddNode(dfg.OpSub, "f", d, e)
	gg := g.MustAddNode(dfg.OpXor, "g", e)
	h := g.MustAddNode(dfg.OpOr, "h", f, gg)
	_, _ = gg, h
	g.MustFreeze()
	return g
}

// naiveCheck verifies definition 5 with plain path enumeration on the
// augmented graph, independent of the Enumerator's BFS helpers.
func naiveCheck(g *dfg.Graph, V []int, o int) bool {
	aug := g.Augmented()
	inV := make(map[int]bool, len(V))
	for _, v := range V {
		if v == o || v >= g.N() || inV[v] {
			return false
		}
		inV[v] = true
	}
	if len(V) == 0 {
		return false
	}
	// All simple paths source→o (DAG: all paths are simple).
	var paths [][]int
	var walk func(v int, path []int)
	walk = func(v int, path []int) {
		path = append(path, v)
		if v == o {
			cp := make([]int, len(path))
			copy(cp, path)
			paths = append(paths, cp)
			return
		}
		for _, s := range aug.Succs[v] {
			walk(int(s), path)
		}
	}
	walk(aug.Source, nil)
	// Condition 1: every path meets V.
	for _, p := range paths {
		hit := false
		for _, x := range p {
			if inV[x] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	// Condition 2: each w has a path containing w and no other member.
	for w := range inV {
		ok := false
		for _, p := range paths {
			hasW, hasOther := false, false
			for _, x := range p {
				if x == w {
					hasW = true
				} else if inV[x] {
					hasOther = true
				}
			}
			if hasW && !hasOther {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestCheckAgainstNaive(t *testing.T) {
	g := ladder(t)
	e := New(g)
	// Exhaustive over all subsets of size ≤ 3 of ancestors for each target.
	for o := 0; o < g.N(); o++ {
		anc := g.ReachTo(o).Members()
		subsets := enumerateSubsets(anc, 3)
		for _, V := range subsets {
			got := e.Check(V, o)
			want := naiveCheck(g, V, o)
			if got != want {
				t.Errorf("Check(%v, %d) = %v, want %v", V, o, got, want)
			}
		}
	}
}

func TestCheckRejectsDegenerate(t *testing.T) {
	g := ladder(t)
	e := New(g)
	if e.Check(nil, 7) {
		t.Error("empty set accepted")
	}
	if e.Check([]int{7}, 7) {
		t.Error("set containing target accepted")
	}
	if e.Check([]int{1, 1}, 7) {
		t.Error("duplicate members accepted")
	}
	if e.Check([]int{g.N()}, 7) {
		t.Error("virtual source accepted as member")
	}
}

func TestSeparates(t *testing.T) {
	g := ladder(t)
	e := New(g)
	n := g.Augmented().N
	// {f, g} separates h (both preds blocked).
	if !e.Separates(bitset.FromMembers(n, 5, 6), 7) {
		t.Error("{f,g} should separate h")
	}
	// {f} alone does not (path via e→g→h).
	if e.Separates(bitset.FromMembers(n, 5), 7) {
		t.Error("{f} should not separate h")
	}
	// {e} separates g.
	if !e.Separates(bitset.FromMembers(n, 4), 6) {
		t.Error("{e} should separate g")
	}
}

func TestEnumerateLadder(t *testing.T) {
	g := ladder(t)
	e := New(g)
	// Dominators of h (node 7) with ≤ 2 members. Ancestors: 0..6.
	got := e.Enumerate(7, 2)
	want := bruteEnumerate(g, e, 7, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Enumerate(h,2):\n got  %v\n want %v", got, want)
	}
	// Spot-check members: {f,g} must dominate h; {e} alone must NOT dominate
	// h (path a→d→f→h avoids e); {d,e} must dominate h.
	if !containsSet(got, []int{5, 6}) {
		t.Error("{f,g} missing")
	}
	if containsSet(got, []int{4}) {
		t.Error("{e} wrongly included")
	}
	if !containsSet(got, []int{3, 4}) {
		t.Error("{d,e} missing")
	}
}

func TestEnumerateSingleVertexMatchesIdomChain(t *testing.T) {
	// Chain a→b→c→d: dominators of d are b and c ({a} is a root: also a
	// dominator as a single vertex? a is an ancestor; every path passes a;
	// so {a}, {b}, {c} all dominate d).
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpNot, "b", a)
	c := g.MustAddNode(dfg.OpNeg, "c", b)
	d := g.MustAddNode(dfg.OpAbs, "d", c)
	g.MustFreeze()
	e := New(g)
	got := e.Enumerate(d, 1)
	want := [][]int{{a}, {b}, {c}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Enumerate(d,1) = %v, want %v", got, want)
	}
}

func TestEnumerateDoesNotReturnSupersets(t *testing.T) {
	g := ladder(t)
	e := New(g)
	for _, D := range e.Enumerate(7, 3) {
		// No proper subset of a reported dominator may itself separate.
		for _, sub := range enumerateSubsets(D, len(D)-1) {
			if len(sub) == 0 || len(sub) == len(D) {
				continue
			}
			vs := bitset.New(g.Augmented().N)
			for _, v := range sub {
				vs.Add(v)
			}
			if e.Separates(vs, 7) {
				t.Errorf("dominator %v has separating proper subset %v", D, sub)
			}
		}
	}
}

func TestReducedDominators(t *testing.T) {
	g := ladder(t)
	e := New(g)
	n := g.Augmented().N
	// With no seeds, h (7) has no single-vertex user dominator (two disjoint
	// path families through f and g do share e? path a→d→f→h avoids e; and
	// every path through... no single vertex covers all).
	doms, reachable := e.ReducedDominators(bitset.New(n), 7, nil)
	if !reachable {
		t.Fatal("h unreachable with no seeds")
	}
	if len(doms) != 0 {
		t.Fatalf("unexpected single dominators of h: %v", doms)
	}
	// Blocking f: all remaining paths to h go through e then g.
	doms, reachable = e.ReducedDominators(bitset.FromMembers(n, 5), 7, nil)
	if !reachable {
		t.Fatal("h should stay reachable when f blocked")
	}
	sort.Ints(doms)
	if want := []int{4, 6}; !reflect.DeepEqual(doms, want) {
		t.Fatalf("reduced dominators = %v, want %v", doms, want)
	}
	// Blocking both preds separates h.
	_, reachable = e.ReducedDominators(bitset.FromMembers(n, 5, 6), 7, nil)
	if reachable {
		t.Fatal("h should be unreachable with {f,g} blocked")
	}
}

// bruteEnumerate lists generalized dominators by checking every subset.
func bruteEnumerate(g *dfg.Graph, e *Enumerator, o, k int) [][]int {
	anc := g.ReachTo(o).Members()
	var out [][]int
	for _, V := range enumerateSubsets(anc, k) {
		if len(V) > 0 && e.Check(V, o) {
			out = append(out, V)
		}
	}
	sortSets(out)
	return out
}

func enumerateSubsets(items []int, maxSize int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
		}
		if len(cur) >= maxSize {
			return
		}
		for i := start; i < len(items); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	return out
}

func sortSets(sets [][]int) {
	sort.Slice(sets, func(i, j int) bool {
		return lessSets(sets[i], sets[j])
	})
}

func containsSet(sets [][]int, want []int) bool {
	for _, s := range sets {
		if reflect.DeepEqual(s, want) {
			return true
		}
	}
	return false
}

// randDFG builds a small random DAG with occasional forbidden loads.
func randDFG(r *rand.Rand, n int) *dfg.Graph {
	g := dfg.New()
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(4) == 0 {
			g.MustAddNode(dfg.OpVar, "")
			continue
		}
		k := 1 + r.Intn(2)
		preds := make([]int, 0, k)
		for j := 0; j < k; j++ {
			preds = append(preds, r.Intn(i))
		}
		op := dfg.OpAdd
		if r.Intn(8) == 0 {
			op = dfg.OpLoad
		}
		id := g.MustAddNode(op, "", preds...)
		if op == dfg.OpLoad {
			if err := g.MarkForbidden(id); err != nil {
				panic(err)
			}
		}
	}
	g.MustFreeze()
	return g
}

func TestQuickEnumerateMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 4+r.Intn(10))
		e := New(g)
		o := r.Intn(g.N())
		k := 1 + r.Intn(3)
		got := e.Enumerate(o, k)
		want := bruteEnumerate(g, e, o, k)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed=%d o=%d k=%d\n got  %v\n want %v", seed, o, k, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCheckMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randDFG(r, 3+r.Intn(8))
		e := New(g)
		o := r.Intn(g.N())
		anc := g.ReachTo(o).Members()
		if len(anc) == 0 {
			return true
		}
		for trial := 0; trial < 10; trial++ {
			k := 1 + r.Intn(3)
			V := map[int]bool{}
			for len(V) < k && len(V) < len(anc) {
				V[anc[r.Intn(len(anc))]] = true
			}
			var vs []int
			for v := range V {
				vs = append(vs, v)
			}
			sort.Ints(vs)
			if e.Check(vs, o) != naiveCheck(g, vs, o) {
				t.Logf("seed=%d o=%d V=%v", seed, o, vs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
