package multidom

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"polyise/internal/workload"
)

// TestEnumerateMatchesCheckExhaustively pins Enumerate against its own
// definition: on small random graphs, for every vertex o, the enumerated
// dominator sets of size ≤ maxSize must be exactly the subsets of o's
// candidate pool (its augmented-graph ancestors, ReachTo) that Check
// accepts. The Dubrova seed-set generation, the redundant-superset
// filtering and the digest-based dedup all sit between those two
// functions, so any pruning bug shows up as a missing or extra set here.
func TestEnumerateMatchesCheckExhaustively(t *testing.T) {
	const maxSize = 3
	for seed := int64(0); seed < 12; seed++ {
		n := 8 + int(seed)
		g := workload.MiBenchLike(rand.New(rand.NewSource(seed)), n, workload.DefaultProfile())
		e := New(g)
		for o := 0; o < g.N(); o++ {
			if g.IsRoot(o) {
				continue
			}
			cand := g.ReachTo(o).Members()
			want := bruteForceDominators(e, cand, o, maxSize)
			got := e.Enumerate(o, maxSize)
			for _, s := range got {
				sort.Ints(s)
			}
			sortSets(got)
			sortSets(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d, n %d, o %d:\nEnumerate = %v\nbrute     = %v",
					seed, n, o, got, want)
			}
		}
	}
}

// bruteForceDominators returns every subset of cand with 1..maxSize
// members that Check accepts, each sorted ascending.
func bruteForceDominators(e *Enumerator, cand []int, o, maxSize int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 && len(cur) <= maxSize {
			if e.Check(cur, o) {
				out = append(out, append([]int(nil), cur...))
			}
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(cand); i++ {
			cur = append(cur, cand[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
