// Package multidom enumerates multiple-vertex (generalized) dominators of
// data-flow graph vertices.
//
// Generalized dominators were introduced by Gupta (POPL 1992); definition 5
// of the paper: a set V dominates o iff (1) every path from the root to o
// meets V, and (2) every w ∈ V lies on at least one root→o path that avoids
// the rest of V. Dubrova et al. (ISCAS 2004) showed k-vertex dominators can
// be enumerated in O(n^k): fix a seed set of k−1 vertices, delete it (with
// everything it dominates) from the graph, and read the single-vertex
// dominators of o off a Lengauer–Tarjan run on the reduced graph (§5.2).
//
// The Enumerator wraps a reusable solver over the augmented graph of one
// DFG. Package enum drives the same machinery incrementally with the §5.3
// prunings; the full enumeration here is the reference implementation used
// by tests and by standalone dominator queries.
package multidom

import (
	"sort"
	"strconv"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
)

// Enumerator answers generalized-dominator queries for one frozen graph.
// Not safe for concurrent use.
type Enumerator struct {
	g      *dfg.Graph
	aug    *dfg.Aug
	solver *domtree.Solver

	// scratch
	blocked *bitset.Set
	visited *bitset.Set
	queue   []int32
}

// New creates an Enumerator for g (which must be frozen).
func New(g *dfg.Graph) *Enumerator {
	aug := g.Augmented()
	return &Enumerator{
		g:       g,
		aug:     aug,
		solver:  domtree.ForwardSolver(g),
		blocked: bitset.New(aug.N),
		visited: bitset.New(aug.N),
	}
}

// Graph returns the underlying DFG.
func (e *Enumerator) Graph() *dfg.Graph { return e.g }

// reachesAvoiding reports whether `to` is reachable from `from` in the
// augmented graph when every vertex in avoid (except `from` itself) is
// blocked. from may be the virtual source.
func (e *Enumerator) reachesAvoiding(from, to int, avoid *bitset.Set) bool {
	if from == to {
		return true
	}
	e.visited.Clear()
	e.queue = e.queue[:0]
	e.visited.Add(from)
	e.queue = append(e.queue, int32(from))
	for len(e.queue) > 0 {
		v := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		for _, s := range e.aug.Succs[v] {
			si := int(s)
			if si == to {
				return true
			}
			if e.visited.Has(si) || (avoid != nil && avoid.Has(si)) {
				continue
			}
			e.visited.Add(si)
			e.queue = append(e.queue, s)
		}
	}
	return false
}

// Separates reports whether blocking V disconnects the virtual source from
// o — condition 1 of definition 5.
func (e *Enumerator) Separates(V *bitset.Set, o int) bool {
	if V.Has(o) {
		// A set containing o itself trivially "separates", but such sets are
		// not interesting dominators; treat per condition 1 literally.
		return true
	}
	return !e.reachesAvoiding(e.aug.Source, o, V)
}

// Check reports whether V is a generalized dominator of o per definition 5:
// it must separate the root from o and every member must have a private
// root→o path avoiding the other members.
func (e *Enumerator) Check(V []int, o int) bool {
	if len(V) == 0 {
		return false
	}
	vs := bitset.New(e.aug.N)
	for _, w := range V {
		if w == o || w == e.aug.Source || w == e.aug.Sink {
			return false
		}
		vs.Add(w)
	}
	if vs.Count() != len(V) {
		return false // duplicates
	}
	if !e.Separates(vs, o) {
		return false
	}
	for _, w := range V {
		vs.Remove(w)
		// Private path: source→w avoiding V\{w}, then w→o avoiding V\{w}.
		ok := e.reachesAvoiding(e.aug.Source, w, vs) && e.reachesAvoiding(w, o, vs)
		vs.Add(w)
		if !ok {
			return false
		}
	}
	return true
}

// ReducedDominators runs Lengauer–Tarjan with the given seed vertices
// blocked and appends to out every vertex u (u ≠ o, u ≠ source) that
// single-dominates o in the reduced graph: each seeds ∪ {u} is a candidate
// generalized dominator of o. If o is unreachable in the reduced graph, it
// returns (out, false): the seeds already separate o.
func (e *Enumerator) ReducedDominators(seeds *bitset.Set, o int, out []int) ([]int, bool) {
	e.solver.Run(seeds)
	if !e.solver.Reachable(o) {
		return out, false
	}
	for u := e.solver.IDom(o); u != -1 && u != e.aug.Source; u = e.solver.IDom(u) {
		out = append(out, u)
	}
	return out, true
}

// Enumerate returns every generalized dominator of o with at most maxSize
// members, each sorted ascending, in deterministic order. Candidates are
// generated with the Dubrova seed-set method and verified with Check, so
// redundant separator supersets are filtered out.
func (e *Enumerator) Enumerate(o, maxSize int) [][]int {
	if maxSize <= 0 {
		return nil
	}
	// Candidate members are the ancestors of o in the augmented graph:
	// every user-graph ancestor (forbidden vertices included — they may feed
	// a cut) but never the virtual source/sink or o itself.
	anc := e.g.ReachTo(o).Members()

	seen := make(map[string][]int)
	seeds := bitset.New(e.aug.N)
	var cur []int

	var visit func(startIdx int)
	visit = func(startIdx int) {
		doms, reachable := e.ReducedDominators(seeds, o, nil)
		if !reachable {
			// Seeds already separate o; no extension can give every member a
			// private path, so this branch is done.
			return
		}
		for _, u := range doms {
			cand := make([]int, 0, len(cur)+1)
			cand = append(cand, cur...)
			cand = append(cand, u)
			sort.Ints(cand)
			key := fmtKey(cand)
			if _, dup := seen[key]; dup {
				continue
			}
			if e.Check(cand, o) {
				seen[key] = cand
			}
		}
		if len(cur) >= maxSize-1 {
			return
		}
		for idx := startIdx; idx < len(anc); idx++ {
			a := anc[idx]
			seeds.Add(a)
			cur = append(cur, a)
			visit(idx + 1)
			cur = cur[:len(cur)-1]
			seeds.Remove(a)
		}
	}
	visit(0)

	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// fmtKey builds a canonical map key for a sorted vertex set.
func fmtKey(v []int) string {
	b := make([]byte, 0, len(v)*4)
	for _, x := range v {
		b = strconv.AppendInt(b, int64(x), 10)
		b = append(b, ',')
	}
	return string(b)
}
