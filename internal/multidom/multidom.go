// Package multidom enumerates multiple-vertex (generalized) dominators of
// data-flow graph vertices.
//
// Generalized dominators were introduced by Gupta (POPL 1992); definition 5
// of the paper: a set V dominates o iff (1) every path from the root to o
// meets V, and (2) every w ∈ V lies on at least one root→o path that avoids
// the rest of V. Dubrova et al. (ISCAS 2004) showed k-vertex dominators can
// be enumerated in O(n^k): fix a seed set of k−1 vertices, delete it (with
// everything it dominates) from the graph, and read the single-vertex
// dominators of o off a Lengauer–Tarjan run on the reduced graph (§5.2).
//
// The Enumerator wraps a reusable solver over the augmented graph of one
// DFG. Package enum drives the same machinery incrementally with the §5.3
// prunings; the full enumeration here is the reference implementation used
// by tests and by standalone dominator queries.
package multidom

import (
	"sort"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/domtree"
)

// Enumerator answers generalized-dominator queries for one frozen graph.
// Not safe for concurrent use.
//
// All query entry points run allocation-free in steady state: the solver
// reuses its arena across reduced-graph runs (domtree.Solver.Reset), and
// the traversal/check scratch below is owned by the Enumerator instead of
// being allocated per call (the AllocsPerRun regression test pins this).
type Enumerator struct {
	g      *dfg.Graph
	aug    *dfg.Aug
	solver *domtree.Solver

	// scratch
	seeds    *bitset.Set // current seed set during Enumerate
	visited  *bitset.Set // reachesAvoiding BFS marks
	queue    []int32     // reachesAvoiding BFS worklist
	checkSet *bitset.Set // Check's member set
	candBits *bitset.Set // candidate set digests for dedup
	doms     []int       // ReducedDominators result buffer
	cand     []int       // candidate member list buffer
	seen     *bitset.DigestSet
}

// New creates an Enumerator for g (which must be frozen).
func New(g *dfg.Graph) *Enumerator {
	aug := g.Augmented()
	return &Enumerator{
		g:        g,
		aug:      aug,
		solver:   domtree.ForwardSolver(g),
		seeds:    bitset.New(aug.N),
		visited:  bitset.New(aug.N),
		checkSet: bitset.New(aug.N),
		candBits: bitset.New(aug.N),
		seen:     bitset.NewDigestSet(),
	}
}

// Graph returns the underlying DFG.
func (e *Enumerator) Graph() *dfg.Graph { return e.g }

// reachesAvoiding reports whether `to` is reachable from `from` in the
// augmented graph when every vertex in avoid (except `from` itself) is
// blocked. from may be the virtual source.
func (e *Enumerator) reachesAvoiding(from, to int, avoid *bitset.Set) bool {
	if from == to {
		return true
	}
	e.visited.Clear()
	e.queue = e.queue[:0]
	e.visited.Add(from)
	e.queue = append(e.queue, int32(from))
	for len(e.queue) > 0 {
		v := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		for _, s := range e.aug.Succs[v] {
			si := int(s)
			if si == to {
				return true
			}
			if e.visited.Has(si) || (avoid != nil && avoid.Has(si)) {
				continue
			}
			e.visited.Add(si)
			e.queue = append(e.queue, s)
		}
	}
	return false
}

// Separates reports whether blocking V disconnects the virtual source from
// o — condition 1 of definition 5.
func (e *Enumerator) Separates(V *bitset.Set, o int) bool {
	if V.Has(o) {
		// A set containing o itself trivially "separates", but such sets are
		// not interesting dominators; treat per condition 1 literally.
		return true
	}
	return !e.reachesAvoiding(e.aug.Source, o, V)
}

// Check reports whether V is a generalized dominator of o per definition 5:
// it must separate the root from o and every member must have a private
// root→o path avoiding the other members.
func (e *Enumerator) Check(V []int, o int) bool {
	if len(V) == 0 {
		return false
	}
	vs := e.checkSet
	vs.Clear()
	for _, w := range V {
		if w == o || w == e.aug.Source || w == e.aug.Sink {
			return false
		}
		vs.Add(w)
	}
	if vs.Count() != len(V) {
		return false // duplicates
	}
	if !e.Separates(vs, o) {
		return false
	}
	for _, w := range V {
		vs.Remove(w)
		// Private path: source→w avoiding V\{w}, then w→o avoiding V\{w}.
		ok := e.reachesAvoiding(e.aug.Source, w, vs) && e.reachesAvoiding(w, o, vs)
		vs.Add(w)
		if !ok {
			return false
		}
	}
	return true
}

// ReducedDominators runs Lengauer–Tarjan with the given seed vertices
// blocked and appends to out every vertex u (u ≠ o, u ≠ source) that
// single-dominates o in the reduced graph: each seeds ∪ {u} is a candidate
// generalized dominator of o. If o is unreachable in the reduced graph, it
// returns (out, false): the seeds already separate o.
func (e *Enumerator) ReducedDominators(seeds *bitset.Set, o int, out []int) ([]int, bool) {
	e.solver.Run(seeds)
	if !e.solver.Reachable(o) {
		return out, false
	}
	for u := e.solver.IDom(o); u != -1 && u != e.aug.Source; u = e.solver.IDom(u) {
		out = append(out, u)
	}
	return out, true
}

// Enumerate returns every generalized dominator of o with at most maxSize
// members, each sorted ascending, in deterministic order (lexicographic on
// the sorted member lists). Candidates are generated with the Dubrova
// seed-set method and verified with Check, so redundant separator supersets
// are filtered out. Candidate sets are deduplicated by their Hash128 digest
// in a reused open-addressing DigestSet — the string-keyed map this
// replaces allocated a key per candidate and dominated the enumeration on
// dominator-rich graphs — and a candidate is digested exactly once even
// when the seed-set method regenerates it, whether or not it passed Check.
func (e *Enumerator) Enumerate(o, maxSize int) [][]int {
	if maxSize <= 0 {
		return nil
	}
	// Candidate members are the ancestors of o in the augmented graph:
	// every user-graph ancestor (forbidden vertices included — they may feed
	// a cut) but never the virtual source/sink or o itself.
	anc := e.g.ReachTo(o).Members()

	e.seen.Reset()
	seeds := e.seeds
	seeds.Clear()
	var out [][]int
	var cur []int

	var visit func(startIdx int)
	visit = func(startIdx int) {
		var reachable bool
		// e.doms is consumed before the recursion below reuses its backing.
		e.doms, reachable = e.ReducedDominators(seeds, o, e.doms[:0])
		if !reachable {
			// Seeds already separate o; no extension can give every member a
			// private path, so this branch is done.
			return
		}
		for _, u := range e.doms {
			e.candBits.Copy(seeds)
			e.candBits.Add(u)
			if !e.seen.Insert(e.candBits.Hash128()) {
				continue
			}
			cand := append(e.cand[:0], cur...)
			cand = append(cand, u)
			sort.Ints(cand)
			e.cand = cand
			if e.Check(cand, o) {
				out = append(out, append([]int(nil), cand...))
			}
		}
		if len(cur) >= maxSize-1 {
			return
		}
		for idx := startIdx; idx < len(anc); idx++ {
			a := anc[idx]
			seeds.Add(a)
			cur = append(cur, a)
			visit(idx + 1)
			cur = cur[:len(cur)-1]
			seeds.Remove(a)
		}
	}
	visit(0)

	sort.Slice(out, func(i, j int) bool { return lessSets(out[i], out[j]) })
	return out
}

// lessSets orders sorted vertex sets lexicographically by their members.
func lessSets(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
