package graphio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polyise/internal/dfg"
)

// FuzzRead hardens the text-format parser against arbitrary input — the
// corpus sharding pipeline feeds whole directories of block files to
// workers, so a malformed file must come back as an error, never a panic.
// On accepted inputs the parser is additionally held to the round-trip
// contract: Write∘Read must reproduce the graph exactly.
//
// Seed corpus: the committed files under testdata/fuzz/FuzzRead (run by
// plain `go test` too), the hand-written fixtures under testdata/, plus the
// inline seeds below. Extend it with `go test -fuzz=FuzzRead ./internal/graphio`.
func FuzzRead(f *testing.F) {
	f.Add("node var name=a\nnode var name=b\nnode add name=s preds=0,1\n")
	f.Add("# comment\n\nnode const const=42\nnode load preds=0 forbidden\n")
	f.Add("node var\nnode neg preds=0 liveout\nnode store preds=0,1\n")
	f.Add("node mul preds=0,0\n")   // bad pred: refers to itself
	f.Add("node add preds=-1,0\n")  // negative pred
	f.Add("node bogus\n")           // unknown op
	f.Add("node const const=1e9\n") // malformed integer
	f.Add("nodeadd\nnode\n node var x=1\n")
	f.Add("node var name=\xff\xfe\n") // non-UTF8 name
	f.Add(strings.Repeat("node var\n", 100))
	// Limit-straddling seeds for the ReadLimited leg below (fuzzLimits caps
	// nodes at 8, preds at 4, lines at 96 bytes): exactly at each cap, one
	// past each cap, and a newline-free flood that must be rejected without
	// being buffered whole.
	f.Add(strings.Repeat("node var\n", 8))
	f.Add(strings.Repeat("node var\n", 9))
	f.Add("node var\nnode var\nnode var\nnode var\nnode call preds=0,1,2,3\n")
	f.Add("node var\nnode var\nnode var\nnode var\nnode call preds=0,1,2,3,0\n")
	f.Add("node var name=" + strings.Repeat("p", 96-len("node var name=")) + "\n")
	f.Add("node var name=" + strings.Repeat("p", 97-len("node var name=")) + "\n")
	f.Add("# " + strings.Repeat("c", 200))
	for _, fixture := range readFixtures(f) {
		f.Add(fixture)
	}

	f.Fuzz(func(t *testing.T, input string) {
		// The parser has no size cap by design (callers feed trusted
		// corpora); bound the fuzz exploration instead so pathological
		// inputs exercise parsing, not the O(n²) reachability closure of
		// Freeze on a hundred-thousand-node graph.
		if len(input) > 1<<16 {
			t.Skip()
		}
		fuzzCheckLimited(t, input)
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly
		}
		if g == nil || !g.Frozen() {
			t.Fatal("Read returned a nil or unfrozen graph without error")
		}

		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		g2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of written graph failed: %v\n%s", err, buf.String())
		}
		assertSameGraph(t, g, g2)
	})
}

// fuzzLimits are the caps the hardened-parser fuzz leg runs under; small
// enough that the straddling seeds above actually cross them.
var fuzzLimits = Limits{MaxNodes: 8, MaxPreds: 4, MaxLineBytes: 96}

// fuzzCheckLimited holds ReadLimited to the network-boundary contract on
// arbitrary input: never panic, reject over-limit inputs with a *LimitError
// naming a real cap, and agree with the unlimited parser whenever the input
// is inside every cap (the limits must be pure rejection, no semantic
// drift).
func fuzzCheckLimited(t *testing.T, input string) {
	t.Helper()
	g, err := ReadLimited(strings.NewReader(input), fuzzLimits)
	var le *LimitError
	if errors.As(err, &le) {
		switch le.What {
		case "nodes", "preds", "line":
		default:
			t.Fatalf("LimitError names unknown dimension %q", le.What)
		}
		if le.Got <= le.Limit {
			t.Fatalf("LimitError %+v reports Got within Limit", le)
		}
		return
	}
	inside := len(input) <= fuzzLimits.MaxNodes*fuzzLimits.MaxLineBytes && withinLimits(input, fuzzLimits)
	if inside {
		gu, eu := Read(strings.NewReader(input))
		if (err == nil) != (eu == nil) {
			t.Fatalf("within limits, ReadLimited err=%v but Read err=%v", err, eu)
		}
		if err == nil {
			assertSameGraph(t, g, gu)
		}
	}
}

// withinLimits reports whether input is strictly inside every fuzzLimits
// cap, computed independently of the parser.
func withinLimits(input string, lim Limits) bool {
	nodes := 0
	for _, line := range strings.Split(input, "\n") {
		if len(line) > lim.MaxLineBytes {
			return false
		}
		trimmed := strings.TrimSpace(line)
		if fields := strings.Fields(trimmed); len(fields) > 0 && fields[0] == "node" {
			nodes++
			for _, fld := range fields {
				if rest, ok := strings.CutPrefix(fld, "preds="); ok {
					if strings.Count(rest, ",")+1 > lim.MaxPreds {
						return false
					}
				}
			}
		}
	}
	return nodes <= lim.MaxNodes
}

// readFixtures loads every committed .dfg fixture as an extra seed.
func readFixtures(f *testing.F) []string {
	f.Helper()
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.dfg"))
	var out []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("fixture %s: %v", p, err)
		}
		out = append(out, string(data))
	}
	return out
}

// assertSameGraph compares the structural content the text format carries.
// Write canonicalizes some sugar (it may drop an unwritable liveout mark or
// a redundant forbidden on a call), so the comparison uses the frozen
// graph's semantics, which is what every consumer reads.
func assertSameGraph(t *testing.T, a, b *dfg.Graph) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("round trip changed node count: %d -> %d", a.N(), b.N())
	}
	for v := 0; v < a.N(); v++ {
		if a.Op(v) != b.Op(v) {
			t.Fatalf("node %d: op %v -> %v", v, a.Op(v), b.Op(v))
		}
		if a.Name(v) != b.Name(v) {
			t.Fatalf("node %d: name %q -> %q", v, a.Name(v), b.Name(v))
		}
		ap, bp := a.Preds(v), b.Preds(v)
		if len(ap) != len(bp) {
			t.Fatalf("node %d: %d preds -> %d", v, len(ap), len(bp))
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("node %d pred %d: %d -> %d", v, i, ap[i], bp[i])
			}
		}
		if a.IsForbidden(v) != b.IsForbidden(v) {
			t.Fatalf("node %d: forbidden %v -> %v", v, a.IsForbidden(v), b.IsForbidden(v))
		}
		if a.IsLiveOut(v) != b.IsLiveOut(v) {
			t.Fatalf("node %d: liveout %v -> %v", v, a.IsLiveOut(v), b.IsLiveOut(v))
		}
		switch a.Op(v) {
		case dfg.OpConst, dfg.OpCustom, dfg.OpExtract:
			if a.ConstValue(v) != b.ConstValue(v) {
				t.Fatalf("node %d: const %d -> %d", v, a.ConstValue(v), b.ConstValue(v))
			}
		}
	}
}
