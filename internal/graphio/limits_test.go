package graphio

import (
	"errors"
	"strings"
	"testing"
)

// lineOf builds a node line of exactly n bytes (padding via the name).
func lineOf(n int, t *testing.T) string {
	t.Helper()
	base := "node var name="
	if n < len(base)+1 {
		t.Fatalf("lineOf(%d): too short for a node line", n)
	}
	return base + strings.Repeat("a", n-len(base))
}

func TestReadLimitedNodeCap(t *testing.T) {
	src := strings.Repeat("node var\n", 10)
	if _, err := ReadLimited(strings.NewReader(src), Limits{MaxNodes: 10}); err != nil {
		t.Fatalf("10 nodes under a 10-node cap rejected: %v", err)
	}
	_, err := ReadLimited(strings.NewReader(src+"node var\n"), Limits{MaxNodes: 10})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("11 nodes under a 10-node cap: err = %v, want *LimitError", err)
	}
	if le.What != "nodes" || le.Limit != 10 || le.Got != 11 || le.Line != 11 {
		t.Fatalf("LimitError = %+v, want nodes/10/11 at line 11", le)
	}
	if le.Error() == "" {
		t.Fatal("empty LimitError string")
	}
}

func TestReadLimitedPredCap(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 4; i++ {
		b.WriteString("node var\n")
	}
	b.WriteString("node add preds=0,1\n")
	ok := b.String() + "node call preds=0,1,2,3\n"
	if _, err := ReadLimited(strings.NewReader(ok), Limits{MaxPreds: 4}); err != nil {
		t.Fatalf("4 preds under a 4-pred cap rejected: %v", err)
	}
	bad := b.String() + "node call preds=0,1,2,3,4\n"
	_, err := ReadLimited(strings.NewReader(bad), Limits{MaxPreds: 4})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("5 preds under a 4-pred cap: err = %v, want *LimitError", err)
	}
	if le.What != "preds" || le.Limit != 4 || le.Got != 5 || le.Line != 6 {
		t.Fatalf("LimitError = %+v, want preds/4/5 at line 6", le)
	}
}

func TestReadLimitedLineCap(t *testing.T) {
	// Exactly at the cap: accepted.
	at := lineOf(64, t) + "\n"
	if _, err := ReadLimited(strings.NewReader(at), Limits{MaxLineBytes: 64}); err != nil {
		t.Fatalf("64-byte line under a 64-byte cap rejected: %v", err)
	}
	// One byte over: the scanner's bounded buffer overflows and the error
	// must be the typed limit, not a raw bufio.ErrTooLong.
	over := lineOf(65, t) + "\n"
	_, err := ReadLimited(strings.NewReader(over), Limits{MaxLineBytes: 64})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("65-byte line under a 64-byte cap: err = %v, want *LimitError", err)
	}
	if le.What != "line" || le.Limit != 64 {
		t.Fatalf("LimitError = %+v, want line/64", le)
	}
	// A newline-free flood must also be rejected without buffering it all:
	// the cap, not the input size, bounds the scanner buffer.
	flood := strings.Repeat("x", 1<<20)
	if _, err := ReadLimited(strings.NewReader(flood), Limits{MaxLineBytes: 128}); !errors.As(err, &le) {
		t.Fatalf("newline-free flood: err = %v, want *LimitError", err)
	}
	// A comment line over the cap is rejected too — limit checks run before
	// the comment skip, so hostile padding cannot hide in comments.
	if _, err := ReadLimited(strings.NewReader("# "+strings.Repeat("c", 200)+"\nnode var\n"),
		Limits{MaxLineBytes: 64}); !errors.As(err, &le) {
		t.Fatalf("oversized comment: err = %v, want *LimitError", err)
	}
}

func TestReadLimitedZeroValueIsUnlimited(t *testing.T) {
	src := strings.Repeat("node var\n", 500) + "node call preds=" +
		strings.Join(strings.Fields(strings.Repeat("0 ", 100)), ",") + "\n"
	g, err := ReadLimited(strings.NewReader(src), Limits{})
	if err != nil {
		t.Fatalf("zero-value Limits rejected valid input: %v", err)
	}
	if g.N() != 501 {
		t.Fatalf("parsed %d nodes, want 501", g.N())
	}
}
