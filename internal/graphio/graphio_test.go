package graphio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

func sample(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	c := g.MustAddNode(dfg.OpConst, "")
	if err := g.SetConst(c, 42); err != nil {
		t.Fatal(err)
	}
	ld := g.MustAddNode(dfg.OpLoad, "ld", a)
	x := g.MustAddNode(dfg.OpAdd, "x", ld, c)
	y := g.MustAddNode(dfg.OpMul, "y", x, x)
	_ = y
	if err := g.MarkForbidden(ld); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkLiveOut(x); err != nil {
		t.Fatal(err)
	}
	g.MustFreeze()
	return g
}

func TestRoundTrip(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualGraphs(t, g, g2)
}

func assertEqualGraphs(t *testing.T, g, g2 *dfg.Graph) {
	t.Helper()
	if g2.N() != g.N() {
		t.Fatalf("N = %d, want %d", g2.N(), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g2.Op(v) != g.Op(v) {
			t.Errorf("node %d op = %v, want %v", v, g2.Op(v), g.Op(v))
		}
		if g2.Name(v) != g.Name(v) {
			t.Errorf("node %d name = %q, want %q", v, g2.Name(v), g.Name(v))
		}
		if len(g2.Preds(v)) != len(g.Preds(v)) {
			t.Errorf("node %d preds = %v, want %v", v, g2.Preds(v), g.Preds(v))
			continue
		}
		for i, p := range g.Preds(v) {
			if g2.Preds(v)[i] != p {
				t.Errorf("node %d pred %d = %d, want %d", v, i, g2.Preds(v)[i], p)
			}
		}
		if g2.IsUserForbidden(v) != g.IsUserForbidden(v) {
			t.Errorf("node %d forbidden mismatch", v)
		}
		if g2.IsLiveOut(v) != g.IsLiveOut(v) {
			t.Errorf("node %d liveout mismatch", v)
		}
		if g.Op(v) == dfg.OpConst && g2.ConstValue(v) != g.ConstValue(v) {
			t.Errorf("node %d const = %d, want %d", v, g2.ConstValue(v), g.ConstValue(v))
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad keyword", "vertex add\n"},
		{"unknown op", "node frobnicate\n"},
		{"bad pred", "node var\nnode add preds=zero\n"},
		{"forward pred", "node add preds=5\n"},
		{"unknown attr", "node var wat\n"},
		{"bad const", "node const const=abc\n"},
		{"empty graph", "# nothing\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	in := `
# a comment

node var name=a
node not preds=0
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.Op(1) != dfg.OpNot {
		t.Fatalf("parsed wrong graph: n=%d", g.N())
	}
}

func TestWriteDOT(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	hl := bitset.FromMembers(g.N(), 3)
	if err := WriteDOT(&buf, g, DOTOptions{Highlight: hl, Name: "test"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"test\"",
		"shape=invtriangle",      // root
		"fillcolor=\"#ffcccc\"",  // forbidden load
		"fillcolor=\"#cce5ff\"",  // highlighted node
		"n0 -> n2;", "n3 -> n4;", // edges
		"label=\"1: 42\"", // const label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := dfg.New()
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			if i == 0 || r.Intn(4) == 0 {
				g.MustAddNode(dfg.OpVar, "")
				continue
			}
			id := g.MustAddNode(dfg.OpAdd, "", r.Intn(i), r.Intn(i))
			if r.Intn(6) == 0 {
				if err := g.MarkForbidden(id); err != nil {
					panic(err)
				}
			}
		}
		g.MustFreeze()
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if g2.IsUserForbidden(v) != g.IsUserForbidden(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
