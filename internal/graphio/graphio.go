// Package graphio serializes data-flow graphs to a line-oriented text
// format and exports them to Graphviz DOT for inspection.
//
// The text format is one node per line, in topological (construction)
// order:
//
//	# comment
//	node <op> [name=<n>] [preds=<i>,<j>,...] [const=<v>] [forbidden] [liveout]
//
// Node ids are implicit (0-based line order), which makes hand-written
// fixtures easy and guarantees a topological construction order.
package graphio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Write serializes g in the text format. The graph must be frozen.
func Write(w io.Writer, g *dfg.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# polyise dfg: %d nodes, %d edges\n", g.N(), g.NumEdges())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "node %s", g.Op(v))
		if n := g.Name(v); n != "" {
			fmt.Fprintf(bw, " name=%s", n)
		}
		if preds := g.Preds(v); len(preds) > 0 {
			parts := make([]string, len(preds))
			for i, p := range preds {
				parts[i] = strconv.Itoa(p)
			}
			fmt.Fprintf(bw, " preds=%s", strings.Join(parts, ","))
		}
		switch g.Op(v) {
		case dfg.OpConst, dfg.OpCustom, dfg.OpExtract:
			// Constants carry their literal, custom instructions their
			// latency, extracts their result index.
			fmt.Fprintf(bw, " const=%d", g.ConstValue(v))
		}
		if g.IsUserForbidden(v) && g.Op(v) != dfg.OpCall {
			fmt.Fprint(bw, " forbidden")
		}
		if g.IsLiveOut(v) && len(g.Succs(v)) > 0 {
			fmt.Fprint(bw, " liveout")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Limits caps what ReadLimited will accept before it stops parsing with a
// typed *LimitError. The zero value means "no limit" for every field —
// Read's historical trusted-corpus behaviour — while network-facing callers
// (the polyised session layer) set hard caps so one hostile submission
// cannot exhaust the process: Freeze builds O(n²)-bit reachability closures,
// so the node cap is the one that actually bounds memory.
type Limits struct {
	// MaxNodes caps the number of node lines (graph vertices).
	MaxNodes int
	// MaxPreds caps the operand count of a single node (entries in one
	// preds= list).
	MaxPreds int
	// MaxLineBytes caps the byte length of one input line, comments
	// included. Also bounds the scanner's buffer, so memory for a single
	// line is capped even when the input never contains a newline.
	MaxLineBytes int
}

// LimitError reports an input that exceeded a Limits cap. It identifies the
// exceeded dimension so servers can answer with a precise "payload too
// large" instead of a generic parse failure.
type LimitError struct {
	What  string // "nodes", "preds", or "line"
	Limit int    // the configured cap
	Got   int    // the observed value (for "line": a lower bound)
	Line  int    // 1-based input line, 0 when not attributable to one
}

func (e *LimitError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("graphio: line %d: %s limit exceeded (%d > %d)", e.Line, e.What, e.Got, e.Limit)
	}
	return fmt.Sprintf("graphio: %s limit exceeded (%d > %d)", e.What, e.Got, e.Limit)
}

// Read parses the text format and returns a frozen graph. No size caps are
// applied — callers feed trusted corpora; the network boundary goes through
// ReadLimited.
func Read(r io.Reader) (*dfg.Graph, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited is Read with hard input caps: parsing stops with a
// *LimitError as soon as the node count, a node's operand count, or a
// line's byte length exceeds the corresponding Limits field (zero fields
// are unlimited). The caps are enforced before the offending element is
// materialized — a line longer than MaxLineBytes is never buffered whole,
// and the node that would exceed MaxNodes is never added — so peak memory
// is bounded by the caps, not by the input.
func ReadLimited(r io.Reader, lim Limits) (*dfg.Graph, error) {
	g := dfg.New()
	sc := bufio.NewScanner(r)
	bufCap := 1 << 20
	if lim.MaxLineBytes > 0 && lim.MaxLineBytes+1 < bufCap {
		// One byte of headroom: a line of exactly MaxLineBytes bytes must
		// still fit so it parses, while MaxLineBytes+1 overflows the buffer
		// and is reported as a limit violation below.
		bufCap = lim.MaxLineBytes + 1
	}
	sc.Buffer(make([]byte, 0, 64), bufCap)
	lineNo := 0
	nodes := 0
	for sc.Scan() {
		lineNo++
		if lim.MaxLineBytes > 0 && len(sc.Bytes()) > lim.MaxLineBytes {
			return nil, &LimitError{What: "line", Limit: lim.MaxLineBytes, Got: len(sc.Bytes()), Line: lineNo}
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "node" || len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: expected \"node <op> ...\"", lineNo)
		}
		nodes++
		if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
			return nil, &LimitError{What: "nodes", Limit: lim.MaxNodes, Got: nodes, Line: lineNo}
		}
		op := dfg.OpFromName(fields[1])
		if !op.Valid() {
			return nil, fmt.Errorf("graphio: line %d: unknown op %q", lineNo, fields[1])
		}
		var (
			name      string
			preds     []int
			constVal  int64
			hasConst  bool
			forbidden bool
			liveout   bool
		)
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "name="):
				name = f[len("name="):]
			case strings.HasPrefix(f, "preds="):
				list := strings.Split(f[len("preds="):], ",")
				if lim.MaxPreds > 0 && len(list) > lim.MaxPreds {
					return nil, &LimitError{What: "preds", Limit: lim.MaxPreds, Got: len(list), Line: lineNo}
				}
				for _, p := range list {
					id, err := strconv.Atoi(p)
					if err != nil {
						return nil, fmt.Errorf("graphio: line %d: bad pred %q", lineNo, p)
					}
					preds = append(preds, id)
				}
			case strings.HasPrefix(f, "const="):
				v, err := strconv.ParseInt(f[len("const="):], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad const %q", lineNo, f)
				}
				constVal, hasConst = v, true
			case f == "forbidden":
				forbidden = true
			case f == "liveout":
				liveout = true
			default:
				return nil, fmt.Errorf("graphio: line %d: unknown attribute %q", lineNo, f)
			}
		}
		id, err := g.AddNode(op, name, preds...)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
		}
		if hasConst {
			if err := g.SetConst(id, constVal); err != nil {
				return nil, err
			}
		}
		if forbidden {
			if err := g.MarkForbidden(id); err != nil {
				return nil, err
			}
		}
		if liveout {
			if err := g.MarkLiveOut(id); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if lim.MaxLineBytes > 0 && errors.Is(err, bufio.ErrTooLong) {
			// The scanner's buffer is sized to the cap, so an overlong token
			// surfaces as ErrTooLong before the line is ever held in memory;
			// report it as the limit violation it is. Got is a lower bound —
			// the rest of the line was never read.
			return nil, &LimitError{What: "line", Limit: lim.MaxLineBytes, Got: lim.MaxLineBytes + 1, Line: lineNo + 1}
		}
		return nil, err
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOTOptions configures DOT export.
type DOTOptions struct {
	// Highlight, when non-nil, shades the given vertex set (e.g. a cut).
	Highlight *bitset.Set
	// Name is the graph name; defaults to "dfg".
	Name string
}

// WriteDOT exports g as a Graphviz digraph. Forbidden nodes are drawn as
// boxes, roots as inverted triangles, Oext members with a double border,
// and highlighted nodes shaded.
func WriteDOT(w io.Writer, g *dfg.Graph, opt DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opt.Name
	if name == "" {
		name = "dfg"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n", name)
	for v := 0; v < g.N(); v++ {
		label := g.Op(v).String()
		if n := g.Name(v); n != "" {
			label = fmt.Sprintf("%s\\n%s", n, label)
		}
		if g.Op(v) == dfg.OpConst {
			label = fmt.Sprintf("%d", g.ConstValue(v))
		}
		attrs := []string{fmt.Sprintf("label=\"%d: %s\"", v, label)}
		switch {
		case g.IsRoot(v):
			attrs = append(attrs, "shape=invtriangle")
		case g.IsUserForbidden(v):
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=\"#ffcccc\"")
		case g.IsLiveOut(v):
			attrs = append(attrs, "shape=doublecircle")
		default:
			attrs = append(attrs, "shape=ellipse")
		}
		if opt.Highlight != nil && opt.Highlight.Has(v) {
			attrs = append(attrs, "style=filled", "fillcolor=\"#cce5ff\"")
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for v := 0; v < g.N(); v++ {
		succs := append([]int(nil), g.Succs(v)...)
		sort.Ints(succs)
		for _, s := range succs {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", v, s)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
