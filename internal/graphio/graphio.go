// Package graphio serializes data-flow graphs to a line-oriented text
// format and exports them to Graphviz DOT for inspection.
//
// The text format is one node per line, in topological (construction)
// order:
//
//	# comment
//	node <op> [name=<n>] [preds=<i>,<j>,...] [const=<v>] [forbidden] [liveout]
//
// Node ids are implicit (0-based line order), which makes hand-written
// fixtures easy and guarantees a topological construction order.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Write serializes g in the text format. The graph must be frozen.
func Write(w io.Writer, g *dfg.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# polyise dfg: %d nodes, %d edges\n", g.N(), g.NumEdges())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "node %s", g.Op(v))
		if n := g.Name(v); n != "" {
			fmt.Fprintf(bw, " name=%s", n)
		}
		if preds := g.Preds(v); len(preds) > 0 {
			parts := make([]string, len(preds))
			for i, p := range preds {
				parts[i] = strconv.Itoa(p)
			}
			fmt.Fprintf(bw, " preds=%s", strings.Join(parts, ","))
		}
		switch g.Op(v) {
		case dfg.OpConst, dfg.OpCustom, dfg.OpExtract:
			// Constants carry their literal, custom instructions their
			// latency, extracts their result index.
			fmt.Fprintf(bw, " const=%d", g.ConstValue(v))
		}
		if g.IsUserForbidden(v) && g.Op(v) != dfg.OpCall {
			fmt.Fprint(bw, " forbidden")
		}
		if g.IsLiveOut(v) && len(g.Succs(v)) > 0 {
			fmt.Fprint(bw, " liveout")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses the text format and returns a frozen graph.
func Read(r io.Reader) (*dfg.Graph, error) {
	g := dfg.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "node" || len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: expected \"node <op> ...\"", lineNo)
		}
		op := dfg.OpFromName(fields[1])
		if !op.Valid() {
			return nil, fmt.Errorf("graphio: line %d: unknown op %q", lineNo, fields[1])
		}
		var (
			name      string
			preds     []int
			constVal  int64
			hasConst  bool
			forbidden bool
			liveout   bool
		)
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "name="):
				name = f[len("name="):]
			case strings.HasPrefix(f, "preds="):
				for _, p := range strings.Split(f[len("preds="):], ",") {
					id, err := strconv.Atoi(p)
					if err != nil {
						return nil, fmt.Errorf("graphio: line %d: bad pred %q", lineNo, p)
					}
					preds = append(preds, id)
				}
			case strings.HasPrefix(f, "const="):
				v, err := strconv.ParseInt(f[len("const="):], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad const %q", lineNo, f)
				}
				constVal, hasConst = v, true
			case f == "forbidden":
				forbidden = true
			case f == "liveout":
				liveout = true
			default:
				return nil, fmt.Errorf("graphio: line %d: unknown attribute %q", lineNo, f)
			}
		}
		id, err := g.AddNode(op, name, preds...)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
		}
		if hasConst {
			if err := g.SetConst(id, constVal); err != nil {
				return nil, err
			}
		}
		if forbidden {
			if err := g.MarkForbidden(id); err != nil {
				return nil, err
			}
		}
		if liveout {
			if err := g.MarkLiveOut(id); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOTOptions configures DOT export.
type DOTOptions struct {
	// Highlight, when non-nil, shades the given vertex set (e.g. a cut).
	Highlight *bitset.Set
	// Name is the graph name; defaults to "dfg".
	Name string
}

// WriteDOT exports g as a Graphviz digraph. Forbidden nodes are drawn as
// boxes, roots as inverted triangles, Oext members with a double border,
// and highlighted nodes shaded.
func WriteDOT(w io.Writer, g *dfg.Graph, opt DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opt.Name
	if name == "" {
		name = "dfg"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n", name)
	for v := 0; v < g.N(); v++ {
		label := g.Op(v).String()
		if n := g.Name(v); n != "" {
			label = fmt.Sprintf("%s\\n%s", n, label)
		}
		if g.Op(v) == dfg.OpConst {
			label = fmt.Sprintf("%d", g.ConstValue(v))
		}
		attrs := []string{fmt.Sprintf("label=\"%d: %s\"", v, label)}
		switch {
		case g.IsRoot(v):
			attrs = append(attrs, "shape=invtriangle")
		case g.IsUserForbidden(v):
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=\"#ffcccc\"")
		case g.IsLiveOut(v):
			attrs = append(attrs, "shape=doublecircle")
		default:
			attrs = append(attrs, "shape=ellipse")
		}
		if opt.Highlight != nil && opt.Highlight.Has(v) {
			attrs = append(attrs, "style=filled", "fillcolor=\"#cce5ff\"")
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for v := 0; v < g.N(); v++ {
		succs := append([]int(nil), g.Succs(v)...)
		sort.Ints(succs)
		for _, s := range succs {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", v, s)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
