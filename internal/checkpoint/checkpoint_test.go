package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polyise/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot file")

// sampleSnapshot is a fixed, fully-populated snapshot: every field class is
// exercised (flags, counters, the zero digest, choice stacks, frames). It
// doubles as the golden-file content, so it must never change — format
// evolution means a new Version and a new golden file, not edits here.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		GraphHash: [2]uint64{0x0123456789abcdef, 0xfedcba9876543210},
		GraphN:    60,
		OptHash:   0xdeadbeefcafef00d,
		Reason:    3,
		Visited:   12345,
		CurTop:    17,
		Stats: Counters{
			Valid: 12345, Candidates: 99999, Duplicates: 4242, Invalid: 777,
			LTRuns: 31337, SeedsPruned: 11, OutputsTried: 2024, Steals: 9,
		},
		HasZero: true,
		Digests: [][2]uint64{{0, 0}, {1, 2}, {0xffffffffffffffff, 3}, {4, 5}},
		Outs:    []int{17, 23, 31},
		Ins:     []int{2, 3, 5, 7},
		Frames: []Frame{
			{Depth: 0, Cur: 17, End: 60, OutsLen: 1, InsLen: 0, NinLeft: 4, NoutLeft: 2},
			{Depth: 1, Cur: 23, End: 31, OutsLen: 2, InsLen: 2, NinLeft: 2, NoutLeft: 1},
		},
	}
}

func encodeToBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// rehash recomputes the integrity trailer after a test mutated the body, so
// structure checks are reached instead of the corruption check.
func rehash(raw []byte) []byte {
	body := raw[:len(raw)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestRoundTrip(t *testing.T) {
	for name, s := range map[string]*Snapshot{
		"full":  sampleSnapshot(),
		"empty": {},
		"done":  {Done: true, Visited: 7, CurTop: 60, GraphN: 60},
	} {
		got, err := Decode(bytes.NewReader(encodeToBytes(t, s)))
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s: round trip diverges:\n got %+v\nwant %+v", name, got, s)
		}
	}
}

// TestGolden pins the byte-exact v1 encoding against a committed file, in
// both directions: today's encoder must reproduce the golden bytes, and
// today's decoder must read them back to the sample snapshot. Any failure
// means the format changed without a version bump.
func TestGolden(t *testing.T) {
	golden := filepath.Join("testdata", "snapshot_v1.golden")
	raw := encodeToBytes(t, sampleSnapshot())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("encoding diverged from committed golden file (%d vs %d bytes): the v1 format changed without a version bump", len(raw), len(want))
	}
	got, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("Decode(golden): %v", err)
	}
	if !reflect.DeepEqual(got, sampleSnapshot()) {
		t.Fatalf("golden snapshot decoded to %+v", got)
	}
}

func TestVersionSkew(t *testing.T) {
	raw := encodeToBytes(t, sampleSnapshot())
	for _, v := range []uint32{0, 2, 0xffffffff} {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[len(Magic):], v)
		var ve *VersionError
		if _, err := Decode(bytes.NewReader(bad)); !errors.As(err, &ve) || ve.Got != v {
			t.Fatalf("version %d: err = %v, want *VersionError", v, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	raw := encodeToBytes(t, sampleSnapshot())
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0x20
	var fe *FormatError
	if _, err := Decode(bytes.NewReader(bad)); !errors.As(err, &fe) {
		t.Fatalf("bad magic: err = %v, want *FormatError", err)
	}
}

// TestTruncated feeds every prefix of a valid snapshot to Decode: each must
// fail with a typed error — truncation can never panic and never yield a
// snapshot.
func TestTruncated(t *testing.T) {
	raw := encodeToBytes(t, sampleSnapshot())
	for n := 0; n < len(raw); n++ {
		_, err := Decode(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(raw))
		}
		var fe *FormatError
		var ve *VersionError
		var ce *CorruptError
		if !errors.As(err, &fe) && !errors.As(err, &ve) && !errors.As(err, &ce) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

// TestCorrupted flips each byte after the version field: the integrity hash
// must catch every one as *CorruptError (the version field itself reports
// version skew instead, by design — it is checked first so old readers give
// the right message for new files).
func TestCorrupted(t *testing.T) {
	raw := encodeToBytes(t, sampleSnapshot())
	for off := len(Magic) + 4; off < len(raw); off++ {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x01
		var ce *CorruptError
		if _, err := Decode(bytes.NewReader(bad)); !errors.As(err, &ce) {
			t.Fatalf("flip at %d: err = %v, want *CorruptError", off, err)
		}
	}
}

// TestInconsistentLengths patches length fields to values the remaining
// bytes cannot satisfy (rehashing so the corruption check passes): the
// bounds-checked decoder must reject them before allocating.
func TestInconsistentLengths(t *testing.T) {
	s := sampleSnapshot()
	raw := encodeToBytes(t, s)
	// The digest-count field follows magic, version, hash pair, N, opt
	// hash, 2 flag bytes, visited, curtop and 8 counters.
	digestCountOff := len(Magic) + 4 + 16 + 4 + 8 + 2 + 8 + 4 + 8*8
	if got := binary.LittleEndian.Uint32(raw[digestCountOff:]); got != uint32(len(s.Digests)) {
		t.Fatalf("test offset arithmetic is stale: read %d at digest count, want %d", got, len(s.Digests))
	}
	for _, n := range []uint32{uint32(len(s.Digests)) + 1, 1 << 29, 0xffffffff} {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[digestCountOff:], n)
		var fe *FormatError
		if _, err := Decode(bytes.NewReader(rehash(bad))); !errors.As(err, &fe) {
			t.Fatalf("digest count %d: err = %v, want *FormatError", n, err)
		}
	}
	// Trailing garbage between the last field and the hash.
	padded := append([]byte(nil), raw[:len(raw)-sha256.Size]...)
	padded = append(padded, 0xaa, 0xbb)
	var fe *FormatError
	if _, err := Decode(bytes.NewReader(rehash(padded))); !errors.As(err, &fe) {
		t.Fatalf("trailing bytes: err = %v, want *FormatError", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ckpt")
	first := sampleSnapshot()
	if err := WriteFile(path, first); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	second := sampleSnapshot()
	second.Visited = 99999
	if err := WriteFile(path, second); err != nil {
		t.Fatalf("WriteFile (replace): %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, second) {
		t.Fatal("ReadFile returned the stale snapshot after an atomic replace")
	}
	// No temp litter after successful renames.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after two writes, want 1", len(ents))
	}
	if err := WriteFile(filepath.Join(dir, "missing", "s.ckpt"), first); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

// TestGraphDigest pins the identity contract: equal construction → equal
// digest, different graphs → different digests.
func TestGraphDigest(t *testing.T) {
	prof := workload.DefaultProfile()
	g1 := workload.MiBenchLike(rand.New(rand.NewSource(1)), 40, prof)
	g1b := workload.MiBenchLike(rand.New(rand.NewSource(1)), 40, prof)
	g2 := workload.MiBenchLike(rand.New(rand.NewSource(2)), 40, prof)
	if GraphDigest(g1) != GraphDigest(g1b) {
		t.Fatal("identically-built graphs digest differently")
	}
	if GraphDigest(g1) == GraphDigest(g2) {
		t.Fatal("different graphs share a digest")
	}
}

// FuzzCheckpoint mirrors graphio.FuzzRead: arbitrary bytes must either
// decode to a snapshot that re-encodes and re-decodes to itself, or fail
// with a typed error — never panic, never loop.
func FuzzCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	full := sampleSnapshot()
	var buf bytes.Buffer
	if err := Encode(&buf, full); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := Encode(&buf, &Snapshot{}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := Decode(bytes.NewReader(raw))
		if err != nil {
			var fe *FormatError
			var ve *VersionError
			var ce *CorruptError
			if !errors.As(err, &fe) && !errors.As(err, &ve) && !errors.As(err, &ce) {
				t.Fatalf("untyped decode error %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := Encode(&out, s); err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed: %v", err)
		}
		s2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatal("decode→encode→decode is not a fixed point")
		}
	})
}
