// Package checkpoint defines the durable on-disk snapshot format that makes
// long enumeration runs crash-tolerant. A snapshot captures the enumeration
// state at a serial-order visit point — the count of cuts already delivered,
// the top-level frontier position, the global dedup digest table, the open
// search frames of a serial run, and partial work counters — together with
// the identities needed to refuse a wrong resume: a content hash of the
// input graph and a fingerprint of the semantically relevant Options.
//
// The format is deliberately dumb: a fixed magic, a version number,
// little-endian fixed-width fields, and a trailing SHA-256 over everything
// before it. Decode never panics on hostile input — every failure is one of
// the typed errors below (*FormatError, *VersionError, *CorruptError) — and
// WriteFile is atomic (temp file + rename in the destination directory), so
// a crash during a snapshot write leaves the previous snapshot intact.
//
// What is NOT in a snapshot is as deliberate as what is: the cut set S, the
// validator mirrors, the reaches frontiers and the seed-loop state are all
// pure functions of the (O,I) choice stacks (rebuildS — the PR 6 invariant
// that makes work-stealing possible makes checkpointing possible too) and
// are recomputed on resume by replaying the in-progress top-level subtree
// with the restored dedup table suppressing already-delivered cuts. See
// docs/ALGORITHM.md §12 for the resume-identity argument.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Magic opens every snapshot file.
const Magic = "polyckpt"

// Version is the current format version. Decode rejects any other value
// with a *VersionError; there is no cross-version migration — a snapshot is
// a resumable run state, not an archival format.
const Version = 1

// Frame is one open search frame of a serial run: a claimed position range
// at one (outputs, inputs) prefix — the stealTask representation of
// internal/enum/parallel.go, flattened. Cur is the position whose subtree
// was in progress at snapshot time (to be replayed); positions before Cur
// in the range are fully explored; (Cur, End) is untouched. OutsLen/InsLen
// say how much of the Snapshot's Outs/Ins stacks were live below this
// frame, which is what lets a resume verify it is fast-forwarding along the
// same path before skipping work.
type Frame struct {
	Depth    int
	Cur, End int
	OutsLen  int
	InsLen   int
	NinLeft  int
	NoutLeft int
}

// Counters mirrors the work counters of enum.Stats at the snapshot point.
// They are advisory — resume replays some pre-snapshot work, so counters of
// a resumed run can exceed an uninterrupted run's; the visit sequence is
// what the resume contract pins, not these.
type Counters struct {
	Valid        int64
	Candidates   int64
	Duplicates   int64
	Invalid      int64
	LTRuns       int64
	SeedsPruned  int64
	OutputsTried int64
	Steals       int64
}

// Snapshot is a decoded checkpoint: everything a resume needs, plus the
// identities that gate it.
type Snapshot struct {
	// GraphHash and GraphN identify the input graph (GraphDigest).
	GraphHash [2]uint64
	GraphN    int
	// OptHash fingerprints the Options fields that define the cut set and
	// its order (constraints and prunings — not budgets, deadlines or
	// worker counts, which may legitimately differ across resume).
	OptHash uint64
	// Reason records why the snapshotted run stopped (enum.StopReason
	// values); 0 for a periodic snapshot of a still-running enumeration.
	Reason uint8
	// Done reports that the snapshotted run exhausted the search space:
	// there is nothing to resume.
	Done bool
	// Visited is the number of cuts delivered to the visitor before the
	// snapshot point — the length of the already-delivered serial prefix.
	Visited int64
	// CurTop is the first top-level (output) position not yet fully
	// visited; resume restarts the top-level loop here.
	CurTop int
	// Stats holds the advisory work counters at the snapshot point.
	Stats Counters
	// HasZero and Digests are the dedup table contents: the 128-bit
	// digests that suppress re-delivery of pre-snapshot cuts on resume.
	// Serial snapshots carry every candidate digest; parallel snapshots
	// carry the delivered cuts' digests — the resume semantics are
	// identical either way (a replayed non-delivered candidate that is
	// not in the table re-validates to the same verdict).
	HasZero bool
	Digests [][2]uint64
	// Outs, Ins and Frames are the open serial search frames (empty for
	// parallel or post-panic snapshots, where resume replays the whole
	// CurTop subtree instead of fast-forwarding).
	Outs   []int
	Ins    []int
	Frames []Frame
}

// FormatError reports a structurally invalid snapshot: wrong magic, a
// truncated file, or an inconsistent length field.
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("checkpoint: malformed snapshot: %s", e.Reason)
}

// VersionError reports a snapshot written by a different format version.
type VersionError struct {
	Got uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: unsupported snapshot version %d (this build reads version %d)", e.Got, Version)
}

// CorruptError reports a snapshot whose integrity hash does not match its
// contents.
type CorruptError struct{}

func (e *CorruptError) Error() string {
	return "checkpoint: snapshot integrity hash mismatch (file corrupted or partially written)"
}

// MismatchError reports a resume attempted against the wrong input: the
// snapshot's graph hash, graph size or options fingerprint differs from the
// caller's.
type MismatchError struct {
	Field string
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: snapshot %s mismatch: snapshot has %s, caller has %s", e.Field, e.Want, e.Got)
}

// GraphDigest fingerprints a frozen graph's enumeration-relevant content:
// vertex count, opcodes, the predecessor adjacency rows, and the
// forbidden/root/live-out role sets. Two graphs with equal digests present
// the same enumeration problem; names, constant values and derived caches
// are excluded. The digest is order-sensitive by construction — vertex
// identity IS topological position after Freeze.
func GraphDigest(g *dfg.Graph) [2]uint64 {
	h := bitset.NewHasher128()
	n := g.N()
	h.Int(n)
	for v := 0; v < n; v++ {
		h.Word(uint64(g.Op(v)))
	}
	for v := 0; v < n; v++ {
		h.Words(g.PredRow(v))
	}
	h.Set(g.ForbiddenSet())
	h.Set(g.RootSet())
	h.Set(g.OextSet())
	return h.Sum()
}

// DigestString renders a 128-bit graph digest as 32 lower-case hex digits,
// the wire form the session layer uses as a content-addressed graph id.
func DigestString(d [2]uint64) string {
	return fmt.Sprintf("%016x%016x", d[0], d[1])
}

// ParseDigest inverts DigestString. It accepts exactly 32 hex digits (either
// case) — the strictness matters because the string is a cache key: two
// spellings of one digest must not alias two cache entries.
func ParseDigest(s string) ([2]uint64, error) {
	var d [2]uint64
	if len(s) != 32 {
		return d, fmt.Errorf("checkpoint: digest %q: want 32 hex digits, got %d bytes", s, len(s))
	}
	for half := 0; half < 2; half++ {
		for _, c := range s[half*16 : half*16+16] {
			var v uint64
			switch {
			case c >= '0' && c <= '9':
				v = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				v = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				v = uint64(c-'A') + 10
			default:
				return [2]uint64{}, fmt.Errorf("checkpoint: digest %q: bad hex digit %q", s, c)
			}
			d[half] = d[half]<<4 | v
		}
	}
	return d, nil
}

// flag bits of the snapshot header.
const (
	flagDone    = 1 << 0
	flagHasZero = 1 << 1
)

// maxSliceLen bounds decoded slice lengths: a length field larger than this
// is rejected as malformed before any allocation. Generous for real runs
// (a billion digests would be 16 GiB on disk anyway).
const maxSliceLen = 1 << 30

// Encode writes s to w in format Version. Only WriteFile should normally be
// used by run integrations; Encode exists for tests and tooling.
func Encode(w io.Writer, s *Snapshot) error {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	le := binary.LittleEndian
	var scratch [8]byte
	w32 := func(v uint32) { le.PutUint32(scratch[:4], v); buf.Write(scratch[:4]) }
	w64 := func(v uint64) { le.PutUint64(scratch[:8], v); buf.Write(scratch[:8]) }

	w32(Version)
	w64(s.GraphHash[0])
	w64(s.GraphHash[1])
	w32(uint32(s.GraphN))
	w64(s.OptHash)
	var flags uint8
	if s.Done {
		flags |= flagDone
	}
	if s.HasZero {
		flags |= flagHasZero
	}
	buf.WriteByte(flags)
	buf.WriteByte(s.Reason)
	w64(uint64(s.Visited))
	w32(uint32(s.CurTop))
	w64(uint64(s.Stats.Valid))
	w64(uint64(s.Stats.Candidates))
	w64(uint64(s.Stats.Duplicates))
	w64(uint64(s.Stats.Invalid))
	w64(uint64(s.Stats.LTRuns))
	w64(uint64(s.Stats.SeedsPruned))
	w64(uint64(s.Stats.OutputsTried))
	w64(uint64(s.Stats.Steals))
	w32(uint32(len(s.Digests)))
	for _, d := range s.Digests {
		w64(d[0])
		w64(d[1])
	}
	w32(uint32(len(s.Outs)))
	for _, v := range s.Outs {
		w32(uint32(v))
	}
	w32(uint32(len(s.Ins)))
	for _, v := range s.Ins {
		w32(uint32(v))
	}
	w32(uint32(len(s.Frames)))
	for _, f := range s.Frames {
		w32(uint32(f.Depth))
		w32(uint32(f.Cur))
		w32(uint32(f.End))
		w32(uint32(f.OutsLen))
		w32(uint32(f.InsLen))
		w32(uint32(f.NinLeft))
		w32(uint32(f.NoutLeft))
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// decoder is a bounds-checked little-endian cursor over a verified payload.
// Reads past the end set err instead of panicking, so Decode degrades to a
// typed error on any inconsistency an attacker can hash correctly.
type decoder struct {
	b   []byte
	off int
	err bool
}

func (d *decoder) u8() uint8 {
	if d.off+1 > len(d.b) {
		d.err = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// sliceLen reads a length field and validates that `elem` bytes per element
// are actually present, so corrupt lengths fail before allocation.
func (d *decoder) sliceLen(elem int) int {
	n := d.u32()
	if d.err || n > maxSliceLen || d.off+int(n)*elem > len(d.b) {
		d.err = true
		return 0
	}
	return int(n)
}

// Decode reads one snapshot from r, verifying magic, version and the
// integrity hash before interpreting any field. All failures are typed:
// *FormatError (structure), *VersionError (version skew), *CorruptError
// (hash mismatch). It never panics on arbitrary input.
func Decode(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(Magic)+4+sha256.Size {
		return nil, &FormatError{Reason: "truncated header"}
	}
	if string(raw[:len(Magic)]) != Magic {
		return nil, &FormatError{Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(raw[len(Magic):]); v != Version {
		return nil, &VersionError{Got: v}
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, &CorruptError{}
	}

	d := &decoder{b: body, off: len(Magic) + 4}
	s := &Snapshot{}
	s.GraphHash[0] = d.u64()
	s.GraphHash[1] = d.u64()
	s.GraphN = int(d.u32())
	s.OptHash = d.u64()
	flags := d.u8()
	s.Done = flags&flagDone != 0
	s.HasZero = flags&flagHasZero != 0
	s.Reason = d.u8()
	s.Visited = int64(d.u64())
	s.CurTop = int(d.u32())
	s.Stats.Valid = int64(d.u64())
	s.Stats.Candidates = int64(d.u64())
	s.Stats.Duplicates = int64(d.u64())
	s.Stats.Invalid = int64(d.u64())
	s.Stats.LTRuns = int64(d.u64())
	s.Stats.SeedsPruned = int64(d.u64())
	s.Stats.OutputsTried = int64(d.u64())
	s.Stats.Steals = int64(d.u64())
	if n := d.sliceLen(16); n > 0 {
		s.Digests = make([][2]uint64, n)
		for i := range s.Digests {
			s.Digests[i][0] = d.u64()
			s.Digests[i][1] = d.u64()
		}
	}
	if n := d.sliceLen(4); n > 0 {
		s.Outs = make([]int, n)
		for i := range s.Outs {
			s.Outs[i] = int(d.u32())
		}
	}
	if n := d.sliceLen(4); n > 0 {
		s.Ins = make([]int, n)
		for i := range s.Ins {
			s.Ins[i] = int(d.u32())
		}
	}
	if n := d.sliceLen(7 * 4); n > 0 {
		s.Frames = make([]Frame, n)
		for i := range s.Frames {
			f := &s.Frames[i]
			f.Depth = int(d.u32())
			f.Cur = int(d.u32())
			f.End = int(d.u32())
			f.OutsLen = int(d.u32())
			f.InsLen = int(d.u32())
			f.NinLeft = int(d.u32())
			f.NoutLeft = int(d.u32())
		}
	}
	if d.err {
		return nil, &FormatError{Reason: "inconsistent length field"}
	}
	if d.off != len(body) {
		return nil, &FormatError{Reason: "trailing bytes after snapshot"}
	}
	return s, nil
}

// WriteFile atomically replaces path with the encoded snapshot: the bytes
// are written to a temp file in the same directory, synced, and renamed
// over path, so a crash mid-write never destroys the previous snapshot.
func WriteFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Encode(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile decodes the snapshot at path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
