package baseline

import (
	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// PrunedSearch reimplements the Pozzi–Atasu–Ienne exhaustive subgraph
// enumeration (reference [15] of the paper; TCAD-25(7), 2006). The search
// space is binary: walking the vertices in topological order (predecessors
// first, the direction the original algorithm grows cuts), every vertex is
// either included in the cut or excluded, giving a decision tree of up to
// 2^n leaves that constraint propagation prunes:
//
//   - Input violations are permanent. A vertex is decided only after all
//     its predecessors, so when it joins the cut every excluded predecessor
//     becomes an input forever; once more than Nin exist the subtree dies.
//
//   - Convexity violations are permanent. Excluded vertices remember
//     whether the cut reaches them through excluded territory; including a
//     vertex fed by such a path can never become convex again.
//
//   - Output violations, however, resolve late: an included vertex's output
//     status is only fixed once all its successors are decided (a future
//     successor may still absorb it into the cut). This is the documented
//     weakness of [15] — "its performance quickly deteriorates if the
//     custom instructions can have multiple outputs" (§2) — and the reason
//     the figure 4 tree family is its worst case, provably O(1.6^n) for the
//     related algorithm [4]: in a leaves-first walk of a tree almost every
//     partial cut is still plausibly within the output budget.
//
// Valid leaves are reported through visit (each distinct cut exactly once);
// the §3 technical condition and any Options restrictions are applied so
// counts are directly comparable with package enum.
func PrunedSearch(g *dfg.Graph, opt enum.Options, visit func(enum.Cut) bool) enum.Stats {
	s := &pruned{
		g:          g,
		opt:        opt,
		visit:      visit,
		val:        enum.NewValidator(g, opt),
		stop:       enum.NewStopper(opt),
		state:      make([]int8, g.N()),
		bad:        make([]bool, g.N()),
		isInput:    make([]bool, g.N()),
		remainSucc: make([]int, g.N()),
		exclSucc:   make([]bool, g.N()),
		S:          bitset.New(g.N()),
	}
	for v := 0; v < g.N(); v++ {
		s.remainSucc[v] = len(g.Succs(v))
	}
	s.order = g.Topo()
	s.walk(0)
	return s.stats
}

const (
	undecided int8 = iota
	included
	excluded
)

type pruned struct {
	g     *dfg.Graph
	opt   enum.Options
	visit func(enum.Cut) bool
	val   *enum.Validator
	stats enum.Stats

	order []int
	state []int8
	// bad[v]: v is excluded and the cut reaches v through excluded
	// vertices — including any successor of v would break convexity.
	bad []bool
	// isInput[v]: v is excluded and feeds at least one included vertex.
	isInput []bool
	// remainSucc[v] counts v's undecided successors; exclSucc[v] records
	// whether any successor was excluded. An included vertex's output
	// status is fixed only when remainSucc reaches zero.
	remainSucc []int
	exclSucc   []bool

	S           *bitset.Set
	inCount     int // included vertices
	outCount    int // fixed outputs among included vertices
	fixedInputs int // excluded vertices feeding the cut
	stopped     bool
	// stop is the shared cancel/deadline primitive (enum.Stopper), the same
	// one package enum polls — cancellation semantics cannot drift between
	// poly and oracle runs.
	stop enum.Stopper
}

func (s *pruned) walk(pos int) {
	if r := s.stop.Poll(); r != enum.StopNone {
		s.stats.RecordStop(r)
		s.stopped = true
	}
	if s.stopped {
		return
	}
	if pos == len(s.order) {
		s.leaf()
		return
	}
	v := s.order[pos]

	// Inclusion branch (never for forbidden vertices or roots).
	if !s.g.IsForbidden(v) {
		convex := true
		newInputs := 0
		for _, p := range s.g.Preds(v) {
			if s.state[p] == included {
				continue
			}
			if s.bad[p] {
				convex = false
				break
			}
			if !s.isInput[p] {
				newInputs++
			}
		}
		// Distinct new inputs: a predecessor listed twice must count once.
		// Predecessor lists are tiny, so a quadratic scan beats allocating
		// a set per decision.
		if convex && newInputs > 0 {
			preds := s.g.Preds(v)
			newInputs = 0
			for i, p := range preds {
				if s.state[p] == included || s.isInput[p] {
					continue
				}
				dup := false
				for _, q := range preds[:i] {
					if q == p {
						dup = true
						break
					}
				}
				if !dup {
					newInputs++
				}
			}
		}
		if convex && s.fixedInputs+newInputs <= s.opt.MaxInputs {
			s.include(v, pos)
		} else {
			s.stats.SeedsPruned++
		}
	}

	if s.stopped {
		return
	}
	// Exclusion branch.
	s.exclude(v, pos)
}

// include decides v ∈ S, maintaining input counts and deferred output
// accounting, then recurses and undoes.
func (s *pruned) include(v, pos int) {
	var marked []int
	for _, p := range s.g.Preds(v) {
		if s.state[p] != included && !s.isInput[p] {
			s.isInput[p] = true
			s.fixedInputs++
			marked = append(marked, p)
		}
	}
	s.state[v] = included
	s.S.Add(v)
	s.inCount++

	// v's own output status: live-out vertices and structural sinks are
	// outputs the moment they join (their sink edge can never be absorbed).
	selfOut := s.g.IsLiveOut(v) || len(s.g.Succs(v)) == 0
	if selfOut {
		s.outCount++
	}
	undo := s.settlePreds(v, false)

	if s.outCount <= s.opt.MaxOutputs {
		s.walk(pos + 1)
	} else {
		s.stats.SeedsPruned++
	}

	s.unsettle(undo)
	if selfOut {
		s.outCount--
	}
	s.inCount--
	s.S.Remove(v)
	s.state[v] = undecided
	for _, p := range marked {
		s.isInput[p] = false
		s.fixedInputs--
	}
}

// exclude decides v ∉ S, maintaining convexity propagation and settling
// the output status of v's included predecessors, then recurses and undoes.
func (s *pruned) exclude(v, pos int) {
	// v is bad (would break convexity above it) when the cut reaches it:
	// directly from an included predecessor or through a bad excluded one.
	bad := false
	feeds := false
	for _, p := range s.g.Preds(v) {
		if s.state[p] == included {
			feeds = true
		} else if s.bad[p] {
			bad = true
		}
	}
	s.state[v] = excluded
	s.bad[v] = bad || feeds
	undo := s.settlePreds(v, true)

	if s.outCount <= s.opt.MaxOutputs {
		s.walk(pos + 1)
	} else {
		s.stats.SeedsPruned++
	}

	s.unsettle(undo)
	s.bad[v] = false
	s.state[v] = undecided
}

// settlePreds records the decision of v with each included predecessor:
// its undecided-successor count drops, and when it reaches zero with any
// excluded successor the predecessor becomes a fixed output. Returns an
// undo list of (vertex, becameOutput, markedExcl) entries.
type settle struct {
	p          int
	becameOut  bool
	markedExcl bool
}

func (s *pruned) settlePreds(v int, vExcluded bool) []settle {
	var undo []settle
	for _, p := range s.g.Preds(v) {
		if s.state[p] != included {
			continue
		}
		e := settle{p: p}
		s.remainSucc[p]--
		if vExcluded && !s.exclSucc[p] {
			s.exclSucc[p] = true
			e.markedExcl = true
		}
		if s.remainSucc[p] == 0 && s.exclSucc[p] && !s.g.IsLiveOut(p) {
			// All successors decided, at least one excluded → fixed output.
			// (Live-out vertices were counted at inclusion.)
			s.outCount++
			e.becameOut = true
		}
		undo = append(undo, e)
	}
	return undo
}

func (s *pruned) unsettle(undo []settle) {
	for i := len(undo) - 1; i >= 0; i-- {
		e := undo[i]
		if e.becameOut {
			s.outCount--
		}
		if e.markedExcl {
			s.exclSucc[e.p] = false
		}
		s.remainSucc[e.p]++
	}
}

func (s *pruned) leaf() {
	if s.inCount == 0 {
		return
	}
	s.stats.Candidates++
	var cut enum.Cut
	if !s.val.Validate(s.S, &cut) {
		s.stats.Invalid++
		return
	}
	s.stats.Valid++
	if s.opt.KeepCuts {
		cut.Nodes = cut.Nodes.Clone()
	}
	if !s.visit(cut) {
		s.stats.RecordStop(enum.StopVisitor)
		s.stopped = true
	}
}

// CollectPruned runs PrunedSearch and returns all valid cuts sorted
// deterministically.
func CollectPruned(g *dfg.Graph, opt enum.Options) ([]enum.Cut, enum.Stats) {
	opt.KeepCuts = true
	return enum.Collect(func(visit func(enum.Cut) bool) enum.Stats {
		return PrunedSearch(g, opt, visit)
	})
}
