package baseline_test

import (
	"errors"
	"testing"
	"time"

	"polyise/internal/baseline"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

func TestBruteForceRefusesLargeGraphs(t *testing.T) {
	g := workload.Chain(40)
	called := false
	stats := baseline.BruteForce(g, enum.DefaultOptions(), func(enum.Cut) bool {
		called = true
		return true
	})
	var tle *baseline.TooLargeError
	if !errors.As(stats.Err, &tle) {
		t.Fatalf("Stats.Err = %v, want *TooLargeError for >30 eligible vertices", stats.Err)
	}
	if tle.Eligible <= tle.Max {
		t.Fatalf("TooLargeError reports Eligible=%d <= Max=%d", tle.Eligible, tle.Max)
	}
	if stats.StopReason != enum.StopError {
		t.Fatalf("StopReason = %v, want %v", stats.StopReason, enum.StopError)
	}
	if called {
		t.Fatal("visitor was called despite the refusal")
	}
}

func TestBruteForceEarlyStop(t *testing.T) {
	g := workload.Chain(12)
	n := 0
	baseline.BruteForce(g, enum.DefaultOptions(), func(enum.Cut) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visitor called %d times, want 2", n)
	}
}

func TestPrunedSearchEarlyStop(t *testing.T) {
	g := workload.Chain(12)
	n := 0
	baseline.PrunedSearch(g, enum.DefaultOptions(), func(enum.Cut) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visitor called %d times, want 2", n)
	}
}

func TestPrunedSearchDeadline(t *testing.T) {
	g := workload.Tree(7, 2)
	opt := enum.DefaultOptions()
	opt.KeepCuts = false
	opt.Deadline = time.Now().Add(20 * time.Millisecond)
	start := time.Now()
	stats := baseline.PrunedSearch(g, opt, func(enum.Cut) bool { return true })
	if stats.StopReason != enum.StopDeadline {
		t.Skip("exhaustive tree search finished within 20ms on this machine")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", time.Since(start))
	}
}

// TestChainCounts checks both algorithms on a family with a closed-form
// answer: on a unary chain of n operations with Nin=1... every cut is a
// contiguous run, so under any Nin≥1/Nout≥1 there are n(n+1)/2 runs, all
// with exactly 1 input and 1 output (the run starting at the root's child
// has the root as input).
func TestChainCounts(t *testing.T) {
	for _, n := range []int{3, 6, 10} {
		g := workload.Chain(n)
		ops := n - 1 // non-root nodes
		want := ops * (ops + 1) / 2
		opt := enum.DefaultOptions()
		opt.MaxInputs, opt.MaxOutputs = 1, 1
		cuts, _ := baseline.CollectPruned(g, opt)
		if len(cuts) != want {
			t.Fatalf("chain %d: pruned found %d cuts, want %d", n, len(cuts), want)
		}
		cuts2, _ := enum.CollectAll(g, opt)
		if len(cuts2) != want {
			t.Fatalf("chain %d: poly found %d cuts, want %d", n, len(cuts2), want)
		}
	}
}

// TestTreeExplosion demonstrates the figure 4/figure 5 asymmetry on a small
// scale: going one tree depth deeper multiplies the exhaustive search's
// explored leaves far faster than the polynomial algorithm's analyses.
func TestTreeExplosion(t *testing.T) {
	opt := enum.DefaultOptions()
	opt.KeepCuts = false
	grow := func(alg func(*testing.T, int) int) float64 {
		a := alg(t, 3)
		b := alg(t, 4)
		return float64(b) / float64(a)
	}
	pruned := grow(func(t *testing.T, d int) int {
		s := baseline.PrunedSearch(workload.Tree(d, 2), opt, func(enum.Cut) bool { return true })
		return s.Candidates + s.SeedsPruned // explored leaves + killed branches
	})
	poly := grow(func(t *testing.T, d int) int {
		s := enum.Enumerate(workload.Tree(d, 2), opt, func(enum.Cut) bool { return true })
		return s.LTRuns + s.Candidates
	})
	t.Logf("depth 3→4 growth: pruned-exhaustive %.1fx, polynomial %.1fx", pruned, poly)
	if pruned <= poly {
		t.Fatalf("exhaustive search grew slower (%.1fx) than polynomial (%.1fx)", pruned, poly)
	}
}

func TestStatsArepopulated(t *testing.T) {
	g := workload.Tree(4, 2)
	var stats enum.Stats
	stats = baseline.PrunedSearch(g, enum.DefaultOptions(), func(enum.Cut) bool { return true })
	if stats.Valid == 0 || stats.Candidates == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	if stats.Invalid+stats.Valid != stats.Candidates {
		t.Fatalf("candidate accounting off: %+v", stats)
	}
}
