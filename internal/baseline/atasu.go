package baseline

import (
	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// AtasuSearch reimplements the earlier Atasu–Pozzi–Ienne identification
// algorithm (reference [4] of the paper, DAC 2003) at period-faithful
// pruning strength: a binary include/exclude search in reverse topological
// order (sink side first) whose only subtree-killing propagation is the
// output-port constraint — in that order an included vertex's output status
// is fixed immediately, since all its successors are already decided.
// Input counts and convexity are only verified on complete assignments.
//
// This is the algorithm the paper proves exponential, O(1.6^n), on the
// figure 4 trees, and the reason its run time "quickly deteriorates": with
// Nout ≥ 2 nearly every scattered partial assignment stays plausible. The
// stronger PrunedSearch in this package shows how far constraint
// propagation moved after 2006; figure 5 of EXPERIMENTS.md reports both.
func AtasuSearch(g *dfg.Graph, opt enum.Options, visit func(enum.Cut) bool) enum.Stats {
	s := &atasu{
		g:     g,
		opt:   opt,
		visit: visit,
		val:   enum.NewValidator(g, opt),
		stop:  enum.NewStopper(opt),
		state: make([]int8, g.N()),
		S:     bitset.New(g.N()),
	}
	order := make([]int, g.N())
	copy(order, g.Topo())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	s.order = order
	s.walk(0)
	return s.stats
}

type atasu struct {
	g     *dfg.Graph
	opt   enum.Options
	visit func(enum.Cut) bool
	val   *enum.Validator
	stats enum.Stats

	order    []int
	state    []int8
	S        *bitset.Set
	inCount  int
	outCount int // fixed outputs: all successors are decided in this order
	stopped  bool
	// stop is the shared cancel/deadline primitive (enum.Stopper), the same
	// one package enum polls — cancellation semantics cannot drift between
	// poly and oracle runs.
	stop enum.Stopper
}

func (s *atasu) walk(pos int) {
	if r := s.stop.Poll(); r != enum.StopNone {
		s.stats.RecordStop(r)
		s.stopped = true
	}
	if s.stopped {
		return
	}
	if pos == len(s.order) {
		s.leaf()
		return
	}
	v := s.order[pos]

	// Inclusion branch (forbidden vertices and roots can only be excluded).
	if !s.g.IsForbidden(v) {
		isOut := s.g.IsLiveOut(v)
		for _, w := range s.g.Succs(v) {
			if s.state[w] != included {
				isOut = true
				break
			}
		}
		d := 0
		if isOut {
			d = 1
		}
		if s.outCount+d <= s.opt.MaxOutputs {
			s.state[v] = included
			s.S.Add(v)
			s.inCount++
			s.outCount += d
			s.walk(pos + 1)
			s.outCount -= d
			s.inCount--
			s.S.Remove(v)
			s.state[v] = undecided
		} else {
			s.stats.SeedsPruned++
		}
	}
	if s.stopped {
		return
	}

	// Exclusion branch.
	s.state[v] = excluded
	s.walk(pos + 1)
	s.state[v] = undecided
}

func (s *atasu) leaf() {
	if s.inCount == 0 {
		return
	}
	s.stats.Candidates++
	var cut enum.Cut
	if !s.val.Validate(s.S, &cut) {
		s.stats.Invalid++
		return
	}
	s.stats.Valid++
	if s.opt.KeepCuts {
		cut.Nodes = cut.Nodes.Clone()
	}
	if !s.visit(cut) {
		s.stats.RecordStop(enum.StopVisitor)
		s.stopped = true
	}
}

// CollectAtasu runs AtasuSearch and returns all valid cuts sorted
// deterministically.
func CollectAtasu(g *dfg.Graph, opt enum.Options) ([]enum.Cut, enum.Stats) {
	opt.KeepCuts = true
	return enum.Collect(func(visit func(enum.Cut) bool) enum.Stats {
		return AtasuSearch(g, opt, visit)
	})
}
