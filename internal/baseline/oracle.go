package baseline

import (
	"fmt"
	"sort"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// This file promotes the pruned-exhaustive search into a first-class
// differential oracle for the polynomial enumeration at mid sizes. The
// brute-force oracle (bruteforce.go) is exact but only feasible to n ≈ 16;
// PrunedSearch explores the same complete space with constraint
// propagation and stays tractable well past 200 vertices on memory-heavy
// MiBench-like blocks, which is exactly the regime where the n ≥ 140
// completeness gap hid. DiffOracle runs both algorithms under a wall-clock
// budget and diffs the exact cut sets, so "the enumeration is complete"
// is a measured statement up to the oracle coverage bound (n ≈ 240 on
// the default corpus) instead of an n ≤ 16 one.

// OracleReport is the outcome of one DiffOracle comparison.
type OracleReport struct {
	Name       string
	N          int // vertex count of the instance
	PolyCuts   int // valid cuts reported by enum.Enumerate
	PrunedCuts int // valid cuts reported by PrunedSearch

	// PolyStop and PrunedStop record how each run ended (StopNone for a
	// complete enumeration). Any other reason — deadline, cancel, budget —
	// leaves the counts partial and the comparison without a verdict; the
	// report says which run stopped and why instead of collapsing every
	// early stop into one "timed out" bit.
	PolyStop, PrunedStop enum.StopReason

	// Err carries the first error of either run — a contained panic, a
	// handoff stall, or a baseline refusal such as *TooLargeError — making
	// the comparison inconclusive for a reportable reason instead of a
	// crash.
	Err error

	// Missing and Extra hold example cut signatures present in exactly one
	// of the two enumerations (each capped at OracleMaxExamples);
	// MissingTotal/ExtraTotal are the uncapped tallies.
	Missing, Extra           []string
	MissingTotal, ExtraTotal int

	// DigestCollisions is the built-in triage for the failure class that
	// caused the original gap: for each missing cut whose 128-bit dedup
	// digest equals that of a different cut the enumeration did report,
	// one "missing ⇄ reported" line. A non-empty list means the loss is in
	// the deduplication layer, not in the search itself.
	DigestCollisions []string

	// BasicDisagrees notes missing cuts that EnumerateBasic (the
	// reference figure 2 algorithm, run only when cuts are missing and
	// the budget allows) also fails to produce — localizing a loss to the
	// shared layers (validation, dedup) rather than the incremental
	// search order.
	BasicDisagrees []string
}

// OracleMaxExamples caps the example lists carried in an OracleReport.
const OracleMaxExamples = 10

// Stopped reports whether either run ended early for any reason, leaving
// the counts partial.
func (r OracleReport) Stopped() bool {
	return r.PolyStop != enum.StopNone || r.PrunedStop != enum.StopNone
}

// Agree reports whether the comparison ran to completion with identical
// cut sets.
func (r OracleReport) Agree() bool {
	return !r.Stopped() && r.Err == nil && r.MissingTotal == 0 && r.ExtraTotal == 0
}

// String renders the report in one line for logs, with diagnostic detail
// only on disagreement.
func (r OracleReport) String() string {
	s := fmt.Sprintf("%s: poly=%d pruned=%d", r.Name, r.PolyCuts, r.PrunedCuts)
	if r.Err != nil {
		return s + fmt.Sprintf(" (error: %v: inconclusive)", r.Err)
	}
	if r.Stopped() {
		return s + fmt.Sprintf(" (stopped early: poly=%v pruned=%v: inconclusive)", r.PolyStop, r.PrunedStop)
	}
	if r.Agree() {
		return s + " (agree)"
	}
	s += fmt.Sprintf(" missing=%d extra=%d", r.MissingTotal, r.ExtraTotal)
	for _, m := range r.Missing {
		s += "\n  missing " + m
	}
	for _, x := range r.Extra {
		s += "\n  extra   " + x
	}
	for _, c := range r.DigestCollisions {
		s += "\n  digest collision: " + c
	}
	for _, b := range r.BasicDisagrees {
		s += "\n  basic also misses: " + b
	}
	return s
}

// DiffOracle enumerates g twice — with the polynomial algorithm under opt
// and with the pruned-exhaustive search under the same constraints — and
// returns the exact set difference. budget bounds the wall clock of each
// run separately (zero = no bound); a run that exceeds it yields a report
// whose PolyStop/PrunedStop say so, whose counts are partial and which
// carries no verdict.
//
// Cut identity is the full vertex-set signature (Cut.String), NOT the
// 128-bit dedup digest: the digest is itself part of what the oracle
// audits. On disagreement the report triages each missing cut: a digest
// equal to a different reported cut's digest convicts the deduplication
// layer (the root cause of the original n ≥ 140 gap), and a re-check
// against EnumerateBasic separates incremental-search losses from losses
// in the layers both algorithms share.
func DiffOracle(name string, g *dfg.Graph, opt enum.Options, budget time.Duration) OracleReport {
	rep := OracleReport{Name: name, N: g.N()}
	if budget > 0 {
		opt.Deadline = time.Now().Add(budget)
	}
	poly, ps := enum.CollectAll(g, opt)
	if budget > 0 {
		opt.Deadline = time.Now().Add(budget)
	}
	pruned, rs := CollectPruned(g, opt)
	rep.PolyCuts, rep.PrunedCuts = len(poly), len(pruned)
	if ps.Err != nil {
		rep.Err = ps.Err
	} else if rs.Err != nil {
		rep.Err = rs.Err
	}
	// Any early stop — deadline, cancellation, budget, error — leaves the
	// counts partial: no verdict.
	rep.PolyStop, rep.PrunedStop = ps.StopReason, rs.StopReason
	if rep.Stopped() {
		return rep
	}

	have := make(map[string]bool, len(poly))
	for _, c := range poly {
		have[c.String()] = true
	}
	prunedHave := make(map[string]bool, len(pruned))
	var missing []enum.Cut
	for _, c := range pruned {
		s := c.String()
		prunedHave[s] = true
		if !have[s] {
			missing = append(missing, c)
			rep.MissingTotal++
			if len(rep.Missing) < OracleMaxExamples {
				rep.Missing = append(rep.Missing, s)
			}
		}
	}
	for _, c := range poly {
		if !prunedHave[c.String()] {
			rep.ExtraTotal++
			if len(rep.Extra) < OracleMaxExamples {
				rep.Extra = append(rep.Extra, c.String())
			}
		}
	}
	if rep.MissingTotal > 0 {
		rep.triage(g, opt, poly, missing, budget)
	}
	return rep
}

// triage explains missing cuts: digest collisions against the reported
// set, then (budget permitting) a cross-check against the basic
// algorithm. Example lists are capped at OracleMaxExamples.
func (r *OracleReport) triage(g *dfg.Graph, opt enum.Options, poly, missing []enum.Cut, budget time.Duration) {
	byDigest := make(map[[2]uint64]string, len(poly))
	for _, c := range poly {
		byDigest[c.Nodes.Hash128()] = c.String()
	}
	for _, m := range missing {
		if len(r.DigestCollisions) >= OracleMaxExamples {
			break
		}
		if partner, ok := byDigest[m.Nodes.Hash128()]; ok && partner != m.String() {
			r.DigestCollisions = append(r.DigestCollisions,
				fmt.Sprintf("%s ⇄ %s", m.String(), partner))
		}
	}

	if budget > 0 {
		opt.Deadline = time.Now().Add(budget)
	}
	basic, bs := enum.CollectBasic(g, opt)
	if bs.StopReason != enum.StopNone {
		return
	}
	basicHave := make(map[string]bool, len(basic))
	for _, c := range basic {
		basicHave[c.String()] = true
	}
	for _, m := range missing {
		if len(r.BasicDisagrees) >= OracleMaxExamples {
			break
		}
		if !basicHave[m.String()] {
			r.BasicDisagrees = append(r.BasicDisagrees, m.String())
		}
	}
	sort.Strings(r.BasicDisagrees)
}
