// Package baseline provides the comparison algorithms of §6 and the
// completeness oracles built on them: an exhaustive brute force over all
// vertex subsets, a faithful reimplementation of the Pozzi–Atasu–Ienne
// pruned exhaustive search (reference [15], the state-of-the-art
// exponential algorithm the paper races against in figure 5), the earlier
// Atasu–Pozzi–Ienne search (reference [4]), and the budgeted mid-size
// differential oracle (DiffOracle) that diffs package enum's output
// against the pruned search cut-for-cut.
//
// # Oracle scope
//
// Completeness of the polynomial enumeration is verified at two tiers,
// both driven from this package. BruteForce validates all 2^n vertex
// subsets and is ground truth for any Options, but only to n ≈ 16.
// PrunedSearch explores the same complete space with exact constraint
// propagation and stays tractable well past 200 vertices on MiBench-like
// blocks — the regime where the historical n ≥ 140 dedup-digest gap hid
// (EXPERIMENTS.md "PR 4 — resolved") — so DiffOracle extends the measured
// completeness bound to n ≈ 240 on the default corpus (`make
// diff-oracle`; the polynomial run's own cost, not the oracle's, bounds
// the sweep). Both tiers compare cuts by full vertex-set signature, never
// by the dedup digest, so the digest itself stays under audit.
package baseline

import (
	"fmt"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// TooLargeError reports a graph BruteForce refuses to enumerate: the 2^n
// subset sweep is only ground truth while it terminates. It is a typed
// error (carried in Stats.Err, StopReason = StopError) rather than a panic,
// so oracle drivers can report the refusal instead of crashing.
type TooLargeError struct {
	Eligible int // eligible (non-forbidden) vertices in the graph
	Max      int // the sweep's eligible-vertex ceiling
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("baseline: BruteForce limited to %d eligible vertices (graph has %d)", e.Max, e.Eligible)
}

// bruteForceMaxEligible caps the subset sweep at 2^30 candidates.
const bruteForceMaxEligible = 30

// BruteForce enumerates every subset of the eligible vertices (at most 2^n
// candidates) and validates each against the §3 problem statement. It is
// the ground truth used by the test suite; usable only for small graphs —
// beyond 30 eligible vertices it refuses with a *TooLargeError in
// Stats.Err. The visitor may return false to stop early.
func BruteForce(g *dfg.Graph, opt enum.Options, visit func(enum.Cut) bool) enum.Stats {
	var stats enum.Stats
	val := enum.NewValidator(g, opt)
	stop := enum.NewStopper(opt)
	n := g.N()
	// Eligible vertices: anything not forbidden and not a root.
	var elig []int
	for v := 0; v < n; v++ {
		if !g.IsForbidden(v) {
			elig = append(elig, v)
		}
	}
	if len(elig) > bruteForceMaxEligible {
		stats.Err = &TooLargeError{Eligible: len(elig), Max: bruteForceMaxEligible}
		stats.RecordStop(enum.StopError)
		return stats
	}
	S := bitset.New(n)
	for mask := uint64(1); mask < 1<<uint(len(elig)); mask++ {
		if r := stop.Poll(); r != enum.StopNone {
			stats.RecordStop(r)
			return stats
		}
		S.Clear()
		for i, v := range elig {
			if mask&(1<<uint(i)) != 0 {
				S.Add(v)
			}
		}
		stats.Candidates++
		var cut enum.Cut
		if !val.Validate(S, &cut) {
			stats.Invalid++
			continue
		}
		stats.Valid++
		if opt.KeepCuts {
			cut.Nodes = cut.Nodes.Clone()
		}
		if !visit(cut) {
			stats.RecordStop(enum.StopVisitor)
			return stats
		}
	}
	return stats
}

// CollectBrute runs BruteForce and returns all valid cuts sorted
// deterministically.
func CollectBrute(g *dfg.Graph, opt enum.Options) ([]enum.Cut, enum.Stats) {
	opt.KeepCuts = true
	return enum.Collect(func(visit func(enum.Cut) bool) enum.Stats {
		return BruteForce(g, opt, visit)
	})
}
