// Package baseline provides the comparison algorithms of §6: an exhaustive
// brute force over all vertex subsets (the correctness oracle for small
// graphs) and a faithful reimplementation of the Pozzi–Atasu–Ienne pruned
// exhaustive search (reference [15]), the state-of-the-art exponential
// algorithm the paper races against in figure 5.
package baseline

import (
	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
)

// BruteForce enumerates every subset of the eligible vertices (at most 2^n
// candidates) and validates each against the §3 problem statement. It is
// the ground truth used by the test suite; usable only for small graphs.
// The visitor may return false to stop early.
func BruteForce(g *dfg.Graph, opt enum.Options, visit func(enum.Cut) bool) enum.Stats {
	var stats enum.Stats
	val := enum.NewValidator(g, opt)
	n := g.N()
	// Eligible vertices: anything not forbidden and not a root.
	var elig []int
	for v := 0; v < n; v++ {
		if !g.IsForbidden(v) {
			elig = append(elig, v)
		}
	}
	if len(elig) > 30 {
		panic("baseline: BruteForce limited to 30 eligible vertices")
	}
	S := bitset.New(n)
	for mask := uint64(1); mask < 1<<uint(len(elig)); mask++ {
		S.Clear()
		for i, v := range elig {
			if mask&(1<<uint(i)) != 0 {
				S.Add(v)
			}
		}
		stats.Candidates++
		var cut enum.Cut
		if !val.Validate(S, &cut) {
			stats.Invalid++
			continue
		}
		stats.Valid++
		if opt.KeepCuts {
			cut.Nodes = cut.Nodes.Clone()
		}
		if !visit(cut) {
			return stats
		}
	}
	return stats
}

// CollectBrute runs BruteForce and returns all valid cuts sorted
// deterministically.
func CollectBrute(g *dfg.Graph, opt enum.Options) ([]enum.Cut, enum.Stats) {
	opt.KeepCuts = true
	return enum.Collect(func(visit func(enum.Cut) bool) enum.Stats {
		return BruteForce(g, opt, visit)
	})
}
