// Package bench measures the enumeration algorithms on workload corpora and
// post-processes the results into the paper's figures: the figure 5 run-time
// comparison and the polynomial-scaling fits backing the complexity claim.
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"polyise/internal/baseline"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/parallel"
	"polyise/internal/workload"
)

// Algorithm selects which enumerator a measurement runs.
type Algorithm int

// The measurable algorithms.
const (
	AlgPoly      Algorithm = iota // the paper's incremental polynomial algorithm
	AlgPruned                     // modernized [15]-style pruned exhaustive search
	AlgBasicPoly                  // figure 2's basic polynomial algorithm
	AlgAtasu                      // period-faithful [4]-style exhaustive search
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgPoly:
		return "poly"
	case AlgPruned:
		return "pruned-exhaustive"
	case AlgBasicPoly:
		return "poly-basic"
	case AlgAtasu:
		return "atasu-2003"
	}
	return "unknown"
}

// Measurement is one (algorithm, block) data point.
type Measurement struct {
	Block     string
	Cluster   string
	N         int
	Algorithm Algorithm
	Cuts      int
	Duration  time.Duration
	// StopReason records how the measured run ended: StopNone for a
	// complete measurement, StopDeadline for a genuine wall-clock timeout,
	// StopCanceled for the SIGINT path of cmd/compare, and so on. Any
	// non-none reason means the point is partial — a lower bound on both
	// Cuts and Duration, excluded from fits.
	StopReason enum.StopReason
}

// Stopped reports whether the run ended early for any reason, leaving the
// measurement partial.
func (m Measurement) Stopped() bool { return m.StopReason != enum.StopNone }

// DeadlineHit reports specifically a wall-clock budget timeout, as opposed
// to cancellation or any other early stop.
func (m Measurement) DeadlineHit() bool { return m.StopReason == enum.StopDeadline }

// Run measures one algorithm on one graph with a wall-clock budget (zero
// means unbounded). The measured run is always serial regardless of
// opt.Parallelism: every figure compares single-threaded algorithm cost,
// and sharding a timed run across the cores that time its peers would make
// the numbers incomparable. Parallelism belongs one level up, where
// CompareCorpus and CorpusCuts shard whole blocks.
func Run(alg Algorithm, g *dfg.Graph, opt enum.Options, budget time.Duration) Measurement {
	opt.KeepCuts = false
	opt.Parallelism = 1
	if budget > 0 {
		opt.Deadline = time.Now().Add(budget)
	}
	cuts := 0
	count := func(enum.Cut) bool { cuts++; return true }
	start := time.Now()
	var stats enum.Stats
	switch alg {
	case AlgPoly:
		stats = enum.Enumerate(g, opt, count)
	case AlgPruned:
		stats = baseline.PrunedSearch(g, opt, count)
	case AlgBasicPoly:
		stats = enum.EnumerateBasic(g, opt, count)
	case AlgAtasu:
		stats = baseline.AtasuSearch(g, opt, count)
	}
	return Measurement{
		N:         g.N(),
		Algorithm: alg,
		Cuts:      cuts,
		Duration:  time.Since(start),
		// The full stop reason, not a collapsed boolean: deadline,
		// opt.Context cancellation (the SIGINT path of cmd/compare) and
		// budget stops all leave the point partial, but the tables should
		// say which one happened.
		StopReason: stats.StopReason,
	}
}

// ComparePoint is one figure 5 scatter point: the polynomial algorithm and
// both exhaustive baselines on one block.
type ComparePoint struct {
	Block   string
	Cluster string
	N       int
	Poly    Measurement
	Pruned  Measurement // modernized [15]-style propagation
	Atasu   Measurement // period-faithful [4]-style pruning
}

// SpeedupOfPoly returns how many times faster the polynomial algorithm was
// than the period-faithful exhaustive search (>1 means the paper's
// algorithm wins, matching points above figure 5's diagonal).
func (p ComparePoint) SpeedupOfPoly() float64 {
	if p.Poly.Duration <= 0 {
		return math.Inf(1)
	}
	return float64(p.Atasu.Duration) / float64(p.Poly.Duration)
}

// SpeedupVsModern compares against the modernized [15]-style search.
func (p ComparePoint) SpeedupVsModern() float64 {
	if p.Poly.Duration <= 0 {
		return math.Inf(1)
	}
	return float64(p.Pruned.Duration) / float64(p.Poly.Duration)
}

// CompareCorpus runs the three algorithms over a corpus with a per-run
// budget. Blocks are sharded across opt.Parallelism workers (0 = auto); the
// result slice is indexed like blocks, so the output is deterministic
// regardless of completion order. Each individual measurement runs the
// enumeration serially — sharding one timed run across the same cores that
// time the others would make the figure 5 durations incomparable — so the
// knob buys corpus throughput, not single-block latency. Blocks are claimed
// one at a time rather than in batches: a figure 5 corpus mixes
// 10-node and 1000-node blocks, so batching would regularly strand several
// large blocks on one worker.
func CompareCorpus(blocks []workload.Block, opt enum.Options, budget time.Duration) []ComparePoint {
	workers := parallel.Workers(opt.Parallelism)
	out := make([]ComparePoint, len(blocks))
	parallel.ForEach(workers, len(blocks), 1, func(i int) {
		b := blocks[i]
		poly := Run(AlgPoly, b.G, opt, budget)
		pruned := Run(AlgPruned, b.G, opt, budget)
		atasu := Run(AlgAtasu, b.G, opt, budget)
		out[i] = ComparePoint{
			Block: b.Name, Cluster: b.Cluster, N: b.G.N(),
			Poly: poly, Pruned: pruned, Atasu: atasu,
		}
	})
	return out
}

// CorpusCuts enumerates every block of a corpus with the polynomial
// algorithm and returns the per-block valid-cut counts, indexed like
// blocks. This is the throughput-oriented sibling of CompareCorpus: no
// per-block timing is taken, so blocks are sharded across opt.Parallelism
// workers in small batches (cheap small blocks amortize the claim; the few
// large ones still migrate freely). The per-block enumeration itself runs
// serially (Run enforces this) — for a multi-block corpus, block-level
// sharding alone already saturates the cores without oversubscribing them.
func CorpusCuts(blocks []workload.Block, opt enum.Options, budget time.Duration) []int {
	workers := parallel.Workers(opt.Parallelism)
	out := make([]int, len(blocks))
	parallel.ForEach(workers, len(blocks), 2, func(i int) {
		out[i] = Run(AlgPoly, blocks[i].G, opt, budget).Cuts
	})
	return out
}

// ClusterSummary aggregates figure 5 points per cluster. The *Timeouts
// counters tally genuine deadline hits only; Partial counts points where
// any of the three runs stopped early for ANY reason (cancel, budget,
// deadline) — the set a fit or a wins-count should treat as incomplete.
type ClusterSummary struct {
	Cluster        string
	Points         int
	PolyWins       int // points above the diagonal (vs the [4]-style search)
	MedianSpeedup  float64
	PolyTimeouts   int
	AtasuTimeouts  int
	PrunedTimeouts int
	Partial        int
}

// Summarize aggregates comparison points by cluster, in a stable order.
func Summarize(points []ComparePoint) []ClusterSummary {
	byCluster := map[string][]ComparePoint{}
	var order []string
	for _, p := range points {
		if _, ok := byCluster[p.Cluster]; !ok {
			order = append(order, p.Cluster)
		}
		byCluster[p.Cluster] = append(byCluster[p.Cluster], p)
	}
	var out []ClusterSummary
	for _, c := range order {
		ps := byCluster[c]
		s := ClusterSummary{Cluster: c, Points: len(ps)}
		speedups := make([]float64, 0, len(ps))
		for _, p := range ps {
			if p.SpeedupOfPoly() > 1 {
				s.PolyWins++
			}
			speedups = append(speedups, p.SpeedupOfPoly())
			if p.Poly.DeadlineHit() {
				s.PolyTimeouts++
			}
			if p.Atasu.DeadlineHit() {
				s.AtasuTimeouts++
			}
			if p.Pruned.DeadlineHit() {
				s.PrunedTimeouts++
			}
			if p.Poly.Stopped() || p.Atasu.Stopped() || p.Pruned.Stopped() {
				s.Partial++
			}
		}
		sort.Float64s(speedups)
		s.MedianSpeedup = speedups[len(speedups)/2]
		out = append(out, s)
	}
	return out
}

// WriteScatter prints the figure 5 data series: one line per block with the
// run times of the polynomial algorithm (X axis), the period-faithful
// exhaustive search (Y axis, the paper's comparison) and the modernized
// propagation baseline.
func WriteScatter(w io.Writer, points []ComparePoint) {
	fmt.Fprintf(w, "# figure 5: run-time comparison, X=poly seconds, Y=atasu2003 seconds\n")
	fmt.Fprintf(w, "%-22s %-10s %6s %12s %12s %12s %8s %s\n",
		"block", "cluster", "n", "poly_s", "atasu03_s", "modern15_s", "speedup", "flags")
	for _, p := range points {
		// Flags carry the concrete stop reason per run, not a collapsed
		// "timeout": a canceled point and a deadline point are both partial
		// but mean different things when reading the scatter.
		flags := ""
		if p.Poly.Stopped() {
			flags += fmt.Sprintf("poly-%v ", p.Poly.StopReason)
		}
		if p.Atasu.Stopped() {
			flags += fmt.Sprintf("atasu-%v ", p.Atasu.StopReason)
		}
		if p.Pruned.Stopped() {
			flags += fmt.Sprintf("modern-%v", p.Pruned.StopReason)
		}
		fmt.Fprintf(w, "%-22s %-10s %6d %12.6f %12.6f %12.6f %8.2f %s\n",
			p.Block, p.Cluster, p.N,
			p.Poly.Duration.Seconds(), p.Atasu.Duration.Seconds(),
			p.Pruned.Duration.Seconds(), p.SpeedupOfPoly(), flags)
	}
}

// WriteSummary prints per-cluster aggregates.
func WriteSummary(w io.Writer, summaries []ClusterSummary) {
	fmt.Fprintf(w, "%-10s %7s %9s %15s %13s %14s %15s %8s\n",
		"cluster", "points", "poly-wins", "median-speedup",
		"poly-timeout", "atasu-timeout", "modern-timeout", "partial")
	for _, s := range summaries {
		fmt.Fprintf(w, "%-10s %7d %9d %15.2f %13d %14d %15d %8d\n",
			s.Cluster, s.Points, s.PolyWins, s.MedianSpeedup,
			s.PolyTimeouts, s.AtasuTimeouts, s.PrunedTimeouts, s.Partial)
	}
}

// FitPowerLaw fits y = c·x^k by least squares in log space and returns the
// exponent k and coefficient c. Points with non-positive coordinates are
// ignored. It backs the polynomial-complexity claim: measured exponents for
// the enumeration must stay bounded by Nin+Nout+1.
func FitPowerLaw(xs, ys []float64) (k, c float64) {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return 0, 0
	}
	k = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	c = math.Exp((sy - k*sx) / n)
	return k, c
}

// GrowthExponent measures the scaling of one algorithm over a size sweep by
// fitting run time against graph size.
func GrowthExponent(alg Algorithm, sizes []int, seed int64, opt enum.Options, budget time.Duration) (k float64, points []Measurement) {
	r := newRand(seed)
	xs := make([]float64, 0, len(sizes))
	ys := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		g := workload.MiBenchLike(r, n, workload.DefaultProfile())
		m := Run(alg, g, opt, budget)
		points = append(points, m)
		// Any early stop — not just a deadline — leaves Duration a lower
		// bound, which would silently flatten the fitted exponent.
		if !m.Stopped() {
			xs = append(xs, float64(n))
			ys = append(ys, m.Duration.Seconds())
		}
	}
	k, _ = FitPowerLaw(xs, ys)
	return k, points
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
