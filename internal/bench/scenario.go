package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/ise"
	"polyise/internal/semoracle"
	"polyise/internal/workload"
)

// This file turns end-to-end pipeline configurations into first-class
// benchmark scenarios: exprc kernels and generated blocks run through
// enumerate → select → Verilog emission → interpreter re-check, under
// sweeps over I/O port budgets, forbidden-op sets and resource limits.
// Every result field is deterministic (counts, cycle accounting, emission
// digest), so cmd/benchjson can record scenarios in BENCH_PR9.json and
// gate them by exact equality: a drifted field is a behaviour change in
// some pipeline stage, not noise.

// Scenario is one pinned end-to-end configuration.
type Scenario struct {
	Name string
	// Block names a selection-corpus instance (workload.SelectionCorpus).
	Block string
	// Nin and Nout are the register-file port budgets of the enumeration.
	Nin, Nout int
	// ForbiddenOps restricts the ISA: every node with one of these
	// operations is added to the forbidden set before enumeration.
	ForbiddenOps []dfg.Op
	// MaxInstructions and MinSaving configure selection (0 = unlimited /
	// default 1).
	MaxInstructions int
	MinSaving       int
}

// ScenarioResult is the deterministic outcome of one scenario run.
type ScenarioResult struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Cuts is the number of valid cuts enumerated under the scenario's
	// constraints; exact, so any drift is a correctness regression.
	Cuts int `json:"cuts"`
	// Chosen is the number of selected instructions.
	Chosen int `json:"chosen"`
	// CyclesBefore/After pin the cost-model accounting.
	CyclesBefore int `json:"cycles_before"`
	CyclesAfter  int `json:"cycles_after"`
	// AreaMilli is the selection's total area in milli-units (integer, so
	// the JSON round-trip is exact).
	AreaMilli int64 `json:"area_milli"`
	// VerilogBytes and VerilogFNV pin the emitted RTL byte-exactly: the
	// concatenated module text's length and 64-bit FNV-1a digest.
	VerilogBytes int    `json:"verilog_bytes"`
	VerilogFNV   string `json:"verilog_fnv"`
	// OracleEnvs and OracleMismatches record the interpreter re-check of
	// every chosen instruction (collapsed ≡ original); a recorded scenario
	// always has OracleMismatches == 0.
	OracleEnvs       int `json:"oracle_envs"`
	OracleMismatches int `json:"oracle_mismatches"`
}

// Scenarios returns the pinned scenario suite: I/O port sweeps, restricted-
// ISA (forbidden-op) sweeps, memory-inclusive kernels, and binding
// selection budgets — the constraint axes of §5.3/§7 exercised through the
// whole pipeline.
func Scenarios() []Scenario {
	return []Scenario{
		// I/O port budget sweep on a mid-size generated block with memory
		// traffic: the axis of the paper's Nin/Nout constraint.
		{Name: "io-2x1/mibench-n40", Block: "mibench-n40-seed7", Nin: 2, Nout: 1},
		{Name: "io-3x1/mibench-n40", Block: "mibench-n40-seed7", Nin: 3, Nout: 1},
		{Name: "io-4x2/mibench-n40", Block: "mibench-n40-seed7", Nin: 4, Nout: 2},
		{Name: "io-6x3/mibench-n40", Block: "mibench-n40-seed7", Nin: 6, Nout: 3},
		// Restricted-ISA sweep: the same kernel with and without a
		// multiplier block, and a shift-free hash round.
		{Name: "isa-full/fir4", Block: "fir4", Nin: 4, Nout: 2},
		{Name: "isa-no-mul/fir4", Block: "fir4", Nin: 4, Nout: 2,
			ForbiddenOps: []dfg.Op{dfg.OpMul, dfg.OpDiv, dfg.OpRem}},
		{Name: "isa-no-shift/hash-round", Block: "hash-round", Nin: 4, Nout: 2,
			ForbiddenOps: []dfg.Op{dfg.OpShl, dfg.OpShr, dfg.OpSar}},
		// Memory-inclusive kernel: cuts wrap around forbidden loads/stores
		// and collapsing must preserve the dependence ordering.
		{Name: "mem/mem-kernel", Block: "mem-kernel", Nin: 4, Nout: 2},
		// Binding selection budgets on the richest small instance.
		{Name: "budget-1insn/fir4", Block: "fir4", Nin: 4, Nout: 2, MaxInstructions: 1},
		{Name: "budget-save2/hash-round", Block: "hash-round", Nin: 4, Nout: 2, MinSaving: 2},
	}
}

// scenarioOracleEnvs is the per-instruction environment count of the
// end-to-end re-check (the full corpus-level sweep at DefaultEnvs lives in
// internal/semoracle's own tests).
const scenarioOracleEnvs = 4

// RunScenario executes one scenario end to end and returns its
// deterministic result. Any pipeline failure — enumeration stopping early,
// emission failing, the interpreter refusing a graph — is an error, not a
// silently partial result.
func RunScenario(s Scenario) (ScenarioResult, error) {
	res := ScenarioResult{Name: s.Name, OracleEnvs: scenarioOracleEnvs}
	g := findBlock(s.Block)
	if g == nil {
		return res, fmt.Errorf("scenario %s: unknown block %q", s.Name, s.Block)
	}
	if len(s.ForbiddenOps) > 0 {
		g = workload.WithForbiddenOps(g, s.ForbiddenOps...)
	}
	res.N = g.N()

	eopt := enum.DefaultOptions()
	eopt.MaxInputs = s.Nin
	eopt.MaxOutputs = s.Nout
	cuts, stats := enum.CollectAll(g, eopt)
	if stats.StopReason != enum.StopNone {
		return res, fmt.Errorf("scenario %s: enumeration stopped: %v", s.Name, stats.StopReason)
	}
	res.Cuts = len(cuts)

	sopt := ise.DefaultSelectOptions()
	sopt.MaxInstructions = s.MaxInstructions
	if s.MinSaving > 0 {
		sopt.MinSaving = s.MinSaving
	}
	sel := ise.Select(g, ise.DefaultModel(), cuts, sopt)
	if bad := semoracle.Invariants(g, sel, eopt, sopt); len(bad) != 0 {
		return res, fmt.Errorf("scenario %s: selection invariants: %v", s.Name, bad)
	}
	res.Chosen = len(sel.Chosen)
	res.CyclesBefore = sel.BlockCyclesBefore
	res.CyclesAfter = sel.BlockCyclesAfter
	res.AreaMilli = int64(sel.TotalArea*1000 + 0.5)

	var rtl bytes.Buffer
	for i, c := range sel.Chosen {
		if err := ise.WriteVerilog(&rtl, g, c.Cut, fmt.Sprintf("ise%d", i)); err != nil {
			return res, fmt.Errorf("scenario %s: verilog for instruction %d: %w", s.Name, i, err)
		}
	}
	res.VerilogBytes = rtl.Len()
	h := fnv.New64a()
	h.Write(rtl.Bytes())
	res.VerilogFNV = fmt.Sprintf("%016x", h.Sum64())

	for i, c := range sel.Chosen {
		mismatches, err := semoracle.CheckCut(g, c.Cut, scenarioOracleEnvs, int64(i)+0x5ce)
		if err != nil {
			return res, fmt.Errorf("scenario %s: oracle on instruction %d: %w", s.Name, i, err)
		}
		res.OracleMismatches += len(mismatches)
	}
	return res, nil
}

// RunScenarios runs the whole pinned suite.
func RunScenarios() ([]ScenarioResult, error) {
	var out []ScenarioResult
	for _, s := range Scenarios() {
		r, err := RunScenario(s)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func findBlock(name string) *dfg.Graph {
	for _, b := range workload.SelectionCorpus() {
		if b.Name == name {
			return b.G
		}
	}
	return nil
}
