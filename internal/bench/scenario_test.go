package bench

import (
	"strings"
	"testing"
)

// TestScenariosRunCleanAndDeterministic runs the pinned suite twice: every
// scenario must complete with a semantically certified selection, and the
// two runs must agree on every recorded field — the property the
// BENCH_PR9.json exact-equality gate depends on.
func TestScenariosRunCleanAndDeterministic(t *testing.T) {
	a, err := RunScenarios()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(Scenarios()) {
		t.Fatalf("ran %d scenarios, suite has %d", len(a), len(Scenarios()))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("scenario %s not deterministic:\n%+v\n%+v", a[i].Name, a[i], b[i])
		}
		if a[i].OracleMismatches != 0 {
			t.Errorf("scenario %s: %d semantic mismatches", a[i].Name, a[i].OracleMismatches)
		}
		if a[i].Chosen > 0 && a[i].VerilogBytes == 0 {
			t.Errorf("scenario %s: %d instructions selected but no RTL emitted", a[i].Name, a[i].Chosen)
		}
		if a[i].Cuts == 0 {
			t.Errorf("scenario %s: zero cuts — vacuous", a[i].Name)
		}
	}
}

// TestScenarioSweepsActuallySweep pins that the constraint axes bind:
// widening the I/O budget must not shrink the cut population, and
// forbidding ops must change it.
func TestScenarioSweepsActuallySweep(t *testing.T) {
	res, err := RunScenarios()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScenarioResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	io := []string{"io-2x1/mibench-n40", "io-3x1/mibench-n40", "io-4x2/mibench-n40", "io-6x3/mibench-n40"}
	for i := 1; i < len(io); i++ {
		if byName[io[i]].Cuts < byName[io[i-1]].Cuts {
			t.Errorf("%s has fewer cuts (%d) than narrower %s (%d)",
				io[i], byName[io[i]].Cuts, io[i-1], byName[io[i-1]].Cuts)
		}
	}
	if byName["isa-no-mul/fir4"].Cuts >= byName["isa-full/fir4"].Cuts {
		t.Errorf("forbidding multipliers did not shrink fir4's cut population (%d vs %d)",
			byName["isa-no-mul/fir4"].Cuts, byName["isa-full/fir4"].Cuts)
	}
	if mem := byName["mem/mem-kernel"]; mem.Cuts == 0 {
		t.Error("memory scenario enumerated no cuts")
	}
	if b1 := byName["budget-1insn/fir4"]; b1.Chosen > 1 {
		t.Errorf("budget-1insn selected %d instructions", b1.Chosen)
	}
}

// TestScenarioUnknownBlockFails pins the failure mode: a scenario naming a
// block outside the corpus must error, not record zeros.
func TestScenarioUnknownBlockFails(t *testing.T) {
	_, err := RunScenario(Scenario{Name: "bogus", Block: "nope", Nin: 4, Nout: 2})
	if err == nil || !strings.Contains(err.Error(), "unknown block") {
		t.Fatalf("err = %v, want unknown block", err)
	}
}
