package bench

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"polyise/internal/enum"
	"polyise/internal/workload"
)

func TestFitPowerLaw(t *testing.T) {
	// Perfect y = 3 x^2.5.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 2.5)
	}
	k, c := FitPowerLaw(xs, ys)
	if math.Abs(k-2.5) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (2.5, 3)", k, c)
	}
	// Non-positive points ignored; degenerate input yields zeros.
	k, c = FitPowerLaw([]float64{1, -1}, []float64{2, 3})
	if k != 0 || c != 0 {
		t.Fatalf("degenerate fit = (%v, %v)", k, c)
	}
}

func TestRunCountsMatchAcrossAlgorithms(t *testing.T) {
	blocks := workload.Corpus(11, workload.CorpusSpec{
		Small: 3, TreeDepths: []int{4}, Profile: workload.DefaultProfile(),
	})
	opt := enum.DefaultOptions()
	for _, b := range blocks {
		poly := Run(AlgPoly, b.G, opt, 0)
		pruned := Run(AlgPruned, b.G, opt, 0)
		basic := Run(AlgBasicPoly, b.G, opt, 0)
		atasu := Run(AlgAtasu, b.G, opt, 0)
		if poly.Cuts != pruned.Cuts || poly.Cuts != basic.Cuts || poly.Cuts != atasu.Cuts {
			t.Fatalf("%s: cut counts diverge: poly=%d pruned=%d basic=%d atasu=%d",
				b.Name, poly.Cuts, pruned.Cuts, basic.Cuts, atasu.Cuts)
		}
		if poly.Duration <= 0 {
			t.Fatalf("%s: non-positive duration", b.Name)
		}
	}
}

func TestBudgetTimesOut(t *testing.T) {
	g := workload.Tree(7, 2) // 255-node tree: exhaustive search cannot finish fast
	opt := enum.DefaultOptions()
	m := Run(AlgPruned, g, opt, 30*time.Millisecond)
	if !m.Stopped() {
		t.Skip("machine finished the exhaustive tree search within 30ms; nothing to assert")
	}
	if !m.DeadlineHit() {
		t.Fatalf("budget stop reported as %v, want %v", m.StopReason, enum.StopDeadline)
	}
	if m.Duration > 5*time.Second {
		t.Fatalf("timeout not respected: ran %v", m.Duration)
	}
}

func TestSummarizeAndWriters(t *testing.T) {
	points := []ComparePoint{
		{Block: "a", Cluster: "10-79", N: 20,
			Poly:   Measurement{Duration: time.Millisecond},
			Atasu:  Measurement{Duration: 10 * time.Millisecond},
			Pruned: Measurement{Duration: 5 * time.Millisecond}},
		{Block: "b", Cluster: "10-79", N: 30,
			Poly:   Measurement{Duration: 4 * time.Millisecond},
			Atasu:  Measurement{Duration: 2 * time.Millisecond},
			Pruned: Measurement{Duration: time.Millisecond}},
		{Block: "t", Cluster: "tree", N: 31,
			Poly:   Measurement{Duration: time.Millisecond},
			Atasu:  Measurement{Duration: time.Second, StopReason: enum.StopDeadline},
			Pruned: Measurement{Duration: time.Second, StopReason: enum.StopCanceled}},
	}
	sums := Summarize(points)
	if len(sums) != 2 {
		t.Fatalf("clusters = %d", len(sums))
	}
	if sums[0].Cluster != "10-79" || sums[0].PolyWins != 1 || sums[0].Points != 2 {
		t.Fatalf("summary[0] = %+v", sums[0])
	}
	// The deadline hit counts as a timeout; the canceled run is partial but
	// NOT a timeout — that distinction is the point of the StopReason field.
	if sums[1].AtasuTimeouts != 1 || sums[1].PrunedTimeouts != 0 || sums[1].Partial != 1 {
		t.Fatalf("summary[1] = %+v", sums[1])
	}
	if sums[0].Partial != 0 {
		t.Fatalf("summary[0] reports %d partial points, want 0", sums[0].Partial)
	}

	var buf bytes.Buffer
	WriteScatter(&buf, points)
	out := buf.String()
	if !strings.Contains(out, "atasu-deadline") || !strings.Contains(out, "modern-canceled") ||
		!strings.Contains(out, "figure 5") {
		t.Fatalf("scatter output:\n%s", out)
	}
	buf.Reset()
	WriteSummary(&buf, sums)
	if !strings.Contains(buf.String(), "10-79") {
		t.Fatalf("summary output:\n%s", buf.String())
	}
}

func TestGrowthExponentSmoke(t *testing.T) {
	opt := enum.DefaultOptions()
	k, points := GrowthExponent(AlgPoly, []int{20, 40, 60}, 5, opt, 10*time.Second)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// The exponent must be positive and bounded by the theoretical 7.
	if k <= 0 || k > 7.5 {
		t.Fatalf("implausible growth exponent %v", k)
	}
}

// speedupCorpus is the multi-block corpus behind the block-level sharding
// tests and benchmarks: enough small blocks that a serial sweep leaves
// other cores idle for a measurable stretch, while any single block stays
// cheap enough for CI.
func speedupCorpus() []workload.Block {
	spec := workload.CorpusSpec{Small: 24, Profile: workload.DefaultProfile()}
	return workload.Corpus(7, spec)
}

// TestCorpusCutsParallelMatchesSerial is the block-level differential
// check: sharding a corpus across workers must reproduce the serial
// per-block counts exactly, in the serial order.
func TestCorpusCutsParallelMatchesSerial(t *testing.T) {
	blocks := speedupCorpus()
	serialOpt := enum.DefaultOptions()
	serialOpt.Parallelism = 1
	serial := CorpusCuts(blocks, serialOpt, 0)
	parOpt := enum.DefaultOptions()
	parOpt.Parallelism = 6
	par := CorpusCuts(blocks, parOpt, 0)
	if len(serial) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(par))
	}
	total := 0
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("block %d (%s): %d cuts serial, %d sharded",
				i, blocks[i].Name, serial[i], par[i])
		}
		total += serial[i]
	}
	if total == 0 {
		t.Fatal("corpus produced no cuts; the comparison is vacuous")
	}
}

// TestCompareCorpusParallelDeterministic checks CompareCorpus's sharded
// result placement: block names and cut counts must land at the same
// indices as a serial run (durations of course differ).
func TestCompareCorpusParallelDeterministic(t *testing.T) {
	// Hand-sized blocks: small enough that the two exhaustive baselines
	// finish well inside the budget, so every cut count is exact and
	// run-to-run comparable.
	var blocks []workload.Block
	for i, n := range []int{14, 18, 22, 26, 30, 34} {
		blocks = append(blocks, workload.Block{
			Name:    fmt.Sprintf("diff-%02d", i),
			Cluster: workload.ClusterSmall,
			G:       workload.MiBenchLike(rand.New(rand.NewSource(int64(i+1))), n, workload.DefaultProfile()),
		})
	}
	serialOpt := enum.DefaultOptions()
	serialOpt.Parallelism = 1
	parOpt := enum.DefaultOptions()
	parOpt.Parallelism = 5
	a := CompareCorpus(blocks, serialOpt, time.Minute)
	b := CompareCorpus(blocks, parOpt, time.Minute)
	for i := range a {
		if a[i].Block != b[i].Block || a[i].Poly.Cuts != b[i].Poly.Cuts ||
			a[i].Atasu.Cuts != b[i].Atasu.Cuts || a[i].Pruned.Cuts != b[i].Pruned.Cuts {
			t.Fatalf("index %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// BenchmarkCorpusCuts measures the block-level worker pool on a multi-block
// corpus: `serial` is the paper-faithful single-goroutine sweep, `parallel`
// shards blocks across GOMAXPROCS. On a machine with GOMAXPROCS ≥ 4 the
// parallel sweep is expected to finish the corpus at least 2× faster
// (blocks are independent; the only serial residue is the final block tail).
func BenchmarkCorpusCuts(b *testing.B) {
	blocks := speedupCorpus()
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := enum.DefaultOptions()
			opt.Parallelism = cfg.workers
			opt.KeepCuts = false
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				CorpusCuts(blocks, opt, 0)
			}
		})
	}
}

// BenchmarkIntraBlockScaling is the single-block complement of
// BenchmarkCorpusCuts: one large block enumerated with INTRA-block sharding
// plus interior work-stealing, the regime where block-level pooling cannot
// help because there is only one block. `serial` is the paper algorithm,
// `parallel` uses GOMAXPROCS workers, and `steal-forced` uses one worker
// per first-output position so every balancing decision is an interior
// steal — the steals/op metric shows whether dynamic re-balancing was
// active (it is scheduling-dependent, so the metric is informative, not
// asserted). The per-run cut count is asserted instead: any worker count
// must enumerate the identical set.
func BenchmarkIntraBlockScaling(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 160, workload.DefaultProfile())
	ref := -1
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}, {"steal-forced", g.N()}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := enum.DefaultOptions()
			opt.Parallelism = cfg.workers
			opt.KeepCuts = false
			b.ReportAllocs()
			steals, cuts := 0, 0
			for i := 0; i < b.N; i++ {
				cuts = 0
				stats := enum.Enumerate(g, opt, func(enum.Cut) bool { cuts++; return true })
				steals += stats.Steals
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
			if ref < 0 {
				ref = cuts
			} else if cuts != ref {
				b.Fatalf("workers=%d enumerated %d cuts, serial found %d", cfg.workers, cuts, ref)
			}
		})
	}
}
