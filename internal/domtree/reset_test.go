package domtree

// Property test for the arena-reuse API: a single Solver driven through a
// sequence of Reset calls — varying both the root and the blocked seed set
// per step — must produce results identical to a freshly constructed
// NewSolver + Run at every step. This pins the confined re-initialization
// (only the previously reached region is cleared between runs) against the
// straightforward full-clear semantics.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
)

func TestResetReuseMatchesFreshSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		succs, preds := randomDigraph(r, n)
		arena := NewSolver(n, 0, succs, preds)

		for step := 0; step < 25; step++ {
			root := r.Intn(n)
			var blocked *bitset.Set
			if r.Intn(3) > 0 {
				blocked = bitset.New(n)
				for i := 0; i < n/4; i++ {
					blocked.Add(r.Intn(n))
				}
				// A blocked root is legal: the run reaches nothing.
				if r.Intn(8) > 0 {
					blocked.Remove(root)
				}
			}
			fresh := NewSolver(n, root, succs, preds)
			wantReached := fresh.Run(blocked)
			gotReached := arena.Reset(root, blocked)
			if gotReached != wantReached {
				t.Logf("seed=%d step=%d root=%d: reached %d want %d",
					seed, step, root, gotReached, wantReached)
				return false
			}
			for v := 0; v < n; v++ {
				if arena.IDom(v) != fresh.IDom(v) || arena.Reachable(v) != fresh.Reachable(v) {
					t.Logf("seed=%d step=%d root=%d v=%d: idom %d/%v want %d/%v",
						seed, step, root, v,
						arena.IDom(v), arena.Reachable(v),
						fresh.IDom(v), fresh.Reachable(v))
					return false
				}
			}
			// Run must stay pinned to the construction root even after
			// Reset solved elsewhere.
			fresh0 := NewSolver(n, 0, succs, preds)
			wantReached = fresh0.Run(blocked)
			gotReached = arena.Run(blocked)
			if gotReached != wantReached {
				t.Logf("seed=%d step=%d Run-after-Reset: reached %d want %d",
					seed, step, gotReached, wantReached)
				return false
			}
			for v := 0; v < n; v++ {
				if arena.IDom(v) != fresh0.IDom(v) || arena.Reachable(v) != fresh0.Reachable(v) {
					t.Logf("seed=%d step=%d Run-after-Reset v=%d: idom %d/%v want %d/%v",
						seed, step, v,
						arena.IDom(v), arena.Reachable(v),
						fresh0.IDom(v), fresh0.Reachable(v))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestResetRunAllocs pins the arena promise: after the first run, repeated
// solves on the same arena allocate nothing, even as roots and blocked sets
// change.
func TestResetRunAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	succs, preds := randomDigraph(r, n)
	s := NewSolver(n, 0, succs, preds)
	blocked := bitset.New(n)
	for i := 0; i < 20; i++ {
		blocked.Add(r.Intn(n-1) + 1)
	}
	s.Run(nil) // primes the arena and the DFS stack
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset(0, blocked)
		s.Reset(n/2, nil)
		s.Run(blocked)
	})
	if allocs > 0 {
		t.Fatalf("arena-reused solves allocated %.1f times per run, want 0", allocs)
	}
}
