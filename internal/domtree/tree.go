package domtree

// Tree is an immutable dominator (or postdominator) tree supporting O(1)
// ancestor queries via pre/post intervals of a depth-first traversal, the
// constant-time "ancestor queries (either on dominators or on
// postdominators)" of §5.4.
type Tree struct {
	root     int
	idom     []int32
	pre      []int32 // entry time of DFS over the tree; -1 if not in tree
	post     []int32 // exit time
	children [][]int32
}

// BuildTree snapshots the result of the solver's last Run into a Tree.
func (s *Solver) BuildTree() *Tree {
	n := s.n
	t := &Tree{
		root:     int(s.root),
		idom:     make([]int32, n),
		pre:      make([]int32, n),
		post:     make([]int32, n),
		children: make([][]int32, n),
	}
	copy(t.idom, s.idom)
	for v := 0; v < n; v++ {
		t.pre[v] = none
		t.post[v] = none
	}
	for v := 0; v < n; v++ {
		if p := s.idom[v]; p != none {
			t.children[p] = append(t.children[p], int32(v))
		}
	}
	if !s.Reachable(int(s.root)) {
		return t
	}
	// Iterative DFS assigning pre/post timestamps.
	type frame struct {
		v    int32
		next int
	}
	clock := int32(0)
	stack := []frame{{int32(t.root), 0}}
	t.pre[t.root] = clock
	clock++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.v]) {
			c := t.children[f.v][f.next]
			f.next++
			t.pre[c] = clock
			clock++
			stack = append(stack, frame{c, 0})
			continue
		}
		t.post[f.v] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
	return t
}

// Root returns the tree root vertex.
func (t *Tree) Root() int { return t.root }

// IDom returns the immediate dominator of v, or -1.
func (t *Tree) IDom(v int) int { return int(t.idom[v]) }

// InTree reports whether v was reachable when the tree was built.
func (t *Tree) InTree(v int) bool { return t.pre[v] != none }

// Dominates reports whether a dominates v, reflexively, in O(1).
func (t *Tree) Dominates(a, v int) bool {
	if t.pre[a] == none || t.pre[v] == none {
		return false
	}
	return t.pre[a] <= t.pre[v] && t.post[v] <= t.post[a]
}

// StrictlyDominates reports whether a dominates v and a != v.
func (t *Tree) StrictlyDominates(a, v int) bool {
	return a != v && t.Dominates(a, v)
}

// Children returns the tree children of v; read-only.
func (t *Tree) Children(v int) []int32 { return t.children[v] }

// Walk calls f on the chain of strict dominators of v from the innermost
// outward, stopping at (and excluding) the root or when f returns false.
func (t *Tree) Walk(v int, f func(d int) bool) {
	for x := t.idom[v]; x != none && int(x) != t.root; x = t.idom[x] {
		if !f(int(x)) {
			return
		}
	}
}
