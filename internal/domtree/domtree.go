// Package domtree implements the Lengauer–Tarjan dominator algorithm
// (TOPLAS 1979) in its O(m log n) path-compression variant, the one the
// paper selects in §5.4 ("we implemented the O(n log n) variant of the
// Lengauer–Tarjan algorithm, which employs path compression but no tree
// balancing").
//
// Two properties drive the design:
//
//   - The multi-vertex dominator search (package multidom) runs the solver
//     on many *reduced* graphs — the original graph with a seed set of
//     vertices deleted. The Solver therefore accepts a set of blocked
//     vertices per run and reuses all its scratch arrays across runs, and
//     both the depth-first search and the eval function are iterative so
//     that thousand-node graphs do not exhaust goroutine stacks (§5.4 notes
//     the iterative eval cut memory accesses by a third).
//
//   - Ancestor queries on the resulting tree must be O(1) (§5.4); the Tree
//     type provides them via pre/post intervals of a depth-first walk.
package domtree

import (
	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// none marks an absent vertex in the int32 scratch arrays.
const none = int32(-1)

// Solver computes immediate dominators of a fixed rooted digraph, optionally
// with a subset of vertices blocked (treated as deleted). A Solver is not
// safe for concurrent use; create one per goroutine.
type Solver struct {
	n     int
	root  int32 // root of the most recent run (Reset may move it)
	croot int32 // construction root, the one Run always uses
	succs [][]int32
	preds [][]int32

	// Lengauer–Tarjan state, indexed by vertex.
	dfnum    []int32    // depth-first number, or -1 if unreached
	vertex   []int32    // dfnum → vertex
	parent   []int32    // DFS tree parent
	semi     []int32    // semidominator as a dfnum
	idom     []int32    // immediate dominator (vertex), none for root/unreached
	ancestor []int32    // link-eval forest
	label    []int32    // link-eval labels
	buckets  []int32    // bucket linked lists: head per vertex
	bnext    []int32    // next pointers for bucket lists
	stack    []int32    // scratch for path compression
	dfsStack [][2]int32 // scratch for the depth-first search
	reached  int        // number of vertices reached by last Run
	primed   bool       // arena invariant established (see Reset)
}

// NewSolver creates a solver for the digraph with n vertices, the given
// root, and the given adjacency. The adjacency slices are retained (not
// copied) and must not change while the solver is in use.
func NewSolver(n, root int, succs, preds [][]int32) *Solver {
	s := &Solver{
		n:     n,
		root:  int32(root),
		croot: int32(root),
		succs: succs,
		preds: preds,
	}
	s.dfnum = make([]int32, n)
	s.vertex = make([]int32, n)
	s.parent = make([]int32, n)
	s.semi = make([]int32, n)
	s.idom = make([]int32, n)
	s.ancestor = make([]int32, n)
	s.label = make([]int32, n)
	s.buckets = make([]int32, n)
	s.bnext = make([]int32, n)
	s.stack = make([]int32, 0, n)
	return s
}

// ForwardSolver returns a solver for the augmented graph of g rooted at the
// virtual source (dominators).
func ForwardSolver(g *dfg.Graph) *Solver {
	a := g.Augmented()
	return NewSolver(a.N, a.Source, a.Succs, a.Preds)
}

// ReverseSolver returns a solver for the reverse augmented graph of g rooted
// at the virtual sink (postdominators).
func ReverseSolver(g *dfg.Graph) *Solver {
	a := g.Augmented()
	return NewSolver(a.N, a.Sink, a.Preds, a.Succs)
}

// Run computes immediate dominators, ignoring any vertex in blocked (nil
// means no blocking). Blocked vertices and vertices unreachable from the
// root get IDom == -1. It returns the number of reached vertices.
//
// Run is Reset at the construction root (always, even after Reset has
// solved at a different root): successive runs reuse the solver arena and
// pay initialization only for the region the previous run reached.
func (s *Solver) Run(blocked *bitset.Set) int {
	return s.Reset(int(s.croot), blocked)
}

// Reset re-arms the solver arena and solves immediately: it clears only the
// per-vertex state the previous run touched (the renumbered region —
// Lengauer–Tarjan only ever writes dominator state for vertices its
// depth-first search numbered), moves the root to the given vertex, and
// runs the algorithm with every vertex in seeds blocked (nil means no
// blocking). This is the per-step entry point of the multiple-vertex
// dominator search, which solves thousands of reduced graphs per
// enumeration: each solve costs O(region reached) rather than O(n) in
// initialization, and no per-run state is allocated.
//
// The arena invariant — dfnum/idom/ancestor/buckets are `none` outside the
// previously reached region — is established on the first call and
// maintained by the confined clear afterwards. Results are identical to a
// fresh NewSolver + Run (the property tests pin this).
func (s *Solver) Reset(root int, seeds *bitset.Set) int {
	if !s.primed {
		for i := 0; i < s.n; i++ {
			s.dfnum[i] = none
			s.idom[i] = none
			s.ancestor[i] = none
			s.buckets[i] = none
		}
		s.primed = true
	} else {
		for i := 0; i < s.reached; i++ {
			v := s.vertex[i]
			s.dfnum[v] = none
			s.idom[v] = none
			s.ancestor[v] = none
			s.buckets[v] = none
		}
	}
	s.root = int32(root)
	blocked := seeds

	// Iterative depth-first search from the root, skipping blocked vertices.
	// Vertices are numbered in true preorder (when first visited), which the
	// Lengauer–Tarjan semidominator theory depends on. The stack holds
	// (vertex, tentative parent) pairs; a vertex may be pushed several times
	// but is numbered only once.
	num := int32(0)
	if cap(s.dfsStack) < s.n {
		s.dfsStack = make([][2]int32, 0, 2*s.n)
	}
	st := s.dfsStack[:0]
	if blocked == nil || !blocked.Has(int(s.root)) {
		st = append(st, [2]int32{s.root, none})
	}
	for len(st) > 0 {
		top := st[len(st)-1]
		st = st[:len(st)-1]
		v, p := top[0], top[1]
		if s.dfnum[v] != none {
			continue
		}
		s.parent[v] = p
		s.dfnum[v] = num
		s.vertex[num] = v
		s.semi[v] = num
		s.label[v] = v
		num++
		for _, w := range s.succs[v] {
			if blocked != nil && blocked.Has(int(w)) {
				continue
			}
			if s.dfnum[w] == none {
				st = append(st, [2]int32{w, v})
			}
		}
	}
	s.dfsStack = st[:0]
	s.reached = int(num)

	// Main Lengauer–Tarjan loop, in reverse pre-order.
	for i := num - 1; i >= 1; i-- {
		w := s.vertex[i]
		// Compute semidominator of w.
		for _, v := range s.preds[w] {
			if s.dfnum[v] == none { // blocked or unreachable
				continue
			}
			u := s.eval(v)
			if s.semi[u] < s.semi[w] {
				s.semi[w] = s.semi[u]
			}
		}
		// Add w to the bucket of its semidominator vertex.
		sv := s.vertex[s.semi[w]]
		s.bnext[w] = s.buckets[sv]
		s.buckets[sv] = w
		p := s.parent[w]
		s.ancestor[w] = p // link(p, w)
		// Process the bucket of p.
		for v := s.buckets[p]; v != none; v = s.bnext[v] {
			u := s.eval(v)
			if s.semi[u] < s.semi[v] {
				s.idom[v] = u // deferred: resolved in final pass
			} else {
				s.idom[v] = p
			}
		}
		s.buckets[p] = none
	}

	// Final pass in pre-order resolves deferred immediate dominators.
	for i := int32(1); i < num; i++ {
		w := s.vertex[i]
		if s.idom[w] != s.vertex[s.semi[w]] {
			s.idom[w] = s.idom[s.idom[w]]
		}
	}
	if num > 0 {
		s.idom[s.root] = none
	}
	return s.reached
}

// eval returns the vertex with minimum semidominator on the forest path
// above v, applying iterative path compression.
func (s *Solver) eval(v int32) int32 {
	if s.ancestor[v] == none {
		return s.label[v]
	}
	// Collect the path from v up to the forest root.
	s.stack = s.stack[:0]
	u := v
	for s.ancestor[s.ancestor[u]] != none {
		s.stack = append(s.stack, u)
		u = s.ancestor[u]
	}
	// u's ancestor is a forest root; fold labels back down.
	for i := len(s.stack) - 1; i >= 0; i-- {
		w := s.stack[i]
		a := s.ancestor[w]
		if s.semi[s.label[a]] < s.semi[s.label[w]] {
			s.label[w] = s.label[a]
		}
		s.ancestor[w] = s.ancestor[a]
	}
	return s.label[v]
}

// IDom returns the immediate dominator of v after Run, or -1 for the root,
// blocked or unreachable vertices.
func (s *Solver) IDom(v int) int { return int(s.idom[v]) }

// Reached returns how many vertices the last Run reached.
func (s *Solver) Reached() int { return s.reached }

// Reachable reports whether v was reached from the root in the last Run.
func (s *Solver) Reachable(v int) bool { return s.dfnum[v] != none }

// Dominates reports whether a dominates v (reflexively) according to the
// last Run, by walking the idom chain; O(depth). For O(1) queries build a
// Tree.
func (s *Solver) Dominates(a, v int) bool {
	if !s.Reachable(v) || !s.Reachable(a) {
		return false
	}
	for x := int32(v); x != none; x = s.idom[x] {
		if int(x) == a {
			return true
		}
	}
	return false
}

// DominatorsOf returns all strict dominators of v (excluding v itself and
// the root), innermost first.
func (s *Solver) DominatorsOf(v int) []int {
	var out []int
	if !s.Reachable(v) {
		return nil
	}
	for x := s.idom[int32(v)]; x != none && x != s.root; x = s.idom[x] {
		out = append(out, int(x))
	}
	return out
}
