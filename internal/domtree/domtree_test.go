package domtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// adjacency builds succ/pred lists from an edge list.
func adjacency(n int, edges [][2]int) (succs, preds [][]int32) {
	succs = make([][]int32, n)
	preds = make([][]int32, n)
	for _, e := range edges {
		succs[e[0]] = append(succs[e[0]], int32(e[1]))
		preds[e[1]] = append(preds[e[1]], int32(e[0]))
	}
	return
}

// bruteDominates is the oracle: a dominates v iff v is unreachable from root
// when a is removed (and v is reachable at all). Reflexive.
func bruteDominates(n, root int, succs [][]int32, blocked *bitset.Set, a, v int) bool {
	reach := func(skip int) []bool {
		seen := make([]bool, n)
		if root == skip || (blocked != nil && blocked.Has(root)) {
			return seen
		}
		stack := []int{root}
		seen[root] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range succs[x] {
				si := int(s)
				if si == skip || seen[si] || (blocked != nil && blocked.Has(si)) {
					continue
				}
				seen[si] = true
				stack = append(stack, si)
			}
		}
		return seen
	}
	if !reach(-1)[v] {
		return false
	}
	if a == v {
		return true
	}
	return !reach(a)[v]
}

func TestLinearChain(t *testing.T) {
	// 0→1→2→3: idom(i) = i-1.
	succs, preds := adjacency(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	s := NewSolver(4, 0, succs, preds)
	s.Run(nil)
	want := []int{-1, 0, 1, 2}
	for v, w := range want {
		if s.IDom(v) != w {
			t.Errorf("IDom(%d) = %d, want %d", v, s.IDom(v), w)
		}
	}
}

func TestDiamond(t *testing.T) {
	// 0→{1,2}→3: idom(3) = 0.
	succs, preds := adjacency(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	s := NewSolver(4, 0, succs, preds)
	s.Run(nil)
	if s.IDom(1) != 0 || s.IDom(2) != 0 || s.IDom(3) != 0 {
		t.Fatalf("diamond idoms = %d %d %d, want 0 0 0", s.IDom(1), s.IDom(2), s.IDom(3))
	}
}

func TestClassicLengauerTarjanGraph(t *testing.T) {
	// The example from the Lengauer–Tarjan paper (13 vertices). Vertices:
	// R=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10 K=11 L=12
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3},
		{1, 4}, {2, 1}, {2, 4}, {2, 5},
		{3, 6}, {3, 7}, {4, 12}, {5, 8},
		{6, 9}, {7, 9}, {7, 10}, {8, 5}, {8, 11},
		{9, 11}, {10, 9}, {11, 9}, {11, 0}, {12, 8},
	}
	succs, preds := adjacency(13, edges)
	s := NewSolver(13, 0, succs, preds)
	s.Run(nil)
	// Known immediate dominators for this graph (root R).
	want := map[int]int{
		1: 0, 2: 0, 3: 0, 4: 0, 5: 0, 6: 3, 7: 3,
		8: 0, 9: 0, 10: 7, 11: 0, 12: 4,
	}
	for v, w := range want {
		if s.IDom(v) != w {
			t.Errorf("IDom(%d) = %d, want %d", v, s.IDom(v), w)
		}
	}
}

func TestUnreachableAndBlocked(t *testing.T) {
	// 0→1, 2→1 where 2 is unreachable from 0.
	succs, preds := adjacency(3, [][2]int{{0, 1}, {2, 1}})
	s := NewSolver(3, 0, succs, preds)
	n := s.Run(nil)
	if n != 2 {
		t.Fatalf("reached = %d, want 2", n)
	}
	if s.Reachable(2) || s.IDom(2) != -1 {
		t.Error("vertex 2 should be unreachable")
	}
	// Diamond with 1 blocked: idom(3) = 2.
	succs, preds = adjacency(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	s = NewSolver(4, 0, succs, preds)
	s.Run(bitset.FromMembers(4, 1))
	if s.IDom(3) != 2 {
		t.Fatalf("blocked diamond IDom(3) = %d, want 2", s.IDom(3))
	}
	if s.Reachable(1) {
		t.Error("blocked vertex reported reachable")
	}
	// Blocking the root reaches nothing.
	if got := s.Run(bitset.FromMembers(4, 0)); got != 0 {
		t.Fatalf("reached with blocked root = %d, want 0", got)
	}
}

func TestSolverReuse(t *testing.T) {
	succs, preds := adjacency(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	s := NewSolver(4, 0, succs, preds)
	s.Run(bitset.FromMembers(4, 1))
	if s.IDom(3) != 2 {
		t.Fatalf("first run IDom(3) = %d, want 2", s.IDom(3))
	}
	s.Run(nil)
	if s.IDom(3) != 0 {
		t.Fatalf("second run IDom(3) = %d, want 0", s.IDom(3))
	}
	s.Run(bitset.FromMembers(4, 2))
	if s.IDom(3) != 1 {
		t.Fatalf("third run IDom(3) = %d, want 1", s.IDom(3))
	}
}

func TestDominatesAndDominatorsOf(t *testing.T) {
	succs, preds := adjacency(5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}})
	s := NewSolver(5, 0, succs, preds)
	s.Run(nil)
	if !s.Dominates(1, 4) || !s.Dominates(4, 4) || s.Dominates(2, 4) {
		t.Error("Dominates answers wrong")
	}
	doms := s.DominatorsOf(4)
	if len(doms) != 1 || doms[0] != 1 {
		t.Fatalf("DominatorsOf(4) = %v, want [1]", doms)
	}
}

func TestTreeQueries(t *testing.T) {
	succs, preds := adjacency(6, [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5},
	})
	s := NewSolver(6, 0, succs, preds)
	s.Run(nil)
	tr := s.BuildTree()
	if tr.Root() != 0 {
		t.Fatalf("root = %d", tr.Root())
	}
	for a := 0; a < 6; a++ {
		for v := 0; v < 6; v++ {
			if got, want := tr.Dominates(a, v), s.Dominates(a, v); got != want {
				t.Errorf("tree Dominates(%d,%d) = %v, solver says %v", a, v, got, want)
			}
		}
	}
	if !tr.StrictlyDominates(1, 5) || tr.StrictlyDominates(5, 5) {
		t.Error("StrictlyDominates wrong")
	}
	var chain []int
	tr.Walk(5, func(d int) bool { chain = append(chain, d); return true })
	if len(chain) != 2 || chain[0] != 4 || chain[1] != 1 {
		t.Fatalf("Walk(5) = %v, want [4 1]", chain)
	}
}

func TestForwardReverseSolverOnDFG(t *testing.T) {
	// ladder DFG: 3 roots, two middle layers, one sink.
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	b := g.MustAddNode(dfg.OpVar, "b")
	c := g.MustAddNode(dfg.OpVar, "c")
	d := g.MustAddNode(dfg.OpAdd, "d", a, b)
	e := g.MustAddNode(dfg.OpMul, "e", b, c)
	f := g.MustAddNode(dfg.OpSub, "f", d, e)
	h := g.MustAddNode(dfg.OpOr, "h", f, e)
	_ = h
	g.MustFreeze()
	aug := g.Augmented()

	fs := ForwardSolver(g)
	fs.Run(nil)
	// Every node is reachable from the source.
	for v := 0; v < aug.N; v++ {
		if !fs.Reachable(v) {
			t.Errorf("forward: %d unreachable", v)
		}
	}
	// d's only single dominator is the source (a and b are siblings).
	if fs.IDom(d) != aug.Source {
		t.Errorf("IDom(d) = %d, want source %d", fs.IDom(d), aug.Source)
	}
	// f is dominated by d? No: f's preds are d and e, so idom(f) = source.
	if fs.IDom(f) != aug.Source {
		t.Errorf("IDom(f) = %d, want source", fs.IDom(f))
	}

	rs := ReverseSolver(g)
	rs.Run(nil)
	// Every path from b (b→d→f→h, b→e→f→h, b→e→h) passes through h, so h
	// postdominates b.
	if rs.IDom(b) != h {
		t.Errorf("postdom IDom(b) = %d, want h=%d", rs.IDom(b), h)
	}
	// h's immediate postdominator is the sink.
	if rs.IDom(h) != aug.Sink {
		t.Errorf("postdom IDom(h) = %d, want sink", rs.IDom(h))
	}
	// d's unique successor is f, so f postdominates d.
	if rs.IDom(d) != f {
		t.Errorf("postdom IDom(d) = %d, want f=%d", rs.IDom(d), f)
	}
}

func randomDigraph(r *rand.Rand, n int) (succs, preds [][]int32) {
	var edges [][2]int
	for v := 1; v < n; v++ {
		// Ensure likely reachability: edge from a random earlier vertex.
		edges = append(edges, [2]int{r.Intn(v), v})
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return adjacency(n, edges)
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(24)
		succs, preds := randomDigraph(r, n)
		var blocked *bitset.Set
		if r.Intn(2) == 0 {
			blocked = bitset.New(n)
			for i := 0; i < n/5; i++ {
				v := r.Intn(n)
				if v != 0 {
					blocked.Add(v)
				}
			}
		}
		s := NewSolver(n, 0, succs, preds)
		s.Run(blocked)
		tr := s.BuildTree()
		for a := 0; a < n; a++ {
			for v := 0; v < n; v++ {
				want := bruteDominates(n, 0, succs, blocked, a, v)
				if s.Dominates(a, v) != want || tr.Dominates(a, v) != want {
					t.Logf("seed=%d n=%d a=%d v=%d want=%v got=%v/%v",
						seed, n, a, v, want, s.Dominates(a, v), tr.Dominates(a, v))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolverChain1000(b *testing.B) {
	n := 1000
	edges := make([][2]int, 0, n)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	succs, preds := adjacency(n, edges)
	s := NewSolver(n, 0, succs, preds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(nil)
	}
}

func BenchmarkSolverRandom1000(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	succs, preds := randomDigraph(r, 1000)
	s := NewSolver(1000, 0, succs, preds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(nil)
	}
}
