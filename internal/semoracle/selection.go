package semoracle

import (
	"fmt"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/ise"
)

// This file cross-checks instruction selection against an exhaustive
// reference. ise.Select's exact mode is branch-and-bound and its greedy
// mode is a heuristic; the reference below is deliberately the dumbest
// possible correct algorithm — a full include/exclude sweep over the
// candidate list with no bounding — so a scoring or pruning bug in either
// production path cannot also live here.

// RefLimit bounds the candidate count the exhaustive reference accepts:
// 2^RefLimit feasibility checks is the worst case, which stays well under
// a second at 22.
const RefLimit = 22

// TooManyCandidatesError is returned when an instance exceeds RefLimit —
// the reference refuses rather than silently degrade, so a corpus that
// drifts out of exhaustive range fails loudly.
type TooManyCandidatesError struct {
	Candidates int
}

func (e *TooManyCandidatesError) Error() string {
	return fmt.Sprintf("semoracle: %d candidates exceed the exhaustive reference limit %d",
		e.Candidates, RefLimit)
}

// ReferenceSelect computes the optimal total saving over every subset of
// the candidate cuts (scored and filtered exactly like ise.Select: saving
// at least max(MinSaving, 1)) that is vertex-disjoint and within
// opt.MaxInstructions / opt.AreaBudget. It refuses instances with more
// than RefLimit candidates.
func ReferenceSelect(g *dfg.Graph, m ise.Model, cuts []enum.Cut, opt ise.SelectOptions) (int, error) {
	est := ise.NewEstimator(g, m)
	var cands []ise.Estimate
	for _, c := range cuts {
		s := est.Estimate(c)
		if s.Saving >= opt.MinSaving && s.Saving > 0 {
			cands = append(cands, s)
		}
	}
	if len(cands) > RefLimit {
		return 0, &TooManyCandidatesError{Candidates: len(cands)}
	}
	best := 0
	used := bitset.New(g.N())
	var rec func(i, taken, saving int, area float64)
	rec = func(i, taken, saving int, area float64) {
		if saving > best {
			best = saving
		}
		if i == len(cands) {
			return
		}
		c := cands[i]
		if !(opt.MaxInstructions > 0 && taken >= opt.MaxInstructions) &&
			!(opt.AreaBudget > 0 && area+c.Area > opt.AreaBudget) &&
			!used.Intersects(c.Cut.Nodes) {
			used.Union(c.Cut.Nodes)
			rec(i+1, taken+1, saving+c.Saving, area+c.Area)
			used.Subtract(c.Cut.Nodes)
		}
		rec(i+1, taken, saving, area)
	}
	rec(0, 0, 0, 0)
	return best, nil
}

// Invariants returns every structural violation of a selection: chosen
// instructions must be vertex-disjoint, within the instruction-count and
// area budgets, within the I/O port budgets the cuts were enumerated
// under, and each must save at least max(MinSaving, 1) cycles. An empty
// slice means the selection is well-formed. The accounting identity
// (BlockCyclesAfter = BlockCyclesBefore − Σ saving, clamped at 1) is
// checked too, so Model drift cannot silently skew reported speedups.
func Invariants(g *dfg.Graph, sel ise.Selection, eopt enum.Options, sopt ise.SelectOptions) []string {
	var bad []string
	used := bitset.New(g.N())
	saved := 0
	area := 0.0
	minSaving := sopt.MinSaving
	if minSaving < 1 {
		minSaving = 1
	}
	for i, c := range sel.Chosen {
		if used.Intersects(c.Cut.Nodes) {
			bad = append(bad, fmt.Sprintf("instruction %d overlaps an earlier one: %v", i, c.Cut))
		}
		used.Union(c.Cut.Nodes)
		if len(c.Cut.Inputs) > eopt.MaxInputs {
			bad = append(bad, fmt.Sprintf("instruction %d has %d inputs > Nin=%d", i, len(c.Cut.Inputs), eopt.MaxInputs))
		}
		if len(c.Cut.Outputs) > eopt.MaxOutputs {
			bad = append(bad, fmt.Sprintf("instruction %d has %d outputs > Nout=%d", i, len(c.Cut.Outputs), eopt.MaxOutputs))
		}
		if c.Saving < minSaving {
			bad = append(bad, fmt.Sprintf("instruction %d saves %d < %d cycles", i, c.Saving, minSaving))
		}
		saved += c.Saving
		area += c.Area
	}
	if sopt.MaxInstructions > 0 && len(sel.Chosen) > sopt.MaxInstructions {
		bad = append(bad, fmt.Sprintf("%d instructions > budget %d", len(sel.Chosen), sopt.MaxInstructions))
	}
	if sopt.AreaBudget > 0 && sel.TotalArea > sopt.AreaBudget {
		bad = append(bad, fmt.Sprintf("area %.1f > budget %.1f", sel.TotalArea, sopt.AreaBudget))
	}
	wantAfter := sel.BlockCyclesBefore - saved
	if wantAfter < 1 && sel.BlockCyclesBefore > 0 {
		wantAfter = 1
	}
	if sel.BlockCyclesAfter != wantAfter {
		bad = append(bad, fmt.Sprintf("cycle accounting: after=%d, want %d (before=%d − saved=%d)",
			sel.BlockCyclesAfter, wantAfter, sel.BlockCyclesBefore, saved))
	}
	return bad
}

// SelReport is the outcome of one CheckSelection comparison.
type SelReport struct {
	Name       string
	Candidates int // cuts enumerated on the instance
	// GreedySaving, ExactSaving and RefSaving are the total saved cycles
	// of the greedy heuristic, the branch-and-bound exact mode, and the
	// exhaustive reference.
	GreedySaving, ExactSaving, RefSaving int
	// Err carries an enumeration error or a reference refusal
	// (*TooManyCandidatesError), making the comparison inconclusive.
	Err error
	// Problems lists every check that failed (capped at MaxExamples).
	Problems []string
}

// Agree reports whether selection passed every check.
func (r SelReport) Agree() bool { return r.Err == nil && len(r.Problems) == 0 }

// String renders the report in one line, with detail only on failure.
func (r SelReport) String() string {
	s := fmt.Sprintf("%s: cuts=%d greedy=%d exact=%d ref=%d",
		r.Name, r.Candidates, r.GreedySaving, r.ExactSaving, r.RefSaving)
	if r.Err != nil {
		return s + fmt.Sprintf(" (error: %v: inconclusive)", r.Err)
	}
	if r.Agree() {
		return s + " (agree)"
	}
	for _, p := range r.Problems {
		s += "\n  " + p
	}
	return s
}

// CheckSelection enumerates g's cuts under eopt and cross-checks both
// ise.Select modes against the exhaustive reference: the exact mode must
// achieve the reference optimum, the greedy mode must be feasible and at
// most the optimum, and both selections must satisfy every structural
// invariant. The instance must be small enough for the reference
// (RefLimit candidates) — a refusal is reported as Err, never a silent
// pass.
func CheckSelection(name string, g *dfg.Graph, m ise.Model, eopt enum.Options, sopt ise.SelectOptions) SelReport {
	rep := SelReport{Name: name}
	cuts, stats := enum.CollectAll(g, eopt)
	rep.Candidates = len(cuts)
	if stats.StopReason != enum.StopNone {
		rep.Err = fmt.Errorf("enumeration stopped early: %v", stats.StopReason)
		return rep
	}
	ref, err := ReferenceSelect(g, m, cuts, sopt)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.RefSaving = ref

	exactOpt := sopt
	exactOpt.Exact = true
	if exactOpt.ExactLimit < RefLimit {
		exactOpt.ExactLimit = RefLimit
	}
	exact := ise.Select(g, m, cuts, exactOpt)
	rep.ExactSaving = totalSaving(exact)

	greedyOpt := sopt
	greedyOpt.Exact = false
	greedy := ise.Select(g, m, cuts, greedyOpt)
	rep.GreedySaving = totalSaving(greedy)

	if rep.ExactSaving != ref {
		rep.problem(fmt.Sprintf("exact selection saves %d, exhaustive optimum is %d", rep.ExactSaving, ref))
	}
	if rep.GreedySaving > ref {
		rep.problem(fmt.Sprintf("greedy selection saves %d > exhaustive optimum %d", rep.GreedySaving, ref))
	}
	for _, bad := range Invariants(g, exact, eopt, exactOpt) {
		rep.problem("exact: " + bad)
	}
	for _, bad := range Invariants(g, greedy, eopt, greedyOpt) {
		rep.problem("greedy: " + bad)
	}
	return rep
}

func totalSaving(sel ise.Selection) int {
	t := 0
	for _, c := range sel.Chosen {
		t += c.Saving
	}
	return t
}

func (r *SelReport) problem(p string) {
	if len(r.Problems) < MaxExamples {
		r.Problems = append(r.Problems, p)
	} else if len(r.Problems) == MaxExamples {
		r.Problems = append(r.Problems, "…")
	}
}
