package semoracle

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/ise"
	"polyise/internal/workload"
)

// oracleBudget is the wall-clock budget of one cut-semantics sweep on the
// mid-size gap instances. The default keeps plain `go test` fast and makes
// a budget overrun an explicit skip (inconclusive), never a hidden pass;
// `make semoracle` raises it via POLYISE_ORACLE_BUDGET so the full corpus
// completes with a verdict.
func oracleBudget(t *testing.T) time.Duration {
	if s := os.Getenv("POLYISE_ORACLE_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("POLYISE_ORACLE_BUDGET: %v", err)
		}
		return d
	}
	return 3 * time.Second
}

// checkCuts runs one sweep and fails on any verdict-carrying disagreement;
// a budgeted early stop is an explicit skip.
func checkCuts(t *testing.T, name string, g *dfg.Graph, cfg CutConfig) CutReport {
	t.Helper()
	rep := CheckCuts(name, g, cfg)
	t.Log(rep.String())
	if rep.Err != nil {
		t.Fatalf("%s: %v", name, rep.Err)
	}
	if rep.Stopped() {
		t.Skipf("%s: stopped early (%v) after %d cuts — inconclusive (raise POLYISE_ORACLE_BUDGET or use `make semoracle`)",
			name, rep.Stop, rep.Cuts)
	}
	if !rep.Agree() {
		t.Fatalf("%s: semantics diverged:\n%s", name, rep.String())
	}
	return rep
}

// TestCutOracleOnSelectionCorpus certifies every cut of every selection-
// corpus instance, including the memory-edge instances where collapsing
// must preserve load/store ordering against a seeded memory image. These
// instances are small; the sweep always completes.
func TestCutOracleOnSelectionCorpus(t *testing.T) {
	sawMemory := false
	for _, b := range workload.SelectionCorpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rep := checkCuts(t, b.Name, b.G, CutConfig{Seed: 0x5e1ec7})
			if rep.Cuts == 0 {
				t.Fatalf("%s: no cuts enumerated — vacuous", b.Name)
			}
		})
		if b.HasMemory {
			sawMemory = true
			stores := 0
			for v := 0; v < b.G.N(); v++ {
				if b.G.Op(v) == dfg.OpStore {
					stores++
				}
			}
			if stores == 0 {
				t.Fatalf("%s: marked HasMemory but has no stores", b.Name)
			}
		}
	}
	if !sawMemory {
		t.Fatal("selection corpus has no memory-edge instance")
	}
}

// TestCutOracleOnGapRegressionCorpus sweeps the pinned mid-size gap
// instances (4 565 and 7 891 cuts) under the wall-clock budget: every cut
// visited within the budget is certified, and a complete run additionally
// pins the cut count.
func TestCutOracleOnGapRegressionCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size oracle sweep skipped in -short")
	}
	for _, gi := range workload.GapRegressionInstances() {
		gi := gi
		t.Run(gi.Name, func(t *testing.T) {
			rep := checkCuts(t, gi.Name, gi.Graph(), CutConfig{
				Seed:   gi.Seed,
				Budget: oracleBudget(t),
			})
			if rep.Cuts != gi.WantCuts {
				t.Fatalf("%s: certified %d cuts, want %d", gi.Name, rep.Cuts, gi.WantCuts)
			}
		})
	}
}

// TestCutOracleCoversForbiddenOpVariants runs the cut oracle on restricted-
// ISA variants: forbidding multiply/divide (no multiplier block) and the
// shifters changes the cut population, and every cut of the variant graphs
// must still collapse faithfully.
func TestCutOracleCoversForbiddenOpVariants(t *testing.T) {
	base := workload.SelectionCorpus()[0] // fir4
	variants := []struct {
		name string
		ops  []dfg.Op
	}{
		{"no-mul-div", []dfg.Op{dfg.OpMul, dfg.OpDiv, dfg.OpRem}},
		{"no-shift", []dfg.Op{dfg.OpShl, dfg.OpShr, dfg.OpSar}},
	}
	for _, v := range variants {
		g := workload.WithForbiddenOps(base.G, v.ops...)
		for _, op := range v.ops {
			for n := 0; n < g.N(); n++ {
				if g.Op(n) == op && !g.IsForbidden(n) {
					t.Fatalf("%s: node %d (%v) not forbidden", v.name, n, op)
				}
			}
		}
		checkCuts(t, base.Name+"/"+v.name, g, CutConfig{Seed: 7})
	}
}

// TestCutOracleSeedAddressable pins that coverage is a pure function of
// the seed: two sweeps with the same seed produce identical reports, and
// the MaxCuts prefix is a prefix of the full sweep.
func TestCutOracleSeedAddressable(t *testing.T) {
	g := workload.SelectionCorpus()[1].G // hash-round
	a := CheckCuts("a", g, CutConfig{Seed: 42})
	b := CheckCuts("b", g, CutConfig{Seed: 42})
	if a.Cuts != b.Cuts || a.MismatchTotal != b.MismatchTotal || a.Stop != b.Stop {
		t.Fatalf("same seed, different reports: %v vs %v", a, b)
	}
	pre := CheckCuts("prefix", g, CutConfig{Seed: 42, MaxCuts: 5})
	if pre.Cuts != 5 {
		t.Fatalf("MaxCuts prefix checked %d cuts, want 5", pre.Cuts)
	}
	if pre.Stop != enum.StopBudget {
		t.Fatalf("MaxCuts prefix stop = %v, want StopBudget", pre.Stop)
	}
	if pre.Agree() {
		t.Fatal("a stopped sweep must not claim a verdict")
	}
}

// TestSelectionOracleOnSmallCorpus enforces the acceptance bar: on every
// n ≤ 16 corpus instance, ise.Select's exact mode must achieve the
// exhaustive reference optimum and the greedy mode must stay feasible.
func TestSelectionOracleOnSmallCorpus(t *testing.T) {
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	small := 0
	for _, b := range workload.SelectionCorpus() {
		if !b.Small {
			continue
		}
		small++
		if b.G.N() > 16 {
			t.Fatalf("%s: marked Small but has %d vertices", b.Name, b.G.N())
		}
		rep := CheckSelection(b.Name, b.G, m, eopt, ise.DefaultSelectOptions())
		t.Log(rep.String())
		if !rep.Agree() {
			t.Fatalf("%s: %s", b.Name, rep.String())
		}
	}
	if small == 0 {
		t.Fatal("selection corpus has no n ≤ 16 instance")
	}
}

// TestSelectionOracleUnderBudgets re-checks the small instances under
// binding resource constraints, where greedy and optimal genuinely
// diverge in general: instruction-count caps and area budgets.
func TestSelectionOracleUnderBudgets(t *testing.T) {
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	opts := []ise.SelectOptions{
		{MinSaving: 1, MaxInstructions: 1},
		{MinSaving: 1, MaxInstructions: 2},
		{MinSaving: 1, AreaBudget: 5},
		{MinSaving: 2},
	}
	for _, b := range workload.SelectionCorpus() {
		if !b.Small {
			continue
		}
		for _, opt := range opts {
			rep := CheckSelection(b.Name, b.G, m, eopt, opt)
			if !rep.Agree() {
				t.Fatalf("%s under %+v: %s", b.Name, opt, rep.String())
			}
		}
	}
}

// TestReferenceSelectBeatsGreedyWhenItShould builds the classic greedy
// trap — the single highest-saving candidate blocks two disjoint ones
// whose sum is higher — and checks that the reference and the exact mode
// find the optimum while greedy provably takes the bait. This is the
// oracle's teeth test: if ReferenceSelect were wrong the production
// branch-and-bound could drift toward it unnoticed.
func TestReferenceSelectBeatsGreedyWhenItShould(t *testing.T) {
	g := mustCompileTrap(t)
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	cuts, stats := enum.CollectAll(g, eopt)
	if stats.StopReason != enum.StopNone {
		t.Fatalf("enumeration stopped: %v", stats.StopReason)
	}
	ref, err := ReferenceSelect(g, m, cuts, ise.SelectOptions{MinSaving: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := ise.Select(g, m, cuts, ise.SelectOptions{MinSaving: 1, Exact: true, ExactLimit: RefLimit})
	if got := totalSaving(exact); got != ref {
		t.Fatalf("exact saves %d, reference optimum %d", got, ref)
	}
	greedy := ise.Select(g, m, cuts, ise.SelectOptions{MinSaving: 1})
	if got := totalSaving(greedy); got >= ref {
		t.Fatalf("greedy saves %d, optimum %d: the trap no longer bites, so this test proves nothing", got, ref)
	}
}

func mustCompileTrap(t *testing.T) *dfg.Graph {
	t.Helper()
	// Built by hand so the structure is exact regardless of the expression
	// compiler's CSE decisions: d1 = a/b; p1 = d1 + c; d2 = p1/e. The
	// serialized whole-chain cut pays the full critical path (saving 26)
	// yet sorts above the two division cuts it blocks (14 + 14 = 28).
	g := dfg.New()
	in := func(name string) int { return g.MustAddNode(dfg.OpVar, name) }
	a, b, c, e := in("a"), in("b"), in("c"), in("e")
	d1 := g.MustAddNode(dfg.OpDiv, "", a, b)
	p1 := g.MustAddNode(dfg.OpAdd, "", d1, c)
	d2 := g.MustAddNode(dfg.OpDiv, "", p1, e)
	if err := g.MarkLiveOut(d2); err != nil {
		t.Fatal(err)
	}
	return g.MustFreeze()
}

// TestReferenceSelectRefusesLargeInstances pins the refusal contract: the
// exhaustive reference must error, not degrade, above RefLimit.
func TestReferenceSelectRefusesLargeInstances(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(9)), 60, workload.DefaultProfile())
	cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
	if len(cuts) <= RefLimit {
		t.Skipf("instance yields only %d cuts", len(cuts))
	}
	_, err := ReferenceSelect(g, ise.DefaultModel(), cuts, ise.SelectOptions{MinSaving: 1})
	var tooMany *TooManyCandidatesError
	if err == nil {
		t.Fatal("reference accepted an instance beyond RefLimit")
	}
	if !asTooMany(err, &tooMany) {
		t.Fatalf("error type = %T, want *TooManyCandidatesError", err)
	}
}

func asTooMany(err error, target **TooManyCandidatesError) bool {
	e, ok := err.(*TooManyCandidatesError)
	if ok {
		*target = e
	}
	return ok
}

// TestInvariantsCatchViolations gives the invariant checker its teeth: a
// hand-corrupted selection must be flagged on every axis.
func TestInvariantsCatchViolations(t *testing.T) {
	b := workload.SelectionCorpus()[0] // fir4
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	cuts, _ := enum.CollectAll(b.G, eopt)
	sel := ise.Select(b.G, m, cuts, ise.DefaultSelectOptions())
	if len(sel.Chosen) == 0 {
		t.Fatal("fir4 selected nothing")
	}
	if bad := Invariants(b.G, sel, eopt, ise.DefaultSelectOptions()); len(bad) != 0 {
		t.Fatalf("well-formed selection flagged: %v", bad)
	}

	dup := sel
	dup.Chosen = append(append([]ise.Estimate(nil), sel.Chosen...), sel.Chosen[0])
	bad := Invariants(b.G, dup, eopt, ise.DefaultSelectOptions())
	if !containsSubstring(bad, "overlaps") {
		t.Fatalf("duplicated instruction not flagged: %v", bad)
	}

	skew := sel
	skew.BlockCyclesAfter += 3
	bad = Invariants(b.G, skew, eopt, ise.DefaultSelectOptions())
	if !containsSubstring(bad, "cycle accounting") {
		t.Fatalf("accounting skew not flagged: %v", bad)
	}

	tight := ise.SelectOptions{MinSaving: 1, MaxInstructions: len(sel.Chosen)}
	over := sel
	over.Chosen = dup.Chosen
	bad = Invariants(b.G, over, eopt, tight)
	if !containsSubstring(bad, "budget") {
		t.Fatalf("instruction-count overrun not flagged: %v", bad)
	}
}

func containsSubstring(list []string, sub string) bool {
	for _, s := range list {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// TestIterativeSelectorPicksRoundOptimum pins the iterative flow against
// the per-round definition: each round's instruction is the maximum-saving
// single estimate among that round's cuts.
func TestIterativeSelectorPicksRoundOptimum(t *testing.T) {
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	for _, b := range workload.SelectionCorpus() {
		if !b.Small {
			continue
		}
		res, err := ise.IterativeIdentify(b.G, eopt, m, 4)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		cur := b.G
		for i, round := range res.Rounds {
			est := ise.NewEstimator(cur, m)
			best := 0
			cuts, _ := enum.CollectAll(cur, eopt)
			for _, c := range cuts {
				if s := est.Estimate(c).Saving; s > best {
					best = s
				}
			}
			if round.Instruction.Saving != best {
				t.Fatalf("%s round %d: picked saving %d, best available %d",
					b.Name, i, round.Instruction.Saving, best)
			}
			cur = round.Graph
		}
	}
}
