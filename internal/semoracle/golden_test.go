package semoracle

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polyise/internal/enum"
	"polyise/internal/ise"
	"polyise/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSelectionCorpusGolden pins the full selection outcome — chosen
// instructions, cost-model accounting, speedup — of every selection-corpus
// instance, byte-exact. A diff here means the enumerator order, the cost
// model, or the selector changed behaviour; if the change is intended,
// regenerate with `go test ./internal/semoracle/ -run Golden -update`.
func TestSelectionCorpusGolden(t *testing.T) {
	m := ise.DefaultModel()
	eopt := enum.DefaultOptions()
	sopt := ise.DefaultSelectOptions()

	var b strings.Builder
	fmt.Fprintf(&b, "# Selection outcomes under DefaultModel, Nin=%d Nout=%d, MinSaving=%d.\n",
		eopt.MaxInputs, eopt.MaxOutputs, sopt.MinSaving)
	fmt.Fprintf(&b, "# Regenerate: go test ./internal/semoracle/ -run Golden -update\n")
	for _, blk := range workload.SelectionCorpus() {
		cuts, stats := enum.CollectAll(blk.G, eopt)
		if stats.StopReason != enum.StopNone {
			t.Fatalf("%s: enumeration stopped: %v", blk.Name, stats.StopReason)
		}
		sel := ise.Select(blk.G, m, cuts, sopt)
		if bad := Invariants(blk.G, sel, eopt, sopt); len(bad) != 0 {
			t.Fatalf("%s: selection violates invariants: %v", blk.Name, bad)
		}
		fmt.Fprintf(&b, "\n%s: n=%d cuts=%d\n", blk.Name, blk.G.N(), len(cuts))
		for i, c := range sel.Chosen {
			fmt.Fprintf(&b, "  chosen[%d] = %s\n", i, c.String())
		}
		fmt.Fprintf(&b, "  cycles %d -> %d, area %.1f, speedup %.3f\n",
			sel.BlockCyclesBefore, sel.BlockCyclesAfter, sel.TotalArea, sel.Speedup())

		it, err := ise.IterativeIdentify(blk.G, eopt, m, 4)
		if err != nil {
			t.Fatalf("%s: iterative: %v", blk.Name, err)
		}
		fmt.Fprintf(&b, "  iterative rounds=%d cycles %d -> %d, speedup %.3f\n",
			len(it.Rounds), it.CyclesBefore, it.CyclesAfter, it.Speedup())
	}

	compareGolden(t, filepath.Join("testdata", "selection_corpus.golden"), b.String())
}

// compareGolden diffs got against the named golden file, rewriting the
// file under -update.
func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Fatalf("output differs from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
