// Package semoracle is the semantic differential-testing layer for the ISE
// pipeline. Where internal/baseline certifies the *enumeration* (the set of
// cuts is complete), semoracle certifies the *meaning* of what the pipeline
// does with those cuts: collapsing a cut into a custom instruction must
// preserve the block's observable behaviour under the interpreter
// (CheckCuts), and instruction selection must be optimal against an
// exhaustive reference on instances small enough to brute-force
// (CheckSelection, selection.go). Reports follow the baseline.OracleReport
// contract: typed stop reasons, no verdict on a budgeted early stop, and
// capped example lists for triage.
package semoracle

import (
	"fmt"
	"math/rand"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/interp"
)

// MaxExamples caps the example lists carried in a report.
const MaxExamples = 10

// CutConfig configures a CheckCuts sweep.
type CutConfig struct {
	// Envs is the number of randomized environments each cut is executed
	// under; 0 means DefaultEnvs.
	Envs int
	// Seed addresses the randomized coverage: the environments for cut k
	// are a pure function of (Seed, k), so a failure report names a
	// reproducible configuration.
	Seed int64
	// MaxCuts, when positive, bounds the sweep to the first MaxCuts cuts
	// of the serial enumeration order (a bit-exact prefix at any worker
	// count); the report is then inconclusive-on-stop, not a verdict.
	MaxCuts int
	// Budget, when positive, bounds the wall clock of the whole sweep.
	Budget time.Duration
	// Options are the enumeration constraints; a zero MaxInputs selects
	// enum.DefaultOptions (Nin=4, Nout=2).
	Options enum.Options
}

// DefaultEnvs is the per-cut environment count the acceptance bar asks for.
const DefaultEnvs = 8

// CutReport is the outcome of one CheckCuts sweep: every enumerated cut of
// one instance executed collapsed-vs-original under randomized
// environments.
type CutReport struct {
	Name string
	N    int // vertex count of the instance
	Cuts int // cuts checked
	Envs int // environments per cut

	// Stop records how the enumeration ended (StopNone for a complete
	// sweep). Any other reason — deadline, budget, cancellation — leaves
	// the sweep partial and the report without a verdict.
	Stop enum.StopReason

	// Err carries the first pipeline error (extraction, collapse, or an
	// interpreter refusal), making the sweep inconclusive for a
	// reportable reason instead of a crash.
	Err error

	// Mismatches holds example divergences "cut… env=… node…" (capped at
	// MaxExamples); MismatchTotal is the uncapped tally.
	Mismatches    []string
	MismatchTotal int
}

// Stopped reports whether the sweep ended early, leaving coverage partial.
func (r CutReport) Stopped() bool { return r.Stop != enum.StopNone }

// Agree reports whether the sweep ran to completion with every cut
// semantics-preserving under every environment.
func (r CutReport) Agree() bool {
	return !r.Stopped() && r.Err == nil && r.MismatchTotal == 0
}

// String renders the report in one line for logs, with diagnostic detail
// only on disagreement.
func (r CutReport) String() string {
	s := fmt.Sprintf("%s: n=%d cuts=%d envs=%d", r.Name, r.N, r.Cuts, r.Envs)
	if r.Err != nil {
		return s + fmt.Sprintf(" (error: %v: inconclusive)", r.Err)
	}
	if r.Stopped() {
		return s + fmt.Sprintf(" (stopped early: %v: inconclusive)", r.Stop)
	}
	if r.Agree() {
		return s + " (agree)"
	}
	s += fmt.Sprintf(" mismatches=%d", r.MismatchTotal)
	for _, m := range r.Mismatches {
		s += "\n  " + m
	}
	return s
}

// CheckCuts enumerates every cut of g under cfg.Options and, for each,
// asserts that collapsing the cut — with the extracted datapath as the
// custom instruction's implementation — leaves the block's observable
// behaviour unchanged: every surviving node's value and the full memory
// state (initialized from a seeded pseudorandom image so load/store
// reordering is visible, the PR 1 memory-dependence edge class) must match
// the original's on cfg.Envs randomized environments per cut.
//
// Coverage is seed-addressable: environments for cut k derive from
// (cfg.Seed, k) only, so any reported divergence replays exactly under the
// same config regardless of worker count (enumeration order is the serial
// order at any parallelism).
func CheckCuts(name string, g *dfg.Graph, cfg CutConfig) CutReport {
	rep := CutReport{Name: name, N: g.N(), Envs: cfg.Envs}
	if rep.Envs <= 0 {
		rep.Envs = DefaultEnvs
	}
	opt := cfg.Options
	if opt.MaxInputs == 0 {
		opt = enum.DefaultOptions()
	}
	opt.MaxCuts = cfg.MaxCuts
	if cfg.Budget > 0 {
		opt.Deadline = time.Now().Add(cfg.Budget)
	}
	// The cut is checked inside the visit, so retaining node sets across
	// calls is unnecessary.
	opt.KeepCuts = false

	stats := enum.Enumerate(g, opt, func(c enum.Cut) bool {
		k := rep.Cuts
		rep.Cuts++
		mismatches, err := CheckCut(g, c, rep.Envs, cfg.Seed^(int64(k)+1)*0x9e3779b9)
		if err != nil {
			rep.Err = fmt.Errorf("cut %d %v: %w", k, c, err)
			return false
		}
		for _, m := range mismatches {
			rep.record(fmt.Sprintf("cut %d %v %s", k, c, m))
		}
		return true
	})
	rep.Stop = stats.StopReason
	if rep.Err == nil && stats.Err != nil {
		rep.Err = stats.Err
	}
	return rep
}

// CheckCut certifies one cut of g: the collapsed graph, with the extracted
// datapath as the custom instruction's implementation, is executed against
// the original on envs randomized environments derived from seed. It
// returns one description per diverging environment (nil means the cut is
// semantics-preserving on this coverage) and an error when the pipeline
// itself fails (extraction, collapse, or an interpreter refusal).
func CheckCut(g *dfg.Graph, c enum.Cut, envs int, seed int64) ([]string, error) {
	fn, err := interp.CutFn(g, c.Nodes, c.Outputs)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	collapsed, cmap, err := g.CollapseCut(c.Nodes, "oracle", 1)
	if err != nil {
		return nil, fmt.Errorf("collapse: %w", err)
	}
	var mismatches []string
	rng := rand.New(rand.NewSource(seed))
	roots := len(g.Roots())
	for e := 0; e < envs; e++ {
		vals := make([]int32, roots)
		for i := range vals {
			vals[i] = int32(rng.Uint32())
		}
		memSeed := rng.Uint64()
		memA := interp.NewSeededMemory(memSeed)
		memB := interp.NewSeededMemory(memSeed)
		resA, err := interp.Run(g, interp.Env{RootValues: vals, Mem: memA})
		if err != nil {
			return nil, fmt.Errorf("env %d: original: %w", e, err)
		}
		resB, err := interp.Run(collapsed, interp.Env{
			RootValues: vals, // root order is preserved by CollapseCut
			Mem:        memB,
			Customs:    map[string]interp.CustomFn{"oracle": fn},
		})
		if err != nil {
			return nil, fmt.Errorf("env %d: collapsed: %w", e, err)
		}
		for orig, nid := range cmap {
			if resA.Values[orig] != resB.Values[nid] {
				mismatches = append(mismatches, fmt.Sprintf("env=%d node %d: %d vs %d",
					e, orig, resA.Values[orig], resB.Values[nid]))
				break
			}
		}
		if !memA.Equal(memB) {
			mismatches = append(mismatches, fmt.Sprintf("env=%d: memory diverged", e))
		}
	}
	return mismatches, nil
}

func (r *CutReport) record(example string) {
	r.MismatchTotal++
	if len(r.Mismatches) < MaxExamples {
		r.Mismatches = append(r.Mismatches, example)
	}
}
