package interp

import (
	"strings"
	"testing"

	"polyise/internal/graphio"
)

// FuzzInterpRun hardens Run as a total function over deserialized graphs
// and arbitrary environments: graphio.Read deliberately enforces no arity,
// so frozen graphs reaching the interpreter can underfeed operations,
// point extracts at non-customs, or carry hostile constants — every such
// input must come back as an error (or execute), never a panic. Custom
// implementations are adversarial too: the fuzzed environment installs a
// CustomFn returning a truncated result vector.
//
// Seed corpus: the inline seeds below plus the committed files under
// testdata/fuzz/FuzzInterpRun. Extend with
// `go test -fuzz=FuzzInterpRun ./internal/interp/`.
func FuzzInterpRun(f *testing.F) {
	seeds := []struct {
		graph string
		roots []byte
		mem   uint64
	}{
		{"node var name=a\nnode var name=b\nnode add preds=0,1\n", []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0},
		{"node var\nnode add preds=0\n", nil, 0},                        // underfed arity
		{"node var\nnode div preds=0,0\n", []byte{0, 0, 0, 0}, 1},       // div by zero
		{"node const const=-2147483648\nnode var\nnode div preds=0,1\n", // MinInt32 / -1
			[]byte{0xff, 0xff, 0xff, 0xff}, 2},
		{"node var\nnode load preds=0 forbidden\nnode store preds=0,1\n", []byte{9, 0, 0, 0}, 3},
		{"node var\nnode custom name=u preds=0 const=1\nnode extract preds=1 const=5\n", nil, 4},
		{"node var\nnode extract preds=0 const=0\n", nil, 5},  // extract of a non-custom
		{"node call name=f\n", nil, 6},                        // opaque call
		{"node custom name=u const=1\nnode extract preds=0 const=0\nnode extract preds=0 const=1\n", nil, 7},
		{"node var\nnode shl preds=0,0\nnode sar preds=1,0\nnode select preds=0,1,2\n", []byte{200, 1, 2, 3}, 8},
		{"node const const=9223372036854775807\nnode neg preds=0\n", nil, 9}, // int64 const truncation
	}
	for _, s := range seeds {
		f.Add(s.graph, s.roots, s.mem)
	}

	f.Fuzz(func(t *testing.T, graphText string, rootBytes []byte, memSeed uint64) {
		if len(graphText) > 1<<14 || len(rootBytes) > 1<<10 {
			t.Skip()
		}
		g, err := graphio.Read(strings.NewReader(graphText))
		if err != nil {
			return // rejected by the parser; not the interpreter's input space
		}
		vals := make([]int32, 0, len(rootBytes)/4)
		for i := 0; i+3 < len(rootBytes); i += 4 {
			vals = append(vals, int32(uint32(rootBytes[i])|uint32(rootBytes[i+1])<<8|
				uint32(rootBytes[i+2])<<16|uint32(rootBytes[i+3])<<24))
		}
		// Hostile custom implementation: too few results for any
		// multi-output extract, forcing the bounds checks.
		customs := map[string]CustomFn{}
		for v := 0; v < g.N(); v++ {
			if g.Op(v).String() == "custom" {
				customs[g.Name(v)] = func(args []int32) []int32 { return []int32{1} }
			}
		}
		envs := []Env{
			{RootValues: vals, Mem: NewSeededMemory(memSeed), Customs: customs},
			{RootValues: vals}, // nil memory → FlatMemory; no customs
		}
		for _, env := range envs {
			res, err := Run(g, env) // must not panic
			if err == nil && len(res.Values) != g.N() {
				t.Fatalf("clean run returned %d values for %d nodes", len(res.Values), g.N())
			}
		}
	})
}
