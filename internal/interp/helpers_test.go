package interp

import (
	"math/rand"
	"strings"
	"testing"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/graphio"
	"polyise/internal/workload"
)

func TestSeededMemoryDeterministicAndObservable(t *testing.T) {
	a := NewSeededMemory(7)
	b := NewSeededMemory(7)
	for _, addr := range []int32{0, 1, -1, 1 << 20, -(1 << 20)} {
		if a.Load(addr) != b.Load(addr) {
			t.Fatalf("same seed disagrees at %d", addr)
		}
	}
	if NewSeededMemory(7).Load(100) == NewSeededMemory(8).Load(100) {
		t.Fatal("different seeds agree at 100 — contents not seeded")
	}
	if !a.Equal(b) {
		t.Fatal("loads must not affect equality")
	}
	a.Store(4, 9)
	if a.Equal(b) {
		t.Fatal("write to one memory not observed")
	}
	b.Store(4, 9)
	if !a.Equal(b) {
		t.Fatal("identical writes should restore equality")
	}
	if a.Load(4) != 9 {
		t.Fatalf("written cell reads %d, want 9", a.Load(4))
	}
	b.Store(4, 10)
	if a.Equal(b) {
		t.Fatal("differing value at same cell not observed")
	}
	if got := len(a.Writes()); got != 1 {
		t.Fatalf("Writes() has %d cells, want 1", got)
	}
	// The zero-default trap SeededMemory exists to avoid: untouched cells
	// must not all read as one value.
	seen := map[int32]bool{}
	for addr := int32(0); addr < 64; addr++ {
		seen[a.Load(addr*1000+1)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("untouched cells look constant: %d distinct values in 64 loads", len(seen))
	}
}

func TestRandomEnvCoversRootsAndIsSeedDeterministic(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(3)), 30, workload.DefaultProfile())
	e1 := RandomEnv(rand.New(rand.NewSource(11)), g)
	e2 := RandomEnv(rand.New(rand.NewSource(11)), g)
	if len(e1.RootValues) != len(g.Roots()) {
		t.Fatalf("env has %d root values, graph has %d roots", len(e1.RootValues), len(g.Roots()))
	}
	for i := range e1.RootValues {
		if e1.RootValues[i] != e2.RootValues[i] {
			t.Fatal("same source, different root values")
		}
	}
	m1, ok1 := e1.Mem.(*SeededMemory)
	m2, ok2 := e2.Mem.(*SeededMemory)
	if !ok1 || !ok2 {
		t.Fatal("RandomEnv memory is not seeded")
	}
	if !m1.Equal(m2) {
		t.Fatal("same source, different memory seeds")
	}
	if _, err := Run(g, e1); err != nil {
		t.Fatalf("generated env does not execute: %v", err)
	}
}

func TestCutFnMatchesInPlaceEvaluation(t *testing.T) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(21)), 24, workload.DefaultProfile())
	// Pick a deterministic small convex cut: a non-forbidden node with one
	// non-forbidden, non-root predecessor.
	for v := 0; v < g.N(); v++ {
		if g.IsForbidden(v) {
			continue
		}
		for _, p := range g.Preds(v) {
			if g.IsForbidden(p) || g.IsRoot(p) {
				continue
			}
			S := bitset.FromMembers(g.N(), v, p)
			if !g.IsConvex(S) {
				continue
			}
			outs := g.Outputs(S)
			fn, err := CutFn(g, S, outs)
			if err != nil {
				t.Fatalf("CutFn: %v", err)
			}
			env := RandomEnv(rand.New(rand.NewSource(5)), g)
			res, err := Run(g, env)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			args := make([]int32, 0, 4)
			for _, in := range g.Inputs(S) {
				args = append(args, res.Values[in])
			}
			got := fn(args)
			for i, o := range outs {
				if got[i] != res.Values[o] {
					t.Fatalf("cut output %d: fn=%d in-place=%d", o, got[i], res.Values[o])
				}
			}
			return
		}
	}
	t.Fatal("no suitable cut found in the test graph")
}

func TestRunRejectsUnderfedOperands(t *testing.T) {
	// graphio.Read deliberately does not enforce arity, so deserialized
	// hostile graphs can underfeed an operation; Run must refuse, not
	// panic.
	src := "node var name=a\nnode add preds=0\n"
	g, err := graphio.Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, err := Run(g, Env{}); err == nil || !strings.Contains(err.Error(), "operands") {
		t.Fatalf("underfed add: err = %v, want operand-count error", err)
	}
}

func TestRunIgnoresDependenceOperands(t *testing.T) {
	// Stores and loads carry extra operands as memory-ordering edges (the
	// workload generator's convention); execution must use only the
	// documented operands.
	g := dfg.New()
	p := g.MustAddNode(dfg.OpVar, "p")
	x := g.MustAddNode(dfg.OpVar, "x")
	st := g.MustAddNode(dfg.OpStore, "", p, x)
	// A load ordered after the store via a third, dependence-only operand.
	ld := g.MustAddNode(dfg.OpLoad, "", p, st)
	if err := g.MarkLiveOut(ld); err != nil {
		t.Fatal(err)
	}
	fg := g.MustFreeze()
	res, err := Run(fg, Env{RootValues: []int32{64, 5}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Values[ld] != 5 {
		t.Fatalf("load after store reads %d, want 5", res.Values[ld])
	}
}
