package interp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/exprc"
	"polyise/internal/workload"
)

func TestRunArithmetic(t *testing.T) {
	g := exprc.MustCompile(`
in a, b
s = (a + b) * (a - b)
out s
`)
	res, err := Run(g, Env{Inputs: map[string]int32{"a": 7, "b": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LiveOuts(g); len(got) != 1 || got[0] != 40 { // (7+3)*(7-3)
		t.Fatalf("result = %v, want [40]", got)
	}
}

func TestRunAllOps(t *testing.T) {
	g := exprc.MustCompile(`
in a, b
t1 = min(a, b) + max(a, b)
t2 = abs(a - 100)
t3 = (a << 2) ^ (b >> 1)
t4 = (a < b) ? t1 : t2
t5 = (a == b) | (a != b) | (a <= b)
r = t3 + t4 + t5 + (a / (b + 1)) + (a % (b + 1)) + (-a) + (~b)
out r
`)
	res, err := Run(g, Env{Inputs: map[string]int32{"a": 9, "b": 4}})
	if err != nil {
		t.Fatal(err)
	}
	// t1 = 4+9=13; t2 = |9-100|=91; t3 = (9<<2)^(4>>1) = 36^2 = 38
	// t4 = (9<4)?13:91 = 91; t5 = 0|1|0 = 1
	// a/(b+1)=1; a%(b+1)=4; -a=-9; ~b=-5
	// r = 38+91+1+1+4-9-5 = 121
	if got := res.LiveOuts(g); got[0] != 121 {
		t.Fatalf("r = %d, want 121", got[0])
	}
}

func TestRunMemory(t *testing.T) {
	g := exprc.MustCompile(`
in p, v
x = load(p)
y = x + v
store(p, y)
out y
`)
	mem := FlatMemory{100: 5}
	res, err := Run(g, Env{Inputs: map[string]int32{"p": 100, "v": 2}, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LiveOuts(g); got[len(got)-1] != 7 && got[0] != 7 {
		t.Fatalf("outs = %v, want a 7", got)
	}
	if mem[100] != 7 {
		t.Fatalf("mem[100] = %d, want 7", mem[100])
	}
}

func TestDivModByZero(t *testing.T) {
	g := exprc.MustCompile("in a\nr = (a / 0) + (a % 0)\nout r")
	res, err := Run(g, Env{Inputs: map[string]int32{"a": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LiveOuts(g)[0]; got != 0 {
		t.Fatalf("div/mod by zero = %d, want 0", got)
	}
}

func TestRunRejectsCall(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	g.MustAddNode(dfg.OpCall, "f", a)
	g.MustFreeze()
	if _, err := Run(g, Env{}); err == nil {
		t.Fatal("call executed")
	}
}

func TestRunMissingCustom(t *testing.T) {
	g := dfg.New()
	a := g.MustAddNode(dfg.OpVar, "a")
	c := g.MustAddNode(dfg.OpCustom, "mystery", a)
	_ = c
	g.MustFreeze()
	if _, err := Run(g, Env{}); err == nil {
		t.Fatal("unknown custom instruction executed")
	}
}

// TestCollapsePreservesSemantics is the semantic cornerstone: collapsing any
// enumerated cut, with the extracted datapath as the custom instruction's
// implementation, must leave the block's observable behaviour unchanged on
// random inputs.
func TestCollapsePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := workload.MiBenchLike(r, 12+r.Intn(25), workload.DefaultProfile())
		cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
		if len(cuts) == 0 {
			return true
		}
		cut := cuts[r.Intn(len(cuts))]

		extracted, mapping, err := g.ExtractCut(cut.Nodes)
		if err != nil {
			t.Logf("seed=%d extract: %v", seed, err)
			return false
		}
		outIDs := make([]int, len(cut.Outputs))
		for i, o := range cut.Outputs {
			outIDs[i] = mapping[o]
		}
		fn := CutEvaluator(extracted, outIDs)

		collapsed, cmap, err := g.CollapseCut(cut.Nodes, "u0", 1)
		if err != nil {
			t.Logf("seed=%d collapse: %v", seed, err)
			return false
		}

		for trial := 0; trial < 8; trial++ {
			vals := make([]int32, len(g.Roots()))
			for i := range vals {
				vals[i] = int32(r.Intn(2048) - 1024)
			}
			memA := FlatMemory{}
			memB := FlatMemory{}
			resA, err := Run(g, Env{RootValues: vals, Mem: memA})
			if err != nil {
				t.Logf("seed=%d run original: %v", seed, err)
				return false
			}
			resB, err := Run(collapsed, Env{
				RootValues: vals, // root order is preserved by CollapseCut
				Mem:        memB,
				Customs:    map[string]CustomFn{"u0": fn},
			})
			if err != nil {
				t.Logf("seed=%d run collapsed: %v", seed, err)
				return false
			}
			// Compare every surviving node's value and the memories.
			for orig, nid := range cmap {
				if resA.Values[orig] != resB.Values[nid] {
					t.Logf("seed=%d node %d: %d vs %d (cut %v)",
						seed, orig, resA.Values[orig], resB.Values[nid], cut)
					return false
				}
			}
			if !reflect.DeepEqual(memA, memB) {
				t.Logf("seed=%d memory diverged", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractEvaluatorMatchesInPlace checks CutEvaluator against evaluating
// the cut in place inside the full graph.
func TestExtractEvaluatorMatchesInPlace(t *testing.T) {
	g := exprc.MustCompile(`
in a, b, c
m = a * b
s = m + c
d = s - a
out d
`)
	S := bitset.New(g.N())
	// Cut = {m, s}: inputs a,b,c; output s. exprc does not name assignment
	// nodes, so locate them by operation.
	m, s := -1, -1
	for v := 0; v < g.N(); v++ {
		switch g.Op(v) {
		case dfg.OpMul:
			m = v
		case dfg.OpAdd:
			s = v
		}
	}
	if m < 0 || s < 0 {
		t.Fatal("mul/add nodes not found")
	}
	S.Add(m)
	S.Add(s)
	extracted, mapping, err := g.ExtractCut(S)
	if err != nil {
		t.Fatal(err)
	}
	fn := CutEvaluator(extracted, []int{mapping[s]})
	// Inputs of the cut in ascending order are a, b, c.
	got := fn([]int32{3, 4, 5})
	if len(got) != 1 || got[0] != 17 { // 3*4+5
		t.Fatalf("evaluator = %v, want [17]", got)
	}
}

// TestQuickRootOrderPreserved: CollapseCut keeps the surviving roots in
// their original relative order, which the semantics test relies on.
func TestQuickRootOrderPreserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := workload.MiBenchLike(r, 10+r.Intn(20), workload.DefaultProfile())
		cuts, _ := enum.CollectAll(g, enum.DefaultOptions())
		if len(cuts) == 0 {
			return true
		}
		cut := cuts[r.Intn(len(cuts))]
		collapsed, cmap, err := g.CollapseCut(cut.Nodes, "u", 1)
		if err != nil {
			return false
		}
		origRoots := g.Roots()
		newRoots := collapsed.Roots()
		if len(origRoots) != len(newRoots) {
			return false
		}
		for i, orig := range origRoots {
			if cmap[orig] != newRoots[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
