// Package interp executes data-flow graphs on concrete values. Its job in
// the reproduction is semantic validation: the graph rewrites behind the
// iterative ISE flow (ExtractCut, CollapseCut) must preserve the block's
// meaning, and the test suite proves it by running rewritten blocks against
// the originals on random inputs. It also doubles as a tiny reference model
// for the generated Verilog's operator semantics (32-bit two's complement).
package interp

import (
	"fmt"

	"polyise/internal/dfg"
)

// Memory provides load/store semantics for the memory operations.
type Memory interface {
	Load(addr int32) int32
	Store(addr, val int32)
}

// FlatMemory is a sparse word-addressed memory.
type FlatMemory map[int32]int32

// Load returns the word at addr (zero if never written).
func (m FlatMemory) Load(addr int32) int32 { return m[addr] }

// Store writes the word at addr.
func (m FlatMemory) Store(addr, val int32) { m[addr] = val }

// CustomFn implements one collapsed custom instruction: it receives the
// operand values in the instruction's documented operand order and returns
// one value per result.
type CustomFn func(args []int32) []int32

// Env configures an execution.
type Env struct {
	// Inputs maps live-in variable names to values; unnamed roots default
	// to zero and can be set positionally via RootValues.
	Inputs map[string]int32
	// RootValues overrides inputs positionally, indexed like g.Roots().
	RootValues []int32
	// Mem backs loads and stores; nil means a fresh FlatMemory.
	Mem Memory
	// Customs resolves custom instructions by node name.
	Customs map[string]CustomFn
}

// Result carries every node's value after execution.
type Result struct {
	Values []int32
	Mem    Memory
}

// LiveOuts returns the values of the block's Oext vertices in ascending
// vertex order — the observable result of the block.
func (r Result) LiveOuts(g *dfg.Graph) []int32 {
	outs := g.Oext()
	vals := make([]int32, len(outs))
	for i, o := range outs {
		vals[i] = r.Values[o]
	}
	return vals
}

// Run executes the frozen graph in topological order.
func Run(g *dfg.Graph, env Env) (Result, error) {
	mem := env.Mem
	if mem == nil {
		mem = FlatMemory{}
	}
	vals := make([]int32, g.N())
	roots := g.Roots()
	for i, r := range roots {
		switch {
		case env.RootValues != nil && i < len(env.RootValues):
			vals[r] = env.RootValues[i]
		case env.Inputs != nil:
			vals[r] = env.Inputs[g.Name(r)]
		}
	}
	// Custom results are cached per custom node (multi-output instructions
	// are evaluated once, extracts select from the cache).
	customResults := make(map[int][]int32)

	for _, v := range g.Topo() {
		preds := g.Preds(v)
		a := func(i int) int32 { return vals[preds[i]] }
		switch g.Op(v) {
		case dfg.OpVar:
			// already seeded
		case dfg.OpConst:
			vals[v] = int32(g.ConstValue(v))
		case dfg.OpAdd:
			vals[v] = a(0) + a(1)
		case dfg.OpSub:
			vals[v] = a(0) - a(1)
		case dfg.OpMul:
			vals[v] = a(0) * a(1)
		case dfg.OpDiv:
			if a(1) == 0 {
				vals[v] = 0 // hardware-style saturation of the undefined case
			} else {
				vals[v] = a(0) / a(1)
			}
		case dfg.OpRem:
			if a(1) == 0 {
				vals[v] = 0
			} else {
				vals[v] = a(0) % a(1)
			}
		case dfg.OpAnd:
			vals[v] = a(0) & a(1)
		case dfg.OpOr:
			vals[v] = a(0) | a(1)
		case dfg.OpXor:
			vals[v] = a(0) ^ a(1)
		case dfg.OpNot:
			vals[v] = ^a(0)
		case dfg.OpNeg:
			vals[v] = -a(0)
		case dfg.OpShl:
			vals[v] = a(0) << uint32(a(1)&31)
		case dfg.OpShr:
			vals[v] = int32(uint32(a(0)) >> uint32(a(1)&31))
		case dfg.OpSar:
			vals[v] = a(0) >> uint32(a(1)&31)
		case dfg.OpCmpEQ:
			vals[v] = b2i(a(0) == a(1))
		case dfg.OpCmpNE:
			vals[v] = b2i(a(0) != a(1))
		case dfg.OpCmpLT:
			vals[v] = b2i(a(0) < a(1))
		case dfg.OpCmpLE:
			vals[v] = b2i(a(0) <= a(1))
		case dfg.OpSelect:
			if a(0) != 0 {
				vals[v] = a(1)
			} else {
				vals[v] = a(2)
			}
		case dfg.OpMin:
			vals[v] = min32(a(0), a(1))
		case dfg.OpMax:
			vals[v] = max32(a(0), a(1))
		case dfg.OpAbs:
			if a(0) < 0 {
				vals[v] = -a(0)
			} else {
				vals[v] = a(0)
			}
		case dfg.OpLoad:
			vals[v] = mem.Load(a(0))
		case dfg.OpStore:
			mem.Store(a(0), a(1))
			vals[v] = a(1)
		case dfg.OpCustom:
			fn := env.Customs[g.Name(v)]
			if fn == nil {
				return Result{}, fmt.Errorf("interp: no implementation for custom instruction %q", g.Name(v))
			}
			args := make([]int32, len(preds))
			for i := range preds {
				args[i] = a(i)
			}
			rs := fn(args)
			customResults[v] = rs
			if len(rs) > 0 {
				vals[v] = rs[0]
			}
		case dfg.OpExtract:
			rs := customResults[preds[0]]
			idx := int(g.ConstValue(v))
			if idx < 0 || idx >= len(rs) {
				return Result{}, fmt.Errorf("interp: extract index %d out of range (%d results)", idx, len(rs))
			}
			vals[v] = rs[idx]
		case dfg.OpCall:
			return Result{}, fmt.Errorf("interp: cannot execute opaque call %q", g.Name(v))
		default:
			return Result{}, fmt.Errorf("interp: unknown op %v", g.Op(v))
		}
	}
	return Result{Values: vals, Mem: mem}, nil
}

// CutEvaluator builds a CustomFn from a cut extracted with ExtractCut: the
// returned function interprets the datapath, taking operands in the cut's
// input order (ExtractCut creates the input vertices first, in exactly the
// operand order CollapseCut wires) and returning the results for outputIDs,
// the extracted ids of the cut's outputs in the original output order
// (obtain them by mapping g.Outputs(S) through ExtractCut's mapping).
func CutEvaluator(extracted *dfg.Graph, outputIDs []int) CustomFn {
	outs := append([]int(nil), outputIDs...)
	return func(args []int32) []int32 {
		env := Env{RootValues: args}
		res, err := Run(extracted, env)
		if err != nil {
			panic(err) // extracted datapaths contain no memory ops or calls
		}
		vals := make([]int32, len(outs))
		for i, o := range outs {
			vals[i] = res.Values[o]
		}
		return vals
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a < b {
		return b
	}
	return a
}
