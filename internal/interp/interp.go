// Package interp executes data-flow graphs on concrete values. Its job in
// the reproduction is semantic validation: the graph rewrites behind the
// iterative ISE flow (ExtractCut, CollapseCut) must preserve the block's
// meaning, and the test suite proves it by running rewritten blocks against
// the originals on random inputs. It also doubles as a tiny reference model
// for the generated Verilog's operator semantics (32-bit two's complement).
package interp

import (
	"fmt"
	"math/rand"

	"polyise/internal/bitset"
	"polyise/internal/dfg"
)

// Memory provides load/store semantics for the memory operations.
type Memory interface {
	Load(addr int32) int32
	Store(addr, val int32)
}

// FlatMemory is a sparse word-addressed memory.
type FlatMemory map[int32]int32

// Load returns the word at addr (zero if never written).
func (m FlatMemory) Load(addr int32) int32 { return m[addr] }

// Store writes the word at addr.
func (m FlatMemory) Store(addr, val int32) { m[addr] = val }

// CustomFn implements one collapsed custom instruction: it receives the
// operand values in the instruction's documented operand order and returns
// one value per result.
type CustomFn func(args []int32) []int32

// Env configures an execution.
type Env struct {
	// Inputs maps live-in variable names to values; unnamed roots default
	// to zero and can be set positionally via RootValues.
	Inputs map[string]int32
	// RootValues overrides inputs positionally, indexed like g.Roots().
	RootValues []int32
	// Mem backs loads and stores; nil means a fresh FlatMemory.
	Mem Memory
	// Customs resolves custom instructions by node name.
	Customs map[string]CustomFn
}

// Result carries every node's value after execution.
type Result struct {
	Values []int32
	Mem    Memory
}

// LiveOuts returns the values of the block's Oext vertices in ascending
// vertex order — the observable result of the block.
func (r Result) LiveOuts(g *dfg.Graph) []int32 {
	outs := g.Oext()
	vals := make([]int32, len(outs))
	for i, o := range outs {
		vals[i] = r.Values[o]
	}
	return vals
}

// Run executes the frozen graph in topological order.
//
// Run is total over frozen graphs: a graph whose nodes carry fewer operands
// than their operation requires (possible through hand-built or deserialized
// graphs — neither AddNode nor the graphio parser enforces arity) is
// reported as an error, never a panic. Extra operands beyond an operation's
// arity are ignored; by convention they are dependence edges (the memory-
// ordering edges the workload generator emits).
func Run(g *dfg.Graph, env Env) (Result, error) {
	mem := env.Mem
	if mem == nil {
		mem = FlatMemory{}
	}
	vals := make([]int32, g.N())
	roots := g.Roots()
	for i, r := range roots {
		switch {
		case env.RootValues != nil && i < len(env.RootValues):
			vals[r] = env.RootValues[i]
		case env.Inputs != nil:
			vals[r] = env.Inputs[g.Name(r)]
		}
	}
	// Custom results are cached per custom node (multi-output instructions
	// are evaluated once, extracts select from the cache).
	customResults := make(map[int][]int32)

	for _, v := range g.Topo() {
		preds := g.Preds(v)
		if want := g.Op(v).Arity(); want > 0 && len(preds) < want {
			return Result{}, fmt.Errorf("interp: node %d (%v) has %d operands, needs %d",
				v, g.Op(v), len(preds), want)
		}
		a := func(i int) int32 { return vals[preds[i]] }
		switch g.Op(v) {
		case dfg.OpVar:
			// already seeded
		case dfg.OpConst:
			vals[v] = int32(g.ConstValue(v))
		case dfg.OpAdd:
			vals[v] = a(0) + a(1)
		case dfg.OpSub:
			vals[v] = a(0) - a(1)
		case dfg.OpMul:
			vals[v] = a(0) * a(1)
		case dfg.OpDiv:
			if a(1) == 0 {
				vals[v] = 0 // hardware-style saturation of the undefined case
			} else {
				vals[v] = a(0) / a(1)
			}
		case dfg.OpRem:
			if a(1) == 0 {
				vals[v] = 0
			} else {
				vals[v] = a(0) % a(1)
			}
		case dfg.OpAnd:
			vals[v] = a(0) & a(1)
		case dfg.OpOr:
			vals[v] = a(0) | a(1)
		case dfg.OpXor:
			vals[v] = a(0) ^ a(1)
		case dfg.OpNot:
			vals[v] = ^a(0)
		case dfg.OpNeg:
			vals[v] = -a(0)
		case dfg.OpShl:
			vals[v] = a(0) << uint32(a(1)&31)
		case dfg.OpShr:
			vals[v] = int32(uint32(a(0)) >> uint32(a(1)&31))
		case dfg.OpSar:
			vals[v] = a(0) >> uint32(a(1)&31)
		case dfg.OpCmpEQ:
			vals[v] = b2i(a(0) == a(1))
		case dfg.OpCmpNE:
			vals[v] = b2i(a(0) != a(1))
		case dfg.OpCmpLT:
			vals[v] = b2i(a(0) < a(1))
		case dfg.OpCmpLE:
			vals[v] = b2i(a(0) <= a(1))
		case dfg.OpSelect:
			if a(0) != 0 {
				vals[v] = a(1)
			} else {
				vals[v] = a(2)
			}
		case dfg.OpMin:
			vals[v] = min32(a(0), a(1))
		case dfg.OpMax:
			vals[v] = max32(a(0), a(1))
		case dfg.OpAbs:
			if a(0) < 0 {
				vals[v] = -a(0)
			} else {
				vals[v] = a(0)
			}
		case dfg.OpLoad:
			vals[v] = mem.Load(a(0))
		case dfg.OpStore:
			mem.Store(a(0), a(1))
			vals[v] = a(1)
		case dfg.OpCustom:
			fn := env.Customs[g.Name(v)]
			if fn == nil {
				return Result{}, fmt.Errorf("interp: no implementation for custom instruction %q", g.Name(v))
			}
			args := make([]int32, len(preds))
			for i := range preds {
				args[i] = a(i)
			}
			rs := fn(args)
			customResults[v] = rs
			if len(rs) > 0 {
				vals[v] = rs[0]
			}
		case dfg.OpExtract:
			rs := customResults[preds[0]]
			idx := int(g.ConstValue(v))
			if idx < 0 || idx >= len(rs) {
				return Result{}, fmt.Errorf("interp: extract index %d out of range (%d results)", idx, len(rs))
			}
			vals[v] = rs[idx]
		case dfg.OpCall:
			return Result{}, fmt.Errorf("interp: cannot execute opaque call %q", g.Name(v))
		default:
			return Result{}, fmt.Errorf("interp: unknown op %v", g.Op(v))
		}
	}
	return Result{Values: vals, Mem: mem}, nil
}

// CutEvaluator builds a CustomFn from a cut extracted with ExtractCut: the
// returned function interprets the datapath, taking operands in the cut's
// input order (ExtractCut creates the input vertices first, in exactly the
// operand order CollapseCut wires) and returning the results for outputIDs,
// the extracted ids of the cut's outputs in the original output order
// (obtain them by mapping g.Outputs(S) through ExtractCut's mapping).
func CutEvaluator(extracted *dfg.Graph, outputIDs []int) CustomFn {
	outs := append([]int(nil), outputIDs...)
	return func(args []int32) []int32 {
		env := Env{RootValues: args}
		res, err := Run(extracted, env)
		if err != nil {
			panic(err) // extracted datapaths contain no memory ops or calls
		}
		vals := make([]int32, len(outs))
		for i, o := range outs {
			vals[i] = res.Values[o]
		}
		return vals
	}
}

// SeededMemory is a Memory whose never-written cells read as a pseudorandom
// function of the address instead of zero. Differential checks want this:
// under FlatMemory every load of an untouched cell returns 0, so two runs
// that disagree on which address they load can still agree on every value.
// With seeded contents, any divergence in load addresses or in load/store
// ordering shows up as a value difference.
type SeededMemory struct {
	seed   uint64
	writes map[int32]int32
}

// NewSeededMemory creates a SeededMemory with the given content seed. Two
// memories with the same seed present identical initial contents.
func NewSeededMemory(seed uint64) *SeededMemory {
	return &SeededMemory{seed: seed, writes: make(map[int32]int32)}
}

// Load returns the written value, or the seeded pseudorandom content of an
// untouched cell.
func (m *SeededMemory) Load(addr int32) int32 {
	if v, ok := m.writes[addr]; ok {
		return v
	}
	// splitmix64 of seed⊕addr: cheap, well-mixed cell contents.
	z := m.seed ^ uint64(uint32(addr))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int32(z ^ (z >> 31))
}

// Store writes the word at addr.
func (m *SeededMemory) Store(addr, val int32) { m.writes[addr] = val }

// Equal reports whether two seeded memories are observably identical: same
// initial contents (seed) and the same set of written cells and values.
func (m *SeededMemory) Equal(o *SeededMemory) bool {
	if m.seed != o.seed || len(m.writes) != len(o.writes) {
		return false
	}
	for addr, v := range m.writes {
		if ov, ok := o.writes[addr]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Writes returns the cells the execution stored to; read-only.
func (m *SeededMemory) Writes() map[int32]int32 { return m.writes }

// RandomEnv builds a randomized execution environment for g: uniformly
// random 32-bit values for every root and a SeededMemory with contents
// drawn from the same source. Environments are deterministic in the
// source's state, so a failing configuration is reproducible from its seed.
func RandomEnv(r *rand.Rand, g *dfg.Graph) Env {
	vals := make([]int32, len(g.Roots()))
	for i := range vals {
		vals[i] = int32(r.Uint32())
	}
	return Env{RootValues: vals, Mem: NewSeededMemory(r.Uint64())}
}

// CutFn builds the interpreter-backed implementation of one cut of g: the
// extracted datapath (dfg.Graph.ExtractCut) wrapped as a CustomFn whose
// results follow the cut's original output order — exactly the function
// CollapseCut's custom node needs to execute the collapsed graph under Run.
func CutFn(g *dfg.Graph, nodes *bitset.Set, outputs []int) (CustomFn, error) {
	extracted, mapping, err := g.ExtractCut(nodes)
	if err != nil {
		return nil, err
	}
	outIDs := make([]int, len(outputs))
	for i, o := range outputs {
		outIDs[i] = mapping[o]
	}
	return CutEvaluator(extracted, outIDs), nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a < b {
		return b
	}
	return a
}
