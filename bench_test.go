// Benchmarks regenerating the paper's evaluation (§6). Each benchmark maps
// to a figure or claim; EXPERIMENTS.md records the measured numbers next to
// the paper's. The full corpus comparison (250 blocks) lives in
// cmd/compare; the benchmarks here use fixed representative instances so
// `go test -bench=.` stays minutes, not hours.
package polyise_test

import (
	"fmt"
	"math/rand"
	"testing"

	"polyise"
	"polyise/internal/bench"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

func countCuts(b *testing.B, run func(func(polyise.Cut) bool) polyise.Stats) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		run(func(polyise.Cut) bool { n++; return true })
		b.ReportMetric(float64(n), "cuts")
	}
}

func opts() polyise.Options {
	o := polyise.DefaultOptions()
	o.KeepCuts = false
	// The figure benchmarks reproduce the paper's serial measurements;
	// BenchmarkParallelEnumerate covers the sharded configuration.
	o.Parallelism = 1
	return o
}

// BenchmarkParallelEnumerate measures intra-block sharding on a single
// large block: the same enumeration at Parallelism=1 (the paper's serial
// algorithm) versus Parallelism=GOMAXPROCS. The two produce identical cut
// sequences; on a machine with GOMAXPROCS ≥ 4 the sharded run is expected
// to be at least 2× faster (top-level subtrees dominate the work and
// shard evenly at this size).
func BenchmarkParallelEnumerate(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 220, workload.DefaultProfile())
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		opt := opts()
		opt.Parallelism = cfg.workers
		b.Run(cfg.name, func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opt, v)
			})
		})
	}
}

// BenchmarkFigure5 reproduces the figure 5 run-time comparison on one
// representative block per size cluster: the polynomial algorithm (X axis)
// versus the pruned exhaustive search of [15] (Y axis). The paper's shape:
// comparable on small blocks, the polynomial algorithm ahead on most, and
// dramatically ahead on the tree worst case (see BenchmarkTreeWorstCase).
func BenchmarkFigure5(b *testing.B) {
	sizes := []struct {
		cluster string
		n       int
	}{
		{"small", 40},
		{"medium", 120},
	}
	for _, s := range sizes {
		g := workload.MiBenchLike(rand.New(rand.NewSource(5)), s.n, workload.DefaultProfile())
		b.Run(fmt.Sprintf("poly/%s-n%d", s.cluster, s.n), func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(), v)
			})
		})
		b.Run(fmt.Sprintf("pruned/%s-n%d", s.cluster, s.n), func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.PrunedExhaustiveSearch(g, opts(), v)
			})
		})
	}
}

// BenchmarkTreeWorstCase is the figure 4 family: complete binary trees,
// provably exponential (O(1.6^n)) for [4]-style searches. Depth 5 is 63
// nodes; the exhaustive search already needs orders of magnitude longer
// than the polynomial algorithm, and the gap widens with depth.
func BenchmarkTreeWorstCase(b *testing.B) {
	for depth := 4; depth <= 6; depth++ {
		g := polyise.TreeWorstCase(depth)
		b.Run(fmt.Sprintf("poly/depth%d-n%d", depth, g.N()), func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(), v)
			})
		})
		if depth <= 5 { // exhaustive beyond depth 5 takes too long for -bench=.
			b.Run(fmt.Sprintf("pruned/depth%d-n%d", depth, g.N()), func(b *testing.B) {
				countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
					return polyise.PrunedExhaustiveSearch(g, opts(), v)
				})
			})
		}
	}
}

// BenchmarkScaling backs the polynomial-complexity claim (§5): run time of
// the enumeration across a size sweep at the paper's Nin=4/Nout=2. The
// fitted exponent (see cmd/compare -mode scaling and EXPERIMENTS.md) must
// stay below the theoretical Nin+Nout+1.
func BenchmarkScaling(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{25, 50, 100, 150} {
		g := workload.MiBenchLike(r, n, workload.DefaultProfile())
		b.Run(fmt.Sprintf("poly/n%d", n), func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(), v)
			})
		})
	}
}

// BenchmarkIOConstraints sweeps the port constraint at fixed size,
// exercising the O(n^(Nin+Nout+1)) dependence on the constraint itself.
func BenchmarkIOConstraints(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(11)), 80, workload.DefaultProfile())
	for _, c := range []struct{ nin, nout int }{{2, 1}, {3, 1}, {4, 2}, {5, 2}} {
		opt := opts()
		opt.MaxInputs, opt.MaxOutputs = c.nin, c.nout
		b.Run(fmt.Sprintf("nin%d-nout%d", c.nin, c.nout), func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opt, v)
			})
		})
	}
}

// BenchmarkAblation measures the §5.3 prunings: each variant disables one
// (the last one enables the paper's approximate dominator–input test).
func BenchmarkAblation(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(13)), 100, workload.DefaultProfile())
	variants := []struct {
		name   string
		mutate func(*polyise.Options)
	}{
		{"all", func(*polyise.Options) {}},
		{"no-output-output", func(o *polyise.Options) { o.PruneOutputOutput = false }},
		{"no-input-input", func(o *polyise.Options) { o.PruneInputInput = false }},
		{"no-output-input", func(o *polyise.Options) { o.PruneOutputInput = false }},
		{"no-build-prune", func(o *polyise.Options) { o.PruneWhileBuildingS = false }},
		{"approx-dominator-input", func(o *polyise.Options) { o.PruneDominatorInput = true }},
		{"approx-forbidden-anc", func(o *polyise.Options) { o.PruneForbiddenAncestors = true }},
	}
	for _, v := range variants {
		opt := opts()
		v.mutate(&opt)
		b.Run(v.name, func(b *testing.B) {
			countCuts(b, func(visit func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opt, visit)
			})
		})
	}
}

// BenchmarkBasicVsIncremental compares figure 2's basic algorithm with
// figure 3's incremental one (§5.2).
func BenchmarkBasicVsIncremental(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 40, workload.DefaultProfile())
	b.Run("incremental", func(b *testing.B) {
		countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
			return polyise.Enumerate(g, opts(), v)
		})
	})
	b.Run("basic", func(b *testing.B) {
		countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
			return polyise.EnumerateBasic(g, opts(), v)
		})
	})
}

// BenchmarkISESelection measures the end-to-end identification flow that
// backs the §7 speedup claim: enumerate, score, select.
func BenchmarkISESelection(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(19)), 100, workload.DefaultProfile())
	model := polyise.DefaultModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel := polyise.IdentifyISE(g, polyise.DefaultOptions(), model, polyise.DefaultSelectOptions())
		b.ReportMetric(sel.Speedup(), "speedup")
	}
}

// BenchmarkConnectedOnly measures the Yu–Mitra style restriction (§2): the
// connected-cut search the algorithm "can be adapted to run faster under".
func BenchmarkConnectedOnly(b *testing.B) {
	g := workload.MiBenchLike(rand.New(rand.NewSource(23)), 120, workload.DefaultProfile())
	for _, connected := range []bool{false, true} {
		opt := opts()
		opt.ConnectedOnly = connected
		name := "all-cuts"
		if connected {
			name = "connected-only"
		}
		b.Run(name, func(b *testing.B) {
			countCuts(b, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opt, v)
			})
		})
	}
}

// TestBenchHarnessSmoke keeps the bench package itself under test: a tiny
// figure 5 comparison must produce sane, winner-consistent data.
func TestBenchHarnessSmoke(t *testing.T) {
	blocks := workload.Corpus(3, workload.CorpusSpec{
		Small: 4, TreeDepths: []int{4}, Profile: workload.DefaultProfile(),
	})
	points := bench.CompareCorpus(blocks, enum.DefaultOptions(), 0)
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5", len(points))
	}
	for _, p := range points {
		if p.Poly.Cuts != p.Pruned.Cuts {
			t.Fatalf("%s: algorithms disagree on cut count: %d vs %d",
				p.Block, p.Poly.Cuts, p.Pruned.Cuts)
		}
	}
	sums := bench.Summarize(points)
	if len(sums) != 2 {
		t.Fatalf("clusters = %d, want 2", len(sums))
	}
}
