module polyise

go 1.24
