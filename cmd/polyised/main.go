// Command polyised serves the polyise enumeration engine over HTTP:
// enumeration-as-a-service with content-addressed graph caching, a global
// memory budget, admission control with load shedding, per-request
// deadlines and budgets, and graceful shutdown that parks durable runs as
// resumable checkpoints.
//
//	polyised -addr :8080 -budget 256MiB -checkpoint-dir /var/lib/polyised
//
//	# submit a graph (text format), then enumerate it
//	ID=$(curl -s --data-binary @block.dfg localhost:8080/v1/graphs | jq -r .id)
//	curl -s "localhost:8080/v1/graphs/$ID/enumerate?nin=4&nout=2&max_cuts=1000"
//
// A first SIGINT/SIGTERM drains: running enumerations stop at their next
// quiescent point, durable runs (run=<id> requests) write a snapshot that a
// restarted server resumes bit-exactly via POST .../resume?run=<id>. A
// second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"polyise/internal/graphio"
	"polyise/internal/session"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		budget     = flag.String("budget", "0", "memory budget for cached graphs + dedup tables (bytes; suffixes KiB/MiB/GiB; 0 = unlimited)")
		maxConc    = flag.Int("max-concurrent", 0, "max concurrent enumerations (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 0, "admission queue depth beyond the slot pool (0 = slot count)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for durable run snapshots (empty disables durable runs)")
		maxNodes   = flag.Int("max-nodes", 100000, "graph submission cap: nodes (0 = unlimited)")
		maxPreds   = flag.Int("max-preds", 1024, "graph submission cap: operands per node (0 = unlimited)")
		maxLine    = flag.Int("max-line", 1<<16, "graph submission cap: bytes per line (0 = unlimited)")
		deadline   = flag.Duration("default-deadline", 0, "deadline applied to requests that set none (0 = none)")
		maxCuts    = flag.Int("max-cuts-ceiling", 0, "hard cap on any request's max_cuts (0 = none)")
		dedupDef   = flag.Int("dedup-budget", -1, "default per-request dedup-table budget in bytes (0 = unbudgeted, -1 = auto: budget/2/max-concurrent)")
		writeTO    = flag.Duration("write-timeout", 30*time.Second, "per-write deadline for streamed responses")
		drainTO    = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight runs")
	)
	flag.Parse()

	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		log.Fatalf("polyised: -budget: %v", err)
	}
	if *dedupDef < 0 {
		// Auto: size the per-request dedup reservation so a full slot pool
		// fits inside the memory budget with headroom left for the graph
		// cache. With no budget, dedup stays unbudgeted.
		*dedupDef = 0
		if budgetBytes > 0 {
			conc := *maxConc
			if conc <= 0 {
				conc = runtime.GOMAXPROCS(0)
			}
			*dedupDef = int(budgetBytes / int64(2*conc))
		}
	}
	svc := session.NewService(session.Config{
		MaxConcurrent:      *maxConc,
		QueueDepth:         *queueDepth,
		MemoryBudget:       budgetBytes,
		Limits:             graphio.Limits{MaxNodes: *maxNodes, MaxPreds: *maxPreds, MaxLineBytes: *maxLine},
		DefaultDeadline:    *deadline,
		MaxCutsCeiling:     *maxCuts,
		DedupBudgetDefault: *dedupDef,
		CheckpointDir:      *ckptDir,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: session.NewHandler(svc, session.HandlerConfig{WriteTimeout: *writeTO}),
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("polyised: draining (in-flight runs stop at their next quiescent point; durable runs park)")
		go func() {
			<-sigs
			log.Printf("polyised: second signal, exiting now")
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			log.Printf("polyised: drain incomplete: %v", err)
		}
		srv.Shutdown(ctx)
	}()

	log.Printf("polyised: listening on %s (budget=%s, checkpoint-dir=%q)", *addr, *budget, *ckptDir)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("polyised: %v", err)
	}
}

// parseBytes reads "0", "1048576", "256KiB", "1MiB", "2GiB".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	for suffix, m := range map[string]int64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30} {
		if strings.HasSuffix(upper, suffix) {
			mult, upper = m, strings.TrimSuffix(upper, suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}
