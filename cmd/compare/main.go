// Command compare regenerates the paper's evaluation (§6):
//
//	compare -mode figure5    run-time scatter, poly vs pruned exhaustive,
//	                         over the synthetic MiBench-like corpus + trees
//	compare -mode trees      the figure 4 worst case in isolation
//	compare -mode scaling    polynomial growth-exponent fit for the
//	                         enumeration algorithm
//	compare -mode ablation   §5.3 prunings toggled one at a time
//
// All modes print plain-text tables; -budget bounds each individual run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"polyise/internal/bench"
	"polyise/internal/enum"
	"polyise/internal/workload"
)

func main() {
	var (
		mode   = flag.String("mode", "figure5", "figure5 | trees | scaling | ablation")
		seed   = flag.Int64("seed", 1, "corpus seed")
		nin    = flag.Int("nin", 4, "maximum inputs")
		nout   = flag.Int("nout", 2, "maximum outputs")
		budget = flag.Duration("budget", 30*time.Second, "wall-clock budget per run")
		small  = flag.Int("small", 150, "figure5: blocks in the 10-79 cluster")
		medium = flag.Int("medium", 80, "figure5: blocks in the 80-799 cluster")
		large  = flag.Int("large", 20, "figure5: blocks in the 800-1196 cluster")
		paper  = flag.Bool("paper", false,
			"use the paper-mode approximate prunings for the polynomial algorithm")
		par = flag.Int("parallel", 1,
			"worker count for sharding blocks across cores (0 = GOMAXPROCS); individual timed runs stay serial")
	)
	flag.Parse()

	// The first SIGINT cancels every in-flight measurement through the
	// context path: each run drains cleanly and reports itself
	// stopped-early, the tables computed so far still print, and the
	// process exits nonzero. A second SIGINT exits immediately — the escape
	// hatch when the drain itself takes too long.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "compare: interrupt: draining (interrupt again to exit immediately)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	opt := enum.DefaultOptions()
	if *paper {
		opt = enum.PaperOptions()
	}
	opt.MaxInputs = *nin
	opt.MaxOutputs = *nout
	opt.KeepCuts = false
	opt.Parallelism = *par
	opt.Context = ctx

	switch *mode {
	case "figure5":
		spec := workload.DefaultCorpusSpec()
		spec.Small, spec.Medium, spec.Large = *small, *medium, *large
		blocks := workload.Corpus(*seed, spec)
		points := bench.CompareCorpus(blocks, opt, *budget)
		bench.WriteScatter(os.Stdout, points)
		fmt.Println()
		bench.WriteSummary(os.Stdout, bench.Summarize(points))

	case "trees":
		var blocks []workload.Block
		for _, d := range []int{4, 5, 6, 7} {
			blocks = append(blocks, workload.Block{
				Name:    fmt.Sprintf("tree-depth%d", d),
				Cluster: workload.ClusterTree,
				G:       workload.Tree(d, 2),
			})
		}
		points := bench.CompareCorpus(blocks, opt, *budget)
		bench.WriteScatter(os.Stdout, points)

	case "scaling":
		sizes := []int{25, 50, 75, 100, 150, 200, 300}
		k, points := bench.GrowthExponent(bench.AlgPoly, sizes, *seed, opt, *budget)
		fmt.Printf("# polynomial algorithm scaling, Nin=%d Nout=%d\n", *nin, *nout)
		fmt.Printf("%8s %12s %10s %14s\n", "n", "seconds", "cuts", "stop")
		for _, m := range points {
			fmt.Printf("%8d %12.6f %10d %14v\n", m.N, m.Duration.Seconds(), m.Cuts, m.StopReason)
		}
		fmt.Printf("fitted exponent k = %.2f (theory bound: Nin+Nout+1 = %d)\n",
			k, *nin+*nout+1)

	case "ablation":
		runAblation(*seed, opt, *budget)

	default:
		fmt.Fprintf(os.Stderr, "compare: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "compare: interrupted; measurements after the signal are partial (flagged canceled)")
		os.Exit(130)
	}
}

// runAblation measures each §5.3 pruning's contribution by disabling it
// alone on a mid-size workload slice.
func runAblation(seed int64, base enum.Options, budget time.Duration) {
	spec := workload.CorpusSpec{Small: 12, Medium: 2, Profile: workload.DefaultProfile()}
	blocks := workload.Corpus(seed, spec)

	type variant struct {
		name   string
		mutate func(*enum.Options)
	}
	variants := []variant{
		{"all-prunings", func(*enum.Options) {}},
		{"no-output-output", func(o *enum.Options) { o.PruneOutputOutput = false }},
		{"no-input-input", func(o *enum.Options) { o.PruneInputInput = false }},
		{"no-output-input", func(o *enum.Options) { o.PruneOutputInput = false }},
		{"no-build-prune", func(o *enum.Options) { o.PruneWhileBuildingS = false }},
		{"+dominator-input(approx)", func(o *enum.Options) { o.PruneDominatorInput = true }},
		{"+forbidden-anc(approx)", func(o *enum.Options) { o.PruneForbiddenAncestors = true }},
		{"paper-mode(all approx)", func(o *enum.Options) {
			o.PruneDominatorInput = true
			o.PruneForbiddenAncestors = true
		}},
	}

	fmt.Printf("# §5.3 pruning ablation over %d blocks\n", len(blocks))
	fmt.Printf("%-26s %12s %10s %10s\n", "variant", "seconds", "cuts", "stopped")
	for _, v := range variants {
		opt := base
		v.mutate(&opt)
		total := time.Duration(0)
		cuts, stopped := 0, 0
		for _, b := range blocks {
			m := bench.Run(bench.AlgPoly, b.G, opt, budget)
			total += m.Duration
			cuts += m.Cuts
			if m.Stopped() {
				stopped++
			}
		}
		fmt.Printf("%-26s %12.4f %10d %10d\n", v.name, total.Seconds(), cuts, stopped)
	}
}
