// Command isex enumerates the convex cuts of a data-flow graph under
// input/output port constraints and, optionally, selects an instruction set
// extension and reports the estimated speedup.
//
// Usage:
//
//	isex -nin 4 -nout 2 block.dfg          enumerate, print a summary
//	isex -list block.dfg                   additionally print every cut
//	isex -select -max-instr 4 block.dfg    pick an ISE and report speedup
//	isex -expr kernel.x                    input is exprc source, not a DFG
//	isex -dot-best out.dot block.dfg       write the best cut as DOT
//	isex -checkpoint run.ckpt block.dfg    crash-tolerant run; SIGINT drains,
//	                                       snapshots and exits 130
//	isex -checkpoint run.ckpt -resume ...  continue where the snapshot stopped
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"polyise/internal/checkpoint"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/exprc"
	"polyise/internal/graphio"
	"polyise/internal/ise"
)

func main() {
	var (
		nin       = flag.Int("nin", 4, "maximum inputs (register read ports)")
		nout      = flag.Int("nout", 2, "maximum outputs (register write ports)")
		connected = flag.Bool("connected", false, "restrict to connected cuts")
		maxDepth  = flag.Int("max-depth", 0, "restrict cut depth (0 = unlimited)")
		list      = flag.Bool("list", false, "print every enumerated cut")
		doSelect  = flag.Bool("select", false, "select an ISE and report speedup")
		maxInstr  = flag.Int("max-instr", 0, "instruction budget for -select (0 = unlimited)")
		area      = flag.Float64("area", 0, "area budget for -select (0 = unlimited)")
		expr      = flag.Bool("expr", false, "input file is exprc source")
		dotBest   = flag.String("dot-best", "", "write DOT with the best cut highlighted")
		rtlBest   = flag.String("rtl-best", "", "write a Verilog module for the best cut")
		iterate   = flag.Int("iterate", 0, "run N rounds of iterative identify+collapse")
		timeout   = flag.Duration("timeout", 0, "abort enumeration after this long")
		par       = flag.Int("parallel", 0,
			"enumeration shard workers (0 = GOMAXPROCS, 1 = the paper's serial algorithm)")
		ckptPath = flag.String("checkpoint", "",
			"write crash-tolerant snapshots to this file (SIGINT drains and checkpoints before exiting)")
		ckptEvery = flag.Int("checkpoint-every", 10000,
			"with -checkpoint: also snapshot every N delivered cuts (0 = only on stop)")
		resume = flag.Bool("resume", false,
			"resume the enumeration from the -checkpoint file instead of starting over")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isex [flags] <block.dfg | kernel.x>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "isex: -resume requires -checkpoint <file>")
		os.Exit(2)
	}

	g, err := loadGraph(flag.Arg(0), *expr)
	if err != nil {
		fatal(err)
	}

	// The first SIGINT stops the run cleanly: with -checkpoint it trips the
	// preemption hook, so the enumeration drains to a visit point and writes
	// a final resumable snapshot; without it the context path cancels the
	// run and the partial stats still print. A second SIGINT exits
	// immediately with the conventional status — the escape hatch when the
	// drain itself is what the user wants to kill.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ckptStop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		if *ckptPath != "" {
			fmt.Fprintln(os.Stderr, "isex: interrupt: checkpointing (interrupt again to exit immediately)")
			close(ckptStop)
		} else {
			cancel()
		}
		<-sigc
		os.Exit(130)
	}()

	opt := enum.DefaultOptions()
	opt.MaxInputs = *nin
	opt.MaxOutputs = *nout
	opt.ConnectedOnly = *connected
	opt.MaxDepth = *maxDepth
	opt.Parallelism = *par
	opt.Context = ctx
	if *timeout > 0 {
		opt.Deadline = time.Now().Add(*timeout)
	}
	if *ckptPath != "" {
		opt.CheckpointPath = *ckptPath
		opt.CheckpointEvery = *ckptEvery
		opt.CheckpointStop = ckptStop
	}

	start := time.Now()
	var cuts []enum.Cut
	var stats enum.Stats
	if *resume {
		snap, err := checkpoint.ReadFile(*ckptPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resuming from %s: %d cuts already visited, frontier at node %d\n",
			*ckptPath, snap.Visited, snap.CurTop)
		opt.KeepCuts = true
		var rerr error
		stats, rerr = enum.ResumeEnumerate(g, opt, snap, func(c enum.Cut) bool {
			cuts = append(cuts, c)
			return true
		})
		if errors.Is(rerr, enum.ErrCompleted) {
			fmt.Println("checkpoint records a completed run; nothing to resume")
			return
		}
		if rerr != nil && stats.Err == nil {
			// Validation refusals (graph/options mismatch) happen before the
			// run starts and are not carried in Stats.
			fatal(rerr)
		}
		// CollectAll sorts by vertex set; present the resumed cuts the same way.
		sort.Slice(cuts, func(i, j int) bool {
			return cuts[i].Nodes.Compare(cuts[j].Nodes) < 0
		})
	} else {
		cuts, stats = enum.CollectAll(g, opt)
	}
	dur := time.Since(start)

	fmt.Printf("graph: %d nodes, %d edges, %d roots, %d forbidden\n",
		g.N(), g.NumEdges(), len(g.Roots()), len(g.Forbidden()))
	fmt.Printf("constraint: Nin=%d Nout=%d connected=%v\n", *nin, *nout, *connected)
	fmt.Printf("valid cuts: %d   (candidates %d, duplicates %d, analyses %d) in %v\n",
		stats.Valid, stats.Candidates, stats.Duplicates, stats.LTRuns, dur)
	if stats.Err != nil {
		fatal(stats.Err)
	}
	if stats.StopReason != enum.StopNone {
		fmt.Printf("WARNING: enumeration stopped early (%v); results are partial\n", stats.StopReason)
	}

	if *list {
		for _, c := range cuts {
			fmt.Println(" ", c)
		}
	}

	if stats.StopReason == enum.StopCheckpoint {
		// First SIGINT with -checkpoint: the run drained to a visit point
		// and the final snapshot is on disk; rerun with -resume to continue.
		fmt.Printf("checkpoint written to %s (%d cuts visited); resume with -resume\n",
			*ckptPath, stats.Valid)
		os.Exit(130)
	}
	if stats.StopReason == enum.StopCanceled {
		// Interrupted: the partial stats (and cut list, if requested) are
		// printed; selection and reports over a truncated cut set would be
		// misleading, so stop here with the conventional SIGINT status.
		os.Exit(130)
	}

	est := ise.NewEstimator(g, ise.DefaultModel())
	var best ise.Estimate
	for _, c := range cuts {
		if e := est.Estimate(c); e.Saving > best.Saving {
			best = e
		}
	}
	if best.Cut.Nodes != nil {
		fmt.Printf("best single instruction: %v\n", best)
	}

	if *doSelect {
		sopt := ise.DefaultSelectOptions()
		sopt.MaxInstructions = *maxInstr
		sopt.AreaBudget = *area
		sel := ise.Select(g, ise.DefaultModel(), cuts, sopt)
		fmt.Printf("selected %d instructions, area %.1f\n", len(sel.Chosen), sel.TotalArea)
		for _, c := range sel.Chosen {
			fmt.Println(" ", c)
		}
		fmt.Printf("block cycles: %d -> %d   speedup %.2fx\n",
			sel.BlockCyclesBefore, sel.BlockCyclesAfter, sel.Speedup())
	}

	if *dotBest != "" && best.Cut.Nodes != nil {
		f, err := os.Create(*dotBest)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := graphio.WriteDOT(f, g, graphio.DOTOptions{Highlight: best.Cut.Nodes, Name: "best"}); err != nil {
			fatal(err)
		}
	}

	if *rtlBest != "" && best.Cut.Nodes != nil {
		f, err := os.Create(*rtlBest)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ise.WriteVerilog(f, g, best.Cut, "ise_best"); err != nil {
			fatal(err)
		}
	}

	if *iterate > 0 {
		res, err := ise.IterativeIdentify(g, opt, ise.DefaultModel(), *iterate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("iterative flow: %d rounds, block cycles %d -> %d, speedup %.2fx\n",
			len(res.Rounds), res.CyclesBefore, res.CyclesAfter, res.Speedup())
		for i, r := range res.Rounds {
			fmt.Printf("  round %d: %v\n", i, r.Instruction)
		}
	}
}

func loadGraph(path string, isExpr bool) (*dfg.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if isExpr {
		return exprc.Compile(string(data))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.Read(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isex:", err)
	os.Exit(1)
}
