// Command isex enumerates the convex cuts of a data-flow graph under
// input/output port constraints and, optionally, selects an instruction set
// extension and reports the estimated speedup.
//
// Usage:
//
//	isex -nin 4 -nout 2 block.dfg          enumerate, print a summary
//	isex -list block.dfg                   additionally print every cut
//	isex -select -max-instr 4 block.dfg    pick an ISE and report speedup
//	isex -expr kernel.x                    input is exprc source, not a DFG
//	isex -dot-best out.dot block.dfg       write the best cut as DOT
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/exprc"
	"polyise/internal/graphio"
	"polyise/internal/ise"
)

func main() {
	var (
		nin       = flag.Int("nin", 4, "maximum inputs (register read ports)")
		nout      = flag.Int("nout", 2, "maximum outputs (register write ports)")
		connected = flag.Bool("connected", false, "restrict to connected cuts")
		maxDepth  = flag.Int("max-depth", 0, "restrict cut depth (0 = unlimited)")
		list      = flag.Bool("list", false, "print every enumerated cut")
		doSelect  = flag.Bool("select", false, "select an ISE and report speedup")
		maxInstr  = flag.Int("max-instr", 0, "instruction budget for -select (0 = unlimited)")
		area      = flag.Float64("area", 0, "area budget for -select (0 = unlimited)")
		expr      = flag.Bool("expr", false, "input file is exprc source")
		dotBest   = flag.String("dot-best", "", "write DOT with the best cut highlighted")
		rtlBest   = flag.String("rtl-best", "", "write a Verilog module for the best cut")
		iterate   = flag.Int("iterate", 0, "run N rounds of iterative identify+collapse")
		timeout   = flag.Duration("timeout", 0, "abort enumeration after this long")
		par       = flag.Int("parallel", 0,
			"enumeration shard workers (0 = GOMAXPROCS, 1 = the paper's serial algorithm)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isex [flags] <block.dfg | kernel.x>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g, err := loadGraph(flag.Arg(0), *expr)
	if err != nil {
		fatal(err)
	}

	// SIGINT cancels the enumeration through the context path: the run
	// drains cleanly, the partial stats print with their stop reason, and
	// the process exits nonzero instead of dying mid-run.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	opt := enum.DefaultOptions()
	opt.MaxInputs = *nin
	opt.MaxOutputs = *nout
	opt.ConnectedOnly = *connected
	opt.MaxDepth = *maxDepth
	opt.Parallelism = *par
	opt.Context = ctx
	if *timeout > 0 {
		opt.Deadline = time.Now().Add(*timeout)
	}

	start := time.Now()
	cuts, stats := enum.CollectAll(g, opt)
	dur := time.Since(start)

	fmt.Printf("graph: %d nodes, %d edges, %d roots, %d forbidden\n",
		g.N(), g.NumEdges(), len(g.Roots()), len(g.Forbidden()))
	fmt.Printf("constraint: Nin=%d Nout=%d connected=%v\n", *nin, *nout, *connected)
	fmt.Printf("valid cuts: %d   (candidates %d, duplicates %d, analyses %d) in %v\n",
		stats.Valid, stats.Candidates, stats.Duplicates, stats.LTRuns, dur)
	if stats.Err != nil {
		fatal(stats.Err)
	}
	if stats.StopReason != enum.StopNone {
		fmt.Printf("WARNING: enumeration stopped early (%v); results are partial\n", stats.StopReason)
	}

	if *list {
		for _, c := range cuts {
			fmt.Println(" ", c)
		}
	}

	if stats.StopReason == enum.StopCanceled {
		// Interrupted: the partial stats (and cut list, if requested) are
		// printed; selection and reports over a truncated cut set would be
		// misleading, so stop here with the conventional SIGINT status.
		os.Exit(130)
	}

	est := ise.NewEstimator(g, ise.DefaultModel())
	var best ise.Estimate
	for _, c := range cuts {
		if e := est.Estimate(c); e.Saving > best.Saving {
			best = e
		}
	}
	if best.Cut.Nodes != nil {
		fmt.Printf("best single instruction: %v\n", best)
	}

	if *doSelect {
		sopt := ise.DefaultSelectOptions()
		sopt.MaxInstructions = *maxInstr
		sopt.AreaBudget = *area
		sel := ise.Select(g, ise.DefaultModel(), cuts, sopt)
		fmt.Printf("selected %d instructions, area %.1f\n", len(sel.Chosen), sel.TotalArea)
		for _, c := range sel.Chosen {
			fmt.Println(" ", c)
		}
		fmt.Printf("block cycles: %d -> %d   speedup %.2fx\n",
			sel.BlockCyclesBefore, sel.BlockCyclesAfter, sel.Speedup())
	}

	if *dotBest != "" && best.Cut.Nodes != nil {
		f, err := os.Create(*dotBest)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := graphio.WriteDOT(f, g, graphio.DOTOptions{Highlight: best.Cut.Nodes, Name: "best"}); err != nil {
			fatal(err)
		}
	}

	if *rtlBest != "" && best.Cut.Nodes != nil {
		f, err := os.Create(*rtlBest)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ise.WriteVerilog(f, g, best.Cut, "ise_best"); err != nil {
			fatal(err)
		}
	}

	if *iterate > 0 {
		res, err := ise.IterativeIdentify(g, opt, ise.DefaultModel(), *iterate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("iterative flow: %d rounds, block cycles %d -> %d, speedup %.2fx\n",
			len(res.Rounds), res.CyclesBefore, res.CyclesAfter, res.Speedup())
		for i, r := range res.Rounds {
			fmt.Printf("  round %d: %v\n", i, r.Instruction)
		}
	}
}

func loadGraph(path string, isExpr bool) (*dfg.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if isExpr {
		return exprc.Compile(string(data))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.Read(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isex:", err)
	os.Exit(1)
}
