// Command gendfg generates benchmark data-flow graphs in the polyise text
// format: single MiBench-like blocks, figure 4 trees, or the full §6
// corpus as one file per block.
//
// Usage:
//
//	gendfg -kind mibench -n 500 -seed 7 > block.dfg
//	gendfg -kind tree -depth 6 > tree.dfg
//	gendfg -kind corpus -dir corpus/ -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"polyise/internal/dfg"
	"polyise/internal/graphio"
	"polyise/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "mibench", "mibench | tree | chain | butterfly | corpus")
		n     = flag.Int("n", 100, "node count (mibench, chain)")
		depth = flag.Int("depth", 5, "tree depth / butterfly stages")
		arity = flag.Int("arity", 2, "tree arity")
		seed  = flag.Int64("seed", 1, "generator seed")
		dir   = flag.String("dir", "", "output directory (corpus mode)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of text format")
	)
	flag.Parse()

	emit := func(g *dfg.Graph) {
		var err error
		if *dot {
			err = graphio.WriteDOT(os.Stdout, g, graphio.DOTOptions{})
		} else {
			err = graphio.Write(os.Stdout, g)
		}
		if err != nil {
			fatal(err)
		}
	}

	switch *kind {
	case "mibench":
		emit(workload.MiBenchLike(rand.New(rand.NewSource(*seed)), *n, workload.DefaultProfile()))
	case "tree":
		emit(workload.Tree(*depth, *arity))
	case "chain":
		emit(workload.Chain(*n))
	case "butterfly":
		emit(workload.Butterfly(*depth))
	case "corpus":
		if *dir == "" {
			fatal(fmt.Errorf("corpus mode requires -dir"))
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		blocks := workload.Corpus(*seed, workload.DefaultCorpusSpec())
		for _, b := range blocks {
			f, err := os.Create(filepath.Join(*dir, b.Name+".dfg"))
			if err != nil {
				fatal(err)
			}
			if err := graphio.Write(f, b.G); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d blocks to %s\n", len(blocks), *dir)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendfg:", err)
	os.Exit(1)
}
