// Command benchjson runs the tier-1 enumeration benchmarks and emits a
// machine-readable JSON record (ns/op, allocs/op, cuts and cuts/sec per
// benchmark), so the performance trajectory of the repository is committed
// alongside the code instead of living in transient CI logs.
//
// The benchmark instances mirror bench_test.go exactly: the 220-node
// serial-versus-sharded pair of BenchmarkParallelEnumerate and the figure 5
// size clusters (polynomial algorithm versus the pruned exhaustive search
// of [15]). Usage:
//
//	go run ./cmd/benchjson -o BENCH_PR2.json [-iters 3] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"polyise"
	"polyise/internal/workload"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cuts        int     `json:"cuts"`
	CutsPerSec  float64 `json:"cuts_per_sec"`
}

// Report is the file-level envelope.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

func measure(name string, iters int, run func(visit func(polyise.Cut) bool) polyise.Stats) Result {
	var ms0, ms1 runtime.MemStats
	cuts := 0
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		cuts = 0
		run(func(polyise.Cut) bool { cuts++; return true })
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	nsPerOp := elapsed.Nanoseconds() / int64(iters)
	res := Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     nsPerOp,
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
		Cuts:        cuts,
	}
	if nsPerOp > 0 {
		res.CutsPerSec = float64(cuts) / (float64(nsPerOp) / 1e9)
	}
	fmt.Fprintf(os.Stderr, "%-32s %12d ns/op %10d allocs/op %8d cuts %12.0f cuts/sec\n",
		name, res.NsPerOp, res.AllocsPerOp, res.Cuts, res.CutsPerSec)
	return res
}

func main() {
	out := flag.String("o", "BENCH_PR2.json", "output JSON path")
	iters := flag.Int("iters", 2, "iterations per benchmark")
	quick := flag.Bool("quick", false, "skip the 220-node serial/parallel pair (CI smoke)")
	flag.Parse()

	opts := func(par int) polyise.Options {
		o := polyise.DefaultOptions()
		o.KeepCuts = false
		o.Parallelism = par
		return o
	}

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	if !*quick {
		g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 220, workload.DefaultProfile())
		rep.Benchmarks = append(rep.Benchmarks,
			measure("ParallelEnumerate/serial", *iters, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(1), v)
			}),
			measure("ParallelEnumerate/parallel", *iters, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(0), v)
			}),
		)
	}

	for _, s := range []struct {
		cluster string
		n       int
	}{{"small", 40}, {"medium", 120}} {
		g := workload.MiBenchLike(rand.New(rand.NewSource(5)), s.n, workload.DefaultProfile())
		rep.Benchmarks = append(rep.Benchmarks,
			measure(fmt.Sprintf("Figure5/poly/%s-n%d", s.cluster, s.n), *iters,
				func(v func(polyise.Cut) bool) polyise.Stats {
					return polyise.Enumerate(g, opts(1), v)
				}),
			measure(fmt.Sprintf("Figure5/pruned/%s-n%d", s.cluster, s.n), *iters,
				func(v func(polyise.Cut) bool) polyise.Stats {
					return polyise.PrunedExhaustiveSearch(g, opts(1), v)
				}),
		)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
