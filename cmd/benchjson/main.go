// Command benchjson runs the tier-1 enumeration benchmarks and emits a
// machine-readable JSON record (ns/op, allocs/op, cuts and cuts/sec per
// benchmark), so the performance trajectory of the repository is committed
// alongside the code instead of living in transient CI logs.
//
// The benchmark instances mirror bench_test.go: the 220-node workload is
// measured as a worker-count scaling curve (1, 2, 4 and GOMAXPROCS
// workers, each entry carrying its speedup over the serial run), and the
// figure 5 size clusters compare the polynomial algorithm against the
// pruned exhaustive search of [15]. The record is taken at the process's
// real GOMAXPROCS — the committed gomaxprocs field says what the parallel
// entries actually had available, so a single-core recording machine is
// visible in the data instead of silently flattening the curve.
//
// With -compare the command doubles as the CI regression gate: after
// measuring, each benchmark is checked against the same-named entry of the
// committed baseline file, and the process exits non-zero when cuts/sec
// regressed by more than -regress (default 15%), when allocs/op grew past
// the -allocslack headroom (the steady-state enumeration is allocation-
// free, so alloc growth is a leak in the scratch-reuse discipline, not
// noise), or when the cut count drifted at all (a correctness failure, not
// a performance one). Speedup curves are only comparable between machines
// with the same parallel hardware, so when the baseline's num_cpu or
// gomaxprocs differs from the current machine's the gate REFUSES to
// performance-compare the multi-worker scaling entries (cut counts are
// still gated — correctness does not depend on core count) and says so.
// -minspeedup, when positive, additionally fails the run if the largest
// scaling entry's speedup_vs_serial falls short — the machine-checked form
// of the "≥ 4× at 8 cores" acceptance bar; it requires gomaxprocs ≥ 8 and
// refuses (exit non-zero) to certify a speedup on fewer cores.
//
// With -cpuprofile / -memprofile the command doubles as the profiling
// harness: the same tier-1 workloads run under pprof, so the committed
// numbers and the profiles always describe the same code paths (`make
// profile`; EXPERIMENTS.md explains how to read one).
//
// Usage:
//
//	go run ./cmd/benchjson -o BENCH_PR6.json [-iters 3] [-quick]
//	go run ./cmd/benchjson -o /tmp/fresh.json -quick -compare BENCH_PR6.json
//	go run ./cmd/benchjson -o /tmp/fresh.json -compare BENCH_PR6.json -minspeedup 4
//	go run ./cmd/benchjson -o /tmp/prof.json -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"polyise"
	"polyise/internal/bench"
	"polyise/internal/workload"
)

// ScenarioReport is the envelope of the end-to-end scenario record
// (BENCH_PR9.json): the pinned pipeline scenarios of internal/bench run
// enumerate → select → Verilog emit → interpreter re-check, with every
// field deterministic. Unlike the timing benchmarks, scenario entries are
// gated by exact equality — any drift in cut counts, selection, cycle
// accounting or emitted RTL is a behaviour change, not noise — so the
// record is machine-independent.
type ScenarioReport struct {
	GoVersion string                 `json:"go_version"`
	Scenarios []bench.ScenarioResult `json:"scenarios"`
}

// runScenarios executes the pinned suite and fails loudly on any pipeline
// error or semantic mismatch.
func runScenarios() (ScenarioReport, error) {
	res, err := bench.RunScenarios()
	if err != nil {
		return ScenarioReport{}, err
	}
	for _, r := range res {
		if r.OracleMismatches != 0 {
			return ScenarioReport{}, fmt.Errorf("scenario %s: %d semantic mismatches", r.Name, r.OracleMismatches)
		}
		fmt.Fprintf(os.Stderr, "%-28s n=%-4d cuts=%-5d chosen=%d cycles %d->%d rtl=%dB fnv=%s\n",
			r.Name, r.N, r.Cuts, r.Chosen, r.CyclesBefore, r.CyclesAfter, r.VerilogBytes, r.VerilogFNV)
	}
	return ScenarioReport{GoVersion: runtime.Version(), Scenarios: res}, nil
}

// gateScenarios compares fresh scenario results against the committed
// record by exact equality, entry by entry. A scenario present on only one
// side is a failure: the suite is pinned, so adding or removing an entry
// must come with a regenerated record.
func gateScenarios(fresh, baseline ScenarioReport) []string {
	base := make(map[string]bench.ScenarioResult, len(baseline.Scenarios))
	for _, b := range baseline.Scenarios {
		base[b.Name] = b
	}
	var failures []string
	seen := map[string]bool{}
	for _, f := range fresh.Scenarios {
		seen[f.Name] = true
		b, ok := base[f.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("scenario %s missing from committed record (regenerate with `make scenario-json`)", f.Name))
			continue
		}
		if f != b {
			failures = append(failures, fmt.Sprintf("scenario %s drifted:\n  fresh:    %+v\n  baseline: %+v", f.Name, f, b))
		}
	}
	for _, b := range baseline.Scenarios {
		if !seen[b.Name] {
			failures = append(failures, fmt.Sprintf("scenario %s in committed record but not in the suite", b.Name))
		}
	}
	return failures
}

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cuts        int     `json:"cuts"`
	CutsPerSec  float64 `json:"cuts_per_sec"`
	// Steals counts the interior search-tree ranges executed by a worker
	// other than their discoverer (Stats.Steals of the last iteration).
	// Scheduling-dependent by nature; recorded to show whether dynamic
	// re-balancing was actually active in a scaling entry.
	Steals int `json:"steals,omitempty"`
	// SpeedupVsSerial is cuts/sec relative to the workers=1 entry of the
	// same workload; only scaling-curve entries carry it.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// Report is the file-level envelope.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

// minMeasure is the minimum measured wall time per benchmark: sub-
// millisecond instances at a fixed iteration count are too noisy for the
// 15% regression gate, so measure scales the iteration count up (like
// testing.B) until the measurement window is at least this long.
const minMeasure = time.Second

// measureWindows is how many independent measurement windows each
// benchmark runs; the fastest window is reported. On a shared vCPU a
// single window swings by ±40% with neighbor load, which a 15% regression
// gate cannot survive; the minimum over a few windows estimates the
// machine's unloaded throughput — the quantity the gate actually wants to
// compare — the way `benchstat`-style workflows take min-time samples.
const measureWindows = 3

func measure(name string, iters int, run func(visit func(polyise.Cut) bool) polyise.Stats) Result {
	res := measureWindow(name, iters, run)
	for w := 1; w < measureWindows; w++ {
		// Re-use the calibrated iteration count so later windows skip the
		// scale-up probing.
		if r := measureWindow(name, res.Iterations, run); r.NsPerOp < res.NsPerOp {
			res = r
		}
	}
	fmt.Fprintf(os.Stderr, "%-32s %12d ns/op %10d allocs/op %8d cuts %12.0f cuts/sec\n",
		res.Name, res.NsPerOp, res.AllocsPerOp, res.Cuts, res.CutsPerSec)
	return res
}

// measureWindow takes one auto-calibrated timing window.
func measureWindow(name string, iters int, run func(visit func(polyise.Cut) bool) polyise.Stats) Result {
	var ms0, ms1 runtime.MemStats
	var elapsed time.Duration
	var stats polyise.Stats
	cuts := 0
	for {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			cuts = 0
			stats = run(func(polyise.Cut) bool { cuts++; return true })
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= minMeasure {
			break
		}
		// Re-measure with enough iterations to fill the window (plus 20%
		// headroom, capped against pathological scaling).
		per := elapsed / time.Duration(iters)
		if per <= 0 {
			per = time.Microsecond
		}
		next := int(minMeasure*12/10/per) + 1
		if next > 100*iters {
			next = 100 * iters
		}
		if next <= iters {
			break
		}
		iters = next
	}
	nsPerOp := elapsed.Nanoseconds() / int64(iters)
	res := Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     nsPerOp,
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
		Cuts:        cuts,
		Steals:      stats.Steals,
	}
	if nsPerOp > 0 {
		res.CutsPerSec = float64(cuts) / (float64(nsPerOp) / 1e9)
	}
	return res
}

// scalingWorkerCounts is the committed scaling curve: serial, 2, 4, and
// whatever the recording machine actually has, deduplicated and sorted —
// a 4-core machine records {1, 2, 4} once and an N-core machine adds N.
func scalingWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if c >= 1 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// scalingName labels a worker-count entry purely by its worker count
// (plus the historical "serial" name for 1), never by GOMAXPROCS: on a
// 2- or 4-core machine a GOMAXPROCS-derived name would swallow the w2/w4
// entry, and gate comparisons against a baseline from a different machine
// would silently skip exactly the sharded configurations.
func scalingName(workers int) string {
	if workers == 1 {
		return "ParallelEnumerate/serial"
	}
	return fmt.Sprintf("ParallelEnumerate/w%d", workers)
}

// gate compares a fresh report against the committed baseline and returns
// the regression messages (empty = pass). Benchmarks absent from either
// side are skipped: the gate protects the tier-1 set both files measured.
//
// Multi-worker scaling entries carry an extra precondition: their cuts/sec
// (and hence any speedup curve derived from them) is a property of the
// recording machine's parallel hardware, so when the reports disagree on
// num_cpu or gomaxprocs the gate refuses the performance comparison for
// entries with workers > 1 — printing what it skipped — instead of either
// failing spuriously (1-CPU CI against an 8-core baseline) or silently
// blessing a flattened curve (8-core CI against a 1-CPU baseline). Cut
// counts and allocs are still gated: correctness and the allocation
// discipline do not depend on core count.
func gate(fresh, baseline Report, regress float64, allocSlack int64) []string {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	sameCPU := fresh.NumCPU == baseline.NumCPU && fresh.GOMAXPROCS == baseline.GOMAXPROCS
	var failures []string
	for _, f := range fresh.Benchmarks {
		b, ok := base[f.Name]
		if !ok {
			continue
		}
		// Cut-count drift is a correctness failure and fires regardless of
		// the baseline's timing fields (even a zero-cut baseline is gated).
		if f.Cuts != b.Cuts {
			failures = append(failures,
				fmt.Sprintf("%s: cut count drifted: %d, baseline %d (correctness regression)",
					f.Name, f.Cuts, b.Cuts))
			continue
		}
		// Allocation regression: the steady-state enumeration is allocation-
		// free, so allocs/op is a flat per-run constant (setup plus one-time
		// scratch growth), and exceeding the baseline beyond a small absolute
		// headroom means a leak in the scratch-reuse discipline rather than
		// noise. The headroom absorbs runtime-internal variance (GC
		// bookkeeping, goroutine stacks in the sharded entries); a real
		// per-candidate leak scales with the search tree and blows straight
		// past it.
		if f.AllocsPerOp > b.AllocsPerOp+allocSlack {
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op exceeds baseline %d by more than %d (alloc regression)",
					f.Name, f.AllocsPerOp, b.AllocsPerOp, allocSlack))
			continue
		}
		if f.Workers > 1 && !sameCPU {
			fmt.Fprintf(os.Stderr,
				"bench-gate: refusing to compare %s across differing CPU counts (fresh %d cpu / %d maxprocs, baseline %d cpu / %d maxprocs)\n",
				f.Name, fresh.NumCPU, fresh.GOMAXPROCS, baseline.NumCPU, baseline.GOMAXPROCS)
			continue
		}
		if b.CutsPerSec <= 0 {
			continue
		}
		if f.CutsPerSec < b.CutsPerSec*(1-regress) {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f cuts/sec is %.1f%% below baseline %.0f (allowed %.0f%%)",
					f.Name, f.CutsPerSec,
					100*(1-f.CutsPerSec/b.CutsPerSec), b.CutsPerSec, 100*regress))
		}
	}
	return failures
}

func main() { os.Exit(run()) }

// run carries the whole command so the pprof defers fire before the
// process exits (os.Exit in main would skip them on a gate failure).
func run() int {
	out := flag.String("o", "BENCH_PR6.json", "output JSON path")
	iters := flag.Int("iters", 2, "iterations per benchmark")
	quick := flag.Bool("quick", false, "skip the 220-node scaling curve (CI smoke)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate against (exit 1 on regression)")
	regress := flag.Float64("regress", 0.15, "allowed cuts/sec regression fraction for -compare")
	allocSlack := flag.Int64("allocslack", 128, "allowed absolute allocs/op growth over baseline for -compare")
	minSpeedup := flag.Float64("minspeedup", 0,
		"fail unless the largest scaling entry reaches this speedup over serial (requires gomaxprocs ≥ 8; 0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	scenarios := flag.String("scenarios", "",
		"run the end-to-end pipeline scenarios and write their record to this path (then exit; e.g. BENCH_PR9.json)")
	compareScenarios := flag.String("compare-scenarios", "",
		"re-run the pipeline scenarios and gate exact equality against this committed record (exit 1 on drift)")
	flag.Parse()

	// Scenario modes run the deterministic end-to-end suite instead of (or
	// in addition to) the timing benchmarks; -scenarios is a pure recording
	// run and exits before any timing work.
	if *scenarios != "" {
		rep, err := runScenarios()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*scenarios, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *scenarios)
		return 0
	}
	if *compareScenarios != "" {
		raw, err := os.ReadFile(*compareScenarios)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: scenario baseline:", err)
			return 1
		}
		var baseline ScenarioReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: scenario baseline:", err)
			return 1
		}
		fresh, err := runScenarios()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		if failures := gateScenarios(fresh, baseline); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "bench-gate FAIL:", f)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-gate: %d scenarios bit-identical to %s\n",
			len(fresh.Scenarios), *compareScenarios)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote allocation profile to %s\n", *memprofile)
		}()
	}

	opts := func(par int) polyise.Options {
		o := polyise.DefaultOptions()
		o.KeepCuts = false
		o.Parallelism = par
		return o
	}

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()

	if !*quick {
		g := workload.MiBenchLike(rand.New(rand.NewSource(17)), 220, workload.DefaultProfile())
		serialCPS := 0.0
		for _, workers := range scalingWorkerCounts() {
			w := workers
			res := measure(scalingName(w), *iters, func(v func(polyise.Cut) bool) polyise.Stats {
				return polyise.Enumerate(g, opts(w), v)
			})
			res.Workers = w
			if w == 1 {
				serialCPS = res.CutsPerSec
			}
			if serialCPS > 0 {
				res.SpeedupVsSerial = res.CutsPerSec / serialCPS
			}
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}

	for _, s := range []struct {
		cluster string
		n       int
	}{{"small", 40}, {"medium", 120}} {
		g := workload.MiBenchLike(rand.New(rand.NewSource(5)), s.n, workload.DefaultProfile())
		rep.Benchmarks = append(rep.Benchmarks,
			measure(fmt.Sprintf("Figure5/poly/%s-n%d", s.cluster, s.n), *iters,
				func(v func(polyise.Cut) bool) polyise.Stats {
					return polyise.Enumerate(g, opts(1), v)
				}),
			measure(fmt.Sprintf("Figure5/pruned/%s-n%d", s.cluster, s.n), *iters,
				func(v func(polyise.Cut) bool) polyise.Stats {
					return polyise.PrunedExhaustiveSearch(g, opts(1), v)
				}),
		)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *minSpeedup > 0 {
		if msg := checkMinSpeedup(rep, *minSpeedup); msg != "" {
			fmt.Fprintln(os.Stderr, "bench-gate FAIL:", msg)
			return 1
		}
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			return 1
		}
		var baseline Report
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			return 1
		}
		failures := gate(rep, baseline, *regress, *allocSlack)
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "bench-gate FAIL:", f)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-gate: %d benchmarks within %.0f%% of %s\n",
			len(rep.Benchmarks), 100**regress, *compare)
	}
	return 0
}

// checkMinSpeedup enforces the scaling acceptance bar on the fresh report:
// the largest-worker scaling entry must reach the requested speedup over
// the serial entry. A machine with fewer than 8 schedulable CPUs cannot
// certify a parallel speedup claim, so the check refuses to pass there
// rather than report a vacuous success — a 1-CPU recording stays visibly
// uncertified until the curve is re-recorded on real parallel hardware.
func checkMinSpeedup(rep Report, want float64) string {
	if rep.GOMAXPROCS < 8 {
		return fmt.Sprintf("minspeedup %.1f requires gomaxprocs ≥ 8 to certify; this machine has %d cpu / %d maxprocs — re-record the curve on parallel hardware",
			want, rep.NumCPU, rep.GOMAXPROCS)
	}
	best := Result{}
	for _, r := range rep.Benchmarks {
		if r.Workers > best.Workers {
			best = r
		}
	}
	if best.Workers <= 1 {
		return "minspeedup: no multi-worker scaling entry in this report (ran with -quick?)"
	}
	if best.SpeedupVsSerial < want {
		return fmt.Sprintf("%s: speedup %.2f× over serial, want ≥ %.1f×",
			best.Name, best.SpeedupVsSerial, want)
	}
	fmt.Fprintf(os.Stderr, "bench-gate: %s speedup %.2f× ≥ %.1f× on %d cpus\n",
		best.Name, best.SpeedupVsSerial, want, rep.NumCPU)
	return ""
}
