// iseselect walks the full automated-ISE flow on a synthetic MiBench-like
// basic block: enumerate cuts under several port constraints, score them
// with the cost model, select instruction sets under an area budget, and
// show how the achievable speedup moves with Nin/Nout — the design-space
// exploration customizable-processor vendors run (paper §1, §7).
package main

import (
	"fmt"
	"math/rand"

	"polyise"
	"polyise/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(2007))
	g := workload.MiBenchLike(r, 120, workload.DefaultProfile())
	fmt.Printf("basic block: %d nodes, %d memory/forbidden, %d live-in, %d live-out\n\n",
		g.N(), len(g.Forbidden()), len(g.Roots()), len(g.Oext()))

	model := polyise.DefaultModel()
	constraints := []struct{ nin, nout int }{
		{2, 1}, {3, 1}, {4, 1}, {4, 2}, {5, 2},
	}

	fmt.Printf("%6s %6s %10s %12s %10s %10s\n",
		"Nin", "Nout", "cuts", "instrs", "area", "speedup")
	for _, c := range constraints {
		opt := polyise.DefaultOptions()
		opt.MaxInputs = c.nin
		opt.MaxOutputs = c.nout
		cuts, _ := polyise.EnumerateAll(g, opt)

		sopt := polyise.DefaultSelectOptions()
		sopt.MaxInstructions = 4
		sopt.AreaBudget = 40
		sel := polyise.SelectISE(g, model, cuts, sopt)
		fmt.Printf("%6d %6d %10d %12d %10.1f %9.2fx\n",
			c.nin, c.nout, len(cuts), len(sel.Chosen), sel.TotalArea, sel.Speedup())
	}

	// Detail the best configuration's instructions.
	opt := polyise.DefaultOptions()
	opt.MaxInputs, opt.MaxOutputs = 5, 2
	cuts, _ := polyise.EnumerateAll(g, opt)
	sopt := polyise.DefaultSelectOptions()
	sopt.MaxInstructions = 4
	sopt.AreaBudget = 40
	sel := polyise.SelectISE(g, model, cuts, sopt)
	fmt.Println("\nselected instructions at Nin=5/Nout=2:")
	for _, e := range sel.Chosen {
		fmt.Printf("  %v\n", e)
	}
}
