// worstcase reproduces the heart of the paper's figure 5 observation on the
// figure 4 family: tree-shaped data-flow graphs blow up the classic
// exhaustive enumeration (reference [15], provably O(1.6^n) for this
// shape) while the polynomial algorithm stays tame.
//
// For each tree depth the program runs both algorithms under the same
// Nin=4/Nout=2 constraint and prints their run times side by side; the
// widening gap is the paper's headline result.
package main

import (
	"fmt"
	"time"

	"polyise"
)

func main() {
	opt := polyise.DefaultOptions()
	opt.KeepCuts = false

	fmt.Printf("%-8s %6s %12s %16s %14s %8s\n",
		"tree", "nodes", "cuts", "poly", "exhaustive", "ratio")
	for depth := 3; depth <= 7; depth++ {
		g := polyise.TreeWorstCase(depth)

		polyCuts, polyTime := run(func(v func(polyise.Cut) bool) {
			polyise.Enumerate(g, opt, v)
		})
		if depth > 5 {
			// The exhaustive search is O(1.6^n): at depth 6 (127 nodes) it
			// would run for hours — which is exactly the paper's point.
			fmt.Printf("depth-%d %6d %12d %16v %14s\n",
				depth, g.N(), polyCuts, polyTime.Round(time.Microsecond),
				"(skipped: exponential)")
			continue
		}
		exCuts, exTime := run(func(v func(polyise.Cut) bool) {
			polyise.PrunedExhaustiveSearch(g, opt, v)
		})
		if polyCuts != exCuts {
			panic(fmt.Sprintf("algorithms disagree: %d vs %d cuts", polyCuts, exCuts))
		}
		fmt.Printf("depth-%d %6d %12d %16v %14v %7.1fx\n",
			depth, g.N(), polyCuts, polyTime.Round(time.Microsecond),
			exTime.Round(time.Microsecond),
			float64(exTime)/float64(polyTime))
	}
}

func run(enumerate func(func(polyise.Cut) bool)) (int, time.Duration) {
	n := 0
	start := time.Now()
	enumerate(func(polyise.Cut) bool { n++; return true })
	return n, time.Since(start)
}
