// Quickstart: build a small data-flow graph by hand, enumerate every convex
// cut under a 4-input/2-output port constraint, and print them.
//
// The graph is the saturating difference |a−b| clipped to a limit — a
// typical media-kernel fragment:
//
//	d   = a - b
//	ad  = abs(d)
//	sat = min(ad, limit)
package main

import (
	"fmt"

	"polyise"
)

func main() {
	g := polyise.NewGraph()
	a := g.MustAddNode(polyise.OpVar, "a")
	b := g.MustAddNode(polyise.OpVar, "b")
	limit := g.MustAddNode(polyise.OpVar, "limit")
	d := g.MustAddNode(polyise.OpSub, "d", a, b)
	ad := g.MustAddNode(polyise.OpAbs, "ad", d)
	sat := g.MustAddNode(polyise.OpMin, "sat", ad, limit)
	_ = sat
	g.MustFreeze()

	opt := polyise.DefaultOptions() // Nin=4, Nout=2
	cuts, stats := polyise.EnumerateAll(g, opt)

	fmt.Printf("graph with %d nodes has %d valid cuts under Nin=%d/Nout=%d:\n",
		g.N(), len(cuts), opt.MaxInputs, opt.MaxOutputs)
	for _, c := range cuts {
		fmt.Printf("  nodes=%v inputs=%v outputs=%v\n",
			c.Nodes.Members(), c.Inputs, c.Outputs)
	}
	fmt.Printf("search stats: %d candidates, %d dominator analyses\n",
		stats.Candidates, stats.LTRuns)

	// Score each cut as a custom instruction and show the best one.
	model := polyise.DefaultModel()
	sel := polyise.SelectISE(g, model, cuts, polyise.DefaultSelectOptions())
	fmt.Printf("\nbest instruction set extension (%d instruction(s)):\n", len(sel.Chosen))
	for _, e := range sel.Chosen {
		fmt.Printf("  %v\n", e)
	}
	fmt.Printf("block speedup: %.2fx (%d -> %d cycles)\n",
		sel.Speedup(), sel.BlockCyclesBefore, sel.BlockCyclesAfter)
}
