// exprkernels compiles three realistic straight-line kernels with the
// built-in expression-language front end (the stand-in for the paper's
// compiler toolchain [8]) and runs the full ISE identification flow on
// each: a 4-tap FIR filter, one round of an ARX hash, and an alpha-blend
// pixel kernel with memory traffic (loads/stores are forbidden nodes and
// must stay outside every instruction).
package main

import (
	"fmt"

	"polyise"
)

var kernels = []struct {
	name string
	src  string
}{
	{
		name: "fir4",
		src: `
in x0, x1, x2, x3, c0, c1, c2, c3
p0 = x0 * c0
p1 = x1 * c1
p2 = x2 * c2
p3 = x3 * c3
s01 = p0 + p1
s23 = p2 + p3
y = s01 + s23
out y
`,
	},
	{
		name: "arx-round",
		src: `
in a, b, c, d
a1 = a + b
d1 = (d ^ a1) << 7
c1 = c + d1
b1 = ((b ^ c1) << 9) | ((b ^ c1) >> 23)
out a1, b1, c1, d1
`,
	},
	{
		name: "alpha-blend",
		src: `
in src, dst, alpha, p
fg = load(p)
m1 = fg * alpha
m2 = dst * (255 - alpha)
blend = (m1 + m2) >> 8
clamped = min(blend, 255)
store(p, clamped)
out clamped
`,
	},
}

func main() {
	model := polyise.DefaultModel()
	for _, k := range kernels {
		g := polyise.MustCompileExpr(k.src)
		opt := polyise.DefaultOptions()
		cuts, _ := polyise.EnumerateAll(g, opt)
		sel := polyise.SelectISE(g, model, cuts, polyise.DefaultSelectOptions())

		fmt.Printf("== %s: %d nodes (%d forbidden), %d cuts\n",
			k.name, g.N(), len(g.Forbidden()), len(cuts))
		for _, e := range sel.Chosen {
			fmt.Printf("   instruction %v\n", e)
		}
		fmt.Printf("   speedup %.2fx (%d -> %d cycles)\n\n",
			sel.Speedup(), sel.BlockCyclesBefore, sel.BlockCyclesAfter)
	}
}
