// Package polyise is a reproduction of Bonzini & Pozzi, "Polynomial-Time
// Subgraph Enumeration for Automated Instruction Set Extension" (DATE 2007).
//
// Given the data-flow graph of a basic block and a microarchitectural
// input/output constraint (Nin register-file read ports, Nout write ports),
// the library enumerates every convex subgraph — candidate custom
// instruction — in time polynomial in the graph size, scores the candidates
// with a latency/area model, and selects an instruction set extension.
//
// Basic use:
//
//	g := polyise.NewGraph()
//	a := g.MustAddNode(polyise.OpVar, "a")
//	b := g.MustAddNode(polyise.OpVar, "b")
//	sum := g.MustAddNode(polyise.OpAdd, "sum", a, b)
//	sq := g.MustAddNode(polyise.OpMul, "sq", sum, sum)
//	_ = sq
//	g.MustFreeze()
//
//	cuts, stats := polyise.EnumerateAll(g, polyise.DefaultOptions())
//
// # Parallel enumeration
//
// Enumeration shards across CPUs at two grain sizes. Within one block,
// Options.Parallelism splits the top-level search subtrees of
// POLY-ENUM-INCR over that many workers (0 = GOMAXPROCS, the default);
// each worker owns a full clone of the enumerator's mutable state, and a
// merge stage reassembles the per-subtree cut streams. Across blocks, the
// corpus drivers (internal/bench, cmd/compare) reuse the same knob to
// shard whole basic blocks over a worker pool. The determinism guarantee
// is strict and differentially tested: at any worker count the visitor
// receives exactly the cuts a serial run would produce, in exactly the
// serial order — including the same prefix under an early stop — so
// results, selections and iterative flows are bit-for-bit reproducible.
// Only the Duplicates/Invalid split of Stats may shift (cross-shard
// duplicate candidates are re-validated instead of skipped). To reproduce
// the paper's serial measurements, set Options.Parallelism = 1.
//
// The subpackages under internal implement the substrates: Lengauer–Tarjan
// dominators, multiple-vertex dominator enumeration, the [15]-style
// baseline search, workload generators, the benchmark harness and the
// worker-pool/ordered-merge machinery (internal/parallel). This package
// re-exports the surface a downstream user needs.
package polyise

import (
	"context"
	"io"
	"net/http"

	"polyise/internal/baseline"
	"polyise/internal/dfg"
	"polyise/internal/enum"
	"polyise/internal/exprc"
	"polyise/internal/graphio"
	"polyise/internal/interp"
	"polyise/internal/ise"
	"polyise/internal/session"
	"polyise/internal/workload"
)

// Graph is a basic-block data-flow graph; see NewGraph.
type Graph = dfg.Graph

// Op identifies a node operation.
type Op = dfg.Op

// Node operation kinds.
const (
	OpVar    = dfg.OpVar
	OpConst  = dfg.OpConst
	OpAdd    = dfg.OpAdd
	OpSub    = dfg.OpSub
	OpMul    = dfg.OpMul
	OpDiv    = dfg.OpDiv
	OpRem    = dfg.OpRem
	OpAnd    = dfg.OpAnd
	OpOr     = dfg.OpOr
	OpXor    = dfg.OpXor
	OpNot    = dfg.OpNot
	OpNeg    = dfg.OpNeg
	OpShl    = dfg.OpShl
	OpShr    = dfg.OpShr
	OpSar    = dfg.OpSar
	OpCmpEQ  = dfg.OpCmpEQ
	OpCmpNE  = dfg.OpCmpNE
	OpCmpLT  = dfg.OpCmpLT
	OpCmpLE  = dfg.OpCmpLE
	OpSelect = dfg.OpSelect
	OpMin    = dfg.OpMin
	OpMax    = dfg.OpMax
	OpAbs    = dfg.OpAbs
	OpLoad   = dfg.OpLoad
	OpStore  = dfg.OpStore
	OpCall   = dfg.OpCall
)

// NewGraph returns an empty, mutable data-flow graph. Add nodes with
// AddNode/MustAddNode, mark memory or otherwise unmappable operations with
// MarkForbidden, mark extra live-out values with MarkLiveOut, then call
// Freeze.
func NewGraph() *Graph { return dfg.New() }

// Options configures cut enumeration (Nin/Nout, connectedness, §5.3
// pruning toggles).
type Options = enum.Options

// DefaultOptions is the paper's standard configuration: Nin=4, Nout=2, all
// exact prunings on.
func DefaultOptions() Options { return enum.DefaultOptions() }

// Cut is one convex subgraph with its derived inputs and outputs.
type Cut = enum.Cut

// Stats summarizes the work an enumeration performed.
type Stats = enum.Stats

// Enumerate runs the paper's polynomial-time incremental algorithm
// (POLY-ENUM-INCR, figure 3) and streams every valid cut to visit; return
// false from the visitor to stop early. Options.Parallelism shards the
// search across workers (0 = GOMAXPROCS, 1 = the paper's serial run)
// without changing the visited cuts or their order.
func Enumerate(g *Graph, opt Options, visit func(Cut) bool) Stats {
	return enum.Enumerate(g, opt, visit)
}

// EnumerateContext is Enumerate with explicit cancellation: it wires ctx
// into Options.Context and returns a non-nil error when the run ended
// abnormally — ctx.Err() on cancellation or deadline expiry through the
// context, Stats.Err for a contained panic or a stalled worker handoff.
// Early stops the caller asked for (Options.Deadline, MaxCuts,
// MaxDedupBytes, a false-returning visitor) are not errors; inspect
// Stats.StopReason to distinguish them. Whatever the cause, the visitor
// has by then received an exact prefix of the serial enumeration order.
func EnumerateContext(ctx context.Context, g *Graph, opt Options, visit func(Cut) bool) (Stats, error) {
	return enum.EnumerateContext(ctx, g, opt, visit)
}

// StopReason identifies why an enumeration ended early; Stats.StopReason
// is StopNone for a run that completed the full search space.
type StopReason = enum.StopReason

// The stop reasons, in increasing precedence: when several causes race,
// Stats.StopReason reports the highest.
const (
	StopNone       = enum.StopNone       // ran to completion
	StopVisitor    = enum.StopVisitor    // the visitor returned false
	StopBudget     = enum.StopBudget     // MaxCuts or MaxDedupBytes reached
	StopCheckpoint = enum.StopCheckpoint // Options.CheckpointStop closed; run parked
	StopDeadline   = enum.StopDeadline   // Options.Deadline passed
	StopCanceled   = enum.StopCanceled   // Options.Context canceled
	StopError      = enum.StopError      // contained panic or worker failure; see Stats.Err
)

// PanicError is the Stats.Err value for a panic contained at an
// enumeration boundary; it carries the recovered value and stack.
type PanicError = enum.PanicError

// StallError is the Stats.Err value reported when a parallel work handoff
// stalled past the liveness watchdog.
type StallError = enum.StallError

// EnumerateAll collects every valid cut, sorted deterministically.
func EnumerateAll(g *Graph, opt Options) ([]Cut, Stats) {
	return enum.CollectAll(g, opt)
}

// EnumerateBasic runs the non-incremental POLY-ENUM of figure 2 — the
// reference implementation, slower but simpler.
func EnumerateBasic(g *Graph, opt Options, visit func(Cut) bool) Stats {
	return enum.EnumerateBasic(g, opt, visit)
}

// PrunedExhaustiveSearch runs the Pozzi–Atasu–Ienne style baseline the
// paper compares against in figure 5 (reference [15]): a binary
// include/exclude search with constraint propagation, exponential in the
// worst case.
func PrunedExhaustiveSearch(g *Graph, opt Options, visit func(Cut) bool) Stats {
	return baseline.PrunedSearch(g, opt, visit)
}

// Model is the ISE latency/area cost model.
type Model = ise.Model

// DefaultModel returns a single-issue embedded RISC cost model.
func DefaultModel() Model { return ise.DefaultModel() }

// Estimate is a scored candidate instruction.
type Estimate = ise.Estimate

// Selection is the result of instruction selection on one block.
type Selection = ise.Selection

// SelectOptions configures instruction selection.
type SelectOptions = ise.SelectOptions

// DefaultSelectOptions returns greedy selection with unlimited resources.
func DefaultSelectOptions() SelectOptions { return ise.DefaultSelectOptions() }

// SelectISE scores the given cuts and picks a non-overlapping instruction
// set maximizing saved cycles under the resource constraints.
func SelectISE(g *Graph, m Model, cuts []Cut, opt SelectOptions) Selection {
	return ise.Select(g, m, cuts, opt)
}

// IdentifyISE is the end-to-end flow: enumerate all cuts, then select.
func IdentifyISE(g *Graph, eopt Options, m Model, sopt SelectOptions) Selection {
	return ise.Identify(g, eopt, m, sopt)
}

// CompileExpr compiles a straight-line kernel in the exprc language into a
// data-flow graph; see the package documentation of internal/exprc for the
// grammar.
func CompileExpr(src string) (*Graph, error) { return exprc.Compile(src) }

// MustCompileExpr is CompileExpr that panics on error.
func MustCompileExpr(src string) *Graph { return exprc.MustCompile(src) }

// ReadGraph parses the polyise text format.
func ReadGraph(r io.Reader) (*Graph, error) { return graphio.Read(r) }

// WriteGraph serializes a frozen graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return graphio.Write(w, g) }

// WriteDOT exports a graph as Graphviz DOT, optionally highlighting a cut.
func WriteDOT(w io.Writer, g *Graph, highlight *Cut) error {
	opt := graphio.DOTOptions{}
	if highlight != nil {
		opt.Highlight = highlight.Nodes
	}
	return graphio.WriteDOT(w, g, opt)
}

// TreeWorstCase builds the figure 4 tree-shaped DFG, the worst case for
// exhaustive-search algorithms like [15].
func TreeWorstCase(depth int) *Graph { return workload.Tree(depth, 2) }

// IterativeResult is the outcome of the multi-round identification flow.
type IterativeResult = ise.IterativeResult

// IterativeIdentify repeatedly enumerates, selects the best instruction and
// collapses it into the block (the paper's compiler-toolchain flow [8]),
// for at most maxRounds rounds.
func IterativeIdentify(g *Graph, eopt Options, m Model, maxRounds int) (IterativeResult, error) {
	return ise.IterativeIdentify(g, eopt, m, maxRounds)
}

// WriteVerilog emits a combinational Verilog module implementing the cut's
// datapath — the custom functional unit the selected instruction maps to.
func WriteVerilog(w io.Writer, g *Graph, cut Cut, moduleName string) error {
	return ise.WriteVerilog(w, g, cut, moduleName)
}

// ExtractCut builds a standalone graph containing only the cut's
// computation; the mapping translates original node ids to extracted ids.
func ExtractCut(g *Graph, cut Cut) (*Graph, map[int]int, error) {
	return g.ExtractCut(cut.Nodes)
}

// CollapseCut rebuilds the graph with the cut replaced by a single custom
// instruction of the given latency.
func CollapseCut(g *Graph, cut Cut, name string, latencyCycles int) (*Graph, map[int]int, error) {
	return g.CollapseCut(cut.Nodes, name, latencyCycles)
}

// ExecEnv configures concrete execution of a graph (see Execute).
type ExecEnv = interp.Env

// ExecResult carries every node's value after Execute.
type ExecResult = interp.Result

// Execute interprets the block on concrete 32-bit values — the semantic
// reference the test suite uses to prove that collapsing instructions
// preserves program meaning.
func Execute(g *Graph, env ExecEnv) (ExecResult, error) { return interp.Run(g, env) }

// Service is the enumeration-as-a-service session layer behind the
// polyised server: content-addressed graph caching under a global memory
// budget, admission control with load shedding, per-request deadlines and
// budgets, panic isolation, and graceful shutdown that parks durable runs
// as resumable checkpoints. See internal/session and cmd/polyised.
type Service = session.Service

// ServiceConfig sizes a Service.
type ServiceConfig = session.Config

// ServiceRequest names one enumeration over a cached graph.
type ServiceRequest = session.Request

// GraphID is the content address of a cached graph (the same digest that
// gates checkpoint resume).
type GraphID = session.GraphID

// NewService builds the session layer; serve it over HTTP with
// NewServiceHandler or drive it directly.
func NewService(cfg ServiceConfig) *Service { return session.NewService(cfg) }

// NewServiceHandler exposes a Service over HTTP (the polyised API).
func NewServiceHandler(s *Service, hc session.HandlerConfig) http.Handler {
	return session.NewHandler(s, hc)
}
