package polyise_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"polyise"
)

// absdiff builds |a−b| as a tiny demo graph.
func absdiff() *polyise.Graph {
	g := polyise.NewGraph()
	a := g.MustAddNode(polyise.OpVar, "a")
	b := g.MustAddNode(polyise.OpVar, "b")
	d := g.MustAddNode(polyise.OpSub, "d", a, b)
	g.MustAddNode(polyise.OpAbs, "ad", d)
	return g.MustFreeze()
}

func ExampleEnumerateAll() {
	g := absdiff()
	cuts, _ := polyise.EnumerateAll(g, polyise.DefaultOptions())
	for _, c := range cuts {
		fmt.Printf("nodes=%v inputs=%v outputs=%v\n",
			c.Nodes.Members(), c.Inputs, c.Outputs)
	}
	// Output:
	// nodes=[2] inputs=[0 1] outputs=[2]
	// nodes=[3] inputs=[2] outputs=[3]
	// nodes=[2 3] inputs=[0 1] outputs=[3]
}

func ExampleIdentifyISE() {
	g := absdiff()
	sel := polyise.IdentifyISE(g, polyise.DefaultOptions(),
		polyise.DefaultModel(), polyise.DefaultSelectOptions())
	fmt.Printf("instructions=%d speedup=%.2f\n", len(sel.Chosen), sel.Speedup())
	// Output:
	// instructions=1 speedup=2.00
}

func ExampleCompileExpr() {
	g, err := polyise.CompileExpr(`
in a, b
d = a - b
r = abs(d)
out r
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), "nodes,", len(g.Roots()), "inputs")
	// Output:
	// 4 nodes, 2 inputs
}

func TestEnumerateEarlyStopPublicAPI(t *testing.T) {
	g := absdiff()
	n := 0
	polyise.Enumerate(g, polyise.DefaultOptions(), func(polyise.Cut) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("visitor calls = %d, want 1", n)
	}
}

func TestAlgorithmsAgreeOnPublicAPI(t *testing.T) {
	g := polyise.TreeWorstCase(4)
	opt := polyise.DefaultOptions()
	opt.KeepCuts = false
	count := func(run func(*polyise.Graph, polyise.Options, func(polyise.Cut) bool) polyise.Stats) int {
		n := 0
		run(g, opt, func(polyise.Cut) bool { n++; return true })
		return n
	}
	a := count(polyise.Enumerate)
	b := count(polyise.PrunedExhaustiveSearch)
	c := count(polyise.EnumerateBasic)
	if a != b || a != c {
		t.Fatalf("cut counts disagree: poly=%d pruned=%d basic=%d", a, b, c)
	}
	if a == 0 {
		t.Fatal("no cuts found on depth-4 tree")
	}
}

func TestGraphSerializationRoundTripPublicAPI(t *testing.T) {
	g := absdiff()
	var buf bytes.Buffer
	if err := polyise.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := polyise.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() {
		t.Fatalf("round trip changed node count: %d vs %d", g2.N(), g.N())
	}
}

func TestWriteDOTHighlight(t *testing.T) {
	g := absdiff()
	cuts, _ := polyise.EnumerateAll(g, polyise.DefaultOptions())
	if len(cuts) == 0 {
		t.Fatal("no cuts")
	}
	var buf bytes.Buffer
	if err := polyise.WriteDOT(&buf, g, &cuts[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("not DOT output")
	}
}

func TestPaperHeadlineShape(t *testing.T) {
	// The reproduction's headline: on the figure 4 worst case the
	// polynomial algorithm's work grows polynomially while the exhaustive
	// search's work grows exponentially. Compare growth factors across one
	// depth step using the algorithms' own work counters.
	opt := polyise.DefaultOptions()
	opt.KeepCuts = false
	work := func(depth int, poly bool) float64 {
		g := polyise.TreeWorstCase(depth)
		var s polyise.Stats
		if poly {
			s = polyise.Enumerate(g, opt, func(polyise.Cut) bool { return true })
			return float64(s.LTRuns + s.Candidates)
		}
		s = polyise.PrunedExhaustiveSearch(g, opt, func(polyise.Cut) bool { return true })
		return float64(s.Candidates + s.SeedsPruned)
	}
	polyGrowth := work(6, true) / work(5, true)
	exGrowth := work(6, false) / work(5, false)
	t.Logf("depth 5→6 growth: poly %.1fx, exhaustive %.1fx", polyGrowth, exGrowth)
	if exGrowth < 1.5*polyGrowth {
		t.Fatalf("expected exhaustive search to grow much faster (poly %.1fx, exhaustive %.1fx)",
			polyGrowth, exGrowth)
	}
}
