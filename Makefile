# Developer entry points; CI runs `make ci`.

GO ?= go

.PHONY: build vet test test-race bench fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The concurrency suite (sharded enumeration, worker pool, ordered merge)
# only proves state ownership under the race detector.
test-race:
	$(GO) test -race ./internal/parallel/ ./internal/enum/ ./internal/bench/
	$(GO) test -race -run 'Parallel|Corpus' .

# Paper-figure reproductions plus the serial-vs-parallel speedup pair
# (BenchmarkParallelEnumerate, BenchmarkCorpusCuts).
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) test -bench=. -benchtime=1x ./internal/bench/

# Short fuzz run over the graphio parser; the committed seed corpus under
# internal/graphio/testdata/ always runs as part of plain `make test`.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/graphio/

ci: test test-race
