# Developer entry points; CI runs `make ci`.

GO ?= go

.PHONY: build vet test test-race bench bench-json bench-json-quick fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The concurrency suite (sharded enumeration, worker pool, ordered merge)
# only proves state ownership under the race detector.
test-race:
	$(GO) test -race ./internal/parallel/ ./internal/enum/ ./internal/bench/
	$(GO) test -race -run 'Parallel|Corpus' .

# Paper-figure reproductions plus the serial-vs-parallel speedup pair
# (BenchmarkParallelEnumerate, BenchmarkCorpusCuts).
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) test -bench=. -benchtime=1x ./internal/bench/

# Machine-readable perf record: runs the tier-1 enumeration benchmarks and
# commits the numbers (ns/op, allocs/op, cuts/sec for the serial and the
# sharded configuration) to BENCH_PR2.json so the performance trajectory is
# tracked in-repo. bench-json-quick skips the 220-node pair; ci uses it as a
# smoke test that the harness itself keeps working.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_PR2.json

bench-json-quick:
	$(GO) run ./cmd/benchjson -o /tmp/bench_smoke.json -quick -iters 1

# Short fuzz run over the graphio parser; the committed seed corpus under
# internal/graphio/testdata/ always runs as part of plain `make test`.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/graphio/

ci: test test-race bench-json-quick
