# Developer entry points; CI runs `make ci`.

GO ?= go

.PHONY: build vet test test-race chaos crash soak diff-oracle diff-oracle-quick semoracle semoracle-quick coverage-floor docs-check bench bench-json bench-json-quick bench-gate bench-scaling scenario-json profile fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The concurrency suite (sharded enumeration, worker pool, ordered merge)
# only proves state ownership under the race detector. -short trims the
# mid-size oracle/regression instances whose deadline-budgeted runs would
# dominate the race sweep without adding concurrency coverage (the full
# instances run race-free in `test` and `diff-oracle`).
test-race:
	$(GO) test -race -short ./internal/parallel/ ./internal/enum/ ./internal/bench/
	$(GO) test -race -run 'Parallel|Corpus' .

# Fail-safe certification: the deterministic fault-injection sweep
# (internal/enum chaos_test.go, failure_test.go; internal/faultinject) under
# the race detector. Every injected panic, delay, forced fallback, budget
# hit and cancellation must end in a bit-identical serial prefix or a clean
# typed error — the hard -timeout turns any hang into a failure instead of
# a stuck CI job.
chaos:
	$(GO) test -race -run 'TestChaos|TestFailure' ./internal/enum/ -timeout 10m -count 1
	$(GO) test -race ./internal/faultinject/ -timeout 2m -count 1

# Crash-resume certification: the kill-and-resume matrix under the race
# detector — an injected panic at every protocol site of a checkpointing
# run (including inside the snapshot writer itself), then a resume from the
# snapshot the contained crash left behind, at the other worker count;
# crashed prefix + resumed suffix must be bit-identical to the serial
# order. Runs alongside the snapshot-format compatibility suite (committed
# golden file, version skew, truncation/corruption, round-trip fuzz seeds).
# The hard -timeout turns a hung resume into a failure.
crash:
	$(GO) test -race -run 'TestCrashResume|TestResume|TestCheckpoint' ./internal/enum/ -timeout 10m -count 1
	$(GO) test -race ./internal/checkpoint/ -timeout 2m -count 1

# Service-layer chaos under load: the session soak (internal/session
# soak_test.go) under the race detector — a saturated service absorbing a
# mixed storm of healthy, poison, oversized, over-budget, canceled and
# HTTP-streaming requests while delay injections widen the race windows at
# the session fault sites. Healthy results must be bit-identical to the
# serial reference, every bad-request class must fail with its typed
# error, the memory budget must never be exceeded (with eviction actually
# observed), and a durable run parked by shutdown must resume bit-exactly
# on a fresh service. The rest of the session suite (cache, admission,
# HTTP mapping) rides along; the hard -timeout turns any hang into a
# failure.
soak:
	$(GO) test -race ./internal/session/ -timeout 10m -count 1

# Mid-size completeness evidence: diff the polynomial enumeration against
# the pruned-exhaustive oracle on the pinned gap instances (n=140/seed 5 →
# 4 565 cuts, n=220/seed 17 → 7 891) and fresh random blocks up to n ≈ 240,
# plus the bit-for-bit sequence-identity regression (including the ~1 min
# basic-algorithm cross-check at n=220). diff-oracle-quick is the CI
# version: oracle comparisons only, at a budget that still completes every
# instance on the recording machine.
diff-oracle:
	POLYISE_ORACLE_BUDGET=10m $(GO) test ./internal/enum/ -run 'MidSizeOracle|GapRegression' -v -timeout 30m -count 1

diff-oracle-quick:
	POLYISE_ORACLE_BUDGET=90s $(GO) test ./internal/enum/ -run 'MidSizeOracle' -timeout 15m -count 1

# Semantic certification: the interpreter cut-semantics oracle and the
# exhaustive selection reference over the pinned corpora (internal/
# semoracle). The full run certifies every cut of the gap-regression
# corpus (4 565 + 7 891 cuts, 8 random environments each, seeded-memory
# load/store ordering included); semoracle-quick is the CI version at a
# budget where an overrun is an explicit skip (inconclusive), never a
# hidden pass.
semoracle:
	POLYISE_ORACLE_BUDGET=10m $(GO) test ./internal/semoracle/ -v -timeout 30m -count 1

semoracle-quick:
	POLYISE_ORACLE_BUDGET=60s $(GO) test ./internal/semoracle/ -timeout 10m -count 1

# Coverage ratchet for the packages the oracle layer certifies (interp,
# ise, multidom, exprc): new code there cannot land untested.
coverage-floor:
	./scripts/check_coverage.sh

# Docs-drift gate: every backticked Go identifier and file path referenced
# by docs/ALGORITHM.md must still exist in the tree, so the paper-to-code
# map cannot silently rot.
docs-check:
	./scripts/check_docs_refs.sh docs/ALGORITHM.md

# Paper-figure reproductions plus the serial-vs-parallel speedup pair
# (BenchmarkParallelEnumerate, BenchmarkCorpusCuts).
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) test -bench=. -benchtime=1x ./internal/bench/

# Machine-readable perf record: runs the tier-1 enumeration benchmarks —
# including the worker-count scaling curve at real GOMAXPROCS — and commits
# the numbers (ns/op, allocs/op, cuts, cuts/sec, steals, speedup_vs_serial)
# to BENCH_PR6.json so the performance trajectory is tracked in-repo. The
# cut counts in the file are part of the correctness gate, not just
# context: bench-gate fails on any drift. The file also records num_cpu and
# gomaxprocs; bench-gate refuses to performance-compare multi-worker
# entries against a baseline from a machine with a different CPU count.
# bench-json-quick skips the 220-node scaling curve.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_PR6.json

bench-json-quick:
	$(GO) run ./cmd/benchjson -o /tmp/bench_smoke.json -quick -iters 1

# Scaling certification: re-record the full curve and fail unless the
# largest worker count reaches a 4x speedup over serial on the n=220
# instance. benchjson refuses to certify on fewer than 8 schedulable CPUs,
# so this target is honest on a 1-CPU box: it fails loudly instead of
# recording a vacuous pass. Run it (and commit the refreshed
# BENCH_PR6.json) when benchmarking hardware with >= 8 cores is available.
bench-scaling:
	$(GO) run ./cmd/benchjson -o BENCH_PR6.json -minspeedup 4

# Regression gate: re-measure the quick tier-1 benchmarks and fail when
# cuts/sec drops more than 15% below the committed baseline, when allocs/op
# grows past the committed value by more than the -allocslack headroom (the
# steady-state enumeration is allocation-free, so alloc growth means a
# scratch-reuse leak), or when cut counts drift at all — that is a
# correctness bug, not noise. CI runs this so a perf regression breaks the
# build the same way a test failure does. The baseline is machine-specific:
# after moving CI to different hardware, re-record it there with `make
# bench-json` (or gate with a looser -regress) instead of comparing against
# another machine's numbers.
#
# -regress 0.35 on this recording box: it is a single shared vCPU whose
# neighbor load depresses whole multi-minute runs by ~25% even after
# benchjson's best-of-three measurement windows (which absorb the
# second-scale noise). The correctness teeth — cut counts, allocs/op, and
# the bit-exact scenario section — keep their exact gates; only the
# cuts/sec tripwire gets the measured noise floor. Tighten when CI moves
# to dedicated hardware.
bench-gate:
	$(GO) run ./cmd/benchjson -o /tmp/bench_gate.json -quick -iters 3 -regress 0.35 -compare BENCH_PR6.json -compare-scenarios BENCH_PR9.json

# Re-record the end-to-end scenario section (BENCH_PR9.json): the pinned
# pipeline scenarios (enumerate -> select -> Verilog -> interpreter
# re-check) with every field deterministic. Unlike BENCH_PR6.json this
# record is machine-independent — bench-gate compares it by exact
# equality, so regenerate it (and commit the diff) whenever a pipeline
# stage intentionally changes behaviour.
scenario-json:
	$(GO) run ./cmd/benchjson -scenarios BENCH_PR9.json

# Profiling harness: run the tier-1 workloads — including the 220-node
# instance that dominates the serial profile — under pprof and drop
# cpu.prof/mem.prof in the working tree (do not commit them). Read with
# `go tool pprof -top cpu.prof`; EXPERIMENTS.md ("How to read a polyise
# profile") explains what the hot symbols mean.
profile:
	$(GO) run ./cmd/benchjson -o /tmp/bench_profile.json -iters 1 -cpuprofile cpu.prof -memprofile mem.prof

# Short fuzz runs over the untrusted entry points: the graphio parser, the
# expression compiler and the interpreter. The committed seed corpora under
# each package's testdata/ always run as part of plain `make test`.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/graphio/
	$(GO) test -fuzz=FuzzExprCompile -fuzztime=30s ./internal/exprc/
	$(GO) test -fuzz=FuzzInterpRun -fuzztime=30s ./internal/interp/

ci: test test-race chaos crash soak docs-check diff-oracle-quick semoracle-quick coverage-floor bench-gate
