# Developer entry points; CI runs `make ci`.

GO ?= go

.PHONY: build vet test test-race bench bench-json bench-json-quick bench-gate fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The concurrency suite (sharded enumeration, worker pool, ordered merge)
# only proves state ownership under the race detector.
test-race:
	$(GO) test -race ./internal/parallel/ ./internal/enum/ ./internal/bench/
	$(GO) test -race -run 'Parallel|Corpus' .

# Paper-figure reproductions plus the serial-vs-parallel speedup pair
# (BenchmarkParallelEnumerate, BenchmarkCorpusCuts).
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) test -bench=. -benchtime=1x ./internal/bench/

# Machine-readable perf record: runs the tier-1 enumeration benchmarks —
# including the worker-count scaling curve at real GOMAXPROCS — and commits
# the numbers (ns/op, allocs/op, cuts/sec, speedup_vs_serial) to
# BENCH_PR3.json so the performance trajectory is tracked in-repo.
# bench-json-quick skips the 220-node scaling curve.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_PR3.json

bench-json-quick:
	$(GO) run ./cmd/benchjson -o /tmp/bench_smoke.json -quick -iters 1

# Regression gate: re-measure the quick tier-1 benchmarks and fail when
# cuts/sec drops more than 15% below the committed baseline (or when cut
# counts drift at all — that is a correctness bug, not noise). CI runs this
# so a perf regression breaks the build the same way a test failure does.
# The baseline is machine-specific: after moving CI to different hardware,
# re-record it there with `make bench-json` (or gate with a looser
# -regress) instead of comparing against another machine's numbers.
bench-gate:
	$(GO) run ./cmd/benchjson -o /tmp/bench_gate.json -quick -iters 3 -compare BENCH_PR3.json

# Short fuzz run over the graphio parser; the committed seed corpus under
# internal/graphio/testdata/ always runs as part of plain `make test`.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/graphio/

ci: test test-race bench-gate
